//! The five search-algorithm drivers.

use ftts_engine::{BeamId, ScoredBeam, SearchDriver, SelectCtx};
use serde::{Deserialize, Serialize};

/// Rank beams by score (descending), breaking ties by id so selection is
/// deterministic.
fn ranked(frontier: &[ScoredBeam]) -> Vec<&ScoredBeam> {
    let mut v: Vec<&ScoredBeam> = frontier.iter().collect();
    v.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    v
}

/// The TTS algorithms evaluated in the paper (Fig. 2 / Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchKind {
    /// Best-of-N sampling with outcome scoring.
    BestOfN,
    /// Standard verifier-guided beam search.
    BeamSearch,
    /// Diverse verifier tree search.
    Dvts,
    /// Score-adaptive branching.
    DynamicBranching,
    /// Depth-varying verification granularity.
    VaryingGranularity,
}

impl SearchKind {
    /// All variants, in the paper's Fig. 11 order.
    pub fn all() -> [SearchKind; 5] {
        [
            SearchKind::BeamSearch,
            SearchKind::Dvts,
            SearchKind::DynamicBranching,
            SearchKind::VaryingGranularity,
            SearchKind::BestOfN,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SearchKind::BestOfN => "Best-of-N",
            SearchKind::BeamSearch => "Beam Search",
            SearchKind::Dvts => "DVTS",
            SearchKind::DynamicBranching => "Dynamic Branching",
            SearchKind::VaryingGranularity => "Varying Granularity",
        }
    }
}

impl std::fmt::Display for SearchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Build a boxed driver for `kind` with beam budget `n` and branching
/// factor `b`.
pub fn make_driver(kind: SearchKind, n: usize, b: usize) -> Box<dyn SearchDriver + Send> {
    match kind {
        SearchKind::BestOfN => Box::new(BestOfN::new(n)),
        SearchKind::BeamSearch => Box::new(BeamSearch::new(n, b)),
        SearchKind::Dvts => Box::new(Dvts::new(n, b)),
        SearchKind::DynamicBranching => Box::new(DynamicBranching::new(n, b)),
        SearchKind::VaryingGranularity => Box::new(VaryingGranularity::new(n, b)),
    }
}

/// Best-of-N: `n` independent chains; no intermediate verification (the
/// outcome reward model scores terminal outputs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BestOfN {
    n: usize,
}

impl BestOfN {
    /// `n` parallel chains.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { n }
    }
}

impl SearchDriver for BestOfN {
    fn name(&self) -> &'static str {
        "best-of-n"
    }

    fn branching(&self) -> usize {
        1
    }

    fn verify_every_step(&self) -> bool {
        false
    }

    fn select(&mut self, frontier: &[ScoredBeam], _ctx: &SelectCtx) -> Vec<(BeamId, usize)> {
        // Every chain continues independently until it terminates.
        frontier.iter().map(|s| (s.id, 1)).collect()
    }
}

/// Standard beam search: keep the global top `n/b`, expand each into `b`
/// children (Hugging Face `search-and-learn` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamSearch {
    n: usize,
    b: usize,
}

impl BeamSearch {
    /// Beam budget `n`, branching factor `b`.
    pub fn new(n: usize, b: usize) -> Self {
        assert!(n > 0 && b > 0, "n and b must be positive");
        Self { n, b }
    }
}

impl SearchDriver for BeamSearch {
    fn name(&self) -> &'static str {
        "beam-search"
    }

    fn branching(&self) -> usize {
        self.b
    }

    fn select(&mut self, frontier: &[ScoredBeam], _ctx: &SelectCtx) -> Vec<(BeamId, usize)> {
        let keep = (self.n / self.b).max(1).min(frontier.len());
        ranked(frontier)[..keep]
            .iter()
            .map(|s| (s.id, self.b))
            .collect()
    }
}

/// Diverse Verifier Tree Search: the frontier is partitioned into the
/// `n/b` independent subtrees rooted at the initial expansion; the best
/// beam of each subtree survives and expands into `b` children
/// (Sec. 3.1, "Diverse Selection").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dvts {
    n: usize,
    b: usize,
}

impl Dvts {
    /// Beam budget `n`, per-subtree width `b`.
    pub fn new(n: usize, b: usize) -> Self {
        assert!(n > 0 && b > 0, "n and b must be positive");
        Self { n, b }
    }
}

impl SearchDriver for Dvts {
    fn name(&self) -> &'static str {
        "dvts"
    }

    fn branching(&self) -> usize {
        self.b
    }

    fn select(&mut self, frontier: &[ScoredBeam], _ctx: &SelectCtx) -> Vec<(BeamId, usize)> {
        use std::collections::HashMap;
        // The n initial beams form n/b independent subtrees of width b;
        // subtree ids inherited from the initial expansion are grouped
        // accordingly.
        let group = |s: &ScoredBeam| s.subtree / self.b as u32;
        let mut best: HashMap<u32, &ScoredBeam> = HashMap::new();
        for s in frontier {
            let entry = best.entry(group(s)).or_insert(s);
            if s.score > entry.score || (s.score == entry.score && s.id < entry.id) {
                *entry = s;
            }
        }
        let mut picks: Vec<(BeamId, usize)> = best.into_values().map(|s| (s.id, self.b)).collect();
        picks.sort_by_key(|&(id, _)| id);
        picks
    }
}

/// Dynamic branching: the `n`-beam budget is apportioned across surviving
/// beams proportionally to their verifier scores (largest-remainder
/// method), so strong beams branch wider and weak ones are pruned
/// (Sec. 3.1, "Dynamic Branching"; Fig. 11 caption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicBranching {
    n: usize,
    b: usize,
}

impl DynamicBranching {
    /// Beam budget `n`; `b` is the *average* branching factor, which sets
    /// how many parents survive (`n/b`).
    pub fn new(n: usize, b: usize) -> Self {
        assert!(n > 0 && b > 0, "n and b must be positive");
        Self { n, b }
    }
}

impl SearchDriver for DynamicBranching {
    fn name(&self) -> &'static str {
        "dynamic-branching"
    }

    fn branching(&self) -> usize {
        self.b
    }

    fn select(&mut self, frontier: &[ScoredBeam], _ctx: &SelectCtx) -> Vec<(BeamId, usize)> {
        let keep = (self.n / self.b).max(1).min(frontier.len());
        let survivors = &ranked(frontier)[..keep];
        let total: f64 = survivors.iter().map(|s| s.score.max(1e-6)).sum();
        // Largest-remainder apportionment of n children.
        let quotas: Vec<f64> = survivors
            .iter()
            .map(|s| s.score.max(1e-6) / total * self.n as f64)
            .collect();
        let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let mut assigned: usize = counts.iter().sum();
        let mut order: Vec<usize> = (0..survivors.len()).collect();
        order.sort_by(|&x, &y| {
            let rx = quotas[x] - quotas[x].floor();
            let ry = quotas[y] - quotas[y].floor();
            ry.partial_cmp(&rx).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut i = 0;
        while assigned < self.n && i < order.len() {
            counts[order[i]] += 1;
            assigned += 1;
            i += 1;
        }
        survivors
            .iter()
            .zip(counts)
            .filter(|(_, c)| *c > 0)
            .map(|(s, c)| (s.id, c))
            .collect()
    }
}

/// Varying Granularity: beam search with a depth-dependent cap on the
/// thinking-step length — short, tightly verified steps early, long steps
/// later (Fig. 11 caption: 64 tokens for the first 3 steps, 2048 after).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaryingGranularity {
    inner: BeamSearch,
    early_cap: u64,
    late_cap: u64,
    switch_depth: u32,
}

impl VaryingGranularity {
    /// Beam budget `n`, branching factor `b`, with the paper's default
    /// granularity schedule.
    pub fn new(n: usize, b: usize) -> Self {
        Self {
            inner: BeamSearch::new(n, b),
            early_cap: 64,
            late_cap: 2048,
            switch_depth: 3,
        }
    }

    /// Customize the granularity schedule.
    pub fn with_schedule(mut self, early_cap: u64, late_cap: u64, switch_depth: u32) -> Self {
        self.early_cap = early_cap;
        self.late_cap = late_cap;
        self.switch_depth = switch_depth;
        self
    }
}

impl SearchDriver for VaryingGranularity {
    fn name(&self) -> &'static str {
        "varying-granularity"
    }

    fn branching(&self) -> usize {
        self.inner.branching()
    }

    fn step_token_cap(&self, depth: u32) -> Option<u64> {
        Some(if depth <= self.switch_depth {
            self.early_cap
        } else {
            self.late_cap
        })
    }

    fn select(&mut self, frontier: &[ScoredBeam], ctx: &SelectCtx) -> Vec<(BeamId, usize)> {
        self.inner.select(frontier, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beam(id: u32, score: f64, subtree: u32) -> ScoredBeam {
        ScoredBeam {
            id: BeamId(id),
            score,
            depth: 1,
            terminal: false,
            subtree,
            path_tokens: 100,
        }
    }

    #[test]
    fn beam_search_keeps_top_n_over_b() {
        let mut d = BeamSearch::new(8, 4);
        let frontier: Vec<ScoredBeam> = (0..8).map(|i| beam(i, i as f64 / 10.0, 0)).collect();
        let picks = d.select(&frontier, &ctx());
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0].0, BeamId(7));
        assert_eq!(picks[1].0, BeamId(6));
        assert!(picks.iter().all(|&(_, c)| c == 4));
    }

    fn ctx() -> SelectCtx {
        SelectCtx {
            iteration: 0,
            n_target: 8,
            completed: 0,
        }
    }

    #[test]
    fn beam_search_tie_breaks_by_id() {
        let mut d = BeamSearch::new(4, 4);
        let frontier = vec![beam(3, 0.5, 0), beam(1, 0.5, 0)];
        let picks = d.select(&frontier, &ctx());
        assert_eq!(picks[0].0, BeamId(1));
    }

    #[test]
    fn best_of_n_keeps_everything_with_single_children() {
        let mut d = BestOfN::new(8);
        let frontier: Vec<ScoredBeam> = (0..8).map(|i| beam(i, 0.1, i)).collect();
        let picks = d.select(&frontier, &ctx());
        assert_eq!(picks.len(), 8);
        assert!(picks.iter().all(|&(_, c)| c == 1));
        assert!(!d.verify_every_step());
        assert_eq!(d.branching(), 1);
    }

    #[test]
    fn dvts_selects_one_per_subtree_group() {
        let mut d = Dvts::new(8, 4);
        // Initial subtrees 0..7 fold into groups {0..3} and {4..7}.
        let frontier = vec![
            beam(0, 0.9, 0),
            beam(1, 0.2, 1),
            beam(2, 0.4, 4),
            beam(3, 0.8, 5),
        ];
        let picks = d.select(&frontier, &ctx());
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0].0, BeamId(0));
        assert_eq!(picks[1].0, BeamId(3));
        assert!(picks.iter().all(|&(_, c)| c == 4));
    }

    #[test]
    fn dvts_preserves_diversity_against_global_ranking() {
        // Group 1's best (0.3) survives even though group 0 holds the
        // global top-2.
        let mut d = Dvts::new(8, 4);
        let frontier = vec![beam(0, 0.9, 0), beam(1, 0.8, 1), beam(2, 0.3, 6)];
        let picks = d.select(&frontier, &ctx());
        let ids: Vec<u32> = picks.iter().map(|&(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn dynamic_branching_apportions_exactly_n() {
        let mut d = DynamicBranching::new(16, 4);
        let frontier = vec![
            beam(0, 0.9, 0),
            beam(1, 0.5, 0),
            beam(2, 0.4, 0),
            beam(3, 0.1, 0),
            beam(4, 0.05, 0),
        ];
        let picks = d.select(&frontier, &ctx());
        let total: usize = picks.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 16);
        // Highest scoring survivor branches widest.
        let by_id: std::collections::HashMap<u32, usize> =
            picks.iter().map(|&(id, c)| (id.0, c)).collect();
        let max = picks.iter().map(|&(_, c)| c).max().unwrap();
        assert_eq!(by_id.get(&0), Some(&max));
    }

    #[test]
    fn dynamic_branching_prunes_to_survivor_count() {
        let mut d = DynamicBranching::new(8, 4);
        let frontier: Vec<ScoredBeam> = (0..8).map(|i| beam(i, 0.5, 0)).collect();
        let picks = d.select(&frontier, &ctx());
        assert_eq!(picks.len(), 2, "n/b survivors");
    }

    #[test]
    fn varying_granularity_caps_by_depth() {
        let d = VaryingGranularity::new(8, 4);
        assert_eq!(d.step_token_cap(1), Some(64));
        assert_eq!(d.step_token_cap(3), Some(64));
        assert_eq!(d.step_token_cap(4), Some(2048));
        let custom = VaryingGranularity::new(8, 4).with_schedule(32, 512, 1);
        assert_eq!(custom.step_token_cap(1), Some(32));
        assert_eq!(custom.step_token_cap(2), Some(512));
    }

    #[test]
    fn factory_builds_all_kinds() {
        for kind in SearchKind::all() {
            let d = make_driver(kind, 16, 4);
            assert!(!d.name().is_empty());
            assert!(d.branching() >= 1);
        }
        assert_eq!(SearchKind::Dvts.to_string(), "DVTS");
    }

    #[test]
    fn empty_frontier_yields_empty_selection() {
        for kind in SearchKind::all() {
            let mut d = make_driver(kind, 8, 4);
            assert!(d.select(&[], &ctx()).is_empty(), "{kind}");
        }
    }
}
