//! Verifier-guided TTS search algorithms.
//!
//! The paper's pattern analysis (Sec. 3.1, Fig. 2) shows that mainstream
//! TTS methods are all instances of one generation–verification loop,
//! differing only in their selection heuristics. This crate implements
//! the five variants the paper evaluates as [`SearchDriver`]s for the
//! serving engine:
//!
//! * [`BestOfN`] — independent parallel chains, outcome-scored only
//!   (no intermediate verification).
//! * [`BeamSearch`] — global top-K selection with a static branching
//!   factor (the paper's representative workload).
//! * [`Dvts`] — diverse verifier tree search: the top candidate of each
//!   independent subtree survives, preserving diversity.
//! * [`DynamicBranching`] — the branching factor adapts to verifier
//!   scores (ETS-style).
//! * [`VaryingGranularity`] — beam search whose verification granularity
//!   (max step tokens) changes with depth (VG-Search-style).
//!
//! [`SearchKind`] enumerates them for sweep harnesses.
//!
//! # Example
//!
//! ```
//! use ftts_search::{SearchKind, make_driver};
//! let mut driver = make_driver(SearchKind::BeamSearch, 16, 4);
//! assert_eq!(driver.branching(), 4);
//! assert_eq!(driver.name(), "beam-search");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithms;

pub use algorithms::{
    make_driver, BeamSearch, BestOfN, Dvts, DynamicBranching, SearchKind, VaryingGranularity,
};
pub use ftts_engine::SearchDriver;
