//! Ignored-by-default probe that prints accuracy calibration numbers.
//! Run with: cargo test -p ftts-search --test calibration_probe -- --ignored --nocapture

use ftts_engine::{Engine, EngineConfig, FifoOrder, ModelPairing, StaticSplitPlanner};
use ftts_hw::GpuDevice;
use ftts_metrics::pass_at_n;
use ftts_search::{make_driver, SearchKind};
use ftts_workload::Dataset;

fn probe(pairing: ModelPairing, dataset: Dataset, kind: SearchKind, n: usize, problems: usize) {
    let mut top1 = 0usize;
    let mut path_correct = 0usize;
    let mut paths = 0usize;
    let mut p1 = 0usize;
    let mut p4 = 0usize;
    let mut latency = 0.0;
    for problem in dataset.problems(problems, 123) {
        let cfg = EngineConfig::baseline(GpuDevice::rtx4090(), pairing.clone());
        let mut eng = Engine::new(cfg, Box::new(FifoOrder), Box::new(StaticSplitPlanner));
        let mut driver = make_driver(kind, n, 4);
        let stats = eng.run(&problem, n, driver.as_mut()).unwrap();
        if stats.top1_correct() {
            top1 += 1;
        }
        path_correct += stats.beams.iter().filter(|b| b.correct).count();
        paths += stats.beams.len();
        if pass_at_n(&stats.candidates(), 1) {
            p1 += 1;
        }
        if pass_at_n(&stats.candidates(), 4) {
            p4 += 1;
        }
        latency += stats.latency();
    }
    println!(
        "{:<22} {:<10} {:<18} n={:<4} top1={:.2} path={:.3} pass@1={:.2} pass@4={:.2} lat={:.1}s",
        pairing.label(),
        dataset.label(),
        kind.label(),
        n,
        top1 as f64 / problems as f64,
        path_correct as f64 / paths.max(1) as f64,
        p1 as f64 / problems as f64,
        p4 as f64 / problems as f64,
        latency / problems as f64,
    );
}

#[test]
#[ignore = "calibration probe; run manually with --nocapture"]
fn print_calibration() {
    for pairing in [
        ModelPairing::pair_1_5b_1_5b(),
        ModelPairing::pair_1_5b_7b(),
        ModelPairing::pair_7b_1_5b(),
    ] {
        for dataset in [Dataset::Aime2024, Dataset::Amc2023] {
            probe(pairing.clone(), dataset, SearchKind::BeamSearch, 16, 30);
        }
    }
    for kind in [
        SearchKind::BestOfN,
        SearchKind::BeamSearch,
        SearchKind::Dvts,
    ] {
        probe(ModelPairing::pair_1_5b_7b(), Dataset::Math500, kind, 16, 30);
    }
    for kind in [
        SearchKind::BestOfN,
        SearchKind::BeamSearch,
        SearchKind::Dvts,
    ] {
        probe(ModelPairing::pair_1_5b_7b(), Dataset::Math500, kind, 64, 30);
    }
}
