//! Cross-algorithm quality checks reproducing the *shape* of the paper's
//! motivation study (Fig. 3 left): verifier-guided tree search beats
//! Best-of-N in accuracy, and search structure affects latency.

use ftts_engine::{Engine, EngineConfig, FifoOrder, ModelPairing, StaticSplitPlanner};
use ftts_hw::GpuDevice;
use ftts_metrics::pass_at_n;
use ftts_search::{make_driver, SearchKind};
use ftts_workload::Dataset;

struct Eval {
    accuracy: f64,
    mean_latency: f64,
    pass_at_4: f64,
}

fn evaluate(kind: SearchKind, dataset: Dataset, n_problems: usize, n: usize) -> Eval {
    let mut correct = 0usize;
    let mut pass4 = 0usize;
    let mut latency = 0.0;
    for problem in dataset.problems(n_problems, 77) {
        let cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_7b());
        let mut eng = Engine::new(cfg, Box::new(FifoOrder), Box::new(StaticSplitPlanner));
        let mut driver = make_driver(kind, n, 4);
        let stats = eng.run(&problem, n, driver.as_mut()).unwrap();
        if stats.top1_correct() {
            correct += 1;
        }
        if pass_at_n(&stats.candidates(), 4) {
            pass4 += 1;
        }
        latency += stats.latency();
    }
    Eval {
        accuracy: correct as f64 / n_problems as f64,
        mean_latency: latency / n_problems as f64,
        pass_at_4: pass4 as f64 / n_problems as f64,
    }
}

#[test]
fn verifier_guided_search_beats_best_of_n() {
    let problems = 40;
    let bon = evaluate(SearchKind::BestOfN, Dataset::Math500, problems, 16);
    let beam = evaluate(SearchKind::BeamSearch, Dataset::Math500, problems, 16);
    let dvts = evaluate(SearchKind::Dvts, Dataset::Math500, problems, 16);
    // Fig. 3 (left): BoN trails the verifier-guided methods.
    assert!(
        beam.accuracy > bon.accuracy,
        "beam {} must beat BoN {}",
        beam.accuracy,
        bon.accuracy
    );
    assert!(
        dvts.accuracy > bon.accuracy,
        "DVTS {} must beat BoN {}",
        dvts.accuracy,
        bon.accuracy
    );
    // BoN skips intermediate verification, so it is fastest.
    assert!(bon.mean_latency < beam.mean_latency);
}

#[test]
fn pass_at_n_exceeds_top1_everywhere() {
    let beam = evaluate(SearchKind::BeamSearch, Dataset::Math500, 30, 16);
    assert!(
        beam.pass_at_4 >= beam.accuracy,
        "pass@4 is a weaker criterion"
    );
}

#[test]
fn all_algorithms_complete_on_all_datasets() {
    for kind in SearchKind::all() {
        for dataset in [Dataset::Aime2024, Dataset::HumanEval] {
            let problem = dataset.problems(1, 5)[0];
            let cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
            let mut eng = Engine::new(cfg, Box::new(FifoOrder), Box::new(StaticSplitPlanner));
            let mut driver = make_driver(kind, 8, 4);
            let stats = eng.run(&problem, 8, driver.as_mut()).unwrap();
            assert!(
                !stats.beams.is_empty(),
                "{kind} on {dataset} produced no beams"
            );
            assert!(stats.latency() > 0.0);
        }
    }
}

#[test]
fn harder_dataset_scores_lower() {
    let amc = evaluate(SearchKind::BeamSearch, Dataset::Amc2023, 30, 16);
    let aime = evaluate(SearchKind::BeamSearch, Dataset::Aime2024, 30, 16);
    assert!(
        amc.accuracy > aime.accuracy,
        "AMC {} should be easier than AIME {}",
        amc.accuracy,
        aime.accuracy
    );
}
