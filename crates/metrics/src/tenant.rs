//! Per-tenant rollups of a served request stream.
//!
//! Multi-tenant serving bills every request to a tenant; isolation
//! claims ("the noisy tenant stayed inside its cap", "the victim's
//! deadline hit rate improved") are statements about *per-tenant*
//! slices of the stream, not the aggregate. [`TenantRollup`] groups a
//! tagged record stream by tenant and summarizes each slice with the
//! same [`StreamSummary`] the aggregate uses, so per-tenant and
//! system-wide numbers are always computed by one code path.

use serde::{Deserialize, Serialize};

use crate::stream::{StreamRecord, StreamSummary};

/// One tenant's slice of a served stream: the tenant id and the
/// [`StreamSummary`] over exactly its requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantRollup {
    /// The tenant this row describes.
    pub tenant: u32,
    /// Requests billed to the tenant.
    pub requests: usize,
    /// Stream summary over the tenant's requests only. Makespan (and
    /// the goodputs derived from it) span the *tenant's* first arrival
    /// to its last completion — a tenant idle for most of the run is
    /// not diluted by the rest of the stream.
    pub summary: StreamSummary,
}

impl TenantRollup {
    /// Group `records` (each tagged with the tenant it bills to) by
    /// tenant and summarize every slice, in ascending tenant order.
    /// Records keep their relative order within a slice.
    pub fn of(records: &[(u32, StreamRecord)]) -> Vec<TenantRollup> {
        let mut tenants: Vec<u32> = records.iter().map(|&(t, _)| t).collect();
        tenants.sort_unstable();
        tenants.dedup();
        tenants
            .into_iter()
            .map(|tenant| {
                let slice: Vec<StreamRecord> = records
                    .iter()
                    .filter(|&&(t, _)| t == tenant)
                    .map(|&(_, r)| r)
                    .collect();
                TenantRollup {
                    tenant,
                    requests: slice.len(),
                    summary: StreamSummary::of(&slice),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SloClass;

    fn rec(arrived: f64, finished: f64, tokens: u64, completed: bool) -> StreamRecord {
        StreamRecord {
            arrived_at: arrived,
            finished_at: finished,
            queue_delay: 0.0,
            accepted_tokens: tokens,
            generator_secs: 1.0,
            verifier_secs: 0.5,
            slo: SloClass::Standard,
            deadline: f64::INFINITY,
            completed,
        }
    }

    #[test]
    fn rollup_groups_by_tenant_in_ascending_order() {
        let rows = TenantRollup::of(&[
            (7, rec(0.0, 4.0, 100, true)),
            (0, rec(1.0, 3.0, 50, true)),
            (7, rec(2.0, 6.0, 100, true)),
            (0, rec(2.0, 5.0, 50, false)),
        ]);
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].tenant, rows[0].requests), (0, 2));
        assert_eq!((rows[1].tenant, rows[1].requests), (7, 2));
        assert_eq!(rows[0].summary.total_accepted_tokens, 100);
        assert_eq!(rows[0].summary.shed, 1);
        assert_eq!(rows[1].summary.total_accepted_tokens, 200);
        assert_eq!(rows[1].summary.shed, 0);
    }

    #[test]
    fn per_tenant_makespan_is_the_tenants_own_window() {
        // Tenant 1 is active only over [10, 14]; its goodput must be
        // computed over those 4 seconds, not the 14-second stream.
        let rows = TenantRollup::of(&[
            (0, rec(0.0, 2.0, 10, true)),
            (1, rec(10.0, 14.0, 400, true)),
        ]);
        assert_eq!(rows[1].summary.makespan, 4.0);
        assert_eq!(rows[1].summary.stream_goodput, 100.0);
    }

    #[test]
    fn empty_stream_rolls_up_to_nothing() {
        assert!(TenantRollup::of(&[]).is_empty());
    }
}
