//! Device-timeline occupancy statistics.
//!
//! The global device timeline (`ftts_core::timeline`) records every
//! kernel launch — decode chunks, verifier prefills, swap transfers —
//! as a costed segment on one per-device clock. [`TimelineOccupancy`]
//! is the roll-up it reports per run: how much wall-clock the device
//! spent busy versus idle, how the busy time splits by kernel kind,
//! how much retroactive contention stretch was applied, and how deep
//! the overlap got.

use serde::{Deserialize, Serialize};

/// Roll-up of one device timeline: per-kind busy sums, the overlap-aware
/// busy union, and the retroactive stretch total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimelineOccupancy {
    /// Wall-clock span covered by the timeline: first segment start to
    /// last segment end, seconds. Zero for an empty timeline.
    pub span_secs: f64,
    /// Union of all segment intervals — seconds the device had at least
    /// one kernel in flight. Always `<= span_secs`; overlapping
    /// segments never double-count here.
    pub busy_secs: f64,
    /// Summed duration of decode segments (overlaps counted per
    /// segment).
    pub decode_secs: f64,
    /// Summed duration of verifier-prefill segments.
    pub verify_secs: f64,
    /// Summed duration of swap/PCIe-transfer segments.
    pub swap_secs: f64,
    /// Seconds of retroactive contention stretch applied to segments
    /// already on the timeline by later overlapping launches.
    pub stretch_secs: f64,
    /// Segments recorded.
    pub segments: u64,
    /// Peak number of simultaneously in-flight segments.
    pub max_concurrency: u32,
}

impl TimelineOccupancy {
    /// Seconds the device sat with no kernel in flight inside the span.
    pub fn idle_secs(&self) -> f64 {
        (self.span_secs - self.busy_secs).max(0.0)
    }

    /// Busy fraction of the span (`0.0` for an empty timeline).
    pub fn utilization(&self) -> f64 {
        if self.span_secs > 0.0 {
            self.busy_secs / self.span_secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        let o = TimelineOccupancy::default();
        assert_eq!(o.span_secs, 0.0);
        assert_eq!(o.utilization(), 0.0);
        assert_eq!(o.idle_secs(), 0.0);
    }

    #[test]
    fn utilization_is_busy_over_span() {
        let o = TimelineOccupancy {
            span_secs: 10.0,
            busy_secs: 7.5,
            ..Default::default()
        };
        assert_eq!(o.utilization(), 0.75);
        assert_eq!(o.idle_secs(), 2.5);
    }
}
