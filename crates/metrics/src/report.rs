//! Plain-text tables for the figure-regeneration harnesses.

/// A fixed-width text table: the benches print one per paper figure.
///
/// # Example
///
/// ```
/// use ftts_metrics::Table;
/// let mut t = Table::new(vec!["n", "baseline", "fasttts", "speedup"]);
/// t.row(vec!["8".into(), "12.1".into(), "25.3".into(), "2.09x".into()]);
/// let text = t.render();
/// assert!(text.contains("speedup"));
/// assert!(text.contains("2.09x"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to an aligned ASCII string.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:<w$}"));
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for r in &self.rows {
            render_row(&mut out, r);
        }
        out
    }

    /// Render and print to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Format a float with `prec` decimals (helper for bench rows).
pub fn fmt(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".to_string(), "1".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header and row should be the same width per column.
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".to_string()]);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".to_string()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_controls_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 0), "2");
    }
}
