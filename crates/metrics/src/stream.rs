//! Stream-level (multi-request) serving metrics.
//!
//! Per-request Precise Goodput measures one request in isolation; under
//! request-level batching the interesting quantity is the *system*
//! perspective: how much accepted work the device delivers per second
//! of wall time while many requests contend for it, and what latency
//! distribution the contention produces.

use serde::{Deserialize, Serialize};

use crate::summary::Summary;

/// Service-level-objective class of a request. Classes differ in how
/// tight their deadlines are and in how aggressively a serving layer may
/// shrink their test-time-scaling budget (sample width) under pressure
/// before resorting to shedding load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SloClass {
    /// User-facing requests with tight deadlines; degraded early so they
    /// still finish in time.
    Interactive,
    /// The default class: moderate deadlines, moderate degradation.
    #[default]
    Standard,
    /// Throughput-oriented background work with loose (or no) deadlines;
    /// last to degrade, first to wait.
    Batch,
}

impl SloClass {
    /// Every class, in fixed reporting order.
    pub const ALL: [SloClass; 3] = [SloClass::Interactive, SloClass::Standard, SloClass::Batch];

    /// Stable index into per-class arrays (reporting order).
    pub fn index(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }
}

/// The slice of one served request a stream summary needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Arrival time, seconds since stream start.
    pub arrived_at: f64,
    /// Completion time, seconds since stream start. For a shed request
    /// this is the cancellation instant.
    pub finished_at: f64,
    /// Seconds queued before first admission.
    pub queue_delay: f64,
    /// Accepted (completed-beam) tokens generated for the request.
    pub accepted_tokens: u64,
    /// Seconds the request spent in generator decode (plus recompute).
    pub generator_secs: f64,
    /// Seconds of verifier prefill *attributed* to the request. Under
    /// fused cross-request sweeps each participant is attributed only
    /// its share of the shared kernel, so summing this across records
    /// equals the device's verifier busy time — never a multiple of it.
    pub verifier_secs: f64,
    /// SLO class the request arrived with.
    pub slo: SloClass,
    /// Absolute deadline, seconds since stream start
    /// (`f64::INFINITY` when the request has none).
    pub deadline: f64,
    /// Whether the request ran to completion. `false` means it was shed:
    /// rejected at admission or cancelled by deadline enforcement.
    pub completed: bool,
}

impl StreamRecord {
    /// Arrival-to-completion latency.
    pub fn total_latency(&self) -> f64 {
        self.finished_at - self.arrived_at
    }

    /// Whether the request missed its SLO: shed, or finished past its
    /// deadline.
    pub fn deadline_missed(&self) -> bool {
        !self.completed || self.finished_at > self.deadline
    }
}

/// Per-SLO-class slice of a [`StreamSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// The class this row describes.
    pub class: SloClass,
    /// Requests that arrived with this class.
    pub requests: usize,
    /// Requests that ran to completion (not shed).
    pub completed: usize,
    /// Requests that missed their deadline (shed ones included).
    pub deadline_misses: usize,
    /// Requests shed (rejected or cancelled) before completion.
    pub shed: usize,
    /// Median arrival-to-completion latency over completed requests.
    pub latency_p50: f64,
    /// 99th-percentile latency over completed requests.
    pub latency_p99: f64,
}

impl ClassSummary {
    fn empty(class: SloClass) -> Self {
        Self {
            class,
            requests: 0,
            completed: 0,
            deadline_misses: 0,
            shed: 0,
            latency_p50: 0.0,
            latency_p99: 0.0,
        }
    }
}

/// Aggregate view of one served request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Requests served.
    pub requests: usize,
    /// First arrival to last completion, seconds.
    pub makespan: f64,
    /// Total accepted tokens across all requests.
    pub total_accepted_tokens: u64,
    /// System goodput: accepted tokens per second of makespan.
    pub stream_goodput: f64,
    /// Arrival-to-completion latency distribution.
    pub latency: Summary,
    /// Queueing-delay distribution.
    pub queue_delay: Summary,
    /// Accepted tokens per second of (attributed) generator busy time —
    /// how hard the decode phase worked for the tokens that survived.
    pub generator_goodput: f64,
    /// Accepted tokens per second of (attributed) verifier busy time.
    /// Fused verifier sweeps raise this directly: the same accepted
    /// tokens cost fewer shared-kernel seconds.
    pub verifier_goodput: f64,
    /// Mean sequences per verifier prefill sweep (0 when the serving
    /// layer does not track sweeps — set via
    /// [`StreamSummary::with_verifier_occupancy`]). Cross-request
    /// fusion pushes this above one request's batch size.
    pub verifier_occupancy: f64,
    /// Requests that missed their deadline (shed ones included).
    pub deadline_misses: usize,
    /// Requests shed: rejected at admission or cancelled by deadline
    /// enforcement, i.e. never completed.
    pub shed: usize,
    /// Fraction of requests that completed within their deadline.
    /// 1.0 for a stream with no deadlines.
    pub deadline_hit_rate: f64,
    /// SLO goodput: accepted tokens of deadline-hitting requests per
    /// second of makespan — work delivered late (or never) does not
    /// count. Equals `stream_goodput` when nothing misses.
    pub slo_goodput: f64,
    /// Warm admissions served from the host KV tier's prefix store
    /// (0 when the serving layer runs without a tier — set via
    /// [`StreamSummary::with_kv_tier`]).
    pub kv_tier_hits: u64,
    /// Shared prefixes demoted (dropped from host RAM) by the tier's
    /// hotness policy under capacity pressure.
    pub kv_tier_demotions: u64,
    /// Per-SLO-class breakdown, indexed by [`SloClass::index`].
    pub per_class: [ClassSummary; 3],
}

impl StreamSummary {
    /// Summarize a stream. Returns an all-zero summary for no requests.
    pub fn of(records: &[StreamRecord]) -> Self {
        if records.is_empty() {
            return Self {
                requests: 0,
                makespan: 0.0,
                total_accepted_tokens: 0,
                stream_goodput: 0.0,
                latency: Summary::of(&[]),
                queue_delay: Summary::of(&[]),
                generator_goodput: 0.0,
                verifier_goodput: 0.0,
                verifier_occupancy: 0.0,
                deadline_misses: 0,
                shed: 0,
                deadline_hit_rate: 1.0,
                slo_goodput: 0.0,
                kv_tier_hits: 0,
                kv_tier_demotions: 0,
                per_class: SloClass::ALL.map(ClassSummary::empty),
            };
        }
        let first = records
            .iter()
            .map(|r| r.arrived_at)
            .fold(f64::INFINITY, f64::min);
        let last = records.iter().map(|r| r.finished_at).fold(0.0f64, f64::max);
        let makespan = (last - first).max(0.0);
        let tokens: u64 = records.iter().map(|r| r.accepted_tokens).sum();
        let latencies: Vec<f64> = records.iter().map(|r| r.total_latency()).collect();
        let delays: Vec<f64> = records.iter().map(|r| r.queue_delay).collect();
        let gen_secs: f64 = records.iter().map(|r| r.generator_secs).sum();
        let ver_secs: f64 = records.iter().map(|r| r.verifier_secs).sum();
        let per_phase = |secs: f64| {
            if secs > 0.0 {
                tokens as f64 / secs
            } else {
                0.0
            }
        };
        let misses = records.iter().filter(|r| r.deadline_missed()).count();
        let shed = records.iter().filter(|r| !r.completed).count();
        let slo_tokens: u64 = records
            .iter()
            .filter(|r| !r.deadline_missed())
            .map(|r| r.accepted_tokens)
            .sum();
        let per_class = SloClass::ALL.map(|class| {
            let mut row = ClassSummary::empty(class);
            let mut done: Vec<f64> = Vec::new();
            for r in records.iter().filter(|r| r.slo == class) {
                row.requests += 1;
                if r.completed {
                    row.completed += 1;
                    done.push(r.total_latency());
                } else {
                    row.shed += 1;
                }
                if r.deadline_missed() {
                    row.deadline_misses += 1;
                }
            }
            let lat = Summary::of(&done);
            row.latency_p50 = lat.p50;
            row.latency_p99 = lat.p99;
            row
        });
        Self {
            requests: records.len(),
            makespan,
            total_accepted_tokens: tokens,
            stream_goodput: if makespan > 0.0 {
                tokens as f64 / makespan
            } else {
                0.0
            },
            latency: Summary::of(&latencies),
            queue_delay: Summary::of(&delays),
            generator_goodput: per_phase(gen_secs),
            verifier_goodput: per_phase(ver_secs),
            verifier_occupancy: 0.0,
            deadline_misses: misses,
            shed,
            deadline_hit_rate: (records.len() - misses) as f64 / records.len() as f64,
            slo_goodput: if makespan > 0.0 {
                slo_tokens as f64 / makespan
            } else {
                0.0
            },
            kv_tier_hits: 0,
            kv_tier_demotions: 0,
            per_class,
        }
    }

    /// Attach the mean verifier-sweep occupancy (sequences per sweep)
    /// measured by the serving layer.
    pub fn with_verifier_occupancy(mut self, occupancy: f64) -> Self {
        self.verifier_occupancy = occupancy;
        self
    }

    /// Attach host-KV-tier counters (warm prefix hits and hotness
    /// demotions) measured by the serving layer.
    pub fn with_kv_tier(mut self, hits: u64, demotions: u64) -> Self {
        self.kv_tier_hits = hits;
        self.kv_tier_demotions = demotions;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrived: f64, finished: f64, queued: f64, tokens: u64) -> StreamRecord {
        StreamRecord {
            arrived_at: arrived,
            finished_at: finished,
            queue_delay: queued,
            accepted_tokens: tokens,
            generator_secs: (finished - arrived) * 0.5,
            verifier_secs: (finished - arrived) * 0.25,
            slo: SloClass::Standard,
            deadline: f64::INFINITY,
            completed: true,
        }
    }

    #[test]
    fn empty_stream_is_zeroed() {
        let s = StreamSummary::of(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.stream_goodput, 0.0);
        assert_eq!(s.makespan, 0.0);
    }

    #[test]
    fn goodput_is_tokens_over_makespan() {
        let s = StreamSummary::of(&[rec(0.0, 4.0, 0.0, 300), rec(1.0, 6.0, 2.0, 300)]);
        assert_eq!(s.requests, 2);
        assert_eq!(s.makespan, 6.0);
        assert_eq!(s.total_accepted_tokens, 600);
        assert_eq!(s.stream_goodput, 100.0);
        assert_eq!(s.latency.max, 5.0);
        assert_eq!(s.queue_delay.max, 2.0);
    }

    #[test]
    fn zero_makespan_guards_division() {
        let s = StreamSummary::of(&[rec(2.0, 2.0, 0.0, 10)]);
        assert_eq!(s.stream_goodput, 0.0);
        assert_eq!(s.generator_goodput, 0.0, "zero phase time guards too");
        assert_eq!(s.verifier_goodput, 0.0);
    }

    #[test]
    fn per_phase_goodput_uses_attributed_busy_time() {
        // 600 tokens over 2.5 s of generator time and 1.25 s of verifier
        // time across both requests.
        let s = StreamSummary::of(&[rec(0.0, 4.0, 0.0, 300), rec(1.0, 2.0, 0.0, 300)]);
        assert!((s.generator_goodput - 600.0 / 2.5).abs() < 1e-9);
        assert!((s.verifier_goodput - 600.0 / 1.25).abs() < 1e-9);
        assert_eq!(s.verifier_occupancy, 0.0, "unset without a serving layer");
        let s = s.with_verifier_occupancy(24.5);
        assert_eq!(s.verifier_occupancy, 24.5);
    }

    #[test]
    fn no_deadlines_means_perfect_hit_rate() {
        let s = StreamSummary::of(&[rec(0.0, 4.0, 0.0, 100), rec(1.0, 6.0, 0.0, 100)]);
        assert_eq!(s.deadline_misses, 0);
        assert_eq!(s.shed, 0);
        assert_eq!(s.deadline_hit_rate, 1.0);
        assert_eq!(s.slo_goodput, s.stream_goodput);
    }

    #[test]
    fn misses_and_shed_are_attributed_per_class() {
        let mut hit = rec(0.0, 4.0, 0.0, 300);
        hit.slo = SloClass::Interactive;
        hit.deadline = 5.0;
        let mut late = rec(0.0, 8.0, 0.0, 300);
        late.slo = SloClass::Interactive;
        late.deadline = 5.0;
        let mut dropped = rec(1.0, 2.0, 1.0, 0);
        dropped.slo = SloClass::Batch;
        dropped.deadline = 10.0;
        dropped.completed = false;
        let s = StreamSummary::of(&[hit, late, dropped]);
        assert_eq!(s.deadline_misses, 2, "late + shed both miss");
        assert_eq!(s.shed, 1);
        assert!((s.deadline_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        // Only the on-time request's tokens count toward SLO goodput.
        assert!((s.slo_goodput - 300.0 / s.makespan).abs() < 1e-9);
        assert!(s.slo_goodput < s.stream_goodput);
        let inter = s.per_class[SloClass::Interactive.index()];
        assert_eq!(inter.requests, 2);
        assert_eq!(inter.completed, 2);
        assert_eq!(inter.deadline_misses, 1);
        assert_eq!(inter.latency_p50, 4.0);
        assert_eq!(inter.latency_p99, 8.0);
        let batch = s.per_class[SloClass::Batch.index()];
        assert_eq!(batch.requests, 1);
        assert_eq!(batch.shed, 1);
        assert_eq!(batch.deadline_misses, 1);
        assert_eq!(batch.completed, 0);
        assert_eq!(batch.latency_p50, 0.0, "no completions, no percentile");
        assert_eq!(s.per_class[SloClass::Standard.index()].requests, 0);
    }

    #[test]
    fn per_class_percentiles_pin_degenerate_sample_sizes() {
        // Classes with 0/1/2 completions must follow the same
        // nearest-rank rule as `Summary` and the bench shim's
        // `SampleStats`: no completions → 0.0, one completion → both
        // percentiles equal it, two completions → p50 is the lower and
        // p99 the upper.
        let mut one = rec(0.0, 5.0, 0.0, 10);
        one.slo = SloClass::Interactive;
        let two_a = rec(0.0, 3.0, 0.0, 10); // Standard
        let two_b = rec(0.0, 9.0, 0.0, 10); // Standard
        let s = StreamSummary::of(&[one, two_a, two_b]);
        let inter = s.per_class[SloClass::Interactive.index()];
        assert_eq!((inter.latency_p50, inter.latency_p99), (5.0, 5.0));
        let std = s.per_class[SloClass::Standard.index()];
        assert_eq!(std.latency_p50, 3.0, "p50 of two samples is the lower");
        assert_eq!(std.latency_p99, 9.0, "p99 of two samples is the upper");
        let batch = s.per_class[SloClass::Batch.index()];
        assert_eq!((batch.latency_p50, batch.latency_p99), (0.0, 0.0));
    }

    #[test]
    fn with_kv_tier_attaches_counters() {
        let s = StreamSummary::of(&[rec(0.0, 4.0, 0.0, 100)]);
        assert_eq!((s.kv_tier_hits, s.kv_tier_demotions), (0, 0));
        let s = s.with_kv_tier(5, 2);
        assert_eq!((s.kv_tier_hits, s.kv_tier_demotions), (5, 2));
    }

    #[test]
    fn slo_class_reporting_order_is_stable() {
        for (i, c) in SloClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(SloClass::default(), SloClass::Standard);
        assert_eq!(SloClass::Interactive.name(), "interactive");
    }
}
