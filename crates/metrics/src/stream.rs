//! Stream-level (multi-request) serving metrics.
//!
//! Per-request Precise Goodput measures one request in isolation; under
//! request-level batching the interesting quantity is the *system*
//! perspective: how much accepted work the device delivers per second
//! of wall time while many requests contend for it, and what latency
//! distribution the contention produces.

use serde::{Deserialize, Serialize};

use crate::summary::Summary;

/// The slice of one served request a stream summary needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Arrival time, seconds since stream start.
    pub arrived_at: f64,
    /// Completion time, seconds since stream start.
    pub finished_at: f64,
    /// Seconds queued before first admission.
    pub queue_delay: f64,
    /// Accepted (completed-beam) tokens generated for the request.
    pub accepted_tokens: u64,
    /// Seconds the request spent in generator decode (plus recompute).
    pub generator_secs: f64,
    /// Seconds of verifier prefill *attributed* to the request. Under
    /// fused cross-request sweeps each participant is attributed only
    /// its share of the shared kernel, so summing this across records
    /// equals the device's verifier busy time — never a multiple of it.
    pub verifier_secs: f64,
}

impl StreamRecord {
    /// Arrival-to-completion latency.
    pub fn total_latency(&self) -> f64 {
        self.finished_at - self.arrived_at
    }
}

/// Aggregate view of one served request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Requests served.
    pub requests: usize,
    /// First arrival to last completion, seconds.
    pub makespan: f64,
    /// Total accepted tokens across all requests.
    pub total_accepted_tokens: u64,
    /// System goodput: accepted tokens per second of makespan.
    pub stream_goodput: f64,
    /// Arrival-to-completion latency distribution.
    pub latency: Summary,
    /// Queueing-delay distribution.
    pub queue_delay: Summary,
    /// Accepted tokens per second of (attributed) generator busy time —
    /// how hard the decode phase worked for the tokens that survived.
    pub generator_goodput: f64,
    /// Accepted tokens per second of (attributed) verifier busy time.
    /// Fused verifier sweeps raise this directly: the same accepted
    /// tokens cost fewer shared-kernel seconds.
    pub verifier_goodput: f64,
    /// Mean sequences per verifier prefill sweep (0 when the serving
    /// layer does not track sweeps — set via
    /// [`StreamSummary::with_verifier_occupancy`]). Cross-request
    /// fusion pushes this above one request's batch size.
    pub verifier_occupancy: f64,
}

impl StreamSummary {
    /// Summarize a stream. Returns an all-zero summary for no requests.
    pub fn of(records: &[StreamRecord]) -> Self {
        if records.is_empty() {
            return Self {
                requests: 0,
                makespan: 0.0,
                total_accepted_tokens: 0,
                stream_goodput: 0.0,
                latency: Summary::of(&[]),
                queue_delay: Summary::of(&[]),
                generator_goodput: 0.0,
                verifier_goodput: 0.0,
                verifier_occupancy: 0.0,
            };
        }
        let first = records
            .iter()
            .map(|r| r.arrived_at)
            .fold(f64::INFINITY, f64::min);
        let last = records.iter().map(|r| r.finished_at).fold(0.0f64, f64::max);
        let makespan = (last - first).max(0.0);
        let tokens: u64 = records.iter().map(|r| r.accepted_tokens).sum();
        let latencies: Vec<f64> = records.iter().map(|r| r.total_latency()).collect();
        let delays: Vec<f64> = records.iter().map(|r| r.queue_delay).collect();
        let gen_secs: f64 = records.iter().map(|r| r.generator_secs).sum();
        let ver_secs: f64 = records.iter().map(|r| r.verifier_secs).sum();
        let per_phase = |secs: f64| {
            if secs > 0.0 {
                tokens as f64 / secs
            } else {
                0.0
            }
        };
        Self {
            requests: records.len(),
            makespan,
            total_accepted_tokens: tokens,
            stream_goodput: if makespan > 0.0 {
                tokens as f64 / makespan
            } else {
                0.0
            },
            latency: Summary::of(&latencies),
            queue_delay: Summary::of(&delays),
            generator_goodput: per_phase(gen_secs),
            verifier_goodput: per_phase(ver_secs),
            verifier_occupancy: 0.0,
        }
    }

    /// Attach the mean verifier-sweep occupancy (sequences per sweep)
    /// measured by the serving layer.
    pub fn with_verifier_occupancy(mut self, occupancy: f64) -> Self {
        self.verifier_occupancy = occupancy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrived: f64, finished: f64, queued: f64, tokens: u64) -> StreamRecord {
        StreamRecord {
            arrived_at: arrived,
            finished_at: finished,
            queue_delay: queued,
            accepted_tokens: tokens,
            generator_secs: (finished - arrived) * 0.5,
            verifier_secs: (finished - arrived) * 0.25,
        }
    }

    #[test]
    fn empty_stream_is_zeroed() {
        let s = StreamSummary::of(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.stream_goodput, 0.0);
        assert_eq!(s.makespan, 0.0);
    }

    #[test]
    fn goodput_is_tokens_over_makespan() {
        let s = StreamSummary::of(&[rec(0.0, 4.0, 0.0, 300), rec(1.0, 6.0, 2.0, 300)]);
        assert_eq!(s.requests, 2);
        assert_eq!(s.makespan, 6.0);
        assert_eq!(s.total_accepted_tokens, 600);
        assert_eq!(s.stream_goodput, 100.0);
        assert_eq!(s.latency.max, 5.0);
        assert_eq!(s.queue_delay.max, 2.0);
    }

    #[test]
    fn zero_makespan_guards_division() {
        let s = StreamSummary::of(&[rec(2.0, 2.0, 0.0, 10)]);
        assert_eq!(s.stream_goodput, 0.0);
        assert_eq!(s.generator_goodput, 0.0, "zero phase time guards too");
        assert_eq!(s.verifier_goodput, 0.0);
    }

    #[test]
    fn per_phase_goodput_uses_attributed_busy_time() {
        // 600 tokens over 2.5 s of generator time and 1.25 s of verifier
        // time across both requests.
        let s = StreamSummary::of(&[rec(0.0, 4.0, 0.0, 300), rec(1.0, 2.0, 0.0, 300)]);
        assert!((s.generator_goodput - 600.0 / 2.5).abs() < 1e-9);
        assert!((s.verifier_goodput - 600.0 / 1.25).abs() < 1e-9);
        assert_eq!(s.verifier_occupancy, 0.0, "unset without a serving layer");
        let s = s.with_verifier_occupancy(24.5);
        assert_eq!(s.verifier_occupancy, 24.5);
    }
}
