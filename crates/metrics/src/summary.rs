//! Scalar summaries used across the figure harnesses.

use serde::{Deserialize, Serialize};

/// Summary statistics over a sample of f64 values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank) — the SLO tail.
    pub p99: f64,
}

impl Summary {
    /// Summarize a sample. Returns an all-zero summary for empty input.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let rank = |q: f64| -> f64 {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        Self {
            n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            min: sorted[0],
            max: sorted[n - 1],
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        }
    }

    /// Geometric mean of strictly positive values; 0 if any value is
    /// non-positive or the slice is empty. Used for "average speedup"
    /// claims like the paper's 2.2×.
    pub fn geomean(values: &[f64]) -> f64 {
        if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
            return 0.0;
        }
        (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_basics() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn p95_tracks_tail() {
        let values: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&values);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn nearest_rank_pins_degenerate_sample_sizes() {
        // Must agree with the bench shim's `SampleStats` (same
        // `ceil(q·n).clamp(1, n) - 1` nearest-rank index): n = 0 is all
        // zero, n = 1 makes every percentile the sample, n = 2 puts p50
        // on the lower sample (ceil(0.5·2) = 1) and p95/p99 on the
        // upper.
        let none = Summary::of(&[]);
        assert_eq!((none.p50, none.p95, none.p99), (0.0, 0.0, 0.0));
        let one = Summary::of(&[7.0]);
        assert_eq!((one.p50, one.p95, one.p99), (7.0, 7.0, 7.0));
        let two = Summary::of(&[9.0, 3.0]);
        assert_eq!(two.p50, 3.0, "p50 of two samples is the lower");
        assert_eq!(two.p95, 9.0);
        assert_eq!(two.p99, 9.0, "p99 of two samples is the upper");
    }

    #[test]
    fn geomean_of_speedups() {
        let g = Summary::geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(Summary::geomean(&[]), 0.0);
        assert_eq!(Summary::geomean(&[1.0, -2.0]), 0.0);
    }
}
