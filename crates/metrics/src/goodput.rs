//! Precise Goodput (paper Sec. 6.1).

use serde::{Deserialize, Serialize};

/// Outcome of one reasoning beam (one root-to-leaf path that reached a
/// terminal state).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeamOutcome {
    /// Generated tokens along this beam's path (excluding the prompt and
    /// excluding tokens merely *copied* at branch time — copying is not
    /// generation, which is the point of the metric).
    pub tokens: u64,
    /// Seconds from request start until this beam reached its terminal
    /// state.
    pub completion_time: f64,
    /// Final answer extracted from the beam, if any.
    pub answer: Option<u32>,
    /// Final verifier score of the completed path.
    pub score: f64,
    /// Whether the answer matches ground truth.
    pub correct: bool,
}

/// Precise Goodput := average token length per beam / average beam
/// completion time.
///
/// Averaging both numerator and denominator over all beams prevents a
/// single slow straggler from dominating and prevents inflation by
/// collecting many copied paths (paper Sec. 6.1).
///
/// Returns 0 for an empty set.
///
/// # Example
///
/// ```
/// use ftts_metrics::{precise_goodput, BeamOutcome};
/// let beams = vec![
///     BeamOutcome { tokens: 100, completion_time: 2.0, answer: None, score: 0.5, correct: false },
///     BeamOutcome { tokens: 300, completion_time: 6.0, answer: None, score: 0.5, correct: false },
/// ];
/// // avg tokens 200 / avg time 4 s = 50 tok/s
/// assert_eq!(precise_goodput(&beams), 50.0);
/// ```
pub fn precise_goodput(beams: &[BeamOutcome]) -> f64 {
    if beams.is_empty() {
        return 0.0;
    }
    let avg_tokens = beams.iter().map(|b| b.tokens as f64).sum::<f64>() / beams.len() as f64;
    let avg_time = beams.iter().map(|b| b.completion_time).sum::<f64>() / beams.len() as f64;
    if avg_time <= 0.0 {
        return 0.0;
    }
    avg_tokens / avg_time
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beam(tokens: u64, time: f64) -> BeamOutcome {
        BeamOutcome {
            tokens,
            completion_time: time,
            answer: None,
            score: 0.0,
            correct: false,
        }
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(precise_goodput(&[]), 0.0);
    }

    #[test]
    fn single_beam() {
        assert_eq!(precise_goodput(&[beam(500, 10.0)]), 50.0);
    }

    #[test]
    fn robust_to_path_count_inflation() {
        // Duplicating beams (copying at branch time) leaves the metric
        // unchanged — unlike total-token throughput.
        let one = vec![beam(100, 4.0)];
        let many = vec![beam(100, 4.0); 32];
        assert_eq!(precise_goodput(&one), precise_goodput(&many));
    }

    #[test]
    fn straggler_does_not_dominate() {
        let mut beams = vec![beam(100, 1.0); 9];
        beams.push(beam(100, 100.0)); // straggler
        let g = precise_goodput(&beams);
        // avg time = 10.9 s, avg tokens 100 -> ~9.2 tok/s, not 1 tok/s.
        assert!(g > 5.0 && g < 20.0);
    }

    #[test]
    fn zero_time_is_guarded() {
        assert_eq!(precise_goodput(&[beam(10, 0.0)]), 0.0);
    }
}
