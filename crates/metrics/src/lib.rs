//! Evaluation metrics for TTS serving systems.
//!
//! Implements the paper's metrics exactly as defined in Sec. 6.1:
//!
//! * **Precise Goodput** — `avg token length per beam / avg beam
//!   completion time` ([`precise_goodput`]). Robust to straggler paths
//!   and to branch-time text copying, unlike raw throughput.
//! * **Completion latency** — end-to-end time per completed request, with
//!   a generator/verifier breakdown ([`LatencyBreakdown`], Fig. 13).
//! * **Top-1 accuracy** — majority voting over collected answers
//!   ([`top1_majority`], Fig. 14a).
//! * **Pass@N** — whether any of the top-N verifier-ranked candidates is
//!   correct ([`pass_at_n`], Fig. 14b).
//!
//! Plus small reporting utilities ([`Table`], [`Summary`]) used by the
//! figure-regeneration benches.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
mod fleet;
mod goodput;
mod latency;
mod occupancy;
mod report;
mod stream;
mod summary;
mod tenant;

pub use accuracy::{pass_at_n, top1_majority, vote_weighted};
pub use fleet::FleetSummary;
pub use goodput::{precise_goodput, BeamOutcome};
pub use latency::{CompletionRecord, LatencyBreakdown};
pub use occupancy::TimelineOccupancy;
pub use report::{fmt, Table};
pub use stream::{ClassSummary, SloClass, StreamRecord, StreamSummary};
pub use summary::Summary;
pub use tenant::TenantRollup;
