//! Answer-selection metrics (Fig. 14).

use std::collections::HashMap;

/// Majority vote over final answers; ties break toward the answer with
/// the higher total verifier score, then toward the smaller answer id so
/// the result is deterministic.
///
/// Returns `None` when no beam produced an answer.
///
/// # Example
///
/// ```
/// use ftts_metrics::top1_majority;
/// let picked = top1_majority(&[(7, 0.9), (7, 0.2), (3, 0.8)]);
/// assert_eq!(picked, Some(7));
/// ```
pub fn top1_majority(answers: &[(u32, f64)]) -> Option<u32> {
    if answers.is_empty() {
        return None;
    }
    let mut tally: HashMap<u32, (usize, f64)> = HashMap::new();
    for &(a, score) in answers {
        let e = tally.entry(a).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += score;
    }
    tally
        .into_iter()
        .max_by(|(a1, (c1, s1)), (a2, (c2, s2))| {
            c1.cmp(c2)
                .then(s1.partial_cmp(s2).unwrap_or(std::cmp::Ordering::Equal))
                .then(a2.cmp(a1)) // smaller id wins on full tie
        })
        .map(|(a, _)| a)
}

/// Verifier-weighted vote (an alternative selector some TTS systems use):
/// each answer accumulates its beams' scores; the heaviest answer wins.
pub fn vote_weighted(answers: &[(u32, f64)]) -> Option<u32> {
    if answers.is_empty() {
        return None;
    }
    let mut tally: HashMap<u32, f64> = HashMap::new();
    for &(a, score) in answers {
        *tally.entry(a).or_insert(0.0) += score.max(0.0);
    }
    tally
        .into_iter()
        .max_by(|(a1, s1), (a2, s2)| {
            s1.partial_cmp(s2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a2.cmp(a1))
        })
        .map(|(a, _)| a)
}

/// Pass@N: rank candidates by verifier score (descending) and report
/// whether any of the top `n` is correct (paper Sec. 6.3: "the N
/// candidates are selected based on their verifier score").
///
/// # Example
///
/// ```
/// use ftts_metrics::pass_at_n;
/// let c = [(0.9, false), (0.8, true), (0.1, true)];
/// assert!(!pass_at_n(&c, 1));
/// assert!(pass_at_n(&c, 2));
/// ```
pub fn pass_at_n(candidates: &[(f64, bool)], n: usize) -> bool {
    if n == 0 || candidates.is_empty() {
        return false;
    }
    let mut ranked: Vec<&(f64, bool)> = candidates.iter().collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    ranked.iter().take(n).any(|(_, correct)| *correct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_prefers_count_over_score() {
        let picked = top1_majority(&[(1, 0.1), (1, 0.1), (2, 0.99)]);
        assert_eq!(picked, Some(1));
    }

    #[test]
    fn majority_breaks_count_ties_by_score() {
        let picked = top1_majority(&[(1, 0.4), (2, 0.9)]);
        assert_eq!(picked, Some(2));
    }

    #[test]
    fn majority_full_tie_is_deterministic() {
        let picked = top1_majority(&[(5, 0.5), (9, 0.5)]);
        assert_eq!(picked, Some(5));
    }

    #[test]
    fn majority_of_empty_is_none() {
        assert_eq!(top1_majority(&[]), None);
        assert_eq!(vote_weighted(&[]), None);
    }

    #[test]
    fn weighted_vote_prefers_total_score() {
        let picked = vote_weighted(&[(1, 0.3), (1, 0.3), (2, 0.9)]);
        assert_eq!(picked, Some(2));
    }

    #[test]
    fn pass_at_n_ranks_by_score() {
        let c = [(0.2, true), (0.9, false), (0.5, false)];
        assert!(!pass_at_n(&c, 2), "correct answer is ranked last");
        assert!(pass_at_n(&c, 3));
    }

    #[test]
    fn pass_at_n_edge_cases() {
        assert!(!pass_at_n(&[], 5));
        assert!(!pass_at_n(&[(0.5, true)], 0));
        assert!(pass_at_n(&[(0.5, true)], 10), "n larger than pool is fine");
    }

    #[test]
    fn pass_at_n_is_monotone_in_n() {
        let c = [(0.9, false), (0.7, false), (0.6, true), (0.2, false)];
        let mut prev = false;
        for n in 0..=c.len() {
            let now = pass_at_n(&c, n);
            assert!(!prev || now, "pass@N must be monotone");
            prev = now;
        }
    }
}
