//! Completion latency and its phase breakdown (Fig. 13).

use serde::{Deserialize, Serialize};

/// Time attributed to each serving phase over a completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Seconds spent in generator decode (including speculative decode).
    pub generator: f64,
    /// Seconds of verifier prefill *attributed* to this request. For a
    /// sweep fused across requests each participant waits the full
    /// kernel but books only its proportional share here (the rest goes
    /// to `idle`), so summing `verifier` across co-scheduled requests
    /// recovers the device's busy seconds exactly — shared sweeps are
    /// never double-counted.
    pub verifier: f64,
    /// Seconds spent recomputing evicted prefixes (re-prefill on the
    /// generator).
    pub recompute: f64,
    /// Seconds spent on host<->device KV transfers (offloading).
    pub offload: f64,
    /// Seconds spent on host-*tier* KV swaps: warm-prefix swap-in at
    /// admission and parked-KV restore when the tiered store is
    /// enabled. Same physical link as `offload` but attributed
    /// separately so tiered runs expose how much wall-clock the tier's
    /// transfers cost versus the recompute they avoid. Always zero
    /// when the tier is disabled.
    pub swap: f64,
    /// Seconds spent idle: round barriers, co-batch window waits,
    /// preemption gaps, waits for the shared verifier device (serialized
    /// sweeps) and the unattributed remainder of fused verifier sweeps
    /// (always zero for isolated runs).
    pub idle: f64,
    /// The slice of `idle` spent waiting at a lockstep round *barrier* —
    /// the scheduling artifact iteration-granularity (event-driven)
    /// scheduling exists to remove. Always `<= idle` and already counted
    /// inside it, so it does not contribute to [`LatencyBreakdown::total`]
    /// separately. Event-driven schedulers with a finite batching window
    /// never book barrier idle: their waits are window waits (plain
    /// `idle`).
    pub barrier_idle: f64,
    /// The slice of `idle` spent waiting at a *token-join* boundary — a
    /// request decoding in a shared launch pauses at each chunk boundary
    /// until the slowest co-batched chunk lands, so newly arrived
    /// requests can join the decode batch there. Like
    /// [`LatencyBreakdown::barrier_idle`] it is already counted inside
    /// `idle` (always `<= idle`) and does not contribute to
    /// [`LatencyBreakdown::total`] separately. Only the token-join
    /// timeline scheduler books it; iteration-granularity schedulers
    /// leave it zero.
    pub join_wait: f64,
    /// Seconds lost to cross-launch decode contention: a later launch
    /// overlapping this request's in-flight iteration retroactively
    /// stretches its remaining time by the marginal co-batch slowdown.
    /// An own phase that counts toward [`LatencyBreakdown::total`]
    /// (like `fault`), and *not* booked into `generator`, so busy
    /// buckets stay comparable with contention-free scheduling. Only
    /// the global device timeline books it.
    pub contention: f64,
    /// Seconds lost to injected faults: device work wasted by transient
    /// kernel failures (including repeated immediate retries), retry
    /// backoff waits, and thermal-throttle stretch. A sixth phase that
    /// counts toward [`LatencyBreakdown::total`] — and crucially *not*
    /// booked into `generator`/`verifier`, so retried iterations never
    /// double-bill attributed device-busy time (the conservation tests
    /// rely on busy buckets matching the fault-free run exactly).
    pub fault: f64,
}

impl LatencyBreakdown {
    /// Total accounted seconds.
    pub fn total(&self) -> f64 {
        self.generator
            + self.verifier
            + self.recompute
            + self.offload
            + self.swap
            + self.idle
            + self.contention
            + self.fault
    }

    /// Generator-side seconds (decode plus recompute — both run on the
    /// generator worker, matching the unfilled portion of Fig. 13 bars).
    pub fn generator_side(&self) -> f64 {
        self.generator + self.recompute
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &LatencyBreakdown) {
        self.generator += other.generator;
        self.verifier += other.verifier;
        self.recompute += other.recompute;
        self.offload += other.offload;
        self.swap += other.swap;
        self.idle += other.idle;
        self.barrier_idle += other.barrier_idle;
        self.join_wait += other.join_wait;
        self.contention += other.contention;
        self.fault += other.fault;
    }

    /// Element-wise scaling (e.g. averaging over problems).
    pub fn scaled(&self, k: f64) -> LatencyBreakdown {
        LatencyBreakdown {
            generator: self.generator * k,
            verifier: self.verifier * k,
            recompute: self.recompute * k,
            offload: self.offload * k,
            swap: self.swap * k,
            idle: self.idle * k,
            barrier_idle: self.barrier_idle * k,
            join_wait: self.join_wait * k,
            contention: self.contention * k,
            fault: self.fault * k,
        }
    }
}

/// End-to-end record for one completed TTS request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CompletionRecord {
    /// Wall-clock completion latency, seconds (includes queueing).
    pub latency: f64,
    /// Phase breakdown of busy time.
    pub breakdown: LatencyBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let b = LatencyBreakdown {
            generator: 1.0,
            verifier: 2.0,
            recompute: 0.5,
            offload: 0.25,
            swap: 0.5,
            idle: 0.25,
            barrier_idle: 0.25,
            join_wait: 0.1,
            contention: 0.5,
            fault: 0.5,
        };
        assert_eq!(
            b.total(),
            5.5,
            "barrier idle and join wait are slices of idle; contention, fault and swap are their own phases"
        );
        assert_eq!(b.generator_side(), 1.5);
    }

    #[test]
    fn barrier_idle_rides_along_in_accumulate_and_scale() {
        let mut a = LatencyBreakdown {
            idle: 2.0,
            barrier_idle: 1.0,
            join_wait: 0.5,
            ..Default::default()
        };
        a.accumulate(&LatencyBreakdown {
            idle: 1.0,
            barrier_idle: 0.5,
            join_wait: 0.25,
            ..Default::default()
        });
        assert_eq!(a.idle, 3.0);
        assert_eq!(a.barrier_idle, 1.5);
        assert_eq!(a.join_wait, 0.75);
        let half = a.scaled(0.5);
        assert_eq!(half.barrier_idle, 0.75);
        assert_eq!(half.join_wait, 0.375);
        assert!(half.barrier_idle <= half.idle);
        assert!(half.join_wait <= half.idle);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut a = LatencyBreakdown {
            generator: 1.0,
            ..Default::default()
        };
        let b = LatencyBreakdown {
            generator: 2.0,
            verifier: 4.0,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.generator, 3.0);
        assert_eq!(a.verifier, 4.0);
        let half = a.scaled(0.5);
        assert_eq!(half.generator, 1.5);
        assert_eq!(half.verifier, 2.0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(LatencyBreakdown::default().total(), 0.0);
        assert_eq!(CompletionRecord::default().latency, 0.0);
    }
}
