//! Fleet-level serving metrics.
//!
//! A fleet run produces one [`StreamSummary`] per device (each device's
//! own completed/cancelled legs, including wasted crash and hedge-loser
//! work) plus one *fleet-level* summary over per-request records: every
//! original request counted exactly once, attributed to the leg that
//! actually delivered its answer, with migration budgets folded into
//! the latency breakdown. The fleet summary is where cross-fleet
//! deadline-hit rate and SLO goodput live — the numbers failover and
//! hedging exist to defend.

use crate::stream::StreamSummary;

/// Cross-device summary of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Number of devices in the fleet.
    pub devices: usize,
    /// Per-device serving summaries over the legs each device ran
    /// (migrated and hedged duplicates count on the device that ran
    /// them — this is the device-utilization view).
    pub per_device: Vec<StreamSummary>,
    /// Fleet-level summary over per-request records: each original
    /// request exactly once, attributed to its winning leg. Deadline
    /// hit rate, SLO goodput and warm-hit totals here are the fleet's
    /// headline numbers.
    pub fleet: StreamSummary,
    /// Requests that failed over to a surviving replica after a device
    /// crash.
    pub migrations: u64,
    /// Hedged duplicates launched for straggling requests.
    pub hedges_launched: u64,
    /// Hedges whose duplicate finished first (or outlived a crashed
    /// primary) and delivered the answer.
    pub hedges_won: u64,
    /// Hedges cancelled because the primary won (or lost to a crash);
    /// their partial work is reclaimed but the device time is wasted.
    pub hedges_wasted: u64,
    /// Total seconds of device downtime injected by crash events,
    /// summed across devices.
    pub crash_downtime_secs: f64,
}

impl FleetSummary {
    /// Fraction of deadline-bearing requests (fleet-wide) that finished
    /// in time — delegates to the fleet-level stream summary.
    pub fn deadline_hit_rate(&self) -> f64 {
        self.fleet.deadline_hit_rate
    }

    /// Fleet-wide SLO goodput (accepted tokens of in-deadline requests
    /// per second of makespan).
    pub fn slo_goodput(&self) -> f64 {
        self.fleet.slo_goodput
    }
}
