//! Minimal line-JSON reader and string escaping for the wire protocol.
//!
//! The workspace is offline and the vendored `serde` shim has no
//! deserializer, so the server parses incoming frames with this
//! hand-rolled reader. It supports exactly the subset the protocol
//! uses: one object per line built from objects, arrays, numbers,
//! strings, booleans and `null`. Replies are *written* with plain
//! `format!` plus [`escape`] so their field order is fixed by
//! construction — byte-identical replies are part of the determinism
//! contract the replay tests assert.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An object.
    Object(BTreeMap<String, Json>),
    /// An array.
    Array(Vec<Json>),
    /// A number (all JSON numbers read as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parse a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// The string at `key` of an object, if present and a string.
    pub fn str_at(&self, key: &str) -> Option<&str> {
        match self.at(key)? {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number at `key` of an object, if present and numeric.
    pub fn number_at(&self, key: &str) -> Option<f64> {
        match self.at(key)? {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The member at `key` of an object.
    pub fn at(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Number)
                .map_err(|_| format!("invalid number '{s}' at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                out.push(match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    other => return Err(format!("unsupported escape '\\{}'", other as char)),
                });
            }
            _ => out.push(b as char),
        }
    }
    Err("unterminated string".to_string())
}

/// Escape a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_frames() {
        let j = Json::parse(
            r#"{"op":"submit","id":"r-1","tenant":1,"deadline_secs":30.5,"warm":true,"x":null}"#,
        )
        .expect("parse");
        assert_eq!(j.str_at("op"), Some("submit"));
        assert_eq!(j.str_at("id"), Some("r-1"));
        assert_eq!(j.number_at("tenant"), Some(1.0));
        assert_eq!(j.number_at("deadline_secs"), Some(30.5));
        assert_eq!(j.at("warm"), Some(&Json::Bool(true)));
        assert_eq!(j.at("x"), Some(&Json::Null));
        assert_eq!(j.str_at("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{} extra", "{\"a\":}", "[1,", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let original = "line\nwith \"quotes\" and \\slashes\\";
        let wire = format!("{{\"s\":\"{}\"}}", escape(original));
        let parsed = Json::parse(&wire).expect("escaped text parses");
        assert_eq!(parsed.str_at("s"), Some(original));
    }
}
