//! The `ftts-serve` binary.
//!
//! ```text
//! ftts-serve --config serve.toml                         # serve until a shutdown frame
//! ftts-serve --config serve.toml --client-replay t.jsonl # boot, replay, assert, exit
//! ```
//!
//! In replay mode the binary boots the server on the configured
//! address, drives the trace through a real client socket, prints each
//! frame/reply pair, then asserts the exchange was coherent (every
//! frame got a parseable reply and the trace ended in a clean
//! shutdown) and prints a final `RESULT` sentinel — CI fails the smoke
//! job if the sentinel is missing.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::thread;

use ftts_serve::{Json, ServeConfig, ServeRuntime};

fn fail(msg: &str) -> ExitCode {
    eprintln!("ftts-serve: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config_path: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => config_path = it.next().cloned(),
            "--client-replay" => replay_path = it.next().cloned(),
            other => {
                return fail(&format!(
                    "unknown argument '{other}'\nusage: ftts-serve --config <file> [--client-replay <trace>]"
                ));
            }
        }
    }
    let Some(config_path) = config_path else {
        return fail("--config <file> is required");
    };
    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("read {config_path}: {e}")),
    };
    let config = match ServeConfig::parse(&text) {
        Ok(c) => c,
        Err(e) => return fail(&format!("{config_path}: {e}")),
    };
    let listener = match TcpListener::bind(&config.listen) {
        Ok(l) => l,
        Err(e) => return fail(&format!("bind {}: {e}", config.listen)),
    };
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("LISTENING {addr}");
    let runtime = Arc::new(Mutex::new(ServeRuntime::new(config)));

    let Some(replay_path) = replay_path else {
        // Plain serving mode: block until a shutdown frame drains us.
        let connections = ftts_serve::net::serve(&listener, &runtime);
        println!("RESULT ftts-serve: clean shutdown after {connections} connections");
        return ExitCode::SUCCESS;
    };

    // Replay mode: boot the server thread, drive the trace, assert.
    let trace = match std::fs::read_to_string(&replay_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("read {replay_path}: {e}")),
    };
    let server = {
        let runtime = Arc::clone(&runtime);
        thread::spawn(move || ftts_serve::net::serve(&listener, &runtime))
    };
    let replies = match ftts_serve::net::replay(&addr.to_string(), &trace) {
        Ok(r) => r,
        Err(e) => return fail(&format!("replay: {e}")),
    };
    let frames: Vec<&str> = trace
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut ok = 0usize;
    let mut errors = 0usize;
    for (frame, reply) in frames.iter().zip(&replies) {
        println!("-> {frame}");
        println!("<- {reply}");
        let parsed = match Json::parse(reply) {
            Ok(p) => p,
            Err(e) => return fail(&format!("unparseable reply '{reply}': {e}")),
        };
        match parsed.at("ok") {
            Some(Json::Bool(true)) => ok += 1,
            Some(Json::Bool(false)) => errors += 1,
            _ => return fail(&format!("reply missing 'ok' field: {reply}")),
        }
    }
    if server.join().is_err() {
        return fail("server thread panicked");
    }
    let Some(last) = replies.last() else {
        return fail("empty trace");
    };
    if !last.contains("\"op\":\"shutdown\"") {
        return fail("trace must end in a clean shutdown");
    }
    println!(
        "RESULT serve-replay: {} frames, {ok} ok, {errors} structured errors, clean shutdown",
        frames.len()
    );
    ExitCode::SUCCESS
}
