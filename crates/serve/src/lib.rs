//! # ftts-serve — the multi-tenant TCP front-end
//!
//! A long-running server over the deterministic FastTTS simulators:
//! plain `std::net` TCP, one thread per connection, a line-delimited
//! JSON protocol ([`protocol`]), a validated TOML-subset config file
//! ([`config`]), and a per-tenant admission front door ([`tenant`])
//! enforcing hard KV caps and open-request quotas *before* anything
//! reaches the scheduler. The runtime ([`runtime`]) replays the
//! accumulated virtual-time request log through
//! [`ftts_core::EventServerSim`] (or [`ftts_core::FleetSim`] for
//! multi-device configs) on demand; determinism all the way down makes
//! the replies replayable byte-for-byte.
//!
//! The `ftts-serve` binary boots from a config file and either serves
//! until a `shutdown` frame arrives or — with `--client-replay
//! <trace>` — drives itself end-to-end over a real socket and exits,
//! which is how the CI `serve-smoke` job uses it (see `docs/serving.md`).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod json;
pub mod net;
pub mod protocol;
pub mod runtime;
pub mod tenant;

pub use config::{ServeConfig, StormCfg, TenantCfg};
pub use json::Json;
pub use protocol::{parse_frame, Frame, Submit, WireError};
pub use runtime::{Handled, ServeRuntime};
pub use tenant::{AdmitError, TenantBudget};
