//! The TCP front-end: `std::net` listener, one thread per connection,
//! line-delimited frames, plus the replay client the CI smoke job
//! drives the server with.
//!
//! No async runtime and no external dependencies: connections are
//! cheap OS threads reading lines off a [`BufReader`], all sharing one
//! mutex-guarded [`ServeRuntime`]. A `shutdown` frame flips a shared
//! flag and pokes the listener with a loopback connection so the
//! accept loop observes it promptly; the listener then stops accepting
//! and in-flight connection threads drain.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use crate::runtime::ServeRuntime;

/// Serve connections on `listener` until a client sends `shutdown`.
/// Blocks the calling thread; returns the number of connections
/// handled.
///
/// # Panics
///
/// Panics if the runtime mutex is poisoned (a handler thread panicked
/// mid-frame) — the server is not in a state worth continuing from.
pub fn serve(listener: &TcpListener, runtime: &Arc<Mutex<ServeRuntime>>) -> usize {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr().expect("listener has an address");
    let mut workers = Vec::new();
    let mut connections = 0usize;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        connections += 1;
        let runtime = Arc::clone(runtime);
        let worker_stop = Arc::clone(&stop);
        workers.push(thread::spawn(move || {
            handle_connection(stream, &runtime, &worker_stop, addr);
        }));
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    for w in workers {
        let _ = w.join();
    }
    connections
}

fn handle_connection(
    stream: TcpStream,
    runtime: &Arc<Mutex<ServeRuntime>>,
    stop: &Arc<AtomicBool>,
    listen_addr: std::net::SocketAddr,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let handled = runtime.lock().expect("runtime lock").handle_line(&line);
        if writeln!(writer, "{}", handled.reply).is_err() {
            break;
        }
        if handled.shutdown {
            stop.store(true, Ordering::SeqCst);
            // Poke the accept loop so it observes the flag without
            // waiting for another real client.
            let _ = TcpStream::connect(listen_addr);
            break;
        }
    }
}

/// Replay `frames` (one frame per line; blank lines and `#` comments
/// skipped) against the server at `addr`, returning the reply lines in
/// order.
///
/// # Errors
///
/// Returns an I/O error description when the connection fails or the
/// server hangs up before replying to every frame.
pub fn replay(addr: &str, frames: &str) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for frame in frames
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        writeln!(writer, "{frame}").map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        let n = reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err(format!("server hung up before replying to: {frame}"));
        }
        replies.push(reply.trim_end().to_string());
    }
    Ok(replies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;

    #[test]
    fn end_to_end_over_a_real_socket() {
        let config = ServeConfig::parse("[server]\nseed = 3\nn_beams = 4\nmemory_fraction = 0.5\n")
            .expect("config");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let runtime = Arc::new(Mutex::new(ServeRuntime::new(config)));
        let server = {
            let runtime = Arc::clone(&runtime);
            thread::spawn(move || serve(&listener, &runtime))
        };
        let trace = r#"
# comment lines and blanks are skipped
{"op":"submit","id":"r1","tenant":0,"slo":"standard","dataset":"amc2023","problem_seed":5,"arrive_at":0.0}
{"op":"status","id":"r1"}
{"op":"stats"}
{"op":"shutdown"}
"#;
        let replies = replay(&addr, trace).expect("replay");
        assert_eq!(replies.len(), 4);
        assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
        assert!(
            replies[1].contains("\"state\":\"completed\""),
            "{}",
            replies[1]
        );
        assert!(replies[2].contains("\"tenants\":["), "{}", replies[2]);
        assert!(replies[3].contains("\"op\":\"shutdown\""), "{}", replies[3]);
        server.join().expect("server thread");
    }
}
