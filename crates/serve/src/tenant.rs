//! The per-tenant admission ledger the protocol layer runs on.
//!
//! The scheduler's [`ftts_core::TenantPolicy`] enforces caps at KV
//! rebalance boundaries *inside* a simulation; [`TenantBudget`] is its
//! front door. It tracks, per tenant, the cold working-set bytes of
//! every open (submitted, not yet resolved) request and the open-
//! request count, and refuses a `submit` that would blow through the
//! tenant's hard cap or admission quota — working-set-aware early
//! rejection, before the request ever reaches the scheduler. It also
//! answers "what weighted fair share would each tenant get right now",
//! delegating to the same water-filling rule
//! ([`ftts_kv::tenant_weighted_budgets`]) the in-simulation rebalancer
//! uses, so the front door and the scheduler never disagree about
//! entitlements.

use std::collections::BTreeMap;

use ftts_kv::tenant_weighted_budgets;

/// Why a submission was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant id is not registered with the ledger.
    UnknownTenant {
        /// The offending id.
        tenant: u32,
    },
    /// The request's cold working set cannot fit the tenant's hard cap
    /// (or the device pool) even with everything else evicted.
    Oversized {
        /// Bytes the request needs cold.
        need: u64,
        /// The binding limit it failed against.
        limit: u64,
    },
    /// The tenant is at its open-request quota.
    QuotaExhausted {
        /// Open requests currently held.
        open: usize,
        /// The quota.
        max_open: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Account {
    weight: u32,
    cap: u64,
    max_open: usize,
    reserved: u64,
    open: usize,
}

/// Per-tenant admission ledger: hard byte caps, open-request quotas,
/// and weighted fair-share answers over one device KV pool.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantBudget {
    pool: u64,
    accounts: BTreeMap<u32, Account>,
}

impl TenantBudget {
    /// An empty ledger over a pool of `pool_bytes`.
    ///
    /// # Panics
    ///
    /// Panics on an empty pool.
    pub fn new(pool_bytes: u64) -> Self {
        assert!(pool_bytes > 0, "pool must be non-empty");
        Self {
            pool: pool_bytes,
            accounts: BTreeMap::new(),
        }
    }

    /// Register a tenant. `cap_bytes` is the hard KV cap (`u64::MAX` =
    /// uncapped), `max_open` the admission quota (`0` = unlimited).
    ///
    /// # Panics
    ///
    /// Panics on a zero weight, a zero cap, or a duplicate id.
    pub fn register(&mut self, id: u32, weight: u32, cap_bytes: u64, max_open: usize) {
        assert!(weight > 0, "tenant weight must be positive");
        assert!(cap_bytes > 0, "a zero cap would admit nothing");
        let prev = self.accounts.insert(
            id,
            Account {
                weight,
                cap: cap_bytes,
                max_open: if max_open == 0 { usize::MAX } else { max_open },
                reserved: 0,
                open: 0,
            },
        );
        assert!(prev.is_none(), "tenant {id} registered twice");
    }

    /// Whether `tenant` is registered.
    pub fn knows(&self, tenant: u32) -> bool {
        self.accounts.contains_key(&tenant)
    }

    /// Admit one request of `bytes` cold working set for `tenant`,
    /// reserving the bytes and an open slot.
    ///
    /// # Errors
    ///
    /// Refuses unknown tenants, working sets that cannot fit the
    /// tenant's cap or the pool, and tenants at their quota. A refusal
    /// leaves the ledger untouched.
    pub fn try_admit(&mut self, tenant: u32, bytes: u64) -> Result<(), AdmitError> {
        let account = self
            .accounts
            .get_mut(&tenant)
            .ok_or(AdmitError::UnknownTenant { tenant })?;
        let limit = account.cap.min(self.pool);
        if bytes > limit {
            return Err(AdmitError::Oversized { need: bytes, limit });
        }
        if account.open >= account.max_open {
            return Err(AdmitError::QuotaExhausted {
                open: account.open,
                max_open: account.max_open,
            });
        }
        if account.reserved.saturating_add(bytes) > account.cap {
            return Err(AdmitError::Oversized {
                need: account.reserved.saturating_add(bytes),
                limit: account.cap,
            });
        }
        account.reserved += bytes;
        account.open += 1;
        Ok(())
    }

    /// Release one open request of `bytes` for `tenant` (completion or
    /// cancellation).
    ///
    /// # Panics
    ///
    /// Panics on an unknown tenant or a release the ledger never
    /// admitted — both are caller bugs.
    pub fn release(&mut self, tenant: u32, bytes: u64) {
        let account = self
            .accounts
            .get_mut(&tenant)
            .unwrap_or_else(|| panic!("release for unknown tenant {tenant}"));
        assert!(account.open > 0, "tenant {tenant} has no open requests");
        assert!(
            account.reserved >= bytes,
            "tenant {tenant} releasing {bytes} of {} reserved",
            account.reserved
        );
        account.reserved -= bytes;
        account.open -= 1;
    }

    /// Bytes currently reserved by `tenant`'s open requests.
    pub fn reserved(&self, tenant: u32) -> u64 {
        self.accounts.get(&tenant).map_or(0, |a| a.reserved)
    }

    /// Open requests `tenant` currently holds.
    pub fn open(&self, tenant: u32) -> usize {
        self.accounts.get(&tenant).map_or(0, |a| a.open)
    }

    /// The weighted fair share each registered tenant would be granted
    /// for the given per-tenant demands, in tenant-id order. Capped
    /// water-filling over the pool: the sum never exceeds the pool and
    /// no share exceeds the tenant's hard cap; surplus from capped or
    /// low-demand tenants is re-filled to the still-hungry by weight.
    pub fn shares(&self, demands: &[(u32, u64)]) -> Vec<(u32, u64)> {
        let needs: Vec<(u64, u32, u64, u64)> = self
            .accounts
            .iter()
            .map(|(&id, account)| {
                let demand = demands
                    .iter()
                    .find(|&&(t, _)| t == id)
                    .map_or(0, |&(_, d)| d);
                (u64::from(id), account.weight, account.cap, demand)
            })
            .collect();
        tenant_weighted_budgets(self.pool, &needs)
            .into_iter()
            .map(|(id, share)| (u32::try_from(id).expect("ids fit u32"), share))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_reserves_and_release_returns() {
        let mut b = TenantBudget::new(1000);
        b.register(1, 1, 400, 2);
        b.try_admit(1, 300).expect("fits");
        assert_eq!(b.reserved(1), 300);
        assert_eq!(b.open(1), 1);
        assert_eq!(
            b.try_admit(1, 300),
            Err(AdmitError::Oversized {
                need: 600,
                limit: 400
            }),
            "cap binds across open requests"
        );
        b.try_admit(1, 100).expect("still fits");
        assert_eq!(
            b.try_admit(1, 1),
            Err(AdmitError::QuotaExhausted {
                open: 2,
                max_open: 2
            })
        );
        b.release(1, 300);
        b.try_admit(1, 1).expect("slot freed");
    }

    #[test]
    fn unknown_tenants_and_pool_misfits_are_refused() {
        let mut b = TenantBudget::new(1000);
        b.register(0, 1, u64::MAX, 0);
        assert_eq!(
            b.try_admit(9, 1),
            Err(AdmitError::UnknownTenant { tenant: 9 })
        );
        assert_eq!(
            b.try_admit(0, 2000),
            Err(AdmitError::Oversized {
                need: 2000,
                limit: 1000
            }),
            "uncapped tenants are still bounded by the pool"
        );
    }

    #[test]
    fn shares_respect_caps_and_weights() {
        let mut b = TenantBudget::new(900);
        b.register(0, 2, u64::MAX, 0);
        b.register(1, 1, 100, 0);
        let shares = b.shares(&[(0, 900), (1, 900)]);
        let of = |t: u32| shares.iter().find(|&&(id, _)| id == t).unwrap().1;
        assert!(of(1) <= 100, "cap binds");
        assert!(of(0) > of(1), "heavier tenant gets more");
        assert!(shares.iter().map(|&(_, s)| s).sum::<u64>() <= 900);
    }
}
