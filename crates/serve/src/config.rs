//! Server configuration: a validated TOML-subset file.
//!
//! The deployment surface of the server — listen address, device fleet
//! shape, KV-pool sizing, per-tenant quotas and caps, and the optional
//! fault storm — lives in one checked-in file (see
//! `crates/serve/ci/serve.toml` for the CI fixture). The parser
//! supports exactly the subset those files use: `[section]` tables,
//! `[[tenants]]` array-of-tables, `key = value` pairs with string,
//! integer, float and boolean values, and `#` comments. Everything is
//! validated up front so a bad config fails at boot with a line-number
//! diagnostic, never mid-serve.

use std::collections::BTreeMap;

use ftts_core::MAX_TENANTS;

/// One tenant's deployment row (`[[tenants]]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantCfg {
    /// Tenant id presented in `submit` frames.
    pub id: u32,
    /// Fair-share weight (>= 1) for KV rebalancing.
    pub weight: u32,
    /// Hard KV cap as a fraction of the device pool, `0.0` = uncapped.
    pub kv_cap_frac: f64,
    /// Protocol-level admission quota: maximum open (submitted, not yet
    /// resolved) requests, `0` = unlimited.
    pub max_open: usize,
    /// In-simulation concurrency quota: maximum requests the scheduler
    /// admits into the running batch at once, `0` = unlimited. Enforced
    /// by the tenant policy inside the simulator, not at the door.
    pub max_in_flight: u32,
}

/// Optional seeded fault storm injected into every simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormCfg {
    /// Storm seed.
    pub seed: u64,
    /// Horizon the events scatter over, seconds.
    pub horizon_secs: f64,
    /// Transient kernel failures over the horizon.
    pub kernel_faults: usize,
    /// Thermal-throttle windows over the horizon.
    pub slowdowns: usize,
    /// Kernel-time multiplier inside each window (>= 1).
    pub slowdown_factor: f64,
    /// Length of each throttle window, seconds.
    pub slowdown_secs: f64,
    /// Device KV-loss events over the horizon.
    pub kv_losses: usize,
}

/// The validated server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// TCP listen address, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub listen: String,
    /// Simulation seed (device timings, workloads).
    pub seed: u64,
    /// Beams per request.
    pub n_beams: usize,
    /// Request-level batch slots per device.
    pub max_batch: usize,
    /// Event-scheduler co-batch window, seconds.
    pub window_secs: f64,
    /// Fraction of device memory granted to the KV pool.
    pub memory_fraction: f64,
    /// Devices in the fleet (1 = single event-driven device).
    pub devices: usize,
    /// Largest prompt (tokens) the protocol accepts at all.
    pub max_prompt_tokens: u64,
    /// Tenant rows; empty = single-tenant mode (only tenant 0,
    /// uncapped, no quota).
    pub tenants: Vec<TenantCfg>,
    /// Optional fault storm.
    pub storm: Option<StormCfg>,
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }
}

type Table = BTreeMap<String, (usize, Value)>;

/// Raw parse result: plain tables plus array-of-tables.
#[derive(Debug, Default)]
struct Document {
    tables: BTreeMap<String, Table>,
    arrays: BTreeMap<String, Vec<Table>>,
}

fn parse_scalar(raw: &str, line_no: usize) -> Result<Value, String> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line_no}: unterminated string"))?;
        if inner.contains('"') || inner.contains('\\') {
            return Err(format!(
                "line {line_no}: escapes in strings are unsupported"
            ));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!("line {line_no}: cannot parse value '{raw}'"))
}

fn parse_document(text: &str) -> Result<Document, String> {
    let mut doc = Document::default();
    // (section name, index into doc.arrays entry or None for a table)
    let mut current: Option<(String, Option<usize>)> = None;
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw_line.split_once('#') {
            Some((before, _)) if !before.contains('"') => before.trim(),
            _ => raw_line.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = name.trim().to_string();
            if name.is_empty() {
                return Err(format!("line {line_no}: empty section name"));
            }
            let rows = doc.arrays.entry(name.clone()).or_default();
            rows.push(Table::new());
            current = Some((name, Some(rows.len() - 1)));
        } else if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().to_string();
            if name.is_empty() {
                return Err(format!("line {line_no}: empty section name"));
            }
            if doc.tables.contains_key(&name) {
                return Err(format!("line {line_no}: duplicate section [{name}]"));
            }
            doc.tables.insert(name.clone(), Table::new());
            current = Some((name, None));
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim().to_string();
            if key.is_empty() {
                return Err(format!("line {line_no}: empty key"));
            }
            let value = parse_scalar(value, line_no)?;
            let table = match &current {
                Some((name, Some(idx))) => &mut doc.arrays.get_mut(name).expect("open array")[*idx],
                Some((name, None)) => doc.tables.get_mut(name).expect("open table"),
                None => return Err(format!("line {line_no}: key before any [section]")),
            };
            if table.insert(key.clone(), (line_no, value)).is_some() {
                return Err(format!("line {line_no}: duplicate key '{key}'"));
            }
        } else {
            return Err(format!("line {line_no}: expected [section] or key = value"));
        }
    }
    Ok(doc)
}

struct Reader<'a> {
    section: &'a str,
    table: &'a Table,
}

impl Reader<'_> {
    fn unknown_keys(&self, allowed: &[&str]) -> Result<(), String> {
        for (key, (line, _)) in self.table {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "line {line}: unknown key '{key}' in [{}]",
                    self.section
                ));
            }
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Option<&(usize, Value)> {
        self.table.get(key)
    }

    fn str(&self, key: &str, default: &str) -> Result<String, String> {
        match self.get(key) {
            None => Ok(default.to_string()),
            Some((_, Value::Str(s))) => Ok(s.clone()),
            Some((line, v)) => Err(format!(
                "line {line}: [{}] {key} must be a string, got {}",
                self.section,
                v.type_name()
            )),
        }
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some((line, Value::Int(i))) => u64::try_from(*i)
                .map_err(|_| format!("line {line}: [{}] {key} must be >= 0", self.section)),
            Some((line, v)) => Err(format!(
                "line {line}: [{}] {key} must be an integer, got {}",
                self.section,
                v.type_name()
            )),
        }
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        self.u64(key, default as u64).map(|v| v as usize)
    }

    fn f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some((_, Value::Float(f))) => Ok(*f),
            #[allow(clippy::cast_precision_loss)]
            Some((_, Value::Int(i))) => Ok(*i as f64),
            Some((line, v)) => Err(format!(
                "line {line}: [{}] {key} must be a number, got {}",
                self.section,
                v.type_name()
            )),
        }
    }
}

impl ServeConfig {
    /// Parse and validate a configuration document.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered diagnostic on syntax errors, unknown
    /// keys, type mismatches, or semantically invalid values.
    pub fn parse(text: &str) -> Result<ServeConfig, String> {
        let doc = parse_document(text)?;
        for name in doc.tables.keys() {
            if !["server", "faults"].contains(&name.as_str()) {
                return Err(format!("unknown section [{name}]"));
            }
        }
        for name in doc.arrays.keys() {
            if name != "tenants" {
                return Err(format!("unknown section [[{name}]]"));
            }
        }
        let empty = Table::new();
        let server = Reader {
            section: "server",
            table: doc.tables.get("server").unwrap_or(&empty),
        };
        server.unknown_keys(&[
            "listen",
            "seed",
            "n_beams",
            "max_batch",
            "window_secs",
            "memory_fraction",
            "devices",
            "max_prompt_tokens",
        ])?;
        let config = ServeConfig {
            listen: server.str("listen", "127.0.0.1:0")?,
            seed: server.u64("seed", 7)?,
            n_beams: server.usize("n_beams", 8)?,
            max_batch: server.usize("max_batch", 4)?,
            window_secs: server.f64("window_secs", 0.2)?,
            memory_fraction: server.f64("memory_fraction", 0.45)?,
            devices: server.usize("devices", 1)?,
            max_prompt_tokens: server.u64("max_prompt_tokens", 4096)?,
            tenants: doc
                .arrays
                .get("tenants")
                .map(|rows| {
                    rows.iter()
                        .map(|row| {
                            let t = Reader {
                                section: "tenants",
                                table: row,
                            };
                            t.unknown_keys(&[
                                "id",
                                "weight",
                                "kv_cap_frac",
                                "max_open",
                                "max_in_flight",
                            ])?;
                            Ok(TenantCfg {
                                id: u32::try_from(t.u64("id", u64::MAX)?)
                                    .map_err(|_| "[[tenants]] id must fit u32".to_string())?,
                                weight: u32::try_from(t.u64("weight", 1)?)
                                    .map_err(|_| "[[tenants]] weight must fit u32".to_string())?,
                                kv_cap_frac: t.f64("kv_cap_frac", 0.0)?,
                                max_open: t.usize("max_open", 0)?,
                                max_in_flight: u32::try_from(t.u64("max_in_flight", 0)?).map_err(
                                    |_| "[[tenants]] max_in_flight must fit u32".to_string(),
                                )?,
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()
                })
                .transpose()?
                .unwrap_or_default(),
            storm: doc
                .tables
                .get("faults")
                .map(|table| {
                    let f = Reader {
                        section: "faults",
                        table,
                    };
                    f.unknown_keys(&[
                        "seed",
                        "horizon_secs",
                        "kernel_faults",
                        "slowdowns",
                        "slowdown_factor",
                        "slowdown_secs",
                        "kv_losses",
                    ])?;
                    Ok::<StormCfg, String>(StormCfg {
                        seed: f.u64("seed", 1)?,
                        horizon_secs: f.f64("horizon_secs", 600.0)?,
                        kernel_faults: f.usize("kernel_faults", 0)?,
                        slowdowns: f.usize("slowdowns", 0)?,
                        slowdown_factor: f.f64("slowdown_factor", 1.5)?,
                        slowdown_secs: f.f64("slowdown_secs", 10.0)?,
                        kv_losses: f.usize("kv_losses", 0)?,
                    })
                })
                .transpose()?,
        };
        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<(), String> {
        if !self.listen.contains(':') {
            return Err(format!("listen '{}' is not host:port", self.listen));
        }
        if self.n_beams == 0 {
            return Err("n_beams must be >= 1".to_string());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be >= 1".to_string());
        }
        if !(self.window_secs >= 0.0 && self.window_secs.is_finite()) {
            return Err("window_secs must be finite and >= 0".to_string());
        }
        if !(self.memory_fraction > 0.0 && self.memory_fraction <= 0.95) {
            return Err("memory_fraction must be in (0, 0.95]".to_string());
        }
        if self.devices == 0 {
            return Err("devices must be >= 1".to_string());
        }
        if self.max_prompt_tokens == 0 {
            return Err("max_prompt_tokens must be >= 1".to_string());
        }
        if self.tenants.len() > MAX_TENANTS {
            return Err(format!("at most {MAX_TENANTS} tenants are supported"));
        }
        let mut ids: Vec<u32> = self.tenants.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != self.tenants.len() {
            return Err("duplicate tenant id".to_string());
        }
        for t in &self.tenants {
            if t.weight == 0 {
                return Err(format!("tenant {}: weight must be >= 1", t.id));
            }
            if !(0.0..=1.0).contains(&t.kv_cap_frac) {
                return Err(format!("tenant {}: kv_cap_frac must be in [0, 1]", t.id));
            }
        }
        if let Some(storm) = &self.storm {
            if !(storm.horizon_secs > 0.0 && storm.horizon_secs.is_finite()) {
                return Err("faults horizon_secs must be positive".to_string());
            }
            if storm.slowdown_factor < 1.0 {
                return Err("faults slowdown_factor must be >= 1".to_string());
            }
            if storm.slowdown_secs <= 0.0 {
                return Err("faults slowdown_secs must be positive".to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# CI fixture shape
[server]
listen = "127.0.0.1:0"
seed = 7
n_beams = 8
max_batch = 4
window_secs = 0.2
memory_fraction = 0.45
devices = 1
max_prompt_tokens = 2048

[[tenants]]
id = 0
weight = 3
kv_cap_frac = 0.0
max_open = 0

[[tenants]]
id = 1
weight = 1
kv_cap_frac = 0.25
max_open = 2
max_in_flight = 3
"#;

    #[test]
    fn parses_the_fixture_shape() {
        let c = ServeConfig::parse(GOOD).expect("parse");
        assert_eq!(c.listen, "127.0.0.1:0");
        assert_eq!(c.seed, 7);
        assert_eq!(c.devices, 1);
        assert_eq!(c.tenants.len(), 2);
        assert_eq!(c.tenants[1].kv_cap_frac, 0.25);
        assert_eq!(c.tenants[1].max_open, 2);
        assert_eq!(c.tenants[1].max_in_flight, 3);
        assert_eq!(c.tenants[0].max_in_flight, 0, "defaults to unlimited");
        assert!(c.storm.is_none());
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let c = ServeConfig::parse("[server]\nseed = 3\n").expect("parse");
        assert_eq!(c.seed, 3);
        assert_eq!(c.n_beams, 8);
        assert!(c.tenants.is_empty());
    }

    #[test]
    fn storm_section_parses() {
        let c = ServeConfig::parse(
            "[server]\nseed = 1\n[faults]\nseed = 5\nkernel_faults = 3\nhorizon_secs = 120.0\n",
        )
        .expect("parse");
        let storm = c.storm.expect("storm");
        assert_eq!(storm.kernel_faults, 3);
        assert_eq!(storm.seed, 5);
    }

    #[test]
    fn diagnostics_carry_line_numbers() {
        let err = ServeConfig::parse("[server]\nseed = \"x\"\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = ServeConfig::parse("[server]\nbogus_key = 1\n").unwrap_err();
        assert!(err.contains("bogus_key"), "{err}");
        let err = ServeConfig::parse("key_without_section = 1\n").unwrap_err();
        assert!(err.contains("before any"), "{err}");
    }

    #[test]
    fn semantic_validation_rejects_bad_values() {
        for (snippet, needle) in [
            ("[server]\nmemory_fraction = 1.5\n", "memory_fraction"),
            ("[server]\ndevices = 0\n", "devices"),
            ("[server]\nmax_batch = 0\n", "max_batch"),
            (
                "[server]\n[[tenants]]\nid = 1\n[[tenants]]\nid = 1\n",
                "duplicate tenant",
            ),
            (
                "[server]\n[[tenants]]\nid = 1\nkv_cap_frac = 2.0\n",
                "kv_cap_frac",
            ),
            ("[server]\n[[tenants]]\nid = 1\nweight = 0\n", "weight"),
            ("[unknown]\nx = 1\n", "unknown section"),
        ] {
            let err = ServeConfig::parse(snippet).unwrap_err();
            assert!(err.contains(needle), "{snippet:?} -> {err}");
        }
    }
}
