//! The serving runtime behind the wire protocol.
//!
//! The server is a *virtual-time* front-end over the deterministic
//! simulators: clients submit requests with explicit arrival instants,
//! and any query that needs results (`status`, `stats`) replays the
//! accumulated timeline through [`EventServerSim`] (or [`FleetSim`]
//! when the config declares more than one device) from scratch.
//! Because every layer underneath is seeded and deterministic, the
//! replay is instant in the relevant sense — simulated seconds cost
//! microseconds — and *incremental in effect*: re-running the grown
//! timeline yields exactly the previous results for old requests plus
//! results for the new ones, which the replay-determinism tests pin
//! down byte-for-byte.
//!
//! Replays are memoized on a hash of `(config, active trace)`: any
//! query whose effective simulation input matches the cached run is
//! answered from the cache without re-simulating, so repeated `stats`
//! polls — and no-op trace churn like a submit immediately cancelled —
//! are O(1). Determinism makes this safe: equal inputs *must* produce
//! the byte-identical reply, which the memoization regression test
//! pins down.
//!
//! The runtime also owns the protocol-level tenant front door
//! ([`TenantBudget`]): unknown tenants, prompts whose cold working set
//! cannot fit the tenant's hard cap (or the pool), and tenants at
//! their open-request quota are refused with structured errors before
//! anything reaches the scheduler's admission path.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ftts_core::{
    BatchConfig, EventConfig, EventServerSim, FaultPlan, FleetConfig, FleetSim, RoutePolicy,
    ServedRequest, StormConfig, TenantPolicy, TenantSpec, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::{StreamRecord, TenantRollup};
use ftts_search::SearchKind;
use ftts_workload::RequestArrival;

use crate::config::ServeConfig;
use crate::json::escape;
use crate::protocol::{parse_frame, Frame, Submit, WireError};
use crate::tenant::{AdmitError, TenantBudget};

/// What handling one frame produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Handled {
    /// The reply line (no trailing newline).
    pub reply: String,
    /// Whether the frame asked the server to shut down.
    pub shutdown: bool,
}

#[derive(Debug, Clone)]
struct Submission {
    frame: Submit,
    cold_bytes: u64,
    cancelled: bool,
    /// Whether the submission currently holds ledger bytes/quota; open
    /// holdings resolve (release) at the next replay or cancellation.
    billed: bool,
}

#[derive(Debug, Clone, Default)]
struct SimResult {
    /// Resolved record per submission index (cancelled ones absent).
    outcomes: BTreeMap<usize, ServedRequest>,
    /// Per-tenant peak KV grants, merged max across devices.
    tenant_peaks: Vec<(u32, u64)>,
}

/// The serving runtime: config, tenant front door, submission log and
/// the cached replay.
#[derive(Debug, Clone)]
pub struct ServeRuntime {
    config: ServeConfig,
    budget: TenantBudget,
    subs: Vec<Submission>,
    by_id: BTreeMap<String, usize>,
    rejected: u64,
    /// Memo key of the cached replay: FNV-1a over the config and the
    /// ordered active trace. `None` until the first replay.
    cache_key: Option<u64>,
    /// Full re-simulations actually executed (memo misses).
    replays: u64,
    cache: SimResult,
    pool_bytes: u64,
    gen_bpt: u64,
}

impl ServeRuntime {
    /// Build a runtime from a validated config.
    pub fn new(config: ServeConfig) -> Self {
        let server = Self::build_server(&config);
        let pool_bytes = server.config().kv_budget_bytes();
        let gen_bpt = server.config().models.gen_spec.kv_bytes_per_token();
        let mut budget = TenantBudget::new(pool_bytes);
        if config.tenants.is_empty() {
            budget.register(0, 1, u64::MAX, 0);
        } else {
            for t in &config.tenants {
                budget.register(
                    t.id,
                    t.weight,
                    cap_bytes(t.kv_cap_frac, pool_bytes),
                    t.max_open,
                );
            }
        }
        Self {
            config,
            budget,
            subs: Vec::new(),
            by_id: BTreeMap::new(),
            rejected: 0,
            cache_key: None,
            replays: 0,
            cache: SimResult::default(),
            pool_bytes,
            gen_bpt,
        }
    }

    /// The validated config the runtime was built from.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Submissions accepted so far (cancelled ones included).
    pub fn accepted(&self) -> usize {
        self.subs.len()
    }

    /// Frames refused by the front door (malformed, unknown tenant,
    /// oversized, over quota, duplicate) — none of these reached the
    /// scheduler.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Full re-simulations executed so far. Repeated queries over an
    /// unchanged trace are memo hits and leave this untouched.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Handle one frame line and produce the reply line.
    pub fn handle_line(&mut self, line: &str) -> Handled {
        match parse_frame(line) {
            Ok(frame) => self.handle(frame),
            Err(e) => {
                self.rejected += 1;
                Handled {
                    reply: e.reply(),
                    shutdown: false,
                }
            }
        }
    }

    fn handle(&mut self, frame: Frame) -> Handled {
        let (reply, shutdown) = match frame {
            Frame::Submit(s) => (self.submit(s).unwrap_or_else(|e| e.reply()), false),
            Frame::Status { id } => (self.status(&id).unwrap_or_else(|e| e.reply()), false),
            Frame::Cancel { id } => (self.cancel(&id).unwrap_or_else(|e| e.reply()), false),
            Frame::Stats => (self.stats().unwrap_or_else(|e| e.reply()), false),
            Frame::Shutdown => ("{\"ok\":true,\"op\":\"shutdown\"}".to_string(), true),
        };
        Handled { reply, shutdown }
    }

    fn submit(&mut self, s: Submit) -> Result<String, WireError> {
        let refused = |this: &mut Self, e: WireError| {
            this.rejected += 1;
            Err(e)
        };
        if self.by_id.contains_key(&s.id) {
            return refused(
                self,
                WireError::new("duplicate_id", format!("request '{}' already exists", s.id)),
            );
        }
        let problem = s.dataset.problems(1, s.problem_seed)[0];
        if problem.prompt_tokens > self.config.max_prompt_tokens {
            return refused(
                self,
                WireError::new(
                    "oversized_prompt",
                    format!(
                        "prompt of {} tokens exceeds the configured maximum of {}",
                        problem.prompt_tokens, self.config.max_prompt_tokens
                    ),
                ),
            );
        }
        let cold_bytes = problem.prompt_tokens.saturating_mul(self.gen_bpt);
        match self.budget.try_admit(s.tenant, cold_bytes) {
            Ok(()) => {}
            Err(AdmitError::UnknownTenant { tenant }) => {
                return refused(
                    self,
                    WireError::new(
                        "unknown_tenant",
                        format!("tenant {tenant} is not configured on this server"),
                    ),
                );
            }
            Err(AdmitError::Oversized { need, limit }) => {
                return refused(
                    self,
                    WireError::new(
                        "oversized_prompt",
                        format!(
                            "cold working set of {need} bytes cannot fit tenant {}'s \
                             limit of {limit} bytes",
                            s.tenant
                        ),
                    ),
                );
            }
            Err(AdmitError::QuotaExhausted { open, max_open }) => {
                return refused(
                    self,
                    WireError::new(
                        "quota_exhausted",
                        format!(
                            "tenant {} holds {open} open requests of a quota of {max_open}",
                            s.tenant
                        ),
                    ),
                );
            }
        }
        let reply = format!(
            "{{\"ok\":true,\"op\":\"submit\",\"id\":\"{}\",\"tenant\":{},\"arrive_at\":{:.3}}}",
            escape(&s.id),
            s.tenant,
            s.arrive_at
        );
        self.by_id.insert(s.id.clone(), self.subs.len());
        self.subs.push(Submission {
            frame: s,
            cold_bytes,
            cancelled: false,
            billed: true,
        });
        Ok(reply)
    }

    fn cancel(&mut self, id: &str) -> Result<String, WireError> {
        let idx = *self.by_id.get(id).ok_or_else(|| {
            WireError::new("unknown_request", format!("no request with id '{id}'"))
        })?;
        let sub = &mut self.subs[idx];
        if !sub.cancelled {
            sub.cancelled = true;
            if sub.billed {
                sub.billed = false;
                self.budget.release(sub.frame.tenant, sub.cold_bytes);
            }
        }
        Ok(format!(
            "{{\"ok\":true,\"op\":\"cancel\",\"id\":\"{}\",\"state\":\"cancelled\"}}",
            escape(id)
        ))
    }

    fn status(&mut self, id: &str) -> Result<String, WireError> {
        let idx = *self.by_id.get(id).ok_or_else(|| {
            WireError::new("unknown_request", format!("no request with id '{id}'"))
        })?;
        if self.subs[idx].cancelled {
            return Ok(format!(
                "{{\"ok\":true,\"op\":\"status\",\"id\":\"{}\",\"state\":\"cancelled\"}}",
                escape(id)
            ));
        }
        self.freshen()?;
        let r = self.cache.outcomes.get(&idx).expect("active sub resolved");
        let state = if r.shed { "shed" } else { "completed" };
        let answer = r
            .outcome
            .answer
            .map_or_else(|| "null".to_string(), |a| a.to_string());
        Ok(format!(
            "{{\"ok\":true,\"op\":\"status\",\"id\":\"{}\",\"state\":\"{}\",\"tenant\":{},\
             \"arrived_at\":{:.3},\"finished_at\":{:.3},\"accepted_tokens\":{},\
             \"deadline_hit\":{},\"answer\":{}}}",
            escape(id),
            state,
            self.subs[idx].frame.tenant,
            r.arrived_at,
            r.finished_at,
            r.accepted_tokens(),
            !r.shed && r.finished_at <= r.deadline,
            answer
        ))
    }

    fn stats(&mut self) -> Result<String, WireError> {
        self.freshen()?;
        let mut tagged: Vec<(u32, StreamRecord)> = Vec::new();
        let mut cancelled = 0usize;
        for (idx, sub) in self.subs.iter().enumerate() {
            if sub.cancelled {
                cancelled += 1;
                continue;
            }
            let r = self.cache.outcomes.get(&idx).expect("active sub resolved");
            tagged.push((
                sub.frame.tenant,
                StreamRecord {
                    arrived_at: r.arrived_at,
                    finished_at: r.finished_at,
                    queue_delay: r.queue_delay(),
                    accepted_tokens: r.accepted_tokens(),
                    generator_secs: r.outcome.stats.breakdown().generator_side(),
                    verifier_secs: r.outcome.stats.breakdown().verifier,
                    slo: r.slo,
                    deadline: r.deadline,
                    completed: !r.shed,
                },
            ));
        }
        let rollups = TenantRollup::of(&tagged);
        let peak = |tenant: u32| {
            self.cache
                .tenant_peaks
                .iter()
                .find(|&&(t, _)| t == tenant)
                .map_or(0, |&(_, b)| b)
        };
        let mut tenants = String::new();
        for (i, row) in rollups.iter().enumerate() {
            if i > 0 {
                tenants.push(',');
            }
            let _ = write!(
                tenants,
                "{{\"tenant\":{},\"requests\":{},\"completed\":{},\"shed\":{},\
                 \"accepted_tokens\":{},\"deadline_hit_rate\":{:.4},\
                 \"mean_latency_secs\":{:.3},\"p99_latency_secs\":{:.3},\
                 \"stream_goodput\":{:.3},\"kv_peak_bytes\":{}}}",
                row.tenant,
                row.requests,
                row.requests - row.summary.shed,
                row.summary.shed,
                row.summary.total_accepted_tokens,
                row.summary.deadline_hit_rate,
                row.summary.latency.mean,
                row.summary.latency.p99,
                row.summary.stream_goodput,
                peak(row.tenant)
            );
        }
        Ok(format!(
            "{{\"ok\":true,\"op\":\"stats\",\"requests\":{},\"cancelled\":{},\"rejected\":{},\
             \"pool_bytes\":{},\"tenants\":[{}]}}",
            self.subs.len(),
            cancelled,
            self.rejected,
            self.pool_bytes,
            tenants
        ))
    }

    fn build_server(config: &ServeConfig) -> TtsServer {
        let mut server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        server.config_mut().seed = config.seed;
        server.config_mut().memory_fraction = config.memory_fraction;
        server
    }

    fn batch_config(&self) -> BatchConfig {
        let mut batch = BatchConfig::fused(self.config.max_batch);
        if !self.config.tenants.is_empty() {
            let specs: Vec<TenantSpec> = self
                .config
                .tenants
                .iter()
                .map(|t| TenantSpec {
                    id: t.id,
                    weight: t.weight,
                    kv_cap_bytes: cap_bytes(t.kv_cap_frac, self.pool_bytes),
                    max_in_flight: t.max_in_flight,
                })
                .collect();
            batch = batch.with_tenants(TenantPolicy::new(&specs));
        }
        batch
    }

    fn fault_plan(&self, device: u64) -> FaultPlan {
        self.config
            .storm
            .as_ref()
            .map_or_else(FaultPlan::none, |s| {
                FaultPlan::storm(
                    s.seed.wrapping_add(device),
                    s.horizon_secs,
                    &StormConfig {
                        kernel_faults: s.kernel_faults,
                        slowdowns: s.slowdowns,
                        slowdown_factor: s.slowdown_factor,
                        slowdown_secs: s.slowdown_secs,
                        kv_losses: s.kv_losses,
                        device_crashes: 0,
                        crash_down_secs: 60.0,
                        device_degrades: 0,
                        degrade_factor: 2.0,
                        degrade_secs: 30.0,
                    },
                )
            })
    }

    /// The memo key: FNV-1a over the config plus every field of the
    /// ordered active trace that can influence the simulation — arrival
    /// instants, problems, SLOs, deadlines, tenants, and the submission
    /// indices the cache is keyed by.
    fn trace_key(&self, order: &[usize]) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(format!("{:?}", self.config).as_bytes());
        for &i in order {
            let f = &self.subs[i].frame;
            eat(&(i as u64).to_le_bytes());
            eat(&f.arrive_at.to_bits().to_le_bytes());
            eat(&f.deadline_secs.to_bits().to_le_bytes());
            eat(&f.problem_seed.to_le_bytes());
            eat(&f.tenant.to_le_bytes());
            eat(format!("{:?}|{:?}", f.dataset, f.slo).as_bytes());
        }
        h
    }

    /// Replay the accumulated timeline if its effective simulation
    /// input changed since the cached run; answer from the memo when it
    /// did not (repeated queries are O(1), as is no-op churn like a
    /// submit that was immediately cancelled).
    fn freshen(&mut self) -> Result<(), WireError> {
        let mut order: Vec<usize> = (0..self.subs.len())
            .filter(|&i| !self.subs[i].cancelled)
            .collect();
        order.sort_by(|&a, &b| {
            self.subs[a]
                .frame
                .arrive_at
                .partial_cmp(&self.subs[b].frame.arrive_at)
                .expect("finite arrivals")
                .then(a.cmp(&b))
        });
        let key = self.trace_key(&order);
        if self.cache_key != Some(key) {
            let arrivals: Vec<RequestArrival> = order
                .iter()
                .map(|&i| {
                    let f = &self.subs[i].frame;
                    RequestArrival {
                        at: f.arrive_at,
                        problem: f.dataset.problems(1, f.problem_seed)[0],
                        slo: f.slo,
                        deadline: f.arrive_at + f.deadline_secs,
                        tenant: f.tenant,
                    }
                })
                .collect();
            self.cache = self.simulate(&arrivals, &order)?;
            self.cache_key = Some(key);
            self.replays += 1;
        }
        // Open ledger holdings resolve with the query: every active
        // submission now has a (possibly memoized) result, so its bytes
        // and quota slot return to the tenant's budget.
        for i in &order {
            let sub = &mut self.subs[*i];
            if sub.billed {
                sub.billed = false;
                self.budget.release(sub.frame.tenant, sub.cold_bytes);
            }
        }
        Ok(())
    }

    fn simulate(
        &self,
        arrivals: &[RequestArrival],
        order: &[usize],
    ) -> Result<SimResult, WireError> {
        let event = EventConfig::new(self.batch_config(), self.config.window_secs);
        let internal = |e: ftts_core::EngineError| {
            WireError::new("internal_error", format!("simulation failed: {e:?}"))
        };
        let (served, tenant_peaks) = if self.config.devices == 1 {
            let sim = EventServerSim::new(
                Self::build_server(&self.config),
                self.config.n_beams,
                SearchKind::BeamSearch,
                event,
            );
            let run = sim
                .run_faulted(arrivals, &self.fault_plan(0))
                .map_err(internal)?;
            (run.served, run.tenant_peak_bytes)
        } else {
            let devices: Vec<TtsServer> = (0..self.config.devices)
                .map(|_| Self::build_server(&self.config))
                .collect();
            let plans: Vec<FaultPlan> = (0..self.config.devices as u64)
                .map(|d| self.fault_plan(d))
                .collect();
            let sim = FleetSim::new(
                devices,
                self.config.n_beams,
                SearchKind::BeamSearch,
                FleetConfig::new(event, RoutePolicy::Jsq),
            );
            let run = sim.run_faulted(arrivals, &plans).map_err(internal)?;
            let mut peaks: BTreeMap<u32, u64> = BTreeMap::new();
            for device_run in &run.device_runs {
                for &(t, b) in &device_run.tenant_peak_bytes {
                    let entry = peaks.entry(t).or_insert(0);
                    *entry = (*entry).max(b);
                }
            }
            (run.served, peaks.into_iter().collect())
        };
        debug_assert_eq!(served.len(), order.len());
        Ok(SimResult {
            outcomes: order.iter().copied().zip(served).collect(),
            tenant_peaks,
        })
    }
}

fn cap_bytes(frac: f64, pool: u64) -> u64 {
    if frac <= 0.0 {
        u64::MAX
    } else {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let bytes = (pool as f64 * frac) as u64;
        bytes.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(extra: &str) -> ServeRuntime {
        let toml = format!(
            "[server]\nseed = 7\nn_beams = 4\nmax_batch = 4\nwindow_secs = 0.2\n\
             memory_fraction = 0.5\nmax_prompt_tokens = 2048\n{extra}"
        );
        ServeRuntime::new(ServeConfig::parse(&toml).expect("config"))
    }

    fn submit_line(id: &str, tenant: u32, at: f64) -> String {
        format!(
            "{{\"op\":\"submit\",\"id\":\"{id}\",\"tenant\":{tenant},\"slo\":\"standard\",\
             \"dataset\":\"amc2023\",\"problem_seed\":{},\"arrive_at\":{at}}}",
            7 + u64::from(tenant)
        )
    }

    #[test]
    fn submit_status_stats_round_trip() {
        let mut rt = runtime("");
        let h = rt.handle_line(&submit_line("r1", 0, 0.0));
        assert!(h.reply.contains("\"ok\":true"), "{}", h.reply);
        let h = rt.handle_line("{\"op\":\"status\",\"id\":\"r1\"}");
        assert!(h.reply.contains("\"state\":\"completed\""), "{}", h.reply);
        let h = rt.handle_line("{\"op\":\"stats\"}");
        assert!(h.reply.contains("\"requests\":1"), "{}", h.reply);
        assert!(h.reply.contains("\"tenant\":0"), "{}", h.reply);
        let h = rt.handle_line("{\"op\":\"shutdown\"}");
        assert!(h.shutdown);
    }

    #[test]
    fn cancel_withdraws_from_the_timeline() {
        let mut rt = runtime("");
        rt.handle_line(&submit_line("r1", 0, 0.0));
        rt.handle_line(&submit_line("r2", 0, 1.0));
        let h = rt.handle_line("{\"op\":\"cancel\",\"id\":\"r2\"}");
        assert!(h.reply.contains("\"state\":\"cancelled\""), "{}", h.reply);
        let h = rt.handle_line("{\"op\":\"status\",\"id\":\"r2\"}");
        assert!(h.reply.contains("\"state\":\"cancelled\""), "{}", h.reply);
        let h = rt.handle_line("{\"op\":\"stats\"}");
        assert!(h.reply.contains("\"cancelled\":1"), "{}", h.reply);
    }

    #[test]
    fn repeated_stats_are_memo_hits_and_byte_identical() {
        let mut rt = runtime("");
        rt.handle_line(&submit_line("r1", 0, 0.0));
        rt.handle_line(&submit_line("r2", 0, 1.0));
        let first_stats = rt.handle_line("{\"op\":\"stats\"}").reply;
        let first_status = rt.handle_line("{\"op\":\"status\",\"id\":\"r1\"}").reply;
        assert_eq!(rt.replays(), 1, "one replay resolves the trace");
        for _ in 0..3 {
            assert_eq!(rt.handle_line("{\"op\":\"stats\"}").reply, first_stats);
            assert_eq!(
                rt.handle_line("{\"op\":\"status\",\"id\":\"r1\"}").reply,
                first_status
            );
        }
        assert_eq!(rt.replays(), 1, "repeated queries are O(1) memo hits");
        // No-op trace churn — a submit immediately cancelled — keys to
        // the same effective trace: still no replay, same bytes from
        // the per-tenant roll-up.
        rt.handle_line(&submit_line("r3", 0, 2.0));
        rt.handle_line("{\"op\":\"cancel\",\"id\":\"r3\"}");
        assert_eq!(
            rt.handle_line("{\"op\":\"status\",\"id\":\"r1\"}").reply,
            first_status
        );
        assert_eq!(rt.replays(), 1, "cancelled churn stays a memo hit");
        // A real trace change misses the memo exactly once.
        rt.handle_line(&submit_line("r4", 0, 3.0));
        let grown = rt.handle_line("{\"op\":\"stats\"}").reply;
        rt.handle_line("{\"op\":\"stats\"}");
        assert_eq!(rt.replays(), 2, "the grown trace replays once");
        assert_ne!(grown, first_stats);
    }

    #[test]
    fn duplicate_ids_are_refused() {
        let mut rt = runtime("");
        rt.handle_line(&submit_line("r1", 0, 0.0));
        let h = rt.handle_line(&submit_line("r1", 0, 1.0));
        assert!(h.reply.contains("duplicate_id"), "{}", h.reply);
        assert_eq!(rt.accepted(), 1);
        assert_eq!(rt.rejected(), 1);
    }
}
