//! The line-delimited JSON wire protocol.
//!
//! One frame per line, one reply line per frame. Five operations:
//!
//! | op | fields | reply |
//! |---|---|---|
//! | `submit` | `id`, `tenant`, `slo`, `deadline_secs?`, `dataset`, `problem_seed`, `arrive_at?` | `{"ok":true,"op":"submit","id":...}` |
//! | `status` | `id` | request state, timings, answer |
//! | `cancel` | `id` | `{"ok":true,"op":"cancel",...}` |
//! | `stats` | — | per-tenant rollups |
//! | `shutdown` | — | `{"ok":true,"op":"shutdown"}`, then the server drains |
//!
//! Errors are structured: `{"ok":false,"error":"<code>","detail":"..."}`
//! with a stable machine-readable code. Malformed frames, unknown
//! tenants and oversized prompts are refused *here and in the runtime's
//! front door* — they never reach the scheduler's admission path.

use ftts_metrics::SloClass;
use ftts_workload::Dataset;

use crate::json::{escape, Json};

/// A validated `submit` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Submit {
    /// Caller-chosen request id (unique per server lifetime).
    pub id: String,
    /// Tenant the request bills to.
    pub tenant: u32,
    /// SLO class.
    pub slo: SloClass,
    /// Deadline slack after arrival, seconds (`f64::INFINITY` = none).
    pub deadline_secs: f64,
    /// Workload the problem is drawn from.
    pub dataset: Dataset,
    /// Problem seed within the dataset.
    pub problem_seed: u64,
    /// Arrival instant on the virtual serving timeline, seconds.
    pub arrive_at: f64,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Submit a request.
    Submit(Submit),
    /// Query one request's state.
    Status {
        /// The request id.
        id: String,
    },
    /// Cancel a request.
    Cancel {
        /// The request id.
        id: String,
    },
    /// Per-tenant statistics.
    Stats,
    /// Stop the server after replying.
    Shutdown,
}

/// A structured protocol error: a stable machine-readable code plus a
/// human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable error code (`malformed`, `unknown_op`, `unknown_tenant`,
    /// `oversized_prompt`, `quota_exhausted`, `duplicate_id`,
    /// `unknown_request`).
    pub code: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl WireError {
    /// Build an error.
    pub fn new(code: &'static str, detail: impl Into<String>) -> Self {
        Self {
            code,
            detail: detail.into(),
        }
    }

    /// Render the error reply line (without trailing newline).
    pub fn reply(&self) -> String {
        format!(
            "{{\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"}}",
            self.code,
            escape(&self.detail)
        )
    }
}

fn malformed(detail: impl Into<String>) -> WireError {
    WireError::new("malformed", detail)
}

fn require_str(obj: &Json, key: &str) -> Result<String, WireError> {
    obj.str_at(key)
        .map(str::to_string)
        .ok_or_else(|| malformed(format!("missing or non-string '{key}'")))
}

fn require_u64(obj: &Json, key: &str) -> Result<u64, WireError> {
    let x = obj
        .number_at(key)
        .ok_or_else(|| malformed(format!("missing or non-numeric '{key}'")))?;
    if x < 0.0 || x.fract() != 0.0 || x > 1.8e19 {
        return Err(malformed(format!("'{key}' must be a non-negative integer")));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(x as u64)
}

fn parse_slo(name: &str) -> Result<SloClass, WireError> {
    SloClass::ALL
        .into_iter()
        .find(|c| c.name() == name)
        .ok_or_else(|| malformed(format!("unknown slo '{name}' (interactive|standard|batch)")))
}

fn parse_dataset(name: &str) -> Result<Dataset, WireError> {
    match name {
        "amc2023" => Ok(Dataset::Amc2023),
        "aime2024" => Ok(Dataset::Aime2024),
        "math500" => Ok(Dataset::Math500),
        "humaneval" => Ok(Dataset::HumanEval),
        other => Err(malformed(format!(
            "unknown dataset '{other}' (amc2023|aime2024|math500|humaneval)"
        ))),
    }
}

/// Parse one frame line.
///
/// # Errors
///
/// Returns a structured [`WireError`] (code `malformed` or
/// `unknown_op`) on anything that is not a well-formed frame.
pub fn parse_frame(line: &str) -> Result<Frame, WireError> {
    let obj = Json::parse(line).map_err(|e| malformed(format!("bad JSON: {e}")))?;
    if !matches!(obj, Json::Object(_)) {
        return Err(malformed("frame must be a JSON object"));
    }
    let op = require_str(&obj, "op")?;
    match op.as_str() {
        "submit" => {
            let deadline_secs = match obj.at("deadline_secs") {
                None | Some(Json::Null) => f64::INFINITY,
                Some(Json::Number(x)) if *x >= 0.0 => *x,
                Some(_) => return Err(malformed("'deadline_secs' must be a non-negative number")),
            };
            let arrive_at = match obj.at("arrive_at") {
                None => 0.0,
                Some(Json::Number(x)) if *x >= 0.0 && x.is_finite() => *x,
                Some(_) => return Err(malformed("'arrive_at' must be a finite number >= 0")),
            };
            let tenant = require_u64(&obj, "tenant")?;
            Ok(Frame::Submit(Submit {
                id: require_str(&obj, "id")?,
                tenant: u32::try_from(tenant).map_err(|_| malformed("'tenant' must fit a u32"))?,
                slo: parse_slo(&require_str(&obj, "slo")?)?,
                deadline_secs,
                dataset: parse_dataset(&require_str(&obj, "dataset")?)?,
                problem_seed: require_u64(&obj, "problem_seed")?,
                arrive_at,
            }))
        }
        "status" => Ok(Frame::Status {
            id: require_str(&obj, "id")?,
        }),
        "cancel" => Ok(Frame::Cancel {
            id: require_str(&obj, "id")?,
        }),
        "stats" => Ok(Frame::Stats),
        "shutdown" => Ok(Frame::Shutdown),
        other => Err(WireError::new(
            "unknown_op",
            format!("unknown op '{other}' (submit|status|cancel|stats|shutdown)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_submit() {
        let f = parse_frame(
            r#"{"op":"submit","id":"r1","tenant":1,"slo":"interactive","deadline_secs":45.0,"dataset":"amc2023","problem_seed":11,"arrive_at":2.5}"#,
        )
        .expect("parse");
        let Frame::Submit(s) = f else {
            panic!("not a submit")
        };
        assert_eq!(s.id, "r1");
        assert_eq!(s.tenant, 1);
        assert_eq!(s.slo, SloClass::Interactive);
        assert_eq!(s.deadline_secs, 45.0);
        assert_eq!(s.dataset, Dataset::Amc2023);
        assert_eq!(s.problem_seed, 11);
        assert_eq!(s.arrive_at, 2.5);
    }

    #[test]
    fn submit_defaults_deadline_and_arrival() {
        let f = parse_frame(
            r#"{"op":"submit","id":"r1","tenant":0,"slo":"batch","dataset":"math500","problem_seed":1}"#,
        )
        .expect("parse");
        let Frame::Submit(s) = f else {
            panic!("not a submit")
        };
        assert_eq!(s.deadline_secs, f64::INFINITY);
        assert_eq!(s.arrive_at, 0.0);
    }

    #[test]
    fn structured_errors_name_the_defect() {
        let cases = [
            ("not json at all", "malformed"),
            (r#"{"op":"submit","id":"r1"}"#, "malformed"),
            (r#"{"op":"launch_missiles"}"#, "unknown_op"),
            (r#"{"id":"r1"}"#, "malformed"),
            (
                r#"{"op":"submit","id":"r","tenant":0,"slo":"gold","dataset":"math500","problem_seed":1}"#,
                "malformed",
            ),
            (
                r#"{"op":"submit","id":"r","tenant":0,"slo":"batch","dataset":"mnist","problem_seed":1}"#,
                "malformed",
            ),
            (
                r#"{"op":"submit","id":"r","tenant":-2,"slo":"batch","dataset":"math500","problem_seed":1}"#,
                "malformed",
            ),
        ];
        for (line, code) in cases {
            let err = parse_frame(line).expect_err(line);
            assert_eq!(err.code, code, "{line}");
            assert!(err.reply().starts_with("{\"ok\":false,\"error\":\""));
        }
    }

    #[test]
    fn simple_ops_parse() {
        assert_eq!(parse_frame(r#"{"op":"stats"}"#), Ok(Frame::Stats));
        assert_eq!(parse_frame(r#"{"op":"shutdown"}"#), Ok(Frame::Shutdown));
        assert_eq!(
            parse_frame(r#"{"op":"cancel","id":"x"}"#),
            Ok(Frame::Cancel {
                id: "x".to_string()
            })
        );
    }
}
