//! Protocol-level early-rejection regressions: malformed frames,
//! unknown tenants and oversized prompts each get a structured error
//! reply and never reach the scheduler's admission path — the runtime
//! records no submission for them and subsequent stats are untouched.

use ftts_serve::{ServeConfig, ServeRuntime};

fn runtime() -> ServeRuntime {
    let toml = r#"
[server]
seed = 7
n_beams = 4
max_batch = 4
window_secs = 0.2
memory_fraction = 0.5
max_prompt_tokens = 600

[[tenants]]
id = 0
weight = 2
kv_cap_frac = 0.0
max_open = 0

[[tenants]]
id = 1
weight = 1
kv_cap_frac = 0.0001
max_open = 1
"#;
    ServeRuntime::new(ServeConfig::parse(toml).expect("config"))
}

fn assert_rejected(rt: &mut ServeRuntime, line: &str, code: &str) {
    let before = (rt.accepted(), rt.rejected());
    let h = rt.handle_line(line);
    assert!(
        h.reply.contains("\"ok\":false"),
        "{line} must be refused, got {}",
        h.reply
    );
    assert!(
        h.reply.contains(&format!("\"error\":\"{code}\"")),
        "{line} must fail with '{code}', got {}",
        h.reply
    );
    assert!(!h.shutdown);
    assert_eq!(
        rt.accepted(),
        before.0,
        "a refused frame must not create a submission"
    );
    assert_eq!(rt.rejected(), before.1 + 1, "the refusal must be counted");
}

#[test]
fn malformed_frames_never_reach_admission() {
    let mut rt = runtime();
    for line in [
        "this is not json",
        "{\"op\":\"submit\"}",
        "{\"no_op_at_all\":1}",
        "{\"op\":\"submit\",\"id\":\"r\",\"tenant\":0,\"slo\":\"platinum\",\"dataset\":\"amc2023\",\"problem_seed\":1}",
        "{\"op\":\"submit\",\"id\":\"r\",\"tenant\":0,\"slo\":\"standard\",\"dataset\":\"cifar\",\"problem_seed\":1}",
    ] {
        assert_rejected(&mut rt, line, "malformed");
    }
    assert_rejected(&mut rt, "{\"op\":\"reboot\"}", "unknown_op");
    // The runtime saw only garbage: stats must report zero requests.
    let stats = rt.handle_line("{\"op\":\"stats\"}");
    assert!(stats.reply.contains("\"requests\":0"), "{}", stats.reply);
    assert!(stats.reply.contains("\"rejected\":6"), "{}", stats.reply);
}

#[test]
fn unknown_tenants_are_refused_with_a_structured_error() {
    let mut rt = runtime();
    assert_rejected(
        &mut rt,
        "{\"op\":\"submit\",\"id\":\"r\",\"tenant\":9,\"slo\":\"standard\",\"dataset\":\"amc2023\",\"problem_seed\":3}",
        "unknown_tenant",
    );
    let stats = rt.handle_line("{\"op\":\"stats\"}");
    assert!(stats.reply.contains("\"requests\":0"), "{}", stats.reply);
}

#[test]
fn oversized_prompts_are_refused_before_admission() {
    let mut rt = runtime();
    // Tenant 1's cap is 0.01% of the pool (~600 KB): any real prompt's
    // cold working set (a few MB) exceeds it.
    assert_rejected(
        &mut rt,
        "{\"op\":\"submit\",\"id\":\"r\",\"tenant\":1,\"slo\":\"standard\",\"dataset\":\"aime2024\",\"problem_seed\":3}",
        "oversized_prompt",
    );
    // The same problem bills fine to the uncapped tenant 0 — the
    // refusal above was the cap, not the problem.
    let ok = rt.handle_line(
        "{\"op\":\"submit\",\"id\":\"r\",\"tenant\":0,\"slo\":\"standard\",\"dataset\":\"aime2024\",\"problem_seed\":3}",
    );
    assert!(ok.reply.contains("\"ok\":true"), "{}", ok.reply);
}

#[test]
fn prompts_above_the_configured_maximum_are_refused() {
    let toml = "[server]\nseed = 7\nn_beams = 4\nmemory_fraction = 0.5\nmax_prompt_tokens = 1\n";
    let mut rt = ServeRuntime::new(ServeConfig::parse(toml).expect("config"));
    assert_rejected(
        &mut rt,
        "{\"op\":\"submit\",\"id\":\"r\",\"tenant\":0,\"slo\":\"standard\",\"dataset\":\"amc2023\",\"problem_seed\":3}",
        "oversized_prompt",
    );
}

#[test]
fn quota_exhaustion_is_refused_and_recovers_after_resolution() {
    let submit = |seed: u64| {
        format!(
            "{{\"op\":\"submit\",\"id\":\"q{seed}\",\"tenant\":0,\"slo\":\"standard\",\
             \"dataset\":\"amc2023\",\"problem_seed\":{seed},\"arrive_at\":0.0}}"
        )
    };
    let toml = r#"
[server]
seed = 7
n_beams = 4
memory_fraction = 0.5

[[tenants]]
id = 0
weight = 1
kv_cap_frac = 0.0
max_open = 2
"#;
    let mut rt = ServeRuntime::new(ServeConfig::parse(toml).expect("config"));
    assert!(rt.handle_line(&submit(1)).reply.contains("\"ok\":true"));
    assert!(rt.handle_line(&submit(2)).reply.contains("\"ok\":true"));
    assert_rejected(&mut rt, &submit(3), "quota_exhausted");
    // Resolving the backlog (any stats/status replay) frees the quota.
    rt.handle_line("{\"op\":\"stats\"}");
    assert!(
        rt.handle_line(&submit(3)).reply.contains("\"ok\":true"),
        "quota must free once the backlog resolves"
    );
}

#[test]
fn unknown_request_ids_error_on_status_and_cancel() {
    let mut rt = runtime();
    for op in ["status", "cancel"] {
        let h = rt.handle_line(&format!("{{\"op\":\"{op}\",\"id\":\"ghost\"}}"));
        assert!(
            h.reply.contains("\"error\":\"unknown_request\""),
            "{op}: {}",
            h.reply
        );
    }
}
