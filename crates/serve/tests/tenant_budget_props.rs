//! `TenantBudget` invariants under randomized tenant populations and
//! admit/release churn:
//!
//! 1. A tenant's reserved bytes never exceed its hard cap, no matter
//!    the admit/release interleaving.
//! 2. Weighted fair shares always sum to at most the pool, and no
//!    share exceeds its tenant's cap.
//! 3. Shares are monotone in weight: raising one tenant's weight
//!    (everything else fixed) never shrinks its share.
//! 4. Starvation-freedom under churn: a tenant with positive demand
//!    gets a positive share whatever open load the others hold.

use ftts_serve::TenantBudget;
use proptest::prelude::*;

/// A reproducible tenant population over a pool: ids 0..n with
/// derived weights/caps/quotas. Returns the ledger plus the per-tenant
/// caps so tests can assert against them independently.
fn build(pool: u64, n: usize, seed: u64) -> (TenantBudget, Vec<u64>) {
    let mut budget = TenantBudget::new(pool);
    let mut caps = Vec::new();
    for id in 0..n as u32 {
        let mix = seed.wrapping_mul(0x9E37_79B9).wrapping_add(u64::from(id));
        let weight = 1 + u32::try_from(mix % 4).expect("small");
        let cap = if mix % 3 == 0 {
            u64::MAX
        } else {
            (pool / 4).max(1) * (1 + mix % 3)
        };
        let max_open = usize::try_from(mix % 5).expect("small"); // 0 = unlimited
        budget.register(id, weight, cap, max_open);
        caps.push(cap);
    }
    (budget, caps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reserved_never_exceeds_cap_under_churn(
        pool in 1_000u64..1_000_000,
        n in 1usize..5,
        seed in 0u64..10_000,
        ops in prop::collection::vec((0u32..5, 0u64..400_000), 1..40),
    ) {
        let (mut budget, caps) = build(pool, n, seed);
        // Track our own open ledger so releases are always legal.
        let mut held: Vec<(u32, u64)> = Vec::new();
        for (i, &(t, bytes)) in ops.iter().enumerate() {
            let tenant = t % n as u32;
            if i % 3 == 2 && !held.is_empty() {
                let (rt, rb) = held.swap_remove(i % held.len());
                budget.release(rt, rb);
            } else if budget.try_admit(tenant, bytes).is_ok() {
                held.push((tenant, bytes));
            }
            // The cap invariant must hold at every step, not just at
            // quiescence.
            for id in 0..n as u32 {
                prop_assert!(
                    budget.reserved(id) <= caps[id as usize],
                    "tenant {} reserved {} over cap {}",
                    id,
                    budget.reserved(id),
                    caps[id as usize]
                );
            }
        }
        // Releasing everything drains the ledger completely.
        for (t, b) in held.drain(..) {
            budget.release(t, b);
        }
        for id in 0..n as u32 {
            prop_assert_eq!(budget.reserved(id), 0);
            prop_assert_eq!(budget.open(id), 0);
        }
    }

    #[test]
    fn admission_respects_caps_exactly(
        pool in 1_000u64..100_000,
        cap_frac in 1u64..4,
        requests in prop::collection::vec(1u64..50_000, 1..30),
    ) {
        let cap = pool / cap_frac;
        let mut budget = TenantBudget::new(pool);
        budget.register(0, 1, cap.max(1), 0);
        for &bytes in &requests {
            let before = budget.reserved(0);
            match budget.try_admit(0, bytes) {
                Ok(()) => prop_assert!(budget.reserved(0) <= cap.max(1), "cap held"),
                Err(_) => prop_assert_eq!(budget.reserved(0), before, "refusal is side-effect free"),
            }
        }
    }

    #[test]
    fn shares_sum_within_pool_and_respect_caps(
        pool in 1_000u64..1_000_000,
        n in 1usize..5,
        seed in 0u64..10_000,
        demands in prop::collection::vec(0u64..2_000_000, 5..6),
    ) {
        let (budget, caps) = build(pool, n, seed);
        let asks: Vec<(u32, u64)> = (0..n as u32).map(|id| (id, demands[id as usize % 5])).collect();
        let shares = budget.shares(&asks);
        prop_assert_eq!(shares.len(), n);
        prop_assert!(shares.iter().map(|&(_, s)| s).sum::<u64>() <= pool, "pool never oversubscribed");
        for &(tenant, share) in &shares {
            prop_assert!(
                share <= caps[tenant as usize],
                "tenant {} share {} over cap {}",
                tenant,
                share,
                caps[tenant as usize]
            );
        }
    }

    #[test]
    fn shares_are_monotone_in_weight(
        pool in 10_000u64..1_000_000,
        weight_lo in 1u32..4,
        bump in 1u32..4,
        other_weight in 1u32..5,
    ) {
        let mut lo = TenantBudget::new(pool);
        lo.register(0, weight_lo, u64::MAX, 0);
        lo.register(1, other_weight, u64::MAX, 0);
        let mut hi = TenantBudget::new(pool);
        hi.register(0, weight_lo + bump, u64::MAX, 0);
        hi.register(1, other_weight, u64::MAX, 0);
        let asks = [(0u32, pool), (1u32, pool)];
        let share = |b: &TenantBudget| b.shares(&asks).iter().find(|&&(t, _)| t == 0).unwrap().1;
        prop_assert!(
            share(&hi) >= share(&lo),
            "raising tenant 0's weight must not shrink its share ({} -> {})",
            share(&lo),
            share(&hi)
        );
    }

    #[test]
    fn no_starvation_under_churn(
        pool in 10_000u64..1_000_000,
        n in 2usize..5,
        seed in 0u64..10_000,
        greedy_open in prop::collection::vec(1u64..200_000, 0..10),
    ) {
        let (mut budget, _caps) = build(pool, n, seed);
        // Tenant 0 churns through arbitrary open load...
        for &bytes in &greedy_open {
            let _ = budget.try_admit(0, bytes);
        }
        // ...and every tenant with positive demand still gets a
        // positive share.
        let asks: Vec<(u32, u64)> = (0..n as u32).map(|id| (id, pool)).collect();
        for (tenant, share) in budget.shares(&asks) {
            prop_assert!(
                share > 0,
                "tenant {tenant} with positive demand must not starve"
            );
        }
    }
}
