//! Replaying the same two-tenant trace through two fresh runtimes must
//! produce byte-identical replies — the per-tenant summaries in the
//! `stats` frame included. The server simulates in virtual time from
//! explicit `arrive_at` stamps, so nothing about wall-clock scheduling
//! may leak into a reply.

use ftts_serve::{ServeConfig, ServeRuntime};

const CONFIG: &str = r#"
[server]
seed = 11
n_beams = 4
max_batch = 4
window_secs = 0.2
memory_fraction = 0.5

[[tenants]]
id = 0
weight = 3
kv_cap_frac = 0.0
max_open = 0

[[tenants]]
id = 1
weight = 1
kv_cap_frac = 0.5
max_open = 4
"#;

const TRACE: &[&str] = &[
    r#"{"op":"submit","id":"a1","tenant":0,"slo":"interactive","dataset":"amc2023","problem_seed":1,"deadline_secs":120.0,"arrive_at":0.0}"#,
    r#"{"op":"submit","id":"b1","tenant":1,"slo":"batch","dataset":"math500","problem_seed":2,"arrive_at":0.5}"#,
    r#"{"op":"submit","id":"a2","tenant":0,"slo":"standard","dataset":"amc2023","problem_seed":3,"arrive_at":1.0}"#,
    r#"{"op":"submit","id":"b2","tenant":1,"slo":"standard","dataset":"math500","problem_seed":4,"arrive_at":1.5}"#,
    r#"{"op":"status","id":"a1"}"#,
    r#"{"op":"cancel","id":"b2"}"#,
    r#"{"op":"status","id":"b1"}"#,
    r#"{"op":"stats"}"#,
];

fn replay() -> Vec<String> {
    let mut rt = ServeRuntime::new(ServeConfig::parse(CONFIG).expect("config"));
    TRACE
        .iter()
        .map(|line| rt.handle_line(line).reply)
        .collect()
}

#[test]
fn two_tenant_trace_replays_byte_identically() {
    let first = replay();
    let second = replay();
    assert_eq!(
        first, second,
        "fresh runtimes over the same trace must agree byte-for-byte"
    );
    // The stats frame carries both tenants' summaries — pin that the
    // determinism claim actually covers them.
    let stats = first.last().expect("stats reply");
    assert!(stats.contains("\"tenant\":0"), "{stats}");
    assert!(stats.contains("\"tenant\":1"), "{stats}");
    assert!(stats.contains("\"cancelled\":1"), "{stats}");
}

#[test]
fn stats_are_stable_across_repeated_queries() {
    let mut rt = ServeRuntime::new(ServeConfig::parse(CONFIG).expect("config"));
    for line in TRACE {
        rt.handle_line(line);
    }
    let once = rt.handle_line(r#"{"op":"stats"}"#).reply;
    let again = rt.handle_line(r#"{"op":"stats"}"#).reply;
    assert_eq!(
        once, again,
        "re-querying without new submissions must not change the summary"
    );
}
