//! Asymmetric Multi-Model Memory Allocation (paper Sec. 4.3).
//!
//! The generator decodes token-by-token (bandwidth-bound, KV-hungry);
//! the verifier prefills whole steps (compute-bound, saturating with
//! under 1 GB of KV). Splitting the shared budget evenly or by weight
//! size is therefore far from optimal. The planner minimizes the total
//! iteration time
//!
//! ```text
//! T_tot = ceil(N/B_pre) · T_roof^pre(B_pre, S)
//!       + ceil(N/B_dec) · S_dec · T_roof^dec(B_dec, S̄_cache)
//! ```
//!
//! subject to the shared KV budget `M` (Sec. 4.3.1), via a linear search
//! that is trivially fast (the paper reports < 1 ms; see the
//! `alloc_search` criterion bench). Two refinements make the search
//! faithful to a *caching* serving system:
//!
//! * **Retention-aware prefill cost.** A verifier cache smaller than the
//!   frontier's working set (`tree_tokens`) evicts paths between
//!   iterations and must re-prefill them; the expected verified tokens
//!   per beam grow from `S_dec` toward the full path as the miss rate
//!   rises. The same amplification applies to generator recomputation.
//! * **Offloading extension** (Sec. 4.3.2). Under extreme budgets the
//!   inactive model's KV is swapped to host memory, relaxing the coupled
//!   constraint into two independent ones at the price of PCIe
//!   transfers; the planner picks whichever strategy is faster.

use ftts_engine::{EngineConfig, MemoryPlan, MemoryPlanner, PlanContext};
use ftts_hw::Roofline;

/// The roofline-guided KV allocator.
#[derive(Debug, Clone, Default)]
pub struct RooflinePlanner {
    /// Permit the offloading extension (Sec. 4.3.2).
    pub allow_offload: bool,
}

/// Derived per-model byte requirements for a plan evaluation.
struct Demand {
    /// Bytes one in-flight verifier sequence occupies.
    ver_per_seq: u64,
    /// Bytes one in-flight generator sequence occupies.
    gen_per_seq: u64,
    /// Bytes the verifier needs to retain the whole frontier tree.
    ver_tree: u64,
    /// Bytes the generator needs to retain the whole frontier tree.
    gen_tree: u64,
}

impl RooflinePlanner {
    /// Planner with offloading disabled.
    pub fn new() -> Self {
        Self {
            allow_offload: false,
        }
    }

    /// Planner that may choose the offloading strategy.
    pub fn with_offload() -> Self {
        Self {
            allow_offload: true,
        }
    }

    fn demand(config: &EngineConfig, ctx: &PlanContext) -> Demand {
        let path = ctx.avg_ctx + ctx.step_tokens;
        Demand {
            ver_per_seq: config.models.ver_spec.kv_bytes(path.max(1)).max(1),
            gen_per_seq: config.models.gen_spec.kv_bytes(path.max(1)).max(1),
            ver_tree: config.models.ver_spec.kv_bytes(ctx.tree_tokens.max(1)),
            gen_tree: config.models.gen_spec.kv_bytes(ctx.tree_tokens.max(1)),
        }
    }

    /// Expected miss rate of a cache of `bytes` serving a working set of
    /// `tree` bytes.
    fn miss_rate(bytes: u64, tree: u64) -> f64 {
        if tree == 0 || bytes >= tree {
            0.0
        } else {
            1.0 - bytes as f64 / tree as f64
        }
    }

    /// Total time for one TTS iteration with `v` bytes of verifier KV
    /// and `g` bytes of generator KV. Returns `None` when infeasible.
    fn t_tot(
        gen: &Roofline,
        ver: &Roofline,
        ctx: &PlanContext,
        d: &Demand,
        v: u64,
        g: u64,
    ) -> Option<f64> {
        if v < d.ver_per_seq || g < d.gen_per_seq {
            return None;
        }
        let n = ctx.n_beams.max(1);
        // Verifier: evicted paths must be re-prefilled, so the expected
        // new tokens per beam grow with the miss rate. Without
        // cross-iteration verifier caching every verification re-prefills
        // the full input (the paper's `S`), so the miss rate is 1.
        let b_pre = ((v / d.ver_per_seq) as usize).clamp(1, n);
        let miss_v = if ctx.ver_caching {
            Self::miss_rate(v, d.ver_tree)
        } else {
            1.0
        };
        let ver_tokens = ctx.step_tokens as f64 + miss_v * ctx.avg_ctx as f64;
        let pre_batches = (n as f64 / b_pre as f64).ceil();
        let cached = (ctx.avg_ctx as f64 * (1.0 - miss_v)) as u64;
        let t_pre = ver
            .prefill_batch(b_pre, ver_tokens.round() as u64, cached)
            .seconds;

        // Generator: group serialization plus eviction-induced
        // recomputation.
        let b_dec = ((g / d.gen_per_seq) as usize).clamp(1, n);
        let dec_batches = (n as f64 / b_dec as f64).ceil();
        let cache_len = ctx.avg_ctx + ctx.step_tokens / 2;
        let t_dec = gen.decode_step(b_dec, cache_len).seconds;
        let miss_g = Self::miss_rate(g, d.gen_tree);
        let recompute_tokens = (miss_g * n as f64 * ctx.avg_ctx as f64).round() as u64;
        let t_recompute = if recompute_tokens > 0 {
            gen.prefill_batch(n, recompute_tokens / n as u64 + 1, 0)
                .seconds
        } else {
            0.0
        };
        Some(pre_batches * t_pre + dec_batches * ctx.step_tokens as f64 * t_dec + t_recompute)
    }

    /// Candidate verifier allocations: batch-aligned sizes (the paper's
    /// `B_pre` linear search) plus the retention point.
    fn candidates(ctx: &PlanContext, d: &Demand) -> Vec<u64> {
        let m = ctx.kv_budget_bytes;
        let n = ctx.n_beams.max(1) as u64;
        let mut out = Vec::new();
        let b_max = (m / d.ver_per_seq).min(n);
        // Up to 128 evenly spread batch sizes keep the search < 1 ms.
        let stride = (b_max / 128).max(1);
        let mut b = 1;
        while b <= b_max {
            out.push(b * d.ver_per_seq);
            b += stride;
        }
        // Retention points: exactly the tree, and tree + one batch —
        // only meaningful when the verifier cache persists.
        if ctx.ver_caching {
            for v in [d.ver_tree, d.ver_tree + d.ver_per_seq] {
                if v > 0 && v <= m {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The joint-constraint search (Sec. 4.3.1 + retention awareness).
    fn search_joint(
        &self,
        config: &EngineConfig,
        ctx: &PlanContext,
        gen: &Roofline,
        ver: &Roofline,
    ) -> Option<(MemoryPlan, f64)> {
        let m = ctx.kv_budget_bytes;
        let d = Self::demand(config, ctx);
        let n = ctx.n_beams.max(1);
        let mut best: Option<(MemoryPlan, f64)> = None;
        for v in Self::candidates(ctx, &d) {
            if v >= m {
                continue;
            }
            // The decoder is memory-sensitive: it gets the remainder.
            let g = m - v;
            let Some(t) = Self::t_tot(gen, ver, ctx, &d, v, g) else {
                continue;
            };
            let better = match &best {
                None => true,
                // Ties resolve toward the larger decoding allocation.
                Some((p, t_best)) => {
                    t < *t_best - 1e-12 || ((t - *t_best).abs() <= 1e-12 && g > p.gen_kv_bytes)
                }
            };
            if better {
                let b_pre = ((v / d.ver_per_seq) as usize).clamp(1, n);
                best = Some((
                    MemoryPlan {
                        gen_kv_bytes: g,
                        ver_kv_bytes: v,
                        ver_batch: b_pre,
                        offload: false,
                    },
                    t,
                ));
            }
        }
        best
    }

    /// The offload-relaxed evaluation (Sec. 4.3.2): each model may use
    /// the whole budget while active; the inactive model's working set
    /// crosses PCIe at each phase switch.
    fn search_offload(
        &self,
        config: &EngineConfig,
        ctx: &PlanContext,
        gen: &Roofline,
        ver: &Roofline,
    ) -> Option<(MemoryPlan, f64)> {
        let m = ctx.kv_budget_bytes;
        let d = Self::demand(config, ctx);
        let n = ctx.n_beams.max(1);
        let t = Self::t_tot(gen, ver, ctx, &d, m, m)?;
        let moved = d.ver_tree.min(m) + d.gen_tree.min(m);
        let overhead = config.device.pcie_transfer_seconds(moved) * 2.0;
        let b_pre = ((m / d.ver_per_seq) as usize).clamp(1, n);
        let plan = MemoryPlan {
            gen_kv_bytes: m,
            ver_kv_bytes: m,
            ver_batch: b_pre,
            offload: true,
        };
        Some((plan, t + overhead))
    }
}

impl MemoryPlanner for RooflinePlanner {
    fn name(&self) -> &'static str {
        "roofline"
    }

    fn plan(&mut self, config: &EngineConfig, ctx: &PlanContext) -> MemoryPlan {
        let gen = Roofline::new(config.device.clone(), config.models.gen_spec.clone());
        let ver = Roofline::new(config.device.clone(), config.models.ver_spec.clone());
        let joint = self.search_joint(config, ctx, &gen, &ver);
        let offload = if self.allow_offload {
            self.search_offload(config, ctx, &gen, &ver)
        } else {
            None
        };
        match (joint, offload) {
            (Some((p, tj)), Some((o, to))) => {
                if to < tj {
                    o
                } else {
                    p
                }
            }
            (Some((p, _)), None) => p,
            (None, Some((o, _))) => o,
            (None, None) => {
                // Degenerate budget: a minimal static split that at least
                // lets single-sequence work limp along.
                MemoryPlan {
                    gen_kv_bytes: ctx.kv_budget_bytes / 2,
                    ver_kv_bytes: ctx.kv_budget_bytes - ctx.kv_budget_bytes / 2,
                    ver_batch: 1,
                    offload: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_engine::{EngineConfig, ModelPairing, StaticSplitPlanner};
    use ftts_hw::{GpuDevice, GB};

    fn ctx(budget: u64, n: usize) -> PlanContext {
        // A mid-search frontier: ~50 unique tree tokens per beam per
        // level of sharing — realistic for beam search with B=4.
        PlanContext {
            kv_budget_bytes: budget,
            n_beams: n,
            avg_ctx: 768,
            step_tokens: 200,
            ver_seq: 968,
            tree_tokens: (n as u64) * 320 + 768,
            ver_caching: true,
        }
    }

    fn config() -> EngineConfig {
        EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_7b())
    }

    #[test]
    fn plan_always_fits_the_budget() {
        let mut p = RooflinePlanner::new();
        for budget in [GB / 4, GB, 4 * GB, 12 * GB] {
            for n in [4usize, 64, 512] {
                let plan = p.plan(&config(), &ctx(budget, n));
                assert!(plan.fits(budget), "budget {budget} n {n}");
                assert!(plan.ver_batch >= 1);
            }
        }
    }

    #[test]
    fn verifier_gets_a_small_share_despite_its_size() {
        // The asymmetry insight: under a binding budget the 1.5B
        // generator receives far more KV than the weight-proportional
        // split would give it (the 7B verifier saturates once its batch
        // and working set fit), correcting the naive allocation.
        let mut roofline = RooflinePlanner::new();
        let mut static_split = StaticSplitPlanner;
        let c = ctx(4 * GB, 64);
        let smart = roofline.plan(&config(), &c);
        let naive = static_split.plan(&config(), &c);
        let smart_share = smart.gen_kv_bytes as f64 / (4 * GB) as f64;
        let naive_share = naive.gen_kv_bytes as f64 / (4 * GB) as f64;
        assert!(
            smart_share > naive_share,
            "roofline gen share {smart_share:.2} must beat weight-proportional {naive_share:.2}"
        );
        assert!(smart.fits(4 * GB));
    }

    #[test]
    fn verifier_keeps_its_working_set_when_affordable() {
        // With plenty of memory the verifier allocation should cover the
        // frontier tree so verification stays incremental.
        let mut p = RooflinePlanner::new();
        let c = ctx(16 * GB, 64);
        let d = RooflinePlanner::demand(&config(), &c);
        let plan = p.plan(&config(), &c);
        assert!(
            plan.ver_kv_bytes >= d.ver_tree,
            "verifier {} should retain the tree {}",
            plan.ver_kv_bytes,
            d.ver_tree
        );
    }

    #[test]
    fn smart_plan_beats_static_split_on_t_tot() {
        let cfg = config();
        let c = ctx(6 * GB, 128);
        let gen = Roofline::new(cfg.device.clone(), cfg.models.gen_spec.clone());
        let ver = Roofline::new(cfg.device.clone(), cfg.models.ver_spec.clone());
        let mut roofline = RooflinePlanner::new();
        let smart = roofline.plan(&cfg, &c);
        let mut naive = StaticSplitPlanner;
        let static_plan = naive.plan(&cfg, &c);
        let d = RooflinePlanner::demand(&cfg, &c);
        let eval = |plan: &MemoryPlan| {
            RooflinePlanner::t_tot(&gen, &ver, &c, &d, plan.ver_kv_bytes, plan.gen_kv_bytes)
                .unwrap_or(f64::INFINITY)
        };
        assert!(
            eval(&smart) <= eval(&static_plan),
            "roofline {} must beat static {}",
            eval(&smart),
            eval(&static_plan)
        );
    }

    #[test]
    fn tiny_budget_without_offload_still_returns_a_plan() {
        let mut p = RooflinePlanner::new();
        let plan = p.plan(&config(), &ctx(64 * 1024 * 1024, 64));
        assert!(plan.fits(64 * 1024 * 1024));
    }

    #[test]
    fn offload_kicks_in_only_when_profitable() {
        let mut p = RooflinePlanner::with_offload();
        // Plenty of memory: no reason to pay PCIe.
        let rich = p.plan(&config(), &ctx(12 * GB, 64));
        assert!(!rich.offload, "rich budget should not offload");
        // Starved: the 7B verifier alone exceeds the joint budget's
        // verifier share, so time-multiplexing wins.
        let poor_budget = 400 * 1024 * 1024;
        let poor = p.plan(&config(), &ctx(poor_budget, 64));
        assert!(poor.fits(poor_budget));
        assert!(poor.offload, "starved budget should offload: {poor:?}");
    }

    #[test]
    fn planner_name_is_roofline() {
        assert_eq!(RooflinePlanner::new().name(), "roofline");
        assert!(RooflinePlanner::with_offload().allow_offload);
    }
}
