//! Dataset-level evaluation sweeps shared by the figure harnesses.

use ftts_engine::EngineError;
use ftts_metrics::{pass_at_n, LatencyBreakdown, Summary};
use ftts_search::SearchKind;
use ftts_workload::Dataset;
use serde::{Deserialize, Serialize};

use crate::server::TtsServer;

/// What to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Beams per request (`n`).
    pub n: usize,
    /// Search algorithm.
    pub kind: SearchKind,
    /// Number of problems from the dataset.
    pub problems: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl EvalConfig {
    /// A small default sweep for quick runs.
    pub fn quick(n: usize) -> Self {
        Self {
            n,
            kind: SearchKind::BeamSearch,
            problems: 8,
            seed: 20240,
        }
    }
}

/// Aggregated results over a problem set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Mean precise goodput, tokens/s.
    pub goodput: f64,
    /// Mean end-to-end completion latency, seconds.
    pub latency: f64,
    /// Mean latency breakdown.
    pub breakdown: LatencyBreakdown,
    /// Top-1 (majority-vote) accuracy over the problem set.
    pub top1: f64,
    /// Pass@N accuracy at N ∈ {1, 4, 16, 64, n}.
    pub pass_at: Vec<(usize, f64)>,
    /// Mean speculative-token efficiency (0 when speculation is off).
    pub spec_efficiency: f64,
    /// Total evicted KV blocks (generator) across the sweep.
    pub evicted_blocks: u64,
    /// Per-problem goodput spread.
    pub goodput_summary: Summary,
}

/// Run `server` over the first `cfg.problems` problems of `dataset` and
/// aggregate the paper's metrics.
///
/// # Errors
///
/// Propagates the first [`EngineError`] (infeasible memory budget).
pub fn evaluate(
    server: &TtsServer,
    dataset: Dataset,
    cfg: EvalConfig,
) -> Result<EvalSummary, EngineError> {
    let problems = dataset.problems(cfg.problems, cfg.seed);
    let mut goodputs = Vec::with_capacity(problems.len());
    let mut latencies = Vec::with_capacity(problems.len());
    let mut breakdown = LatencyBreakdown::default();
    let mut top1 = 0usize;
    let ns: Vec<usize> = [1usize, 4, 16, 64]
        .iter()
        .copied()
        .filter(|&k| k < cfg.n)
        .chain([cfg.n])
        .collect();
    let mut passes = vec![0usize; ns.len()];
    let mut spec_eff = 0.0;
    let mut evicted = 0u64;
    for problem in &problems {
        let outcome = server.serve(problem, cfg.n, cfg.kind)?;
        goodputs.push(outcome.goodput());
        latencies.push(outcome.latency());
        breakdown.accumulate(outcome.stats.breakdown());
        if outcome.top1_correct() {
            top1 += 1;
        }
        let candidates = outcome.stats.candidates();
        for (slot, &k) in ns.iter().enumerate() {
            if pass_at_n(&candidates, k) {
                passes[slot] += 1;
            }
        }
        spec_eff += outcome.stats.spec.efficiency();
        evicted += outcome.stats.gen_cache.evicted_blocks;
    }
    let count = problems.len().max(1) as f64;
    Ok(EvalSummary {
        goodput: goodputs.iter().sum::<f64>() / count,
        latency: latencies.iter().sum::<f64>() / count,
        breakdown: breakdown.scaled(1.0 / count),
        top1: top1 as f64 / count,
        pass_at: ns
            .iter()
            .zip(passes)
            .map(|(&k, p)| (k, p as f64 / count))
            .collect(),
        spec_efficiency: spec_eff / count,
        evicted_blocks: evicted,
        goodput_summary: Summary::of(&goodputs),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_engine::ModelPairing;
    use ftts_hw::GpuDevice;

    #[test]
    fn evaluate_aggregates_over_problems() {
        let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        let cfg = EvalConfig {
            n: 8,
            kind: SearchKind::BeamSearch,
            problems: 4,
            seed: 5,
        };
        let summary = evaluate(&server, Dataset::Amc2023, cfg).unwrap();
        assert!(summary.goodput > 0.0);
        assert!(summary.latency > 0.0);
        assert!((0.0..=1.0).contains(&summary.top1));
        assert_eq!(summary.goodput_summary.n, 4);
        // Pass@N grid ends at n itself and is monotone.
        assert_eq!(summary.pass_at.last().unwrap().0, 8);
        for w in summary.pass_at.windows(2) {
            assert!(w[1].1 >= w[0].1, "pass@N must be monotone in N");
        }
    }

    #[test]
    fn quick_config_is_small() {
        let cfg = EvalConfig::quick(16);
        assert_eq!(cfg.n, 16);
        assert!(cfg.problems <= 16);
    }
}
