//! **FastTTS** — a serving system that makes verifier-guided Test-Time
//! Scaling practical on memory-constrained edge devices.
//!
//! This crate is the paper's primary contribution, layered on the
//! `ftts-engine` substrate as three synergistic optimizations plus a
//! plug-and-play serving facade:
//!
//! * **Speculative Beam Extension (S)** — configured via
//!   [`SpecConfig`]: idle GPU slots left by straggler reasoning paths are
//!   filled with speculative future steps, prioritized by SelectSPEC
//!   score bins, with LookAhead Verification piggybacking completed
//!   continuations onto the current verifier pass (Sec. 4.1).
//! * **Dynamic Prefix-Aware Scheduling (P)** — [`PrefixAwareOrder`]
//!   greedily orders the frontier to maximize consecutive shared
//!   prefixes, minimizing KV-cache evictions (Sec. 4.2, Appendix A).
//!   [`WorstCaseOrder`] is the adversarial ablation baseline.
//! * **Asymmetric Multi-Model Memory Allocation (M)** —
//!   [`RooflinePlanner`] runs the paper's linear search over verifier
//!   batch sizes to find the KV split minimizing total iteration time,
//!   and extends the search space with KV offloading when memory is
//!   extremely constrained (Sec. 4.3).
//!
//! [`TtsServer`] bundles it all: `TtsServer::fasttts(...)` serves with
//! every optimization on; `TtsServer::vllm_baseline(...)` reproduces the
//! paper's baseline (two statically-sized vLLM instances, FIFO
//! scheduling, no speculation). [`AblationFlags`] selects any subset for
//! the Fig. 16/18 breakdowns. [`ServerSim`] replays request arrival
//! streams with two-phase preemptive scheduling (Sec. 4.1.2), and
//! [`BatchedServerSim`] scales that to *continuous batching across
//! requests*: mid-flight admission, co-batched decode, equal-share KV
//! pool reservations and vLLM-style preemption — see `batch_server`'s
//! module docs for the execution model and its batch-1 lockstep
//! equivalence guarantee. [`EventServerSim`] goes one step further and
//! drops the lockstep round barrier entirely: *event-driven scheduling
//! at iteration granularity*, where requests advance at their own
//! cadence and co-batch opportunistically inside a configurable window
//! ([`EventConfig::window_secs`]) — with batch-1 and infinite-window
//! modes that reproduce [`ServerSim`] and [`BatchedServerSim`]
//! bit-for-bit as correctness anchors (see `event_server`'s module
//! docs). [`TimelineServerSim`] makes that event loop *honest*: every
//! kernel launch lands as a costed segment on a global per-device
//! timeline ([`DeviceTimeline`]), cross-launch decode overlap is priced
//! retroactively, and arrivals can join the in-flight decode batch at
//! token-chunk boundaries ([`TimelineConfig`]) — with an anchored mode
//! that reproduces [`EventServerSim`] bit-for-bit (see `timeline`'s
//! module docs).
//!
//! For evaluation at scale, the `sweep` module provides a parallel
//! harness: [`ServerSim::run_parallel`] replays independent request
//! streams across OS threads, and [`sweep`]/[`SweepJob`] fan a
//! configuration grid out the same way — with results guaranteed (and
//! tested) bit-identical to sequential execution thanks to the stack's
//! stable-key deterministic seeding. See `sweep`'s module docs for the
//! exact determinism rules.
//!
//! # Quickstart
//!
//! ```
//! use ftts_core::TtsServer;
//! use ftts_engine::ModelPairing;
//! use ftts_hw::GpuDevice;
//! use ftts_search::SearchKind;
//! use ftts_workload::Dataset;
//!
//! let problem = Dataset::Aime2024.problems(1, 7)[0];
//! let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
//! let outcome = server.serve(&problem, 16, SearchKind::BeamSearch)?;
//! assert!(outcome.goodput() > 0.0);
//! # Ok::<(), ftts_engine::EngineError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod batch_server;
mod eval;
mod event_server;
mod faults;
mod fleet;
mod memalloc;
mod prefix_sched;
mod server;
mod sweep;
mod tenant;
mod timeline;

pub use batch_server::{BatchConfig, BatchRun, BatchedServerSim};
pub use eval::{evaluate, EvalConfig, EvalSummary};
pub use event_server::{EventConfig, EventServerSim, PrewarmPrefix, RunDirectives};
pub use faults::{
    degraded_beams, FaultEvent, FaultKind, FaultPlan, FaultPolicy, RobustConfig, StormConfig,
};
pub use fleet::{FleetConfig, FleetRun, FleetSim, HedgeConfig, RoutePolicy};
pub use ftts_engine::{
    EngineError, RequestRun, RunPhase, SpecConfig, StepStatus, VerifyCharge, VerifyChunk,
};
pub use ftts_kv::{HostTier, HotnessPolicy, KvTierConfig, LruAccessHotness, TierStats};
pub use memalloc::RooflinePlanner;
pub use prefix_sched::{PrefixAwareOrder, WorstCaseOrder};
pub use server::{AblationFlags, ServeOutcome, ServedRequest, ServerSim, TtsServer};
pub use sweep::{parallel_map, sweep, SweepJob};
pub use tenant::{TenantPolicy, TenantSpec, MAX_TENANTS};
pub use timeline::{
    DeviceTimeline, Segment, SegmentKind, TimelineConfig, TimelineServerSim, TimelineTuning,
};
