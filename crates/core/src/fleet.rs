//! N-device fleet serving: routing, crash failover, hedged stragglers.
//!
//! A [`FleetSim`] runs one [`EventServerSim`] timeline per device behind
//! a router. The edge "fleet" the paper targets is a handful of flaky
//! accelerators, so robustness is built into the routing layer rather
//! than bolted on:
//!
//! * **Pluggable routing** ([`RoutePolicy`]): round-robin, join-shortest
//!   -queue, prefix-affinity (follow the replica whose
//!   [`HostTier`](crate::HostTier) holds the warm prompt prefix), and
//!   health-aware EWMA-latency routing (sick replicas — degrade windows,
//!   crash recoveries — report inflated completion latencies and shed
//!   new load).
//! * **Crash failover.** Device-scoped crash events
//!   ([`FaultKind::DeviceCrash`](crate::FaultKind)) are stripped from
//!   the per-device fault plan and handled here: every leg in flight or
//!   queued on the crashed replica is cancelled there (device KV lost —
//!   the PR 6 replay path; parked tier bytes unparked — nothing
//!   strands), and, with [`FleetConfig::failover`] on, re-routed to a
//!   surviving replica after [`FleetConfig::migration_delay_secs`]. A
//!   leg that had already prefilled hands its prompt prefix to the
//!   target's host tier ([`PrewarmPrefix`]) so the migrated attempt
//!   warm-starts (PR 7 `WarmStart`) instead of re-prefilling. The
//!   migration budget is booked into the winning record's
//!   `LatencyBreakdown::fault` (hand-off) and `swap` (warm swap-in,
//!   booked by the engine) buckets, so busy buckets stay comparable to
//!   a crash-free run. Without failover the crash events stay in the
//!   device plan: the naive baseline stalls out the outage and replays
//!   lost KV on the same replica.
//! * **Hedged stragglers.** Past a p99-based hedge delay
//!   ([`HedgeConfig`]), the router duplicates a still-running request on
//!   a second replica. First finisher wins; the loser is cancelled with
//!   full pool/tier reclaim ([`RunDirectives`]). Scheduling moves
//!   clocks, never outcomes — both replicas of a request compute the
//!   same answer from the same `(engine seed, problem seed)` — so a
//!   hedge can only move a completion earlier, never change it.
//!
//! # Determinism
//!
//! The routing decision loop is sequential over a merged, totally
//! ordered event timeline (arrivals, crashes, hedge checks, hedge
//! resolutions), and every router observable (queue depths, completed
//! latencies, EWMA health) is derived from per-device simulations that
//! are themselves deterministic. The final authoritative device runs
//! execute in parallel on the [`sweep`](crate::sweep) work-stealing
//! harness and are `debug_assert`-checked bit-identical to the
//! sequential caches — fleet results are invariant to worker-thread
//! count. A 1-device fleet with the pass-through router is bit-identical
//! to bare [`EventServerSim`], faulted and fault-free (enforced in
//! `crates/core/tests/fleet.rs`).

use ftts_engine::EngineError;
use ftts_metrics::{FleetSummary, StreamRecord, StreamSummary};
use ftts_search::SearchKind;
use ftts_workload::RequestArrival;

use crate::batch_server::BatchRun;
use crate::event_server::{EventConfig, EventServerSim, PrewarmPrefix, RunDirectives};
use crate::faults::FaultPlan;
use crate::server::{ServedRequest, TtsServer};
use crate::sweep::parallel_map;
use crate::timeline::{TimelineServerSim, TimelineTuning};

/// How the fleet router picks a replica for a fresh (or migrated, or
/// hedged) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Rotate over the alive replicas in device order. On a 1-device
    /// fleet this is the pass-through policy of the bit-equivalence
    /// anchor.
    RoundRobin,
    /// Join-shortest-queue: the alive replica with the fewest
    /// outstanding legs (assigned, not yet finished), ties to the
    /// lowest device id.
    Jsq,
    /// Prefix affinity: route to the replica that most recently
    /// completed the same problem — its [`HostTier`](crate::HostTier)
    /// holds the published warm prefix, so the request admits warm.
    /// Falls back to a replica already working the problem, then to
    /// join-shortest-queue.
    PrefixAffinity,
    /// Health-aware routing: score each alive replica by its EWMA of
    /// observed completion latencies times (outstanding + 1), and pick
    /// the minimum. Degraded or recovering replicas report long
    /// latencies and organically shed new load.
    HealthEwma,
}

/// Hedged-execution knobs: when a request has been in flight longer
/// than `delay_factor` × the router-observed p99 latency, duplicate it
/// on a second replica; first finisher wins and the loser is cancelled
/// with full reclaim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Multiple of the observed p99 completion latency to wait before
    /// hedging.
    pub delay_factor: f64,
    /// Completions the router must have observed before it trusts its
    /// p99 estimate enough to hedge.
    pub min_samples: usize,
    /// Hedge delay floor, seconds.
    pub min_delay_secs: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            delay_factor: 1.0,
            min_samples: 3,
            min_delay_secs: 1.0,
        }
    }
}

/// Fleet-level serving knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// The per-device event-driven scheduling policy (every replica
    /// runs the same scheduler; the servers themselves may differ).
    pub event: EventConfig,
    /// The routing policy.
    pub route: RoutePolicy,
    /// Crash failover: when on, device-crash events are handled at the
    /// routing layer — interrupted legs migrate to surviving replicas
    /// and the router steers around downtime windows. When off (the
    /// naive baseline) crashes stay in the device plan as outages.
    pub failover: bool,
    /// Seconds a migrated leg spends in hand-off (re-route, host-path
    /// transfer) before it re-arrives at the failover target. Booked to
    /// the winning record's fault bucket.
    pub migration_delay_secs: f64,
    /// Hedged execution for stragglers; `None` disables hedging.
    pub hedge: Option<HedgeConfig>,
    /// Optional global-timeline honesty features for the per-device
    /// scheduler (retroactive contention pricing, token-granularity
    /// decode joins — see [`crate::TimelineConfig`]). `None` keeps the
    /// plain event-driven scheduler, bit-identical to the pre-timeline
    /// fleet.
    pub timeline: Option<TimelineTuning>,
}

impl FleetConfig {
    /// The given event policy with routing `route`, failover on, a
    /// 2-second migration hand-off and no hedging.
    pub fn new(event: EventConfig, route: RoutePolicy) -> Self {
        Self {
            event,
            route,
            failover: true,
            migration_delay_secs: 2.0,
            hedge: None,
            timeline: None,
        }
    }

    /// Enable hedged execution.
    pub fn with_hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Run every device on the global-timeline scheduler with the given
    /// honesty tuning.
    pub fn with_timeline(mut self, tuning: TimelineTuning) -> Self {
        self.timeline = Some(tuning);
        self
    }

    /// Disable crash failover (the naive baseline: crashes become
    /// on-device outages).
    pub fn without_failover(mut self) -> Self {
        self.failover = false;
        self
    }
}

/// Why a leg exists on its device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LegRole {
    /// The request's original placement.
    Primary,
    /// A crash-failover re-route of an interrupted leg.
    Migrated,
    /// A hedged duplicate of a straggling leg.
    Hedge,
}

impl LegRole {
    /// Winner tie-break rank (primary beats migrated beats hedge at an
    /// equal finish instant).
    fn rank(self) -> u8 {
        match self {
            LegRole::Primary => 0,
            LegRole::Migrated => 1,
            LegRole::Hedge => 2,
        }
    }
}

/// One placement of a request on a device.
#[derive(Debug, Clone, Copy)]
struct Leg {
    req: usize,
    device: usize,
    at: f64,
    cancel_at: f64,
    prewarm: Option<PrewarmPrefix>,
    role: LegRole,
    /// The other half of a hedge pair (primary ↔ hedge).
    partner: Option<usize>,
}

/// One scheduled fleet event. Total order: `(at, rank, seq)` — crashes
/// resolve before hedges and arrivals at the same instant, and the
/// insertion sequence breaks exact ties deterministically.
#[derive(Debug, Clone, Copy)]
struct FleetEvent {
    at: f64,
    rank: u8,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    Crash { device: usize, down_for: f64 },
    Resolve { pair: usize },
    HedgeCheck { leg: usize },
    Arrival { req: usize },
}

impl PartialEq for FleetEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at.total_cmp(&other.at).is_eq() && self.rank == other.rank && self.seq == other.seq
    }
}
impl Eq for FleetEvent {}
impl PartialOrd for FleetEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FleetEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .total_cmp(&other.at)
            .then(self.rank.cmp(&other.rank))
            .then(self.seq.cmp(&other.seq))
    }
}

/// A device's cached simulation: the authoritative timeline for its
/// currently assigned legs and directives.
#[derive(Debug, Clone)]
struct DeviceCache {
    run: BatchRun,
    /// Global leg ids in the arrival order fed to the simulator —
    /// `run.served[i]` is the record of leg `order[i]`.
    order: Vec<usize>,
}

/// What one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-device runs over the legs each device executed (including
    /// cancelled crash victims and hedge losers — the device-side view
    /// of wasted work).
    pub device_runs: Vec<BatchRun>,
    /// Per original request, in arrival order: the record of the leg
    /// that delivered the answer (migration budget folded in), or the
    /// primary leg's shed record when no leg completed.
    pub served: Vec<ServedRequest>,
    /// The device whose leg served each request (`None` when shed
    /// everywhere).
    pub serving_device: Vec<Option<usize>>,
    /// Legs re-routed to a surviving replica after a crash.
    pub migrations: u64,
    /// Hedged duplicates launched.
    pub hedges_launched: u64,
    /// Hedges that delivered the answer.
    pub hedges_won: u64,
    /// Hedges cancelled as losers (or lost to crashes).
    pub hedges_wasted: u64,
    /// Injected device downtime, summed across devices.
    pub crash_downtime_secs: f64,
}

impl FleetRun {
    /// Fleet-level per-request stream records (each original request
    /// exactly once, attributed to its winning leg).
    pub fn fleet_records(&self) -> Vec<StreamRecord> {
        self.served
            .iter()
            .map(|r| StreamRecord {
                arrived_at: r.arrived_at,
                finished_at: r.finished_at,
                queue_delay: r.queue_delay(),
                accepted_tokens: r.accepted_tokens(),
                generator_secs: r.outcome.stats.breakdown().generator_side(),
                verifier_secs: r.outcome.stats.breakdown().verifier,
                slo: r.slo,
                deadline: r.deadline,
                completed: !r.shed,
            })
            .collect()
    }

    /// The fleet-level stream summary (deadline-hit rate, SLO goodput,
    /// warm hits summed across the fleet's tiers).
    pub fn fleet_summary(&self) -> StreamSummary {
        let records = self.fleet_records();
        let (sweeps, seqs) = self.device_runs.iter().fold((0u64, 0u64), |(sw, sq), r| {
            (sw + r.ver_sweeps, sq + r.ver_seqs)
        });
        let occupancy = if sweeps > 0 {
            seqs as f64 / sweeps as f64
        } else {
            0.0
        };
        let (hits, demotions) = self.device_runs.iter().fold((0u64, 0u64), |(h, d), r| {
            (h + r.kv_tier_hits, d + r.kv_tier_demotions)
        });
        StreamSummary::of(&records)
            .with_verifier_occupancy(occupancy)
            .with_kv_tier(hits, demotions)
    }

    /// The full cross-device summary.
    pub fn summary(&self) -> FleetSummary {
        FleetSummary {
            devices: self.device_runs.len(),
            per_device: self
                .device_runs
                .iter()
                .map(BatchRun::stream_summary)
                .collect(),
            fleet: self.fleet_summary(),
            migrations: self.migrations,
            hedges_launched: self.hedges_launched,
            hedges_won: self.hedges_won,
            hedges_wasted: self.hedges_wasted,
            crash_downtime_secs: self.crash_downtime_secs,
        }
    }

    /// Warm prefix hits summed across every device's host tier.
    pub fn warm_hits(&self) -> u64 {
        self.device_runs.iter().map(|r| r.kv_tier_hits).sum()
    }
}

/// Serves one arrival stream across N per-device [`EventServerSim`]
/// timelines behind a router. See the module docs for the execution
/// and determinism model.
#[derive(Debug, Clone)]
pub struct FleetSim {
    devices: Vec<TtsServer>,
    n: usize,
    kind: SearchKind,
    config: FleetConfig,
}

impl FleetSim {
    /// A fleet of `devices` replicas (heterogeneous servers are fine),
    /// each answering with `n` beams under the shared event-driven
    /// policy in `config`.
    pub fn new(devices: Vec<TtsServer>, n: usize, kind: SearchKind, config: FleetConfig) -> Self {
        assert!(!devices.is_empty(), "a fleet needs at least one device");
        assert!(
            config.migration_delay_secs >= 0.0,
            "migration delay must be non-negative"
        );
        if let Some(h) = &config.hedge {
            assert!(h.delay_factor > 0.0, "hedge delay factor must be positive");
            assert!(h.min_delay_secs >= 0.0, "hedge floor must be non-negative");
        }
        Self {
            devices,
            n,
            kind,
            config,
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet has no devices (never true — construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Serve the stream with every device fault-free.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit a device's
    /// entire pool.
    pub fn run(&self, arrivals: &[RequestArrival]) -> Result<FleetRun, EngineError> {
        let plans = vec![FaultPlan::none(); self.devices.len()];
        self.run_faulted(arrivals, &plans)
    }

    /// Serve the stream while `plans[d]` injects faults into device
    /// `d`. Device-crash events are handled at the routing layer when
    /// [`FleetConfig::failover`] is on, and left in the device plan (an
    /// on-device outage) when it is off.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit a device's
    /// entire pool.
    pub fn run_faulted(
        &self,
        arrivals: &[RequestArrival],
        plans: &[FaultPlan],
    ) -> Result<FleetRun, EngineError> {
        assert_eq!(plans.len(), self.devices.len(), "one fault plan per device");
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival times must be non-decreasing"
        );
        // (`+ 0.0` normalizes the empty sum's -0.0 identity.)
        let crash_downtime_secs: f64 = plans
            .iter()
            .flat_map(|p| p.crash_windows())
            .map(|(_, d)| d)
            .sum::<f64>()
            + 0.0;
        // With failover, crashes are routing-layer events and the
        // device timeline never sees them; without it they stay put.
        let (device_plans, crash_windows): (Vec<FaultPlan>, Vec<Vec<(f64, f64)>>) =
            if self.config.failover {
                plans
                    .iter()
                    .map(|p| (p.without_crashes(), p.crash_windows()))
                    .unzip()
            } else {
                (plans.to_vec(), vec![Vec::new(); plans.len()])
            };

        let mut engine = FleetEngine {
            sim: self,
            arrivals,
            device_plans: &device_plans,
            crash_windows: &crash_windows,
            legs: Vec::new(),
            legs_by_device: vec![Vec::new(); self.devices.len()],
            states: vec![None; self.devices.len()],
            pairs: Vec::new(),
            events: std::collections::BinaryHeap::new(),
            event_seq: 0,
            rr_next: 0,
            migrations: 0,
        };
        // Seed the timeline: every arrival, plus (failover only) every
        // crash window start.
        for (req, a) in arrivals.iter().enumerate() {
            engine.push_event(a.at, EventKind::Arrival { req });
        }
        for (device, windows) in crash_windows.iter().enumerate() {
            for &(at, down_for) in windows {
                engine.push_event(at, EventKind::Crash { device, down_for });
            }
        }
        engine.drive()?;
        engine.finish(crash_downtime_secs)
    }
}

/// Run one device's arrival sub-stream under the fleet's scheduler:
/// the plain event loop by default, or the global device timeline when
/// [`FleetConfig::with_timeline`] opted in.
fn device_run(
    sim: &FleetSim,
    d: usize,
    sub: &[RequestArrival],
    plan: &FaultPlan,
    directives: &RunDirectives,
) -> Result<BatchRun, EngineError> {
    match sim.config.timeline {
        Some(tuning) => TimelineServerSim::new(
            sim.devices[d].clone(),
            sim.n,
            sim.kind,
            tuning.config(sim.config.event),
        )
        .run_directed(sub, plan, directives),
        None => EventServerSim::new(sim.devices[d].clone(), sim.n, sim.kind, sim.config.event)
            .run_directed(sub, plan, directives),
    }
}

/// The sequential decision loop's working state.
struct FleetEngine<'a> {
    sim: &'a FleetSim,
    arrivals: &'a [RequestArrival],
    device_plans: &'a [FaultPlan],
    crash_windows: &'a [Vec<(f64, f64)>],
    legs: Vec<Leg>,
    legs_by_device: Vec<Vec<usize>>,
    states: Vec<Option<DeviceCache>>,
    /// Hedge pairs `(primary leg, hedge leg)`.
    pairs: Vec<(usize, usize)>,
    events: std::collections::BinaryHeap<std::cmp::Reverse<FleetEvent>>,
    event_seq: u64,
    rr_next: usize,
    migrations: u64,
}

impl<'a> FleetEngine<'a> {
    fn push_event(&mut self, at: f64, kind: EventKind) {
        let rank = match kind {
            EventKind::Crash { .. } => 0,
            EventKind::Resolve { .. } => 1,
            EventKind::HedgeCheck { .. } => 2,
            EventKind::Arrival { .. } => 3,
        };
        self.events.push(std::cmp::Reverse(FleetEvent {
            at,
            rank,
            seq: self.event_seq,
            kind,
        }));
        self.event_seq += 1;
    }

    /// Re-simulate device `d` from its current legs and directives; the
    /// cache is the authoritative timeline until the next change.
    fn resim(&mut self, d: usize) -> Result<(), EngineError> {
        let mut order = self.legs_by_device[d].clone();
        order.sort_by(|&a, &b| self.legs[a].at.total_cmp(&self.legs[b].at).then(a.cmp(&b)));
        let (sub, directives) = self.device_stream(d, &order);
        let run = device_run(self.sim, d, &sub, &self.device_plans[d], &directives)?;
        self.states[d] = Some(DeviceCache { run, order });
        Ok(())
    }

    /// The arrival sub-stream and directives device `d` currently runs.
    fn device_stream(&self, d: usize, order: &[usize]) -> (Vec<RequestArrival>, RunDirectives) {
        let mut sub = Vec::with_capacity(order.len());
        let mut directives = RunDirectives::default();
        for (pos, &id) in order.iter().enumerate() {
            let l = &self.legs[id];
            debug_assert_eq!(l.device, d);
            let base = &self.arrivals[l.req];
            sub.push(RequestArrival {
                at: l.at,
                problem: base.problem,
                slo: base.slo,
                deadline: base.deadline,
                tenant: base.tenant,
            });
            if l.cancel_at.is_finite() {
                directives.cancels.push((pos, l.cancel_at));
            }
            if let Some(p) = l.prewarm {
                directives.prewarms.push(p);
            }
        }
        (sub, directives)
    }

    /// The cached record of a leg.
    fn record(&self, id: usize) -> &ServedRequest {
        let d = self.legs[id].device;
        let cache = self.states[d].as_ref().expect("device simulated");
        let pos = cache
            .order
            .iter()
            .position(|&x| x == id)
            .expect("leg in order");
        &cache.run.served[pos]
    }

    /// Whether device `d` is inside a crash outage at `t`.
    fn down(&self, d: usize, t: f64) -> bool {
        self.crash_windows[d]
            .iter()
            .any(|&(at, dur)| t >= at && t < at + dur)
    }

    /// Legs assigned to `d`, arrived, not cancelled and not finished at
    /// `t` — the router's queue-depth observable.
    fn outstanding(&self, d: usize, t: f64) -> usize {
        self.legs_by_device[d]
            .iter()
            .filter(|&&id| {
                let l = &self.legs[id];
                l.at <= t && l.cancel_at > t && self.record(id).finished_at > t
            })
            .count()
    }

    /// Completed legs the router has observed by `t`, as
    /// `(finished_at, device, leg id, service latency)` in completion
    /// order.
    fn completions(&self, t: f64) -> Vec<(f64, usize, usize, f64)> {
        let mut out = Vec::new();
        for (d, ids) in self.legs_by_device.iter().enumerate() {
            for &id in ids {
                let l = &self.legs[id];
                if l.at > t {
                    continue;
                }
                let rec = self.record(id);
                if !rec.shed && rec.finished_at <= t {
                    out.push((rec.finished_at, d, id, rec.finished_at - l.at));
                }
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        out
    }

    /// Route a leg that wants to start at `t`: an alive replica under
    /// the configured policy, or — when every candidate is down — the
    /// one that recovers first, with the leg's start pushed to the
    /// recovery instant. `None` only when `exclude` rules out the whole
    /// fleet.
    fn route(&mut self, t: f64, exclude: Option<usize>, problem_seed: u64) -> Option<(usize, f64)> {
        let all: Vec<usize> = (0..self.sim.devices.len())
            .filter(|&d| Some(d) != exclude)
            .collect();
        if all.is_empty() {
            return None;
        }
        let alive: Vec<usize> = all.iter().copied().filter(|&d| !self.down(d, t)).collect();
        if alive.is_empty() {
            // Buffer at the router until the earliest recovery.
            let best = all
                .iter()
                .copied()
                .map(|d| {
                    let up_at = self.crash_windows[d]
                        .iter()
                        .filter(|&&(at, dur)| t >= at && t < at + dur)
                        .map(|&(at, dur)| at + dur)
                        .fold(t, f64::max);
                    (d, up_at)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))?;
            return Some(best);
        }
        let pick = match self.sim.config.route {
            RoutePolicy::RoundRobin => {
                let d = alive[self.rr_next % alive.len()];
                self.rr_next += 1;
                d
            }
            RoutePolicy::Jsq => self.jsq(&alive, t),
            RoutePolicy::PrefixAffinity => {
                // Most recent completed publisher of this problem…
                let publisher = self
                    .completions(t)
                    .into_iter()
                    .rev()
                    .find(|&(_, d, id, _)| {
                        alive.contains(&d)
                            && self.arrivals[self.legs[id].req].problem.seed == problem_seed
                    })
                    .map(|(_, d, _, _)| d);
                // …else a replica already working the problem…
                let working = publisher.or_else(|| {
                    alive.iter().copied().find(|&d| {
                        self.legs_by_device[d].iter().any(|&id| {
                            let l = &self.legs[id];
                            l.at <= t
                                && l.cancel_at > t
                                && self.arrivals[l.req].problem.seed == problem_seed
                                && self.record(id).finished_at > t
                        })
                    })
                });
                // …else shortest queue.
                working.unwrap_or_else(|| self.jsq(&alive, t))
            }
            RoutePolicy::HealthEwma => {
                let ewma = self.health_ewma(t);
                alive
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let sa = ewma[a] * (self.outstanding(a, t) + 1) as f64;
                        let sb = ewma[b] * (self.outstanding(b, t) + 1) as f64;
                        sa.total_cmp(&sb).then(a.cmp(&b))
                    })
                    .expect("alive non-empty")
            }
        };
        Some((pick, t))
    }

    fn jsq(&self, alive: &[usize], t: f64) -> usize {
        alive
            .iter()
            .copied()
            .min_by_key(|&d| (self.outstanding(d, t), d))
            .expect("alive non-empty")
    }

    /// Per-device EWMA of observed service latencies at `t` (α = 0.3,
    /// prior 1.0 — with no samples everywhere, health routing
    /// degenerates to join-shortest-queue).
    fn health_ewma(&self, t: f64) -> Vec<f64> {
        const ALPHA: f64 = 0.3;
        let mut ewma = vec![1.0f64; self.sim.devices.len()];
        for (_, d, _, latency) in self.completions(t) {
            ewma[d] = (1.0 - ALPHA) * ewma[d] + ALPHA * latency;
        }
        ewma
    }

    /// The hedge delay the router would use for a leg starting at `t`,
    /// when it has enough observed completions to estimate a p99.
    fn hedge_delay(&self, t: f64) -> Option<f64> {
        let h = self.sim.config.hedge.as_ref()?;
        let mut lats: Vec<f64> = self.completions(t).into_iter().map(|c| c.3).collect();
        if lats.len() < h.min_samples.max(1) {
            return None;
        }
        lats.sort_by(f64::total_cmp);
        let idx = ((lats.len() as f64 * 0.99).ceil() as usize)
            .saturating_sub(1)
            .min(lats.len() - 1);
        Some((h.delay_factor * lats[idx]).max(h.min_delay_secs))
    }

    fn push_leg(&mut self, leg: Leg) -> usize {
        let id = self.legs.len();
        self.legs_by_device[leg.device].push(id);
        self.legs.push(leg);
        id
    }

    /// Arm a hedge check for a freshly placed leg, if hedging is
    /// enabled and the router's p99 estimate is trustworthy.
    fn arm_hedge(&mut self, leg: usize, t: f64) {
        if self.sim.devices.len() < 2 {
            return;
        }
        if let Some(delay) = self.hedge_delay(t) {
            self.push_event(t + delay, EventKind::HedgeCheck { leg });
        }
    }

    fn drive(&mut self) -> Result<(), EngineError> {
        while let Some(std::cmp::Reverse(ev)) = self.events.pop() {
            match ev.kind {
                EventKind::Arrival { req } => self.on_arrival(req)?,
                EventKind::Crash { device, down_for } => self.on_crash(device, ev.at, down_for)?,
                EventKind::HedgeCheck { leg } => self.on_hedge_check(leg, ev.at)?,
                EventKind::Resolve { pair } => self.on_resolve(pair, ev.at)?,
            }
        }
        // Make sure even leg-less devices have an (empty) timeline.
        for d in 0..self.sim.devices.len() {
            if self.states[d].is_none() {
                self.resim(d)?;
            }
        }
        Ok(())
    }

    fn on_arrival(&mut self, req: usize) -> Result<(), EngineError> {
        let a = &self.arrivals[req];
        let (device, at) = self
            .route(a.at, None, a.problem.seed)
            .expect("route with no exclusion always places");
        let id = self.push_leg(Leg {
            req,
            device,
            at,
            cancel_at: f64::INFINITY,
            prewarm: None,
            role: LegRole::Primary,
            partner: None,
        });
        self.resim(device)?;
        self.arm_hedge(id, at);
        Ok(())
    }

    fn on_crash(&mut self, d: usize, t: f64, down_for: f64) -> Result<(), EngineError> {
        // Every leg the outage interrupts: in flight or queued at the
        // crash, or arriving while the device is down.
        let mut interrupted: Vec<(usize, bool)> = Vec::new();
        for &id in &self.legs_by_device[d] {
            let l = &self.legs[id];
            if l.cancel_at <= t {
                continue;
            }
            let rec = self.record(id);
            let active = l.at <= t && rec.finished_at > t && !(rec.shed && rec.finished_at <= t);
            let lands_in_outage = l.at > t && l.at < t + down_for;
            if active || lands_in_outage {
                let had_started = rec.started_at <= t && rec.granted_n > 0;
                interrupted.push((id, had_started));
            }
        }
        if interrupted.is_empty() {
            return Ok(());
        }
        for &(id, _) in &interrupted {
            self.legs[id].cancel_at = self.legs[id].cancel_at.min(t);
        }
        self.resim(d)?;

        for (id, had_started) in interrupted {
            let leg = self.legs[id];
            // A live partner on another replica already covers this
            // request: revive it if it was pending loser-cancellation,
            // and skip migration.
            if let Some(pid) = leg.partner {
                let p = self.legs[pid];
                if p.device != d && p.cancel_at > t {
                    if p.cancel_at.is_finite() {
                        self.legs[pid].cancel_at = f64::INFINITY;
                        self.resim(p.device)?;
                    }
                    continue;
                }
            }
            if leg.role == LegRole::Hedge {
                continue; // its primary is gone too (or on this device)
            }
            // Fail over to a surviving replica after the hand-off
            // delay; a leg that had already prefilled hands its prompt
            // prefix to the target's host tier and warm-starts.
            let at = t + self.sim.config.migration_delay_secs;
            let seed = self.arrivals[leg.req].problem.seed;
            let Some((target, at)) = self.route(at, Some(d), seed) else {
                continue; // 1-device fleet: nowhere to go, stays shed
            };
            let prewarm = had_started.then(|| {
                let prompt_tokens = self.arrivals[leg.req].problem.prompt_tokens;
                let bpt = self.sim.devices[target]
                    .config()
                    .models
                    .gen_spec
                    .kv_bytes_per_token();
                PrewarmPrefix {
                    at,
                    key: seed,
                    tokens: prompt_tokens,
                    bytes: prompt_tokens.saturating_mul(bpt),
                }
            });
            let nid = self.push_leg(Leg {
                req: leg.req,
                device: target,
                at,
                cancel_at: f64::INFINITY,
                prewarm,
                role: LegRole::Migrated,
                partner: None,
            });
            self.migrations += 1;
            self.resim(target)?;
            self.arm_hedge(nid, at);
        }
        Ok(())
    }

    fn on_hedge_check(&mut self, id: usize, t: f64) -> Result<(), EngineError> {
        let leg = self.legs[id];
        if leg.cancel_at.is_finite() || leg.partner.is_some() {
            return Ok(());
        }
        let rec = self.record(id);
        if rec.shed || rec.finished_at <= t {
            return Ok(()); // no longer a straggler
        }
        let seed = self.arrivals[leg.req].problem.seed;
        let Some((target, at)) = self.route(t, Some(leg.device), seed) else {
            return Ok(());
        };
        let hid = self.push_leg(Leg {
            req: leg.req,
            device: target,
            at,
            cancel_at: f64::INFINITY,
            prewarm: None,
            role: LegRole::Hedge,
            partner: Some(id),
        });
        self.legs[id].partner = Some(hid);
        self.resim(target)?;
        let pair = self.pairs.len();
        self.pairs.push((id, hid));
        if let Some(win) = self.pair_winner_finish(pair) {
            self.push_event(win.max(at), EventKind::Resolve { pair });
        }
        Ok(())
    }

    /// The earlier projected finish of a hedge pair's live legs.
    fn pair_winner_finish(&self, pair: usize) -> Option<f64> {
        let (p, h) = self.pairs[pair];
        let fin = |id: usize| {
            let l = &self.legs[id];
            if l.cancel_at.is_finite() {
                return f64::INFINITY;
            }
            let rec = self.record(id);
            if rec.shed {
                f64::INFINITY
            } else {
                rec.finished_at
            }
        };
        let win = fin(p).min(fin(h));
        win.is_finite().then_some(win)
    }

    fn on_resolve(&mut self, pair: usize, t: f64) -> Result<(), EngineError> {
        let (p, h) = self.pairs[pair];
        if self.legs[p].cancel_at.is_finite() || self.legs[h].cancel_at.is_finite() {
            return Ok(()); // a crash already resolved the pair
        }
        let Some(win) = self.pair_winner_finish(pair) else {
            return Ok(()); // both shed (deadlines) — nothing to cancel
        };
        if win > t + 1e-9 {
            // Timelines moved since this was scheduled (a crash freed
            // capacity, a migration added load): re-check at the new
            // winner instant.
            self.push_event(win, EventKind::Resolve { pair });
            return Ok(());
        }
        let (pr, hr) = (self.record(p), self.record(h));
        let p_fin = if pr.shed {
            f64::INFINITY
        } else {
            pr.finished_at
        };
        let h_fin = if hr.shed {
            f64::INFINITY
        } else {
            hr.finished_at
        };
        // First finisher wins; the loser is cancelled at the winner's
        // completion with full pool/tier reclaim. Ties go to the
        // primary — the hedge is pure insurance.
        let loser = if h_fin < p_fin { p } else { h };
        self.legs[loser].cancel_at = win;
        self.resim(self.legs[loser].device)?;
        Ok(())
    }

    /// Authoritative parallel execution of every device timeline plus
    /// fleet-level record assembly.
    fn finish(mut self, crash_downtime_secs: f64) -> Result<FleetRun, EngineError> {
        let devices: Vec<usize> = (0..self.sim.devices.len()).collect();
        let runs: Vec<Result<(BatchRun, Vec<usize>), EngineError>> =
            parallel_map(&devices, |_, &d| {
                let cache = self.states[d].as_ref().expect("device simulated");
                let order = cache.order.clone();
                let (sub, directives) = self.device_stream(d, &order);
                let run = device_run(self.sim, d, &sub, &self.device_plans[d], &directives)?;
                Ok((run, order))
            });
        let mut device_runs = Vec::with_capacity(devices.len());
        for (d, r) in runs.into_iter().enumerate() {
            let (run, order) = r?;
            let cached = self.states[d].as_ref().expect("device simulated");
            debug_assert!(
                runs_equivalent(&cached.run, &run),
                "parallel re-execution must be bit-identical to the sequential cache"
            );
            self.states[d] = Some(DeviceCache {
                run: run.clone(),
                order,
            });
            device_runs.push(run);
        }

        // Per-request winner selection and migration accounting.
        let mut served = Vec::with_capacity(self.arrivals.len());
        let mut serving_device = Vec::with_capacity(self.arrivals.len());
        let mut hedges_won = 0u64;
        let hedges_launched = self
            .legs
            .iter()
            .filter(|l| l.role == LegRole::Hedge)
            .count() as u64;
        for req in 0..self.arrivals.len() {
            let legs_of: Vec<usize> = (0..self.legs.len())
                .filter(|&id| self.legs[id].req == req)
                .collect();
            let winner = legs_of
                .iter()
                .copied()
                .filter(|&id| !self.record(id).shed)
                .min_by(|&a, &b| {
                    let (ra, rb) = (self.record(a), self.record(b));
                    ra.finished_at
                        .total_cmp(&rb.finished_at)
                        .then(self.legs[a].role.rank().cmp(&self.legs[b].role.rank()))
                        .then(a.cmp(&b))
                });
            match winner {
                Some(id) => {
                    let leg = self.legs[id];
                    let mut rec = self.record(id).clone();
                    rec.arrived_at = self.arrivals[req].at;
                    if leg.role == LegRole::Hedge {
                        hedges_won += 1;
                    }
                    // Book the migration hand-off(s) that led to this
                    // leg into the fault bucket: latency stretches by
                    // the hand-off, busy buckets stay comparable to the
                    // crash-free run.
                    let hops = legs_of
                        .iter()
                        .filter(|&&x| {
                            self.legs[x].role == LegRole::Migrated && self.legs[x].at <= leg.at
                        })
                        .count();
                    if hops > 0 {
                        let budget = hops as f64 * self.sim.config.migration_delay_secs;
                        rec.started_at -= budget;
                        rec.outcome.stats.completion.latency += budget;
                        rec.outcome.stats.completion.breakdown.fault += budget;
                    }
                    serving_device.push(Some(leg.device));
                    served.push(rec);
                }
                None => {
                    // Shed everywhere: report the primary leg's record
                    // against the original arrival.
                    let id = legs_of[0];
                    let mut rec = self.record(id).clone();
                    rec.arrived_at = self.arrivals[req].at;
                    serving_device.push(None);
                    served.push(rec);
                }
            }
        }
        let hedges_wasted = hedges_launched - hedges_won;
        Ok(FleetRun {
            device_runs,
            served,
            serving_device,
            migrations: self.migrations,
            hedges_launched,
            hedges_won,
            hedges_wasted,
            crash_downtime_secs,
        })
    }
}

/// Bit-equivalence of two device runs on every scheduler-visible
/// surface (used to assert the parallel final pass reproduces the
/// sequential caches).
fn runs_equivalent(a: &BatchRun, b: &BatchRun) -> bool {
    a.served.len() == b.served.len()
        && a.rounds == b.rounds
        && a.group_iters == b.group_iters
        && a.preemptions == b.preemptions
        && a.shed == b.shed
        && a.cancelled == b.cancelled
        && a.kv_tier_hits == b.kv_tier_hits
        && a.served.iter().zip(&b.served).all(|(x, y)| {
            x.started_at == y.started_at
                && x.finished_at == y.finished_at
                && x.shed == y.shed
                && x.outcome.answer == y.outcome.answer
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch_server::BatchConfig;

    #[test]
    fn config_builders() {
        let cfg = FleetConfig::new(EventConfig::windowed(4, 0.2), RoutePolicy::PrefixAffinity)
            .with_hedge(HedgeConfig::default());
        assert!(cfg.failover);
        assert!(cfg.hedge.is_some());
        let naive = cfg.without_failover();
        assert!(!naive.failover);
    }

    #[test]
    fn event_order_is_total_and_crashes_preempt_arrivals() {
        let crash = FleetEvent {
            at: 5.0,
            rank: 0,
            seq: 9,
            kind: EventKind::Crash {
                device: 0,
                down_for: 1.0,
            },
        };
        let arrival = FleetEvent {
            at: 5.0,
            rank: 3,
            seq: 1,
            kind: EventKind::Arrival { req: 0 },
        };
        assert!(crash < arrival, "same instant: crash resolves first");
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleets_are_rejected() {
        let cfg = FleetConfig::new(
            EventConfig::new(BatchConfig::fifo(), 0.0),
            RoutePolicy::RoundRobin,
        );
        let _ = FleetSim::new(Vec::new(), 4, ftts_search::SearchKind::BeamSearch, cfg);
    }
}
