//! Global per-device kernel timeline with token-granularity decode
//! joins — honest window=0 scheduling.
//!
//! [`EventServerSim`](crate::EventServerSim) schedules at *iteration*
//! granularity and prices each launch's decode against a snapshot of
//! the in-flight set taken at the launch instant. Two approximations
//! follow from that snapshot:
//!
//! * **Free overlap.** A launch that starts while earlier iterations
//!   are still in flight counts *their* load in its own co-batch
//!   price, but the earlier iterations were priced before this launch
//!   existed and are never re-priced — overlapping a busy device is
//!   free for the requests already on it. Under a small window this
//!   makes window=0 look nearly as good as an oracle: every launch
//!   claims the amortization benefit of the overlap and nobody pays
//!   the contention cost.
//! * **Launch-boundary joins.** An arrival during a long co-batched
//!   generation phase waits for the *whole* phase to finish before it
//!   can join the decode batch, even though real continuous batching
//!   (vLLM) admits at token granularity.
//!
//! [`TimelineServerSim`] removes both. It keeps the event scheduler's
//! structure — the same ready queue, window partition, admission,
//! shares, preemption and fault plumbing — and adds a global
//! [`DeviceTimeline`] all kernel launches land on as costed
//! [`Segment`]s:
//!
//! * **Retroactive contention** ([`TimelineConfig::contention`]): when
//!   a launch admits *new* device load (fresh arrivals or readmitted
//!   runs), every in-flight iteration it overlaps is stretched by the
//!   marginal co-batch slowdown over its remaining seconds
//!   ([`ftts_engine::RequestRun::contention_stretch`]), and the
//!   iteration's segment already on the timeline is stretched with it.
//!   Overlap now has a price, so window=0 versus infinite-window is an
//!   honest trade instead of a free lunch.
//! * **Token-granularity joins** ([`TimelineConfig::token_joins`]):
//!   the generation phase runs as chunked sub-iterations
//!   ([`ftts_engine::RequestRun::plan_decode_chunk`] /
//!   [`ftts_engine::RequestRun::apply_decode_chunk`]) capped at
//!   [`TimelineConfig::join_quantum`] tokens. All co-batched members
//!   synchronize at each chunk boundary (the wait books to the
//!   `join_wait` latency slice), arrivals due by the boundary admit
//!   *into the running launch* there, and the co-batch totals are
//!   re-derived every chunk — members that finish generation early
//!   stop taxing the survivors.
//!
//! # Equivalence anchor
//!
//! [`TimelineConfig::anchored`] disables both honesty features; the
//! run is then bit-identical to [`EventServerSim`] under the same
//! [`EventConfig`] (fault-free, faulted and directed), with the
//! timeline recording segments purely as an observer. Enforced in
//! `crates/core/tests/event_sched.rs`.
//!
//! # Granularity limits
//!
//! Faults, SLO sweeps, directed cancels and elastic share rebalances
//! stay at *launch* granularity even in token-join mode: they apply at
//! the pre-launch boundary exactly like the event scheduler (mid-launch
//! admission may still shrink shares through the shared admission
//! probe). One iteration per member per launch is preserved — chunking
//! splits the iteration's decode phase, not the TTS loop.

use std::collections::{HashMap, VecDeque};

use ftts_engine::{DecodeStatus, EngineError, RunPhase, StepStatus, VerifyCharge, VerifyChunk};
use ftts_kv::{HostTier, PoolBudget};
use ftts_metrics::TimelineOccupancy;
use ftts_search::SearchKind;
use ftts_workload::RequestArrival;

use crate::admission::{self, InFlight, SchedCtx};
use crate::batch_server::BatchRun;
use crate::event_server::{EventConfig, RunDirectives};
use crate::faults::{FaultCursor, FaultPlan, LaunchFaults};
use crate::server::{ServeOutcome, ServedRequest, TtsServer};

/// What kind of kernel a timeline segment covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Generator decode (one member's generation phase, or one decode
    /// chunk in token-join mode) — restore/offload transfers included.
    Decode,
    /// Verifier prefill sweep (fused or serialized, per launch).
    Verify,
    /// Preemption swap-out PCIe transfer.
    Swap,
}

/// One costed kernel launch on the device timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Absolute start instant, seconds.
    pub start: f64,
    /// Absolute end instant, seconds (`>= start`); grows under
    /// retroactive contention stretch.
    pub end: f64,
    /// Kernel kind.
    pub kind: SegmentKind,
    /// Sequences the kernel carried (decode frontier width, verifier
    /// sweep sequences, or 1 for a swap transfer).
    pub seqs: usize,
}

/// The global per-device kernel timeline: every launch the scheduler
/// commits lands here as a [`Segment`] on one shared clock, and
/// segments already recorded can be retroactively stretched when a
/// later launch overlaps them.
#[derive(Debug, Clone, Default)]
pub struct DeviceTimeline {
    segments: Vec<Segment>,
    stretch_secs: f64,
}

impl DeviceTimeline {
    /// Record a segment; returns its id for later
    /// [`DeviceTimeline::stretch`] calls.
    pub fn record(&mut self, start: f64, duration: f64, kind: SegmentKind, seqs: usize) -> usize {
        assert!(start.is_finite(), "segment start must be finite");
        assert!(duration >= 0.0, "segment duration must be non-negative");
        self.segments.push(Segment {
            start,
            end: start + duration,
            kind,
            seqs,
        });
        self.segments.len() - 1
    }

    /// Retroactively stretch segment `id` by `extra` seconds — a later
    /// launch overlapped it and slowed its kernel. Stretch never
    /// shrinks a segment.
    pub fn stretch(&mut self, id: usize, extra: f64) {
        assert!(extra >= 0.0, "stretch never shrinks a segment");
        self.segments[id].end += extra;
        self.stretch_secs += extra;
    }

    /// The recorded segments, in record order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total retroactive stretch applied so far, seconds.
    pub fn stretch_secs(&self) -> f64 {
        self.stretch_secs
    }

    /// Roll the timeline up into occupancy statistics: span, per-kind
    /// busy sums, the overlap-aware busy union and the peak overlap
    /// depth.
    pub fn occupancy(&self) -> TimelineOccupancy {
        if self.segments.is_empty() {
            return TimelineOccupancy::default();
        }
        let mut occ = TimelineOccupancy {
            segments: self.segments.len() as u64,
            stretch_secs: self.stretch_secs,
            ..Default::default()
        };
        let mut first = f64::INFINITY;
        let mut last = f64::NEG_INFINITY;
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(self.segments.len() * 2);
        for s in &self.segments {
            let dur = s.end - s.start;
            match s.kind {
                SegmentKind::Decode => occ.decode_secs += dur,
                SegmentKind::Verify => occ.verify_secs += dur,
                SegmentKind::Swap => occ.swap_secs += dur,
            }
            first = first.min(s.start);
            last = last.max(s.end);
            events.push((s.start, 1));
            events.push((s.end, -1));
        }
        occ.span_secs = (last - first).max(0.0);
        // Sweep the interval union; at equal instants ends close before
        // starts open, so back-to-back segments never count as overlap.
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite segment bounds")
                .then(a.1.cmp(&b.1))
        });
        let mut depth = 0i32;
        let mut max_depth = 0i32;
        let mut open_at = 0.0f64;
        for (t, d) in events {
            if depth == 0 && d > 0 {
                open_at = t;
            }
            depth += d;
            if depth == 0 {
                occ.busy_secs += t - open_at;
            }
            max_depth = max_depth.max(depth);
        }
        occ.max_concurrency = max_depth.max(0) as u32;
        occ
    }
}

/// Global-timeline scheduling knobs: the event-driven policy plus the
/// two honesty features layered on top of it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineConfig {
    /// The event-driven policy (batching, window, admission, shares,
    /// preemption) the timeline scheduler inherits wholesale.
    pub event: EventConfig,
    /// Price cross-launch decode overlap: a launch admitting new device
    /// load retroactively stretches every in-flight iteration it
    /// overlaps by the marginal co-batch slowdown.
    pub contention: bool,
    /// Run generation as chunked sub-iterations and admit arrivals into
    /// the running decode batch at chunk boundaries.
    pub token_joins: bool,
    /// Max decode tokens per sequence between join boundaries (ignored
    /// unless [`TimelineConfig::token_joins`] is set). Smaller quanta
    /// give arrivals earlier joins at the price of more `join_wait`
    /// synchronization among co-batched members.
    pub join_quantum: u64,
}

impl TimelineConfig {
    /// The equivalence-anchor mode: both honesty features off. The run
    /// is bit-identical to [`EventServerSim`](crate::EventServerSim)
    /// under `event`; the timeline only observes.
    pub fn anchored(event: EventConfig) -> Self {
        Self {
            event,
            contention: false,
            token_joins: false,
            join_quantum: 16,
        }
    }

    /// Honest iteration-granularity scheduling: retroactive contention
    /// on, token joins off.
    pub fn honest(event: EventConfig) -> Self {
        Self {
            contention: true,
            ..Self::anchored(event)
        }
    }

    /// Enable token-granularity decode joins (keeps the current
    /// contention setting).
    pub fn with_token_joins(mut self) -> Self {
        self.token_joins = true;
        self
    }

    /// Override the join quantum (decode tokens per sequence between
    /// chunk boundaries).
    pub fn with_join_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum >= 1, "join quantum must be at least one token");
        self.join_quantum = quantum;
        self
    }
}

/// The honesty-feature subset of [`TimelineConfig`] — what a fleet
/// attaches to its per-device scheduling policy (the event policy is
/// specified once at the fleet level and shared by every replica).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineTuning {
    /// See [`TimelineConfig::contention`].
    pub contention: bool,
    /// See [`TimelineConfig::token_joins`].
    pub token_joins: bool,
    /// See [`TimelineConfig::join_quantum`].
    pub join_quantum: u64,
}

impl TimelineTuning {
    /// Pure bookkeeping: record segments, price nothing, join at launch
    /// boundaries — per-device runs stay bit-identical to the plain
    /// event-driven fleet.
    pub fn anchored() -> Self {
        Self {
            contention: false,
            token_joins: false,
            join_quantum: 16,
        }
    }

    /// Retroactive contention pricing on, token joins off.
    pub fn honest() -> Self {
        Self {
            contention: true,
            token_joins: false,
            join_quantum: 16,
        }
    }

    /// Enable token-granularity decode joins.
    pub fn with_token_joins(mut self) -> Self {
        self.token_joins = true;
        self
    }

    /// Override the join quantum.
    pub fn with_join_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum >= 1, "join quantum must be at least one token");
        self.join_quantum = quantum;
        self
    }

    /// Attach the tuning to an event policy.
    pub fn config(self, event: EventConfig) -> TimelineConfig {
        TimelineConfig {
            event,
            contention: self.contention,
            token_joins: self.token_joins,
            join_quantum: self.join_quantum,
        }
    }
}

/// Replays a request arrival stream with event-driven continuous
/// batching over a global per-device kernel timeline: every launch is
/// a costed segment on one clock, cross-launch decode overlap is
/// priced retroactively, and (optionally) arrivals join the in-flight
/// decode batch at token-chunk boundaries. See the module docs for the
/// execution model and the equivalence anchor.
#[derive(Debug, Clone)]
pub struct TimelineServerSim {
    server: TtsServer,
    n: usize,
    kind: SearchKind,
    config: TimelineConfig,
}

impl TimelineServerSim {
    /// Simulate `server` answering requests with `n` beams each under
    /// the given timeline policy.
    pub fn new(server: TtsServer, n: usize, kind: SearchKind, config: TimelineConfig) -> Self {
        assert!(
            config.event.batch.max_batch >= 1,
            "need at least one batch slot"
        );
        assert!(
            config.event.window_secs >= 0.0,
            "window must be non-negative"
        );
        assert!(
            config.join_quantum >= 1,
            "join quantum must be at least one token"
        );
        Self {
            server,
            n,
            kind,
            config,
        }
    }

    /// The timeline policy in effect.
    pub fn config(&self) -> &TimelineConfig {
        &self.config
    }

    /// Serve the arrival stream to completion on a fault-free device.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit even with
    /// the entire pool to itself.
    pub fn run(&self, arrivals: &[RequestArrival]) -> Result<BatchRun, EngineError> {
        self.run_faulted(arrivals, &FaultPlan::none())
    }

    /// Serve the arrival stream to completion while `plan` injects
    /// faults into the simulated device. Faults apply at launch
    /// granularity (the same boundaries the event scheduler uses), so
    /// the anchored mode consumes the plan bit-identically to
    /// [`EventServerSim::run_faulted`](crate::EventServerSim::run_faulted).
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit even with
    /// the entire pool to itself.
    pub fn run_faulted(
        &self,
        arrivals: &[RequestArrival],
        plan: &FaultPlan,
    ) -> Result<BatchRun, EngineError> {
        self.run_directed(arrivals, plan, &RunDirectives::default())
    }

    /// Serve the arrival stream under `plan` while `directives` steer
    /// the timeline from outside (directed cancels, prefix prewarms) —
    /// the same interface [`EventServerSim::run_directed`]
    /// (crate::EventServerSim::run_directed) exposes to the fleet.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit even with
    /// the entire pool to itself.
    #[allow(clippy::too_many_lines)]
    pub fn run_directed(
        &self,
        arrivals: &[RequestArrival],
        plan: &FaultPlan,
        directives: &RunDirectives,
    ) -> Result<BatchRun, EngineError> {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival times must be non-decreasing"
        );
        let batch = &self.config.event.batch;
        let window = self.config.event.window_secs;
        let lockstep = window.is_infinite();
        let pool_bytes = self.server.config().kv_budget_bytes();
        let device = self.server.config().device.clone();
        let gen_bpt = self.server.config().models.gen_spec.kv_bytes_per_token();
        let mut pool = PoolBudget::new(pool_bytes);
        if let Some(policy) = batch.tenants {
            for spec in policy.specs() {
                pool.set_tenant_cap(u64::from(spec.id), spec.kv_cap_bytes);
            }
        }
        let mut tier = HostTier::new(batch.tier);
        let mut floor = 0.0f64;
        let mut finish_max = 0.0f64;
        let mut next_arrival = 0usize;
        let mut waiting: VecDeque<usize> = VecDeque::new();
        let mut paused: VecDeque<InFlight> = VecDeque::new();
        let mut active: Vec<InFlight> = Vec::new();
        let mut served: Vec<Option<ServedRequest>> = (0..arrivals.len()).map(|_| None).collect();
        let mut admit_seq = 0u64;
        let mut rounds = 0u64;
        let mut group_iters = 0u64;
        let mut preemptions = 0u32;
        let mut ver_sweeps = 0u64;
        let mut ver_seqs = 0u64;
        let mut ver_busy_secs = 0.0f64;
        let mut cursor = FaultCursor::default();
        let mut kernel_faults = 0u32;
        let mut fault_retries = 0u32;
        let mut kv_loss_events = 0u32;
        let mut lost_blocks = 0u64;
        let mut shed = 0u32;
        let mut cancelled = 0u32;
        let mut degradations = 0u32;
        let mut tier_dropped = 0u64;
        let has_cancels = !directives.cancels.is_empty();
        let mut cancel_at = vec![f64::INFINITY; arrivals.len()];
        for &(idx, t) in &directives.cancels {
            assert!(idx < arrivals.len(), "cancel index out of range");
            cancel_at[idx] = cancel_at[idx].min(t);
        }
        let mut prewarms = directives.prewarms.clone();
        prewarms.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite prewarm times"));
        let mut prewarm_next = 0usize;
        // The global device timeline, plus each in-flight request's
        // latest decode segment (the stretch target when a later launch
        // overlaps its iteration).
        let mut timeline = DeviceTimeline::default();
        let mut last_seg: HashMap<usize, usize> = HashMap::new();

        loop {
            let next_ready = active
                .iter()
                .map(InFlight::ready_at)
                .fold(f64::INFINITY, f64::min);
            let next_arr = arrivals.get(next_arrival).map_or(f64::INFINITY, |a| a.at);

            if active.is_empty() {
                floor = floor.max(finish_max);
                if waiting.is_empty() && paused.is_empty() {
                    if next_arrival >= arrivals.len() {
                        break; // everything served
                    }
                    floor = floor.max(next_arr);
                }
            }

            let arrival_anchor = next_arr.max(floor);
            let consider_arrival = batch.admit_mid_flight
                && active.len() < batch.max_batch
                && arrival_anchor < next_ready;
            let anchor = if active.is_empty() {
                floor
            } else if consider_arrival {
                arrival_anchor
            } else {
                next_ready
            };

            let horizon = anchor + window;
            let mut group: Vec<InFlight> = Vec::new();
            let mut rest: Vec<InFlight> = Vec::new();
            for a in active.drain(..) {
                if a.ready_at() <= horizon {
                    group.push(a);
                } else {
                    rest.push(a);
                }
            }

            let mut launch = group
                .iter()
                .map(InFlight::ready_at)
                .fold(anchor.max(floor), f64::max);
            for a in &mut group {
                if lockstep {
                    admission::pad_to_barrier(a, launch);
                } else {
                    admission::pad_to(a, launch);
                }
            }

            while next_arrival < arrivals.len() && arrivals[next_arrival].at <= launch {
                waiting.push_back(next_arrival);
                next_arrival += 1;
            }
            let ctx = SchedCtx {
                server: &self.server,
                n: self.n,
                kind: self.kind,
                config: batch,
            };
            while prewarm_next < prewarms.len() && prewarms[prewarm_next].at <= launch {
                let p = prewarms[prewarm_next];
                tier.publish_prefix(p.key, p.tokens, p.bytes);
                prewarm_next += 1;
            }
            if has_cancels {
                let sweep = admission::apply_cancels(
                    batch,
                    &cancel_at,
                    launch,
                    arrivals,
                    &mut waiting,
                    &mut paused,
                    &mut group,
                    &mut rest,
                    &mut pool,
                    &mut tier,
                    &mut served,
                );
                shed += sweep.shed;
                cancelled += sweep.cancelled;
            }
            let sweep = admission::enforce_slo(
                &ctx,
                launch,
                pool_bytes,
                arrivals,
                &mut waiting,
                &mut paused,
                &mut group,
                &mut rest,
                &mut pool,
                &mut tier,
                &mut served,
            );
            shed += sweep.shed;
            cancelled += sweep.cancelled;
            // Snapshot the in-flight set so newly admitted device load
            // is identifiable for retroactive contention pricing.
            let pre_inflight: Vec<usize> = if self.config.contention {
                group.iter().chain(rest.iter()).map(|a| a.idx).collect()
            } else {
                Vec::new()
            };
            let report = admission::admit(
                &ctx,
                &mut group,
                &mut rest,
                &mut paused,
                &mut waiting,
                &mut pool,
                &mut tier,
                arrivals,
                launch,
                &mut admit_seq,
            )?;
            degradations += report.degradations;
            if report.admitted && admission::elastic(batch) {
                admission::rebalance_elastic(batch, &mut group, &mut rest, &mut pool);
            }
            // Retroactive contention: the load this launch adds slows
            // every iteration still in flight outside the launch. Each
            // bystander's remaining time stretches by the marginal
            // co-batch slowdown, and its decode segment already on the
            // timeline stretches with it. (With an infinite window the
            // rest is always empty — the lockstep anchor needs no
            // special case.)
            if self.config.contention && report.admitted {
                let (new_seqs, new_ctx) = group
                    .iter()
                    .filter(|a| !pre_inflight.contains(&a.idx))
                    .map(|a| a.run.decode_load())
                    .fold((0usize, 0u64), |(s, c), (ls, lc)| (s + ls, c + lc));
                if new_seqs > 0 {
                    for a in rest.iter_mut() {
                        let remaining = (a.ready_at() - launch).max(0.0);
                        let extra = a.run.contention_stretch(new_seqs, new_ctx, remaining);
                        if extra > 0.0 {
                            if let Some(&sid) = last_seg.get(&a.idx) {
                                timeline.stretch(sid, extra);
                            }
                        }
                    }
                }
            }

            if group.is_empty() && rest.is_empty() {
                if waiting.is_empty() && paused.is_empty() {
                    continue; // idle to the next arrival (or done)
                }
                let p = paused.front().expect("paused candidate");
                let (needed, capacity) = p.run.kv_demand();
                return Err(EngineError::PathExceedsMemory { needed, capacity });
            }
            if group.is_empty() {
                active = rest;
                continue;
            }

            while group.len() + rest.len() > 1 {
                let victim = group
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.run.can_progress() || !a.run.fits_working_set())
                    .max_by_key(|(_, a)| a.admit_seq)
                    .map(|(i, _)| i);
                let Some(vi) = victim else { break };
                let mut v = group.remove(vi);
                let bytes = if tier.enabled() {
                    let (swapped, dropped) = v.run.preempt_capped(tier.available_bytes());
                    tier.park(v.idx as u64, swapped);
                    tier_dropped += dropped;
                    swapped
                } else {
                    v.run.preempt()
                };
                let swap_start = launch;
                launch += device.pcie_transfer_seconds(bytes);
                if launch > swap_start {
                    timeline.record(swap_start, launch - swap_start, SegmentKind::Swap, 1);
                }
                pool.release(v.idx as u64);
                v.preemptions += 1;
                preemptions += 1;
                v.paused_at = launch;
                v.probe = None;
                paused.push_back(v);
                admission::reshare(batch, &mut group, &mut rest, &mut pool);
            }
            floor = floor.max(launch);
            if group.is_empty() {
                active = rest;
                continue;
            }

            rounds += 1;
            group_iters += group.len() as u64;
            let alone =
                group.len() == 1 && rest.is_empty() && waiting.is_empty() && paused.is_empty();
            let next_at = arrivals.get(next_arrival).map(|a| a.at);
            let mut round_end = launch;
            let mut finished: Vec<usize> = Vec::new();

            // Phase 1 — plan: memory replan plus the co-batched decode,
            // recorded on the device timeline. Token-join mode runs it
            // as chunked sub-iterations with mid-launch admission at
            // chunk boundaries; otherwise it is the event scheduler's
            // monolithic per-member generation phase, verbatim.
            let mut planned: Vec<bool>;
            if self.config.token_joins {
                planned = vec![true; group.len()];
                let mut gen_done: Vec<bool> = group.iter().map(|a| a.run.is_finished()).collect();
                for (i, done) in gen_done.iter().enumerate() {
                    if *done {
                        planned[i] = false;
                    }
                }
                let quantum = self.config.join_quantum;
                loop {
                    // Re-derive the co-batch every chunk: membership
                    // (joins, early generation finishes) and context
                    // both move at chunk boundaries.
                    let loads: Vec<(usize, u64)> =
                        group.iter().map(|a| a.run.decode_load()).collect();
                    let (rest_seqs, rest_ctx) = rest
                        .iter()
                        .map(|a| a.run.decode_load())
                        .fold((0usize, 0u64), |(s, c), (ls, lc)| (s + ls, c + lc));
                    let total_seqs: usize = loads.iter().map(|l| l.0).sum::<usize>() + rest_seqs;
                    let total_ctx: u64 = loads.iter().map(|l| l.1).sum::<u64>() + rest_ctx;
                    let chunk_alone = group.len() == 1
                        && rest.is_empty()
                        && waiting.is_empty()
                        && paused.is_empty();
                    let chunk_next_at = arrivals.get(next_arrival).map(|a| a.at);
                    let mut chunk_end: Vec<Option<f64>> = vec![None; group.len()];
                    let mut any = false;
                    for (i, a) in group.iter_mut().enumerate() {
                        if gen_done[i] {
                            continue;
                        }
                        a.run
                            .set_co_batch(total_seqs - loads[i].0, total_ctx - loads[i].1);
                        let spec_off = if !chunk_alone {
                            0.0
                        } else if let Some(at) = chunk_next_at {
                            (at - a.started_at).max(0.0)
                        } else {
                            f64::INFINITY
                        };
                        a.run.set_spec_off_after(spec_off);
                        match a.run.plan_decode_chunk(a.driver.as_mut(), quantum)? {
                            DecodeStatus::Planned(chunk) => {
                                chunk_end[i] = Some(
                                    a.started_at + a.run.clock() + a.run.chunk_seconds(&chunk),
                                );
                                any = true;
                            }
                            DecodeStatus::Generated => gen_done[i] = true,
                            DecodeStatus::Finished => {
                                gen_done[i] = true;
                                planned[i] = false;
                            }
                            DecodeStatus::Decoding => {
                                unreachable!("plan returns Planned, Generated or Finished")
                            }
                        }
                    }
                    if !any {
                        break;
                    }
                    // The join boundary: the slowest co-batched chunk's
                    // predicted end (chunk_seconds is bit-identical to
                    // the charge apply books).
                    let boundary = chunk_end.iter().flatten().fold(launch, |m, &e| m.max(e));
                    for (i, a) in group.iter_mut().enumerate() {
                        if chunk_end[i].is_none() {
                            continue;
                        }
                        let seg_start = a.started_at + a.run.clock();
                        let status = a.run.apply_decode_chunk(a.driver.as_mut())?;
                        let seg_end = a.started_at + a.run.clock();
                        if seg_end > seg_start {
                            let id = timeline.record(
                                seg_start,
                                seg_end - seg_start,
                                SegmentKind::Decode,
                                a.run.decode_load().0,
                            );
                            last_seg.insert(a.idx, id);
                        }
                        if status == DecodeStatus::Generated {
                            gen_done[i] = true;
                        } else {
                            // Members still decoding wait for the
                            // slowest chunk — the token-join sync
                            // (boundary is absolute; the pad converts
                            // to this run's relative clock).
                            admission::pad_to_join(a, boundary);
                        }
                    }
                    // Token-granularity join: arrivals due by the
                    // boundary admit into the running decode batch here
                    // instead of waiting out the whole launch.
                    while next_arrival < arrivals.len() && arrivals[next_arrival].at <= boundary {
                        waiting.push_back(next_arrival);
                        next_arrival += 1;
                    }
                    if group.len() + rest.len() < batch.max_batch
                        && !(waiting.is_empty() && paused.is_empty())
                    {
                        let before = group.len();
                        let report = admission::admit(
                            &ctx,
                            &mut group,
                            &mut rest,
                            &mut paused,
                            &mut waiting,
                            &mut pool,
                            &mut tier,
                            arrivals,
                            boundary,
                            &mut admit_seq,
                        )?;
                        degradations += report.degradations;
                        if group.len() > before {
                            group_iters += (group.len() - before) as u64;
                            for _ in before..group.len() {
                                gen_done.push(false);
                                planned.push(true);
                            }
                            if self.config.contention {
                                let (new_seqs, new_ctx) = group[before..]
                                    .iter()
                                    .map(|a| a.run.decode_load())
                                    .fold((0usize, 0u64), |(s, c), (ls, lc)| (s + ls, c + lc));
                                for a in rest.iter_mut() {
                                    let remaining = (a.ready_at() - boundary).max(0.0);
                                    let extra =
                                        a.run.contention_stretch(new_seqs, new_ctx, remaining);
                                    if extra > 0.0 {
                                        if let Some(&sid) = last_seg.get(&a.idx) {
                                            timeline.stretch(sid, extra);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            } else {
                let loads: Vec<(usize, u64)> = group.iter().map(|a| a.run.decode_load()).collect();
                let (rest_seqs, rest_ctx) = rest
                    .iter()
                    .map(|a| a.run.decode_load())
                    .fold((0usize, 0u64), |(s, c), (ls, lc)| (s + ls, c + lc));
                let total_seqs: usize = loads.iter().map(|l| l.0).sum::<usize>() + rest_seqs;
                let total_ctx: u64 = loads.iter().map(|l| l.1).sum::<u64>() + rest_ctx;
                planned = Vec::with_capacity(group.len());
                for (i, a) in group.iter_mut().enumerate() {
                    a.run
                        .set_co_batch(total_seqs - loads[i].0, total_ctx - loads[i].1);
                    let spec_off = if !alone {
                        0.0
                    } else if let Some(at) = next_at {
                        (at - a.started_at).max(0.0)
                    } else {
                        f64::INFINITY
                    };
                    a.run.set_spec_off_after(spec_off);
                    let seg_start = a.started_at + a.run.clock();
                    planned.push(!a.run.plan_iteration(a.driver.as_mut())?.is_finished());
                    let seg_end = a.started_at + a.run.clock();
                    if seg_end > seg_start {
                        let id = timeline.record(
                            seg_start,
                            seg_end - seg_start,
                            SegmentKind::Decode,
                            a.run.decode_load().0,
                        );
                        last_seg.insert(a.idx, id);
                    }
                }
            }

            // Phase 2 — gather.
            let plans: Vec<Vec<VerifyChunk>> = group
                .iter_mut()
                .zip(&planned)
                .map(|(a, &p)| {
                    if p {
                        a.run.take_verify_batch().to_vec()
                    } else {
                        Vec::new()
                    }
                })
                .collect();

            // Phase 3 — cost, recorded as one verifier segment spanning
            // from the earliest member's generation end.
            let mut charges: Vec<Vec<VerifyCharge>> = vec![Vec::new(); group.len()];
            let sweep =
                admission::cost_verify_sweeps(batch.fused_verify, &mut group, &plans, &mut charges);
            ver_sweeps += sweep.sweeps;
            ver_seqs += sweep.seqs;
            ver_busy_secs += sweep.busy_secs;
            if sweep.busy_secs > 0.0 {
                let verify_start = group
                    .iter()
                    .map(|a| a.started_at + a.run.clock())
                    .fold(f64::INFINITY, f64::min);
                timeline.record(
                    verify_start,
                    sweep.busy_secs,
                    SegmentKind::Verify,
                    sweep.seqs as usize,
                );
            }

            // Phase 4 — commit.
            for (i, a) in group.iter_mut().enumerate() {
                let status = if planned[i] {
                    a.run.apply_verify_results(a.driver.as_mut(), &charges[i])?
                } else {
                    StepStatus::Finished
                };
                debug_assert!(
                    a.run.run_phase() == RunPhase::Ready || !planned[i],
                    "a committed run must be back between iterations"
                );
                let mut done = status.is_finished();
                if !done && batch.first_finish && a.run.first_finish_cut(batch.first_finish_bar) {
                    done = true;
                }
                round_end = round_end.max(a.started_at + a.run.clock());
                if done {
                    finished.push(i);
                }
            }

            let faults = LaunchFaults::at(&mut cursor, plan, &batch.robust, launch);
            if faults.fired() {
                kernel_faults += faults.kernel_faults;
                fault_retries += faults.retries;
                for a in group.iter_mut() {
                    let dt = (a.started_at + a.run.clock() - launch).max(0.0);
                    a.run
                        .stall_fault(dt * faults.busy_stretch + faults.backoff_secs);
                    if faults.kernel_faults > 0 {
                        a.run.note_kernel_faults(
                            faults.kernel_faults,
                            faults.retries,
                            faults.backoff_secs,
                        );
                    }
                    if faults.slowdown_stretch > 0.0 {
                        a.run.note_slowdown(dt * faults.slowdown_stretch);
                    }
                }
                if faults.kv_losses > 0 {
                    kv_loss_events += faults.kv_losses;
                    for a in group.iter_mut().chain(rest.iter_mut()) {
                        lost_blocks += a.run.lose_device_kv();
                    }
                }
                round_end = group
                    .iter()
                    .map(|a| a.started_at + a.run.clock())
                    .fold(launch, f64::max);
            }
            if lockstep {
                floor = floor.max(round_end);
            }

            for &i in finished.iter().rev() {
                let a = group.remove(i);
                pool.release(a.idx as u64);
                last_seg.remove(&a.idx);
                let prompt_tokens = arrivals[a.idx].problem.prompt_tokens;
                tier.publish_prefix(
                    arrivals[a.idx].problem.seed,
                    prompt_tokens,
                    prompt_tokens.saturating_mul(gen_bpt),
                );
                let stats = a.run.finish();
                let answer = ftts_metrics::top1_majority(&stats.answers());
                let finished_at = a.started_at + stats.latency();
                finish_max = finish_max.max(finished_at);
                served[a.idx] = Some(ServedRequest {
                    arrived_at: a.arrived_at,
                    started_at: a.started_at,
                    finished_at,
                    preemptions: a.preemptions,
                    preempted_secs: a.preempted_secs,
                    slo: a.slo,
                    deadline: a.deadline,
                    shed: false,
                    granted_n: a.granted_n,
                    outcome: ServeOutcome { stats, answer },
                });
            }

            if !(group.is_empty() && rest.is_empty()) {
                if !finished.is_empty() {
                    admission::reshare(batch, &mut group, &mut rest, &mut pool);
                } else if admission::elastic(batch) && admission::demand_drifted(&group, &rest) {
                    admission::rebalance_elastic(batch, &mut group, &mut rest, &mut pool);
                }
            }

            rest.append(&mut group);
            active = rest;
            active.sort_by_key(|a| a.admit_seq);
        }

        Ok(BatchRun {
            served: served
                .into_iter()
                .map(|r| r.expect("every request served"))
                .collect(),
            rounds,
            group_iters,
            preemptions,
            peak_reserved_bytes: pool.peak_reserved_bytes(),
            pool_bytes,
            ver_sweeps,
            ver_seqs,
            ver_busy_secs,
            kernel_faults,
            fault_retries,
            kv_loss_events,
            lost_blocks,
            shed,
            cancelled,
            degradations,
            final_reserved_bytes: pool.reserved_bytes(),
            kv_tier_hits: tier.stats().prefix_hits,
            kv_tier_demotions: tier.stats().demotions,
            kv_tier_parked_bytes: tier.stats().parked_bytes,
            kv_tier_dropped_bytes: tier_dropped + tier.stats().overflow_dropped_bytes,
            kv_tier_unparked_bytes: tier.stats().unparked_bytes,
            tenant_peak_bytes: pool
                .tenant_peaks()
                .into_iter()
                .map(|(t, b)| (t as u32, b))
                .collect(),
            timeline: timeline.occupancy(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_engine::ModelPairing;
    use ftts_hw::GpuDevice;
    use ftts_workload::{ArrivalPattern, Dataset};

    fn server(seed: u64, memory_fraction: f64) -> TtsServer {
        let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        s.config_mut().seed = seed;
        s.config_mut().memory_fraction = memory_fraction;
        s
    }

    fn arrivals(count: usize, seed: u64, interval: f64) -> Vec<RequestArrival> {
        let problems = Dataset::Amc2023.problems(count, seed);
        ArrivalPattern::Uniform { interval }.schedule(&problems, 0)
    }

    #[test]
    fn config_presets() {
        let event = EventConfig::windowed(4, 0.0);
        let anchored = TimelineConfig::anchored(event);
        assert!(!anchored.contention && !anchored.token_joins);
        let honest = TimelineConfig::honest(event);
        assert!(honest.contention && !honest.token_joins);
        let joins = TimelineConfig::honest(event)
            .with_token_joins()
            .with_join_quantum(8);
        assert!(joins.token_joins);
        assert_eq!(joins.join_quantum, 8);
    }

    #[test]
    #[should_panic(expected = "join quantum must be at least one token")]
    fn zero_quantum_is_rejected() {
        let _ = TimelineConfig::anchored(EventConfig::windowed(4, 0.0)).with_join_quantum(0);
    }

    #[test]
    fn segment_union_handles_overlap() {
        let mut tl = DeviceTimeline::default();
        tl.record(0.0, 2.0, SegmentKind::Decode, 4);
        tl.record(1.0, 2.0, SegmentKind::Decode, 4);
        tl.record(4.0, 1.0, SegmentKind::Verify, 8);
        let occ = tl.occupancy();
        assert_eq!(occ.segments, 3);
        assert!((occ.span_secs - 5.0).abs() < 1e-12);
        assert!((occ.busy_secs - 4.0).abs() < 1e-12, "union, not sum");
        assert!((occ.decode_secs - 4.0).abs() < 1e-12);
        assert!((occ.verify_secs - 1.0).abs() < 1e-12);
        assert_eq!(occ.max_concurrency, 2);
        assert!((occ.idle_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjacent_segments_do_not_overlap() {
        let mut tl = DeviceTimeline::default();
        tl.record(0.0, 1.0, SegmentKind::Decode, 1);
        tl.record(1.0, 1.0, SegmentKind::Decode, 1);
        let occ = tl.occupancy();
        assert_eq!(occ.max_concurrency, 1);
        assert!((occ.busy_secs - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stretch_extends_segment_and_rollup() {
        let mut tl = DeviceTimeline::default();
        let id = tl.record(0.0, 1.0, SegmentKind::Decode, 2);
        tl.stretch(id, 0.5);
        assert!((tl.segments()[id].end - 1.5).abs() < 1e-12);
        let occ = tl.occupancy();
        assert!((occ.stretch_secs - 0.5).abs() < 1e-12);
        assert!((occ.busy_secs - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timeline_run_serves_everyone_and_records_segments() {
        let stream = arrivals(5, 41, 1.0);
        let run = TimelineServerSim::new(
            server(5, 0.9),
            8,
            SearchKind::BeamSearch,
            TimelineConfig::honest(EventConfig::windowed(4, 0.0)),
        )
        .run(&stream)
        .expect("timeline run");
        assert_eq!(run.served.len(), 5);
        assert!(run.timeline.segments > 0, "segments were recorded");
        assert!(run.timeline.busy_secs > 0.0);
        assert!(run.timeline.busy_secs <= run.timeline.span_secs + 1e-9);
        assert!(run.peak_reserved_bytes <= run.pool_bytes);
    }

    #[test]
    fn token_joins_serve_everyone_with_same_answers() {
        // Chunked decode with mid-launch joins moves clocks, never
        // outcomes: answers and accepted tokens must match the
        // iteration-granularity run exactly.
        let stream = arrivals(5, 23, 1.0);
        let event = EventConfig::windowed(4, 0.0);
        let iter_run = TimelineServerSim::new(
            server(9, 0.9),
            8,
            SearchKind::BeamSearch,
            TimelineConfig::honest(event),
        )
        .run(&stream)
        .expect("iteration run");
        let joins_run = TimelineServerSim::new(
            server(9, 0.9),
            8,
            SearchKind::BeamSearch,
            TimelineConfig::honest(event).with_token_joins(),
        )
        .run(&stream)
        .expect("joins run");
        assert_eq!(joins_run.served.len(), 5);
        for (a, b) in iter_run.served.iter().zip(&joins_run.served) {
            assert_eq!(a.outcome.answer, b.outcome.answer);
            assert_eq!(a.accepted_tokens(), b.accepted_tokens());
        }
    }

    #[test]
    fn only_token_joins_book_join_wait() {
        let stream = arrivals(5, 61, 0.5);
        let event = EventConfig::windowed(4, 0.0);
        let iter_run = TimelineServerSim::new(
            server(3, 0.9),
            8,
            SearchKind::BeamSearch,
            TimelineConfig::honest(event),
        )
        .run(&stream)
        .expect("iteration run");
        for r in &iter_run.served {
            assert_eq!(
                r.outcome.stats.breakdown().join_wait,
                0.0,
                "iteration-granularity scheduling has no chunk boundary to wait at"
            );
        }
        let joins_run = TimelineServerSim::new(
            server(3, 0.9),
            8,
            SearchKind::BeamSearch,
            TimelineConfig::honest(event)
                .with_token_joins()
                .with_join_quantum(4),
        )
        .run(&stream)
        .expect("joins run");
        let total_join_wait: f64 = joins_run
            .served
            .iter()
            .map(|r| r.outcome.stats.breakdown().join_wait)
            .sum();
        assert!(
            total_join_wait > 0.0,
            "co-batched chunk boundaries must book join waits"
        );
        for r in &joins_run.served {
            let b = r.outcome.stats.breakdown();
            assert!(b.join_wait <= b.idle + 1e-9, "join_wait is a slice of idle");
        }
    }
}
