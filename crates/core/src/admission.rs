//! Scheduler plumbing shared by the lockstep ([`BatchedServerSim`]) and
//! event-driven ([`EventServerSim`]) request schedulers: the in-flight
//! request record, the admission/readmission loop with its deterministic
//! ordering tiebreak, KV-share resizing (equal and demand-proportional),
//! and the shared-accelerator verifier sweep pricing.
//!
//! Both schedulers arbitrate the *same* resources — one [`PoolBudget`]
//! reservation ledger and one simulated accelerator — so the policies
//! live here once. The lockstep scheduler passes its whole active set as
//! the `group`; the event-driven scheduler passes the co-batch group
//! that is launching plus the `rest` of the in-flight set (requests
//! mid-iteration outside the batching window), because shares and
//! admission caps must count *everyone* holding pool reservations, not
//! just the requests in the current launch.
//!
//! [`BatchedServerSim`]: crate::BatchedServerSim
//! [`EventServerSim`]: crate::EventServerSim

use std::collections::VecDeque;

use ftts_engine::{EngineError, RequestRun, RunStats, SearchDriver, VerifyCharge, VerifyChunk};
use ftts_kv::{HostTier, PoolBudget, ShareRequest, TenantShareRequest};
use ftts_metrics::SloClass;
use ftts_search::{make_driver, SearchKind};
use ftts_workload::RequestArrival;

use crate::batch_server::BatchConfig;
use crate::faults::degraded_beams;
use crate::server::{ServeOutcome, ServedRequest, TtsServer};
use crate::tenant::TenantPolicy;

/// One in-flight (or preempted) request.
pub(crate) struct InFlight {
    /// Index into the arrival stream (doubles as the pool holder id).
    pub(crate) idx: usize,
    pub(crate) run: RequestRun,
    pub(crate) driver: Box<dyn SearchDriver>,
    pub(crate) arrived_at: f64,
    /// SLO class the request arrived with.
    pub(crate) slo: SloClass,
    /// Absolute deadline (`f64::INFINITY` = none).
    pub(crate) deadline: f64,
    /// Tenant the request bills to (0 when untenanted).
    pub(crate) tenant: u32,
    /// Beam width actually granted at admission (equal to the
    /// configured width unless the degradation controller shrank it).
    pub(crate) granted_n: usize,
    /// Global time of first admission.
    pub(crate) started_at: f64,
    /// Admission sequence number; the largest is the youngest request
    /// (the preemption victim, as in vLLM).
    pub(crate) admit_seq: u64,
    pub(crate) preemptions: u32,
    pub(crate) preempted_secs: f64,
    /// Global time this request was last preempted.
    pub(crate) paused_at: f64,
    /// Memoized readmission probe while paused: `(share, can_progress,
    /// fits_working_set)`. The run's frontier is frozen while swapped
    /// out, so the answer only changes when the offered share does —
    /// re-probing (a replan + tree walk) every round would be pure
    /// waste.
    pub(crate) probe: Option<(u64, bool, bool)>,
    /// Working-set demand declared at the last elastic rebalance (0
    /// until the first declaration); drifting ±25% past it triggers the
    /// next rebalance.
    pub(crate) declared_demand: u64,
}

impl InFlight {
    /// The absolute device time this request's next iteration could
    /// start — the event a ready queue is keyed on.
    pub(crate) fn ready_at(&self) -> f64 {
        self.started_at + self.run.next_event_at()
    }
}

/// An admission candidate, in the order classes the tiebreak ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitCandidate {
    /// A preempted run awaiting readmission, by position in the paused
    /// queue (pause order).
    Readmit(usize),
    /// A fresh arrival at the head of the waiting queue, by arrival
    /// index (stream position).
    Fresh(usize),
}

/// The deterministic admission-order tiebreak both schedulers share.
///
/// Readmission candidates outrank fresh arrivals — a preempted run
/// holds accepted tokens that must not starve behind new work — and
/// within a class, earlier position wins: pause order for readmits,
/// stream position for arrivals. Simultaneous arrivals therefore admit
/// in arrival-index order, deterministically, on every scheduler.
pub(crate) fn admission_rank(candidate: AdmitCandidate) -> (u8, usize) {
    match candidate {
        AdmitCandidate::Readmit(pos) => (0, pos),
        AdmitCandidate::Fresh(idx) => (1, idx),
    }
}

/// Everything `admit` needs to know about the serving policy.
pub(crate) struct SchedCtx<'a> {
    pub(crate) server: &'a TtsServer,
    pub(crate) n: usize,
    pub(crate) kind: SearchKind,
    pub(crate) config: &'a BatchConfig,
}

/// Idle-pad `a`'s internal clock up to the absolute instant `global` —
/// a co-batch window wait, a readmission gap or a shared-device wait.
/// Skips members already at (or past) the instant so the
/// relative→absolute round trip cannot perturb their clock by a ulp —
/// bit-exactness with the FIFO path depends on this.
pub(crate) fn pad_to(a: &mut InFlight, global: f64) {
    let clock = a.run.clock();
    let absolute = a.started_at + clock;
    if absolute < global {
        a.run.sync_clock_to(clock + (global - absolute));
    }
}

/// Like [`pad_to`], but books the gap as *token-join* idle — the wait
/// at a shared chunk boundary for the slowest co-batched decode chunk.
pub(crate) fn pad_to_join(a: &mut InFlight, global: f64) {
    let clock = a.run.clock();
    let absolute = a.started_at + clock;
    if absolute < global {
        a.run.sync_clock_to_join(clock + (global - absolute));
    }
}

/// Like [`pad_to`], but books the gap as *barrier* idle — the lockstep
/// round-barrier wait event-driven scheduling removes.
pub(crate) fn pad_to_barrier(a: &mut InFlight, global: f64) {
    let clock = a.run.clock();
    let absolute = a.started_at + clock;
    if absolute < global {
        a.run.sync_clock_to_barrier(clock + (global - absolute));
    }
}

/// Resize every in-flight request's reservation to `share` ahead of an
/// admission. Shrinks apply before grows so the intermediate ledger
/// state never overcommits — with equal shares everyone shrinks (the
/// legacy path, byte-identical), but after a demand-proportional
/// rebalance small holders may need to grow back to the equal probe
/// share.
pub(crate) fn shrink(
    group: &mut [InFlight],
    rest: &mut [InFlight],
    pool: &mut PoolBudget,
    share: u64,
) {
    for pass in 0..2 {
        for a in group.iter_mut().chain(rest.iter_mut()) {
            let shrinking = pool.share_of(a.idx as u64) >= share;
            if (pass == 0) == shrinking {
                assert!(pool.resize(a.idx as u64, share), "equal reshare must fit");
                a.run.set_kv_budget(share);
            }
        }
    }
}

/// Regrow every in-flight request's reservation to the equal share,
/// handing the integer-division remainder to the first holder so the
/// ledger stays fully subscribed (the bytes `equal_share` truncates
/// used to strand — up to k−1 every rebalance).
pub(crate) fn regrow(group: &mut [InFlight], rest: &mut [InFlight], pool: &mut PoolBudget) {
    let k = group.len() + rest.len();
    let share = pool.equal_share(k);
    for a in group.iter_mut().chain(rest.iter_mut()) {
        assert!(pool.resize(a.idx as u64, share), "regrow must fit");
        a.run.set_kv_budget(share);
    }
    top_up_first_holder(group, rest, pool, share);
}

/// Hand the equal-share truncation remainder to the first holder in
/// group-then-rest order — the same deterministic "one designated
/// holder absorbs the leftover" rule `proportional_shares` applies —
/// then assert the ledger covers the whole budget. No-op with no
/// holders; with one holder the remainder is zero by construction, so
/// single-request (batch-1 anchor) runs are untouched.
pub(crate) fn top_up_first_holder(
    group: &mut [InFlight],
    rest: &mut [InFlight],
    pool: &mut PoolBudget,
    share: u64,
) {
    let k = group.len() + rest.len();
    let Some(first) = group.iter_mut().chain(rest.iter_mut()).next() else {
        return;
    };
    let topped = share + pool.equal_share_remainder(k);
    assert!(pool.resize(first.idx as u64, topped), "remainder must fit");
    first.run.set_kv_budget(topped);
    assert_eq!(
        pool.reserved_bytes(),
        pool.total_bytes(),
        "equal reshare must cover the whole budget"
    );
}

/// Completion/preemption boundary: re-share the surviving in-flight set
/// — equal split by default, demand-proportional when configured,
/// two-level tenant fair-share when a [`TenantPolicy`] is attached.
pub(crate) fn reshare(
    config: &BatchConfig,
    group: &mut [InFlight],
    rest: &mut [InFlight],
    pool: &mut PoolBudget,
) {
    if group.is_empty() && rest.is_empty() {
        return;
    }
    if let Some(policy) = config.tenants {
        rebalance_tenants(&policy, group, rest, pool);
    } else if config.demand_shares {
        rebalance_demand(group, rest, pool);
    } else {
        regrow(group, rest, pool);
    }
}

/// Whether the policy rebalances at admission/drift boundaries (either
/// elastic mode) rather than only regrowing at completion/preemption.
pub(crate) fn elastic(config: &BatchConfig) -> bool {
    config.demand_shares || config.tenants.is_some()
}

/// Admission/drift boundary for the elastic policies: tenant fair-share
/// when configured, demand-proportional otherwise. Callers gate on
/// [`elastic`].
pub(crate) fn rebalance_elastic(
    config: &BatchConfig,
    group: &mut [InFlight],
    rest: &mut [InFlight],
    pool: &mut PoolBudget,
) {
    if let Some(policy) = config.tenants {
        rebalance_tenants(&policy, group, rest, pool);
    } else {
        rebalance_demand(group, rest, pool);
    }
}

/// Demand-proportional elastic rebalance: every in-flight run declares
/// its working-set demand (live beams × mean depth × bytes/token) and
/// the floor that keeps its accepted tokens resident; the ledger
/// re-shares the whole pool proportionally (idle reservation flows to
/// deep searches without evicting anyone's accepted prefixes — see
/// [`ftts_kv::PoolBudget::rebalance`]).
pub(crate) fn rebalance_demand(
    group: &mut [InFlight],
    rest: &mut [InFlight],
    pool: &mut PoolBudget,
) {
    if group.is_empty() && rest.is_empty() {
        return;
    }
    let requests: Vec<ShareRequest> = group
        .iter_mut()
        .chain(rest.iter_mut())
        .map(|a| {
            let demand = a.run.demand_bytes();
            a.declared_demand = demand;
            ShareRequest {
                holder: a.idx as u64,
                demand,
                // The floor (resident unique tree plus one step of
                // growth, scaled to a full gen+ver share) must hold
                // until the next boundary — see
                // `RequestRun::kv_floor_bytes`.
                floor: a.run.kv_floor_bytes(),
            }
        })
        .collect();
    assert!(
        pool.rebalance(&requests),
        "active set must cover the reservation ledger exactly"
    );
    for a in group.iter_mut().chain(rest.iter_mut()) {
        a.run.set_kv_budget(pool.share_of(a.idx as u64));
    }
}

/// Two-level tenant fair-share rebalance: every in-flight run declares
/// its demand/floor exactly as [`rebalance_demand`], tagged with the
/// tenant it bills to and the tenant's policy weight; the ledger splits
/// the pool across tenants by weighted fair-share (each bounded by its
/// hard cap), then within each tenant demand-proportionally — see
/// [`ftts_kv::PoolBudget::rebalance_tenants`]. Unlike the untenanted
/// rebalance the ledger may end under-subscribed: bytes a tenant cap
/// withholds stay free instead of spilling to other tenants.
pub(crate) fn rebalance_tenants(
    policy: &TenantPolicy,
    group: &mut [InFlight],
    rest: &mut [InFlight],
    pool: &mut PoolBudget,
) {
    if group.is_empty() && rest.is_empty() {
        return;
    }
    let requests: Vec<TenantShareRequest> = group
        .iter_mut()
        .chain(rest.iter_mut())
        .map(|a| {
            let demand = a.run.demand_bytes();
            a.declared_demand = demand;
            TenantShareRequest {
                req: ShareRequest {
                    holder: a.idx as u64,
                    demand,
                    floor: a.run.kv_floor_bytes(),
                },
                tenant: u64::from(a.tenant),
                weight: policy.spec(a.tenant).weight,
            }
        })
        .collect();
    assert!(
        pool.rebalance_tenants(&requests),
        "active set must cover the reservation ledger exactly"
    );
    for a in group.iter_mut().chain(rest.iter_mut()) {
        a.run.set_kv_budget(pool.share_of(a.idx as u64));
    }
}

/// Whether any in-flight run's working-set demand drifted ±25% past its
/// last declaration — the trigger for an off-boundary elastic
/// rebalance. Trees grow for many rounds between admissions and
/// completions; shares frozen at an early snapshot would shrink a
/// growing request into preemption.
pub(crate) fn demand_drifted(group: &[InFlight], rest: &[InFlight]) -> bool {
    group.iter().chain(rest.iter()).any(|a| {
        let demand = a.run.demand_bytes();
        let declared = a.declared_demand.max(1);
        demand * 4 > declared * 5 || demand * 5 < declared * 4
    })
}

/// Whether `tenant` has admission quota left, counting every in-flight
/// holder (launching group plus rest). Always true without a tenant
/// policy.
fn tenant_quota_open(
    policy: Option<&TenantPolicy>,
    tenant: u32,
    group: &[InFlight],
    rest: &[InFlight],
) -> bool {
    let Some(p) = policy else { return true };
    let in_flight = group
        .iter()
        .chain(rest.iter())
        .filter(|a| a.tenant == tenant)
        .count();
    in_flight < p.spec(tenant).quota()
}

/// The probe/admission share offered to a candidate of `tenant`: the
/// equal split, additionally clamped to the tenant's hard cap divided
/// across the tenant's would-be in-flight count — so a capped tenant's
/// candidate is probed at a share the tenant rebalance can actually
/// sustain instead of admitting on memory it will lose at the very next
/// boundary. Identity without a tenant policy.
fn tenant_probe_share(
    policy: Option<&TenantPolicy>,
    share: u64,
    tenant: u32,
    group: &[InFlight],
    rest: &[InFlight],
) -> u64 {
    let Some(p) = policy else { return share };
    let n_t = group
        .iter()
        .chain(rest.iter())
        .filter(|a| a.tenant == tenant)
        .count() as u64;
    share.min(p.spec(tenant).kv_cap_bytes / (n_t + 1))
}

/// What an admission pass did, beyond whether anyone joined.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct AdmitReport {
    /// Whether anyone was admitted (shares were resized).
    pub(crate) admitted: bool,
    /// Fresh admissions whose beam width the degradation controller
    /// shrank below the configured width.
    pub(crate) degradations: u32,
}

/// Admit readmission candidates and fresh arrivals into `group`, at
/// equal KV shares (a demand-proportional policy rebalances right after
/// the admission boundary). Candidate order is [`admission_rank`]:
/// preempted runs hold accepted work, so they go first; fresh arrivals
/// stay FIFO (only the queue head is ever attempted) — except under
/// [`FaultPolicy::Degrade`](crate::FaultPolicy::Degrade), where both
/// classes rank earliest-deadline-first and the degradation controller
/// may grant fresh admissions a narrower beam width under queue
/// pressure. `rest` is the portion of the in-flight set outside the
/// launching group — its reservations resize with everyone else's and
/// it counts against `max_batch`, but admissions never join it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn admit(
    ctx: &SchedCtx<'_>,
    group: &mut Vec<InFlight>,
    rest: &mut [InFlight],
    paused: &mut VecDeque<InFlight>,
    waiting: &mut VecDeque<usize>,
    pool: &mut PoolBudget,
    tier: &mut HostTier,
    arrivals: &[RequestArrival],
    global: f64,
    admit_seq: &mut u64,
) -> Result<AdmitReport, EngineError> {
    let mut report = AdmitReport::default();
    let edf = ctx.config.robust.slo_enforcement();
    // Without mid-flight admission the gate only opens while the device
    // is idle — but once open, the whole gang fills (up to `max_batch`)
    // before the batch runs to completion.
    let device_idle = group.is_empty() && rest.is_empty();
    if !ctx.config.admit_mid_flight && !device_idle {
        return Ok(report);
    }
    loop {
        let in_flight = group.len() + rest.len();
        if in_flight >= ctx.config.max_batch || (paused.is_empty() && waiting.is_empty()) {
            return Ok(report);
        }
        let share = pool.equal_share(in_flight + 1);
        if in_flight > 0 && share < ctx.config.min_share_bytes {
            return Ok(report);
        }
        // Candidates in tiebreak order: every readmission candidate
        // (pause order), then the head of the arrival queue. Under SLO
        // enforcement both classes rank earliest-deadline-first instead
        // (readmits still outrank fresh arrivals — they hold accepted
        // work), with position as the deterministic tiebreak. A tenant
        // policy filters both classes by admission quota first, so a
        // quota-blocked tenant's arrivals queue without blocking other
        // tenants' arrivals behind them.
        let policy = ctx.config.tenants;
        let mut readmit_order: Vec<usize> = (0..paused.len())
            .filter(|&pos| tenant_quota_open(policy.as_ref(), paused[pos].tenant, group, rest))
            .collect();
        let fresh_pos = if edf {
            readmit_order.sort_by(|&x, &y| {
                paused[x]
                    .deadline
                    .partial_cmp(&paused[y].deadline)
                    .expect("finite or +inf deadlines")
                    .then(x.cmp(&y))
            });
            (0..waiting.len())
                .filter(|&x| {
                    tenant_quota_open(policy.as_ref(), arrivals[waiting[x]].tenant, group, rest)
                })
                .min_by(|&x, &y| {
                    arrivals[waiting[x]]
                        .deadline
                        .partial_cmp(&arrivals[waiting[y]].deadline)
                        .expect("finite or +inf deadlines")
                        .then(waiting[x].cmp(&waiting[y]))
                })
        } else if policy.is_some() {
            (0..waiting.len()).find(|&x| {
                tenant_quota_open(policy.as_ref(), arrivals[waiting[x]].tenant, group, rest)
            })
        } else if waiting.is_empty() {
            None
        } else {
            Some(0)
        };
        let candidates: Vec<AdmitCandidate> = readmit_order
            .into_iter()
            .map(AdmitCandidate::Readmit)
            .chain(fresh_pos.map(|p| AdmitCandidate::Fresh(waiting[p])))
            .collect();
        debug_assert!(
            edf || candidates
                .windows(2)
                .all(|w| admission_rank(w[0]) < admission_rank(w[1])),
            "non-EDF candidates are already in tiebreak order"
        );
        let joining_others = in_flight > 0;
        let mut progressed = false;
        for cand in candidates {
            match cand {
                AdmitCandidate::Readmit(pos) => {
                    // First preempted run that can make progress at this
                    // share. Joining a multi-request batch additionally
                    // requires its working set to fit, or it would
                    // bounce straight back out; with the device to
                    // itself it may thrash, as FIFO would.
                    let cand =
                        tenant_probe_share(policy.as_ref(), share, paused[pos].tenant, group, rest);
                    let p = &mut paused[pos];
                    if !matches!(p.probe, Some((s, _, _)) if s == cand) {
                        p.run.set_kv_budget(cand);
                        p.probe = Some((cand, p.run.can_progress(), p.run.fits_working_set()));
                    }
                    let (_, can_progress, fits_ws) = p.probe.expect("probe just set");
                    if !(can_progress && (!joining_others || fits_ws)) {
                        continue;
                    }
                    let mut p = paused.remove(pos).expect("index in range");
                    p.run.set_kv_budget(cand);
                    shrink(group, rest, pool, share);
                    assert!(pool.reserve(p.idx as u64, cand), "ledger must have room");
                    // The parked host bytes are coming back on-device:
                    // free the tier's ledger now; the actual swap-in is
                    // charged lazily as host-resident nodes pin
                    // (restore path), same as the legacy implicit host.
                    tier.unpark(p.idx as u64);
                    p.preempted_secs += global - p.paused_at;
                    pad_to(&mut p, global);
                    p.admit_seq = *admit_seq;
                    *admit_seq += 1;
                    group.push(p);
                    // Tenant mode under-subscribes the ledger by design
                    // (caps withhold bytes); the tenant rebalance right
                    // after this boundary sets the real shares, so the
                    // full-subscription top-up does not apply.
                    if policy.is_none() {
                        top_up_first_holder(group, rest, pool, share);
                    }
                    report.admitted = true;
                    progressed = true;
                }
                AdmitCandidate::Fresh(idx) => {
                    // Graceful degradation: under SLO enforcement the
                    // controller shrinks the TTS budget (beam width) of
                    // fresh admissions while the backlog is deep — one
                    // halving per `degrade_queue_per_level` queued or
                    // preempted requests, floored per SLO class — so
                    // the system trades answer-quality headroom for
                    // deadline hits *before* it resorts to shedding.
                    let n_granted = if edf {
                        let backlog = waiting.len() + paused.len();
                        let level =
                            (backlog / ctx.config.robust.degrade_queue_per_level.max(1)) as u32;
                        degraded_beams(ctx.n, arrivals[idx].slo, level)
                    } else {
                        ctx.n
                    };
                    let mut driver = make_driver(ctx.kind, n_granted, 4);
                    // Warm start from the host tier: a published prefix
                    // for this problem replaces that many prompt tokens'
                    // prefill with a costed host→device swap-in. Peek
                    // (not lookup) so a failed admission attempt does
                    // not perturb hotness; the hit/miss is registered
                    // once on success.
                    let warm_tokens = tier
                        .peek_prefix_tokens(arrivals[idx].problem.seed)
                        .min(arrivals[idx].problem.prompt_tokens);
                    let warm = (warm_tokens > 0).then_some(ftts_engine::WarmStart {
                        tokens: warm_tokens,
                    });
                    let cand = tenant_probe_share(
                        policy.as_ref(),
                        share,
                        arrivals[idx].tenant,
                        group,
                        rest,
                    );
                    match ctx.server.begin_request_warm(
                        &arrivals[idx].problem,
                        n_granted,
                        driver.as_mut(),
                        f64::INFINITY,
                        Some(cand),
                        warm,
                    ) {
                        Ok(mut run) => {
                            if tier.enabled() {
                                tier.lookup_prefix(arrivals[idx].problem.seed);
                                run.set_swap_accounting(true);
                            }
                            let pos = waiting
                                .iter()
                                .position(|&w| w == idx)
                                .expect("candidate still queued");
                            waiting.remove(pos);
                            shrink(group, rest, pool, share);
                            assert!(pool.reserve(idx as u64, cand), "ledger must have room");
                            group.push(InFlight {
                                idx,
                                run,
                                driver,
                                arrived_at: arrivals[idx].at,
                                slo: arrivals[idx].slo,
                                deadline: arrivals[idx].deadline,
                                tenant: arrivals[idx].tenant,
                                granted_n: n_granted,
                                started_at: global,
                                admit_seq: *admit_seq,
                                preemptions: 0,
                                preempted_secs: 0.0,
                                paused_at: 0.0,
                                probe: None,
                                declared_demand: 0,
                            });
                            if policy.is_none() {
                                top_up_first_holder(group, rest, pool, share);
                            }
                            *admit_seq += 1;
                            report.admitted = true;
                            if n_granted < ctx.n {
                                report.degradations += 1;
                            }
                            progressed = true;
                        }
                        // The whole pool cannot host this prompt:
                        // infeasible.
                        Err(e) if in_flight == 0 => return Err(e),
                        // A share cannot: leave it queued until capacity
                        // frees (FIFO — later arrivals wait behind it).
                        Err(_) => return Ok(report),
                    }
                }
            }
            if progressed {
                break;
            }
        }
        if !progressed {
            // Only unfittable preempted runs remain (and no admissible
            // arrival); wait for the batch to drain and shares to
            // regrow.
            return Ok(report);
        }
    }
}

/// What one SLO-enforcement sweep did.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SloSweep {
    /// Arrivals rejected before admission (expired slack or an
    /// infeasible working set).
    pub(crate) shed: u32,
    /// Admitted (in-flight or preempted) runs cancelled past their
    /// deadline.
    pub(crate) cancelled: u32,
}

/// Seal a cancelled run into its served record: the request is counted
/// as shed (no answer delivered), its partial statistics are kept for
/// attribution, and its cancellation instant never precedes the work it
/// already did.
fn cancel_record(a: InFlight, now: f64) -> ServedRequest {
    let finished_at = now.max(a.started_at + a.run.clock());
    let stats = a.run.finish();
    ServedRequest {
        arrived_at: a.arrived_at,
        started_at: a.started_at,
        finished_at,
        preemptions: a.preemptions,
        preempted_secs: a.preempted_secs,
        slo: a.slo,
        deadline: a.deadline,
        shed: true,
        granted_n: a.granted_n,
        outcome: ServeOutcome {
            stats,
            answer: None,
        },
    }
}

/// Deadline/SLO enforcement sweep, shared by both schedulers and active
/// only under [`FaultPolicy::Degrade`](crate::FaultPolicy::Degrade):
///
/// * **Early rejection** — waiting arrivals whose deadline slack has
///   fallen below [`RobustConfig::min_slack_secs`](crate::RobustConfig)
///   are shed immediately (admitting them would waste device time on a
///   guaranteed miss), as are arrivals whose prompt working set exceeds
///   the *entire* KV pool (they could never be admitted at any share —
///   the graceful form of the engine's hard infeasibility error).
/// * **Timeout cancellation** — admitted runs past their deadline are
///   hopeless: in-flight members release their pool reservation (and
///   survivors re-share); preempted members hold no reservation and are
///   simply sealed. Either way the request is recorded as shed at the
///   sweep instant.
///
/// Requests without deadlines (`f64::INFINITY`) are never touched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn enforce_slo(
    ctx: &SchedCtx<'_>,
    now: f64,
    pool_bytes: u64,
    arrivals: &[RequestArrival],
    waiting: &mut VecDeque<usize>,
    paused: &mut VecDeque<InFlight>,
    group: &mut Vec<InFlight>,
    rest: &mut Vec<InFlight>,
    pool: &mut PoolBudget,
    tier: &mut HostTier,
    served: &mut [Option<ServedRequest>],
) -> SloSweep {
    let mut sweep = SloSweep::default();
    if !ctx.config.robust.slo_enforcement() {
        return sweep;
    }
    // Early rejection: expired slack, or a prompt no share could host.
    // Prompt tokens already host-resident in the tier (a published warm
    // prefix) swap in instead of occupying fresh device KV at prefill,
    // so only the *cold* tail counts against the device working set —
    // counting warm bytes too would double-book memory that is no
    // longer on-device and shed requests the tier can actually serve.
    let gen_bpt = ctx.server.config().models.gen_spec.kv_bytes_per_token();
    waiting.retain(|&idx| {
        let a = &arrivals[idx];
        let expired = a.deadline - now < ctx.config.robust.min_slack_secs;
        let cold_tokens = a
            .problem
            .prompt_tokens
            .saturating_sub(tier.peek_prefix_tokens(a.problem.seed));
        // The device working set must fit the whole pool — and, under a
        // tenant policy, the arrival's own tenant cap: a prompt the cap
        // could never host sheds now instead of thrashing in and out of
        // admission forever (working-set-aware early rejection).
        let cap = ctx
            .config
            .tenants
            .map_or(u64::MAX, |p| p.spec(a.tenant).kv_cap_bytes);
        let cold_bytes = cold_tokens.saturating_mul(gen_bpt);
        let infeasible = cold_bytes > pool_bytes || cold_bytes > cap;
        if !(expired || infeasible) {
            return true;
        }
        served[idx] = Some(ServedRequest {
            arrived_at: a.at,
            started_at: now,
            finished_at: now,
            preemptions: 0,
            preempted_secs: 0.0,
            slo: a.slo,
            deadline: a.deadline,
            shed: true,
            granted_n: 0,
            outcome: ServeOutcome {
                stats: RunStats::default(),
                answer: None,
            },
        });
        sweep.shed += 1;
        false
    });
    // Timeout cancellation of preempted runs: they hold no reservation
    // (released at preemption), so sealing them frees nothing on-device
    // but stops them from ever re-admitting and burning device time on
    // a miss. Their parked host bytes ARE freed — and the prompt prefix
    // they already paid to prefill is offered to the tier's shared
    // store, so a retry of the same problem warm-starts instead of
    // recomputing from scratch.
    let mut pos = 0;
    while pos < paused.len() {
        if now > paused[pos].deadline {
            let p = paused.remove(pos).expect("index in range");
            let idx = p.idx;
            tier.unpark(idx as u64);
            let prompt_tokens = arrivals[idx].problem.prompt_tokens;
            tier.publish_prefix(
                arrivals[idx].problem.seed,
                prompt_tokens,
                prompt_tokens.saturating_mul(gen_bpt),
            );
            served[idx] = Some(cancel_record(p, now));
            sweep.cancelled += 1;
        } else {
            pos += 1;
        }
    }
    // Timeout cancellation of in-flight runs: release the reservation
    // and re-share the survivors at the completion boundary. The prompt
    // prefix is published to the tier on the way out (the copy-out
    // overlaps the release and is not charged to the cancelled run — it
    // is already past its deadline and off the critical path).
    let mut dropped = false;
    for list in [&mut *group, &mut *rest] {
        let mut i = 0;
        while i < list.len() {
            if now > list[i].deadline {
                let a = list.remove(i);
                let idx = a.idx;
                pool.release(idx as u64);
                // In-flight members normally hold no parked host bytes
                // (readmission unparks), but reclaim defensively so a
                // cancellation can never strand tier capacity.
                tier.unpark(idx as u64);
                let prompt_tokens = arrivals[idx].problem.prompt_tokens;
                tier.publish_prefix(
                    arrivals[idx].problem.seed,
                    prompt_tokens,
                    prompt_tokens.saturating_mul(gen_bpt),
                );
                served[idx] = Some(cancel_record(a, now));
                sweep.cancelled += 1;
                dropped = true;
            } else {
                i += 1;
            }
        }
    }
    if dropped {
        reshare(ctx.config, group, rest, pool);
    }
    sweep
}

/// Externally directed cancellation sweep, driven by
/// [`RunDirectives`](crate::event_server::RunDirectives): request `idx`
/// is cancelled at the first launch boundary at or after
/// `cancel_at[idx]`, regardless of the fault policy. This is how a
/// fleet expresses crash failover ("this replica lost you at `t`") and
/// hedge resolution ("your duplicate already won at `t`") to a device
/// timeline.
///
/// Unlike deadline cancellation, a directed cancel does **not** publish
/// the request's prompt prefix to the host tier: a crashed device's
/// host path is down, and a hedge loser's winner publishes on its own
/// replica. Reclaim is total — waiting entries are shed, paused entries
/// unpark-and-drop their parked bytes, in-flight entries release their
/// pool reservation (and defensively unpark) — so tier usage returns to
/// its pre-request level.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_cancels(
    config: &BatchConfig,
    cancel_at: &[f64],
    now: f64,
    arrivals: &[RequestArrival],
    waiting: &mut VecDeque<usize>,
    paused: &mut VecDeque<InFlight>,
    group: &mut Vec<InFlight>,
    rest: &mut Vec<InFlight>,
    pool: &mut PoolBudget,
    tier: &mut HostTier,
    served: &mut [Option<ServedRequest>],
) -> SloSweep {
    let mut sweep = SloSweep::default();
    let due = |idx: usize| cancel_at.get(idx).is_some_and(|&t| t <= now);
    waiting.retain(|&idx| {
        if !due(idx) {
            return true;
        }
        let a = &arrivals[idx];
        served[idx] = Some(ServedRequest {
            arrived_at: a.at,
            started_at: now,
            finished_at: now,
            preemptions: 0,
            preempted_secs: 0.0,
            slo: a.slo,
            deadline: a.deadline,
            shed: true,
            granted_n: 0,
            outcome: ServeOutcome {
                stats: RunStats::default(),
                answer: None,
            },
        });
        sweep.shed += 1;
        false
    });
    let mut pos = 0;
    while pos < paused.len() {
        if due(paused[pos].idx) {
            let p = paused.remove(pos).expect("index in range");
            tier.unpark(p.idx as u64);
            let idx = p.idx;
            served[idx] = Some(cancel_record(p, now));
            sweep.cancelled += 1;
        } else {
            pos += 1;
        }
    }
    let mut dropped = false;
    for list in [&mut *group, &mut *rest] {
        let mut i = 0;
        while i < list.len() {
            if due(list[i].idx) {
                let a = list.remove(i);
                let idx = a.idx;
                pool.release(idx as u64);
                tier.unpark(idx as u64);
                served[idx] = Some(cancel_record(a, now));
                sweep.cancelled += 1;
                dropped = true;
            } else {
                i += 1;
            }
        }
    }
    if dropped {
        reshare(config, group, rest, pool);
    }
    sweep
}

/// Verifier-device accounting of one launch's sweeps.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SweepTally {
    pub(crate) sweeps: u64,
    pub(crate) seqs: u64,
    pub(crate) busy_secs: f64,
}

impl SweepTally {
    fn record(&mut self, cost: &ftts_hw::KernelCost, members: usize) {
        if cost.seconds <= 0.0 {
            return;
        }
        self.sweeps += 1;
        self.seqs += members as u64;
        self.busy_secs += cost.seconds;
    }
}

/// Price one launch's verifier prefill chunks over the shared
/// accelerator, filling `charges` (one [`VerifyCharge`] per chunk, per
/// request).
///
/// Unfused: each request's sweeps are separate kernels that serialize
/// in admission order — a request whose turn has not come idle-waits
/// for the device. Fused: all requests' wave-`w` chunks launch as one
/// shared `prefill_batch` sweep; every participant waits the full
/// kernel but is attributed only its `new_tokens`-proportional share as
/// verifier busy time. Either way a single participant degenerates to
/// its own solo sweep, which is what keeps batch-1 scheduling
/// bit-identical to `ServerSim`.
pub(crate) fn cost_verify_sweeps(
    fused: bool,
    members: &mut [InFlight],
    plans: &[Vec<VerifyChunk>],
    charges: &mut [Vec<VerifyCharge>],
) -> SweepTally {
    let mut tally = SweepTally::default();
    if fused {
        let waves = plans.iter().map(Vec::len).max().unwrap_or(0);
        for wave in 0..waves {
            let parties: Vec<usize> = (0..plans.len())
                .filter(|&i| plans[i].len() > wave)
                .collect();
            // One shared kernel for the whole wave: every part keeps
            // its own attention shape, the verifier weights stream
            // once. Like co-batched decode, each participant advances
            // the shared-kernel time from its own clock (the scheduler
            // re-aligns launches); a single participant degenerates to
            // its own solo sweep bit-for-bit.
            let parts: Vec<(usize, u64, u64)> = parties
                .iter()
                .map(|&i| {
                    let c = plans[i][wave];
                    let m = c.members.max(1);
                    (m, c.new_tokens / m as u64, c.cached_tokens / m as u64)
                })
                .collect();
            let cost = members[parties[0]]
                .run
                .verifier_roofline()
                .prefill_fused(&parts);
            let total_new: u64 = parties.iter().map(|&i| plans[i][wave].new_tokens).sum();
            // The fused kernel streams its sub-batches back to back
            // (continuous batching inside the verifier): request `i`'s
            // scores are ready once the prefix of the launch holding
            // its sequences has been processed, so it is charged the
            // prefix end — its own slice as `verifier` busy time, the
            // wait for earlier sub-batches as idle. The last
            // participant pays the whole kernel, so the slices sum to
            // the kernel exactly (no double-count).
            let mut seqs = 0usize;
            let mut prefix = 0.0f64;
            for &i in &parties {
                let chunk = plans[i][wave];
                seqs += chunk.members;
                let slice = if total_new > 0 {
                    cost.seconds * chunk.new_tokens as f64 / total_new as f64
                } else {
                    cost.seconds / parties.len() as f64
                };
                prefix += slice;
                charges[i].push(VerifyCharge {
                    seconds: prefix,
                    compute_util: cost.compute_util,
                    busy_seconds: slice,
                });
            }
            tally.record(&cost, seqs);
        }
    } else {
        let mut device_free = f64::NEG_INFINITY;
        for (i, a) in members.iter_mut().enumerate() {
            if plans[i].is_empty() {
                continue;
            }
            pad_to(a, device_free);
            let mut end = a.started_at + a.run.clock();
            for chunk in &plans[i] {
                let cost = chunk.solo_cost(a.run.verifier_roofline());
                end += cost.seconds;
                charges[i].push(VerifyCharge::full(&cost));
                tally.record(&cost, chunk.members);
            }
            device_free = end;
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPolicy;
    use crate::faults::RobustConfig;
    use ftts_engine::ModelPairing;
    use ftts_hw::GpuDevice;
    use ftts_kv::KvTierConfig;
    use ftts_workload::{ArrivalPattern, Dataset};

    #[test]
    fn early_rejection_ignores_host_resident_prompt_bytes() {
        // Satellite regression: `enforce_slo`'s infeasibility check must
        // count only the *cold* prompt tail against the device pool — a
        // published warm prefix swaps in from host RAM instead of
        // claiming fresh device KV at prefill. A pool sized under the
        // full prompt but over the cold tail sheds the arrival without
        // the tier and retains it with the tier.
        let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        let config = crate::BatchConfig::continuous(2)
            .with_robust(RobustConfig::with_policy(FaultPolicy::Degrade));
        let ctx = SchedCtx {
            server: &server,
            n: 4,
            kind: SearchKind::BeamSearch,
            config: &config,
        };
        let problems = Dataset::Aime2024.problems(1, 7);
        let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
        let gen_bpt = server.config().models.gen_spec.kv_bytes_per_token();
        let prompt = arrivals[0].problem.prompt_tokens;
        assert!(prompt > 8, "fixture prompt long enough to split");
        let warm = prompt - 8;
        // Full prompt misses the pool by one token; the cold tail fits.
        let pool_bytes = (prompt - 1) * gen_bpt;

        let run = |tier: &mut HostTier| {
            let mut waiting: VecDeque<usize> = VecDeque::from([0]);
            let mut paused: VecDeque<InFlight> = VecDeque::new();
            let mut group: Vec<InFlight> = Vec::new();
            let mut rest: Vec<InFlight> = Vec::new();
            let mut pool = PoolBudget::new(pool_bytes);
            let mut served = vec![None];
            let sweep = enforce_slo(
                &ctx,
                0.0,
                pool_bytes,
                &arrivals,
                &mut waiting,
                &mut paused,
                &mut group,
                &mut rest,
                &mut pool,
                tier,
                &mut served,
            );
            (sweep.shed, waiting.len())
        };

        let mut disabled = HostTier::new(KvTierConfig::default());
        assert_eq!(
            run(&mut disabled),
            (1, 0),
            "without the tier the full prompt is infeasible and sheds"
        );

        let mut tier = HostTier::new(KvTierConfig::with_capacity(warm * gen_bpt));
        tier.publish_prefix(arrivals[0].problem.seed, warm, warm * gen_bpt);
        assert_eq!(
            run(&mut tier),
            (0, 1),
            "host-resident prefix bytes must not count against the device pool"
        );
    }

    #[test]
    fn readmits_outrank_fresh_arrivals() {
        assert!(
            admission_rank(AdmitCandidate::Readmit(5)) < admission_rank(AdmitCandidate::Fresh(0))
        );
    }

    #[test]
    fn within_class_earlier_position_wins() {
        assert!(
            admission_rank(AdmitCandidate::Readmit(0)) < admission_rank(AdmitCandidate::Readmit(1))
        );
        assert!(
            admission_rank(AdmitCandidate::Fresh(2)) < admission_rank(AdmitCandidate::Fresh(3))
        );
    }

    #[test]
    fn sorting_candidates_is_deterministic_for_simultaneous_arrivals() {
        // Simultaneous arrivals (same instant, distinct stream indices)
        // plus a couple of readmission candidates, shuffled: sorting by
        // the rank always recovers pause order first, then arrival
        // order — the scheduler-independent admission order.
        let mut candidates = vec![
            AdmitCandidate::Fresh(4),
            AdmitCandidate::Readmit(1),
            AdmitCandidate::Fresh(2),
            AdmitCandidate::Readmit(0),
            AdmitCandidate::Fresh(3),
        ];
        candidates.sort_by_key(|&c| admission_rank(c));
        assert_eq!(
            candidates,
            vec![
                AdmitCandidate::Readmit(0),
                AdmitCandidate::Readmit(1),
                AdmitCandidate::Fresh(2),
                AdmitCandidate::Fresh(3),
                AdmitCandidate::Fresh(4),
            ]
        );
    }
}
