//! Continuous batching across requests.
//!
//! [`ServerSim`](crate::ServerSim) drains arrivals FIFO at batch size 1:
//! every request runs to completion in isolation, so the accelerator's
//! decode batch is only as wide as one request's beam frontier. This
//! module adds the request-level scheduler a production serving system
//! needs: [`BatchedServerSim`] admits arrivals *mid-flight*, steps every
//! in-flight [`RequestRun`] one TTS iteration per lockstep round, and
//! arbitrates the device KV budget between them through a
//! [`PoolBudget`] reservation ledger.
//!
//! # Execution model
//!
//! * **Phase-split lockstep rounds.** Each round, every active request
//!   executes one TTS iteration through `RequestRun`'s split-phase API,
//!   in four explicit stages: **plan** (`plan_iteration` — memory
//!   replan plus the co-batched decode: each run is costed over the
//!   *combined* sequence batch, one shared weight sweep, everyone's KV
//!   traffic — `RequestRun::set_co_batch`), **gather**
//!   (`take_verify_batch` — every run's verifier mirror work and its
//!   pending prefill chunks), **cost** (the scheduler prices all
//!   verifier sweeps over the one shared accelerator) and **commit**
//!   (`apply_verify_results` — charge the sweeps, reveal scores,
//!   branch). Runs that finish early idle-wait at the round barrier
//!   (charged to their latency as `idle`).
//! * **Cross-request verifier co-batching.** The verifier is a shared
//!   device. Without fusion ([`BatchConfig::fused_verify`] off) the
//!   requests' prefill sweeps are distinct kernels and *serialize* in
//!   admission order — later requests wait their turn as `idle` time.
//!   With fusion on, all requests' wave-`w` chunks launch as **one
//!   shared fused sweep per round** (`Roofline::prefill_fused`): the
//!   weights stream once instead of `k` times, sub-batches are
//!   processed back to back inside the kernel, and each participant is
//!   charged the prefix of the kernel up to its own sequences — its
//!   slice as `LatencyBreakdown::verifier` busy time, the wait for
//!   earlier sub-batches as `idle` — so the slices sum to the kernel
//!   seconds exactly and busy time is never double-counted across
//!   requests.
//! * **Admission control and elastic shares.** The device KV budget is
//!   split among active requests through the [`PoolBudget`] ledger:
//!   equal shares by default, or **demand-proportional** shares
//!   ([`BatchConfig::demand_shares`]) sized by each run's working-set
//!   estimate (live beams × mean depth × bytes/token) with a floor that
//!   keeps accepted tokens resident. Shares rebalance only at
//!   admission, completion and preemption boundaries; idle reservation
//!   is reclaimed without evicting anyone's accepted tokens. The ledger
//!   guarantees reservations never exceed the pool.
//! * **Preemption.** A request whose KV demand outgrows its share is
//!   swapped out (PCIe-costed), its reservation released, and requeued;
//!   it readmits when shares regrow, restoring or recomputing prefixes
//!   through the normal pin path. Accepted tokens are never lost.
//! * **First Finish cut (opt-in).** With [`BatchConfig::first_finish`]
//!   set, a request whose best verified beam clears the acceptance bar
//!   cancels its sibling beams and completes immediately, releasing its
//!   reservation to waiting work (First Finish Search). Answers of
//!   non-opted runs are untouched.
//! * **Two-phase speculation.** Speculative Beam Extension runs only
//!   while a request has the system to itself (no other active, queued
//!   or preempted request) — the request-level generalization of the
//!   paper's Sec. 4.1.2 rule, and exactly [`ServerSim`]'s rule when the
//!   batch size is 1.
//!
//! With `max_batch = 1` and mid-flight admission disabled the scheduler
//! reproduces [`ServerSim::run`] bit-for-bit (outcomes, latencies,
//! eviction stats) — with or without `fused_verify`, since a fused
//! sweep over one participant degenerates to that request's own solo
//! sweep. Enforced by the lockstep tests in
//! `crates/core/tests/batch_lockstep.rs`.
//!
//! [`ServerSim`]: crate::ServerSim

use std::collections::VecDeque;

use ftts_engine::{EngineError, RequestRun, SearchDriver, VerifyCharge, VerifyChunk};
use ftts_kv::{PoolBudget, ShareRequest};
use ftts_metrics::{StreamRecord, StreamSummary};
use ftts_search::{make_driver, SearchKind};
use ftts_workload::RequestArrival;
use serde::{Deserialize, Serialize};

use crate::server::{ServeOutcome, ServedRequest, TtsServer};

/// Request-level scheduling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Maximum concurrently active requests.
    pub max_batch: usize,
    /// Admit new arrivals while others are in flight (continuous
    /// batching). When `false`, admission waits for the device to drain
    /// — batch-1 FIFO or gang scheduling depending on `max_batch`.
    pub admit_mid_flight: bool,
    /// Do not admit a request mid-flight if equal shares would fall
    /// below this many bytes (0 = only `max_batch` limits admission).
    pub min_share_bytes: u64,
    /// Fuse all in-flight requests' verifier prefills into one shared
    /// sweep per round instead of serializing per-request kernels on
    /// the shared accelerator.
    pub fused_verify: bool,
    /// Size KV shares proportionally to each request's declared
    /// working-set demand (rebalanced at admission / completion /
    /// preemption boundaries) instead of an equal split.
    pub demand_shares: bool,
    /// First Finish cut: complete a request as soon as its best
    /// verified beam clears [`BatchConfig::first_finish_bar`],
    /// cancelling sibling beams and releasing their reservation.
    /// Changes which beams finish (never how any path is generated), so
    /// it is opt-in and excluded from the equivalence suite.
    pub first_finish: bool,
    /// Acceptance bar for the First Finish cut (a verifier score).
    pub first_finish_bar: f64,
}

impl BatchConfig {
    /// FIFO batch-1 — semantically identical to [`crate::ServerSim`].
    pub fn fifo() -> Self {
        Self {
            max_batch: 1,
            admit_mid_flight: false,
            min_share_bytes: 0,
            fused_verify: false,
            demand_shares: false,
            first_finish: false,
            first_finish_bar: 0.0,
        }
    }

    /// Continuous batching: up to `max_batch` requests, joined and
    /// retired mid-flight.
    pub fn continuous(max_batch: usize) -> Self {
        Self {
            max_batch: max_batch.max(1),
            admit_mid_flight: true,
            ..Self::fifo()
        }
    }

    /// Gang (static) batching: admit up to `max_batch` only while the
    /// device is idle, then run the gang to completion.
    pub fn gang(max_batch: usize) -> Self {
        Self {
            max_batch: max_batch.max(1),
            admit_mid_flight: false,
            ..Self::fifo()
        }
    }

    /// The full PR-3 serving policy: continuous batching with the
    /// cross-request fused verifier sweep and demand-proportional
    /// elastic KV shares.
    pub fn fused(max_batch: usize) -> Self {
        Self {
            fused_verify: true,
            demand_shares: true,
            ..Self::continuous(max_batch)
        }
    }

    /// Enable the First Finish cut at the given acceptance bar.
    pub fn with_first_finish(mut self, bar: f64) -> Self {
        self.first_finish = true;
        self.first_finish_bar = bar;
        self
    }
}

/// Result of replaying one arrival stream through [`BatchedServerSim`].
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-request records, in arrival order.
    pub served: Vec<ServedRequest>,
    /// Lockstep rounds executed.
    pub rounds: u64,
    /// Total preemption events.
    pub preemptions: u32,
    /// High-water mark of KV reservations, bytes.
    pub peak_reserved_bytes: u64,
    /// The shared device KV budget, bytes.
    pub pool_bytes: u64,
    /// Verifier prefill sweeps launched on the shared device (a fused
    /// sweep counts once regardless of how many requests it served).
    pub ver_sweeps: u64,
    /// Sequences prefilled across all verifier sweeps.
    pub ver_seqs: u64,
    /// Device-busy seconds across all verifier sweeps. Equals the sum
    /// of every served request's attributed `verifier` breakdown: the
    /// no-double-count audit for fused sweeps.
    pub ver_busy_secs: f64,
}

impl BatchRun {
    /// First arrival to last completion, seconds.
    pub fn makespan(&self) -> f64 {
        let first = self
            .served
            .iter()
            .map(|r| r.arrived_at)
            .fold(f64::INFINITY, f64::min);
        let last = self
            .served
            .iter()
            .map(|r| r.finished_at)
            .fold(0.0f64, f64::max);
        (last - first).max(0.0)
    }

    /// Stream-level summary: system goodput over the makespan, latency
    /// / queueing distributions, per-phase goodput over attributed busy
    /// time, and the verifier-sweep occupancy the scheduler measured.
    pub fn stream_summary(&self) -> StreamSummary {
        let records: Vec<StreamRecord> = self
            .served
            .iter()
            .map(|r| StreamRecord {
                arrived_at: r.arrived_at,
                finished_at: r.finished_at,
                queue_delay: r.queue_delay(),
                accepted_tokens: r.accepted_tokens(),
                generator_secs: r.outcome.stats.breakdown().generator_side(),
                verifier_secs: r.outcome.stats.breakdown().verifier,
            })
            .collect();
        let occupancy = if self.ver_sweeps > 0 {
            self.ver_seqs as f64 / self.ver_sweeps as f64
        } else {
            0.0
        };
        StreamSummary::of(&records).with_verifier_occupancy(occupancy)
    }
}

/// Verifier-device accounting of one round's sweeps.
#[derive(Debug, Default, Clone, Copy)]
struct SweepTally {
    sweeps: u64,
    seqs: u64,
    busy_secs: f64,
}

impl SweepTally {
    fn record(&mut self, cost: &ftts_hw::KernelCost, members: usize) {
        if cost.seconds <= 0.0 {
            return;
        }
        self.sweeps += 1;
        self.seqs += members as u64;
        self.busy_secs += cost.seconds;
    }
}

/// One in-flight (or preempted) request.
struct InFlight {
    /// Index into the arrival stream (doubles as the pool holder id).
    idx: usize,
    run: RequestRun,
    driver: Box<dyn SearchDriver>,
    arrived_at: f64,
    /// Global time of first admission.
    started_at: f64,
    /// Admission sequence number; the largest is the youngest request
    /// (the preemption victim, as in vLLM).
    admit_seq: u64,
    preemptions: u32,
    preempted_secs: f64,
    /// Global time this request was last preempted.
    paused_at: f64,
    /// Memoized readmission probe while paused: `(share, can_progress,
    /// fits_working_set)`. The run's frontier is frozen while swapped
    /// out, so the answer only changes when the offered share does —
    /// re-probing (a replan + tree walk) every round would be pure
    /// waste.
    probe: Option<(u64, bool, bool)>,
    /// Working-set demand declared at the last elastic rebalance (0
    /// until the first declaration); drifting ±25% past it triggers the
    /// next rebalance.
    declared_demand: u64,
}

/// Replays a request arrival stream with continuous batching across
/// requests over one shared accelerator and KV pool.
#[derive(Debug, Clone)]
pub struct BatchedServerSim {
    server: TtsServer,
    n: usize,
    kind: SearchKind,
    config: BatchConfig,
}

impl BatchedServerSim {
    /// Simulate `server` answering requests with `n` beams each under
    /// the given batching policy.
    pub fn new(server: TtsServer, n: usize, kind: SearchKind, config: BatchConfig) -> Self {
        assert!(config.max_batch >= 1, "need at least one batch slot");
        Self {
            server,
            n,
            kind,
            config,
        }
    }

    /// The batching policy in effect.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Serve the arrival stream to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit even with
    /// the entire pool to itself.
    pub fn run(&self, arrivals: &[RequestArrival]) -> Result<BatchRun, EngineError> {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival times must be non-decreasing"
        );
        let pool_bytes = self.server.config().kv_budget_bytes();
        let device = self.server.config().device.clone();
        let mut pool = PoolBudget::new(pool_bytes);
        let mut global = 0.0f64;
        let mut next_arrival = 0usize;
        let mut waiting: VecDeque<usize> = VecDeque::new();
        let mut paused: VecDeque<InFlight> = VecDeque::new();
        let mut active: Vec<InFlight> = Vec::new();
        let mut served: Vec<Option<ServedRequest>> = (0..arrivals.len()).map(|_| None).collect();
        let mut admit_seq = 0u64;
        let mut rounds = 0u64;
        let mut preemptions = 0u32;
        let mut ver_sweeps = 0u64;
        let mut ver_seqs = 0u64;
        let mut ver_busy_secs = 0.0f64;

        loop {
            // Ingest arrivals due by now.
            while next_arrival < arrivals.len() && arrivals[next_arrival].at <= global {
                waiting.push_back(next_arrival);
                next_arrival += 1;
            }

            let admitted = self.admit(
                &mut active,
                &mut paused,
                &mut waiting,
                &mut pool,
                arrivals,
                global,
                &mut admit_seq,
            )?;
            // Admission boundary: size elastic shares by demand.
            if admitted && self.config.demand_shares {
                Self::rebalance_demand(&mut active, &mut pool);
            }

            if active.is_empty() {
                if waiting.is_empty() && paused.is_empty() {
                    if next_arrival >= arrivals.len() {
                        break; // everything served
                    }
                    // Idle until the next arrival.
                    global = global.max(arrivals[next_arrival].at);
                    continue;
                }
                // A lone candidate that cannot fit the whole pool: fresh
                // requests already propagated from admission, so this is
                // a preempted run whose paths outgrew the device.
                let p = paused.front().expect("paused candidate");
                let (needed, capacity) = p.run.kv_demand();
                return Err(EngineError::PathExceedsMemory { needed, capacity });
            }

            // Memory-pressure preemption: a request whose worst path no
            // longer fits its share cannot progress at all; one whose
            // frontier working set outgrew the share would thrash the
            // cache with evict/recompute cycles every iteration. Either
            // way requests are swapped out youngest-first (vLLM's victim
            // rule) and the survivors regrow. A lone request is never
            // preempted — it holds the whole pool, like FIFO would.
            while active.len() > 1 {
                let victim = active
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.run.can_progress() || !a.run.fits_working_set())
                    .max_by_key(|(_, a)| a.admit_seq)
                    .map(|(i, _)| i);
                let Some(vi) = victim else { break };
                let mut v = active.remove(vi);
                let bytes = v.run.preempt();
                global += device.pcie_transfer_seconds(bytes);
                pool.release(v.idx as u64);
                v.preemptions += 1;
                preemptions += 1;
                v.paused_at = global;
                v.probe = None;
                paused.push_back(v);
                // Preemption boundary: survivors regrow or rebalance.
                Self::reshare(&self.config, &mut active, &mut pool);
            }

            // One lockstep round: every active request executes one TTS
            // iteration over the shared, co-batched accelerator, in four
            // explicit phases (plan → gather → cost → commit).
            rounds += 1;
            let loads: Vec<(usize, u64)> = active.iter().map(|a| a.run.decode_load()).collect();
            let total_seqs: usize = loads.iter().map(|l| l.0).sum();
            let total_ctx: u64 = loads.iter().map(|l| l.1).sum();
            let alone = active.len() == 1 && waiting.is_empty() && paused.is_empty();
            let next_at = arrivals.get(next_arrival).map(|a| a.at);
            // The round barrier is the latest member's absolute clock
            // (`started_at + internal clock` — never re-derived from
            // deltas, which would drift bit-wise from the FIFO path).
            let mut round_end = global;
            let mut finished: Vec<usize> = Vec::new();

            // Phase 1 — plan: memory replan plus the co-batched decode.
            let mut planned: Vec<bool> = Vec::with_capacity(active.len());
            for (i, a) in active.iter_mut().enumerate() {
                a.run
                    .set_co_batch(total_seqs - loads[i].0, total_ctx - loads[i].1);
                // Two-phase rule: speculate only while alone, and only
                // until the next (known) arrival would start waiting.
                let spec_off = if !alone {
                    0.0
                } else if let Some(at) = next_at {
                    (at - a.started_at).max(0.0)
                } else {
                    f64::INFINITY
                };
                a.run.set_spec_off_after(spec_off);
                planned.push(!a.run.plan_iteration(a.driver.as_mut())?.is_finished());
            }

            // Phase 2 — gather: every run's verifier mirror work and the
            // prefill chunks still owed kernel time.
            let plans: Vec<Vec<VerifyChunk>> = active
                .iter_mut()
                .zip(&planned)
                .map(|(a, &p)| {
                    if p {
                        a.run.take_verify_batch().to_vec()
                    } else {
                        Vec::new()
                    }
                })
                .collect();

            // Phase 3 — cost: price all verifier sweeps over the one
            // shared accelerator (fused or serialized).
            let mut charges: Vec<Vec<VerifyCharge>> = vec![Vec::new(); active.len()];
            let sweep = self.cost_verify_sweeps(&mut active, &plans, &mut charges);
            ver_sweeps += sweep.sweeps;
            ver_seqs += sweep.seqs;
            ver_busy_secs += sweep.busy_secs;

            // Phase 4 — commit: charge the sweeps, reveal scores, branch
            // survivors; apply the opt-in First Finish cut.
            for (i, a) in active.iter_mut().enumerate() {
                let status = if planned[i] {
                    a.run.apply_verify_results(a.driver.as_mut(), &charges[i])?
                } else {
                    ftts_engine::StepStatus::Finished
                };
                let mut done = status.is_finished();
                if !done
                    && self.config.first_finish
                    && a.run.first_finish_cut(self.config.first_finish_bar)
                {
                    done = true;
                }
                round_end = round_end.max(a.started_at + a.run.clock());
                if done {
                    finished.push(i);
                }
            }
            global = round_end;

            // Completions leave the batch at their own finish instant.
            for &i in finished.iter().rev() {
                let a = active.remove(i);
                pool.release(a.idx as u64);
                let stats = a.run.finish();
                let answer = ftts_metrics::top1_majority(&stats.answers());
                served[a.idx] = Some(ServedRequest {
                    arrived_at: a.arrived_at,
                    started_at: a.started_at,
                    finished_at: a.started_at + stats.latency(),
                    preemptions: a.preemptions,
                    preempted_secs: a.preempted_secs,
                    outcome: ServeOutcome { stats, answer },
                });
            }

            // Survivors idle-wait at the round barrier; regrow or
            // rebalance shares if the batch shrank (completion
            // boundary).
            if !active.is_empty() {
                for a in &mut active {
                    Self::sync_to_barrier(a, global);
                }
                if !finished.is_empty() {
                    Self::reshare(&self.config, &mut active, &mut pool);
                } else if self.config.demand_shares {
                    // Demand-drift boundary: trees grow for many rounds
                    // between admissions/completions; shares frozen at
                    // an early snapshot would shrink a growing request
                    // into preemption. Re-declare and rebalance once any
                    // run's demand drifts ±25% past its declaration.
                    let drifted = active.iter().any(|a| {
                        let demand = a.run.demand_bytes();
                        let declared = a.declared_demand.max(1);
                        demand * 4 > declared * 5 || demand * 5 < declared * 4
                    });
                    if drifted {
                        Self::rebalance_demand(&mut active, &mut pool);
                    }
                }
            }
        }

        Ok(BatchRun {
            served: served
                .into_iter()
                .map(|r| r.expect("every request served"))
                .collect(),
            rounds,
            preemptions,
            peak_reserved_bytes: pool.peak_reserved_bytes(),
            pool_bytes,
            ver_sweeps,
            ver_seqs,
            ver_busy_secs,
        })
    }

    /// Price this round's verifier prefill chunks over the shared
    /// accelerator, filling `charges` (one [`VerifyCharge`] per chunk,
    /// per request).
    ///
    /// Unfused: each request's sweeps are separate kernels that
    /// serialize in admission order — a request whose turn has not come
    /// idle-waits for the device. Fused: all requests' wave-`w` chunks
    /// launch as one shared `prefill_batch` sweep; every participant
    /// waits the full kernel but is attributed only its
    /// `new_tokens`-proportional share as verifier busy time. Either
    /// way a single participant degenerates to its own solo sweep, which
    /// is what keeps batch-1 lockstep bit-identical to `ServerSim`.
    fn cost_verify_sweeps(
        &self,
        active: &mut [InFlight],
        plans: &[Vec<VerifyChunk>],
        charges: &mut [Vec<VerifyCharge>],
    ) -> SweepTally {
        let mut tally = SweepTally::default();
        if self.config.fused_verify {
            let waves = plans.iter().map(Vec::len).max().unwrap_or(0);
            for wave in 0..waves {
                let members: Vec<usize> = (0..plans.len())
                    .filter(|&i| plans[i].len() > wave)
                    .collect();
                // One shared kernel for the whole wave: every part keeps
                // its own attention shape, the verifier weights stream
                // once. Like co-batched decode, each participant
                // advances the shared-kernel time from its own clock
                // (the lockstep barrier re-aligns the round); a single
                // participant degenerates to its own solo sweep
                // bit-for-bit.
                let parts: Vec<(usize, u64, u64)> = members
                    .iter()
                    .map(|&i| {
                        let c = plans[i][wave];
                        let m = c.members.max(1);
                        (m, c.new_tokens / m as u64, c.cached_tokens / m as u64)
                    })
                    .collect();
                let cost = active[members[0]]
                    .run
                    .verifier_roofline()
                    .prefill_fused(&parts);
                let total_new: u64 = members.iter().map(|&i| plans[i][wave].new_tokens).sum();
                // The fused kernel streams its sub-batches back to back
                // (continuous batching inside the verifier): request
                // `i`'s scores are ready once the prefix of the launch
                // holding its sequences has been processed, so it is
                // charged the prefix end — its own slice as `verifier`
                // busy time, the wait for earlier sub-batches as idle.
                // The last participant pays the whole kernel, so the
                // round barrier conserves device time, and the slices
                // sum to the kernel exactly (no double-count).
                let mut seqs = 0usize;
                let mut prefix = 0.0f64;
                for &i in &members {
                    let chunk = plans[i][wave];
                    seqs += chunk.members;
                    let slice = if total_new > 0 {
                        cost.seconds * chunk.new_tokens as f64 / total_new as f64
                    } else {
                        cost.seconds / members.len() as f64
                    };
                    prefix += slice;
                    charges[i].push(VerifyCharge {
                        seconds: prefix,
                        compute_util: cost.compute_util,
                        busy_seconds: slice,
                    });
                }
                tally.record(&cost, seqs);
            }
        } else {
            let mut device_free = f64::NEG_INFINITY;
            for (i, a) in active.iter_mut().enumerate() {
                if plans[i].is_empty() {
                    continue;
                }
                Self::sync_to_barrier(a, device_free);
                let mut end = a.started_at + a.run.clock();
                for chunk in &plans[i] {
                    let cost = chunk.solo_cost(a.run.verifier_roofline());
                    end += cost.seconds;
                    charges[i].push(VerifyCharge::full(&cost));
                    tally.record(&cost, chunk.members);
                }
                device_free = end;
            }
        }
        tally
    }

    /// Admit readmission candidates (preempted runs hold accepted work,
    /// so they go first), then fresh arrivals, at equal KV shares (a
    /// demand-proportional policy rebalances right after the admission
    /// boundary). Returns whether anyone was admitted.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        active: &mut Vec<InFlight>,
        paused: &mut VecDeque<InFlight>,
        waiting: &mut VecDeque<usize>,
        pool: &mut PoolBudget,
        arrivals: &[RequestArrival],
        global: f64,
        admit_seq: &mut u64,
    ) -> Result<bool, EngineError> {
        let mut admitted = false;
        // Without mid-flight admission the gate only opens while the
        // device is idle — but once open, the whole gang fills (up to
        // `max_batch`) before the batch runs to completion.
        if !self.config.admit_mid_flight && !active.is_empty() {
            return Ok(admitted);
        }
        loop {
            if active.len() >= self.config.max_batch || (paused.is_empty() && waiting.is_empty()) {
                return Ok(admitted);
            }
            let share = pool.equal_share(active.len() + 1);
            if !active.is_empty() && share < self.config.min_share_bytes {
                return Ok(admitted);
            }
            // First preempted run that can make progress at this share.
            // Joining a multi-request batch additionally requires its
            // working set to fit, or it would bounce straight back out;
            // with the device to itself it may thrash, as FIFO would.
            let joining_others = !active.is_empty();
            let readmit = (0..paused.len()).find(|&i| {
                let p = &mut paused[i];
                if !matches!(p.probe, Some((s, _, _)) if s == share) {
                    p.run.set_kv_budget(share);
                    p.probe = Some((share, p.run.can_progress(), p.run.fits_working_set()));
                }
                let (_, can_progress, fits_ws) = p.probe.expect("probe just set");
                can_progress && (!joining_others || fits_ws)
            });
            if let Some(pos) = readmit {
                let mut p = paused.remove(pos).expect("index in range");
                p.run.set_kv_budget(share);
                Self::shrink(active, pool, share);
                assert!(pool.reserve(p.idx as u64, share), "ledger must have room");
                p.preempted_secs += global - p.paused_at;
                Self::sync_to_barrier(&mut p, global);
                p.admit_seq = *admit_seq;
                *admit_seq += 1;
                active.push(p);
                admitted = true;
                continue;
            }
            let Some(&idx) = waiting.front() else {
                // Only unfittable preempted runs remain; wait for the
                // batch to drain and shares to regrow.
                return Ok(admitted);
            };
            let mut driver = make_driver(self.kind, self.n, 4);
            match self.server.begin_request(
                &arrivals[idx].problem,
                self.n,
                driver.as_mut(),
                f64::INFINITY,
                Some(share),
            ) {
                Ok(run) => {
                    waiting.pop_front();
                    Self::shrink(active, pool, share);
                    assert!(pool.reserve(idx as u64, share), "ledger must have room");
                    active.push(InFlight {
                        idx,
                        run,
                        driver,
                        arrived_at: arrivals[idx].at,
                        started_at: global,
                        admit_seq: *admit_seq,
                        preemptions: 0,
                        preempted_secs: 0.0,
                        paused_at: 0.0,
                        probe: None,
                        declared_demand: 0,
                    });
                    *admit_seq += 1;
                    admitted = true;
                }
                // The whole pool cannot host this prompt: infeasible.
                Err(e) if active.is_empty() => return Err(e),
                // A share cannot: leave it queued until capacity frees.
                Err(_) => return Ok(admitted),
            }
        }
    }

    /// Idle-pad `a`'s internal clock up to the absolute instant
    /// `global`. Skips members already at (or past) the barrier so the
    /// relative→absolute round trip cannot perturb their clock by a ulp
    /// — bit-exactness with the FIFO path depends on this.
    fn sync_to_barrier(a: &mut InFlight, global: f64) {
        let clock = a.run.clock();
        let absolute = a.started_at + clock;
        if absolute < global {
            a.run.sync_clock_to(clock + (global - absolute));
        }
    }

    /// Resize every active request's reservation to `share` ahead of an
    /// admission. Shrinks apply before grows so the intermediate ledger
    /// state never overcommits — with equal shares everyone shrinks (the
    /// legacy path, byte-identical), but after a demand-proportional
    /// rebalance small holders may need to grow back to the equal probe
    /// share.
    fn shrink(active: &mut [InFlight], pool: &mut PoolBudget, share: u64) {
        for pass in 0..2 {
            for a in active.iter_mut() {
                let shrinking = pool.share_of(a.idx as u64) >= share;
                if (pass == 0) == shrinking {
                    assert!(pool.resize(a.idx as u64, share), "equal reshare must fit");
                    a.run.set_kv_budget(share);
                }
            }
        }
    }

    /// Regrow every active request's reservation to the equal share.
    fn regrow(active: &mut [InFlight], pool: &mut PoolBudget) {
        let share = pool.equal_share(active.len());
        for a in active.iter_mut() {
            assert!(pool.resize(a.idx as u64, share), "regrow must fit");
            a.run.set_kv_budget(share);
        }
    }

    /// Completion/preemption boundary: re-share the surviving batch —
    /// equal split by default, demand-proportional when configured.
    fn reshare(config: &BatchConfig, active: &mut [InFlight], pool: &mut PoolBudget) {
        if active.is_empty() {
            return;
        }
        if config.demand_shares {
            Self::rebalance_demand(active, pool);
        } else {
            Self::regrow(active, pool);
        }
    }

    /// Demand-proportional elastic rebalance: every active run declares
    /// its working-set demand (live beams × mean depth × bytes/token)
    /// and the floor that keeps its accepted tokens resident; the
    /// ledger re-shares the whole pool proportionally (idle reservation
    /// flows to deep searches without evicting anyone's accepted
    /// prefixes — see [`ftts_kv::PoolBudget::rebalance`]).
    fn rebalance_demand(active: &mut [InFlight], pool: &mut PoolBudget) {
        if active.is_empty() {
            return;
        }
        let requests: Vec<ShareRequest> = active
            .iter_mut()
            .map(|a| {
                let demand = a.run.demand_bytes();
                a.declared_demand = demand;
                ShareRequest {
                    holder: a.idx as u64,
                    demand,
                    // The floor (resident unique tree plus one step of
                    // growth, scaled to a full gen+ver share) must hold
                    // until the next boundary — see
                    // `RequestRun::kv_floor_bytes`.
                    floor: a.run.kv_floor_bytes(),
                }
            })
            .collect();
        assert!(
            pool.rebalance(&requests),
            "active set must cover the reservation ledger exactly"
        );
        for a in active.iter_mut() {
            a.run.set_kv_budget(pool.share_of(a.idx as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_engine::ModelPairing;
    use ftts_hw::GpuDevice;
    use ftts_workload::{ArrivalPattern, Dataset};

    fn server(seed: u64, memory_fraction: f64) -> TtsServer {
        let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        s.config_mut().seed = seed;
        s.config_mut().memory_fraction = memory_fraction;
        s
    }

    fn overload_arrivals(count: usize, seed: u64) -> Vec<RequestArrival> {
        let problems = Dataset::Amc2023.problems(count, seed);
        ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0)
    }

    #[test]
    fn config_presets() {
        assert_eq!(BatchConfig::fifo().max_batch, 1);
        assert!(!BatchConfig::fifo().admit_mid_flight);
        assert!(BatchConfig::continuous(4).admit_mid_flight);
        assert_eq!(BatchConfig::continuous(0).max_batch, 1, "cap is clamped");
        assert!(!BatchConfig::gang(4).admit_mid_flight);
        assert_eq!(BatchConfig::gang(4).max_batch, 4);
    }

    #[test]
    fn continuous_batching_beats_fifo_under_overload() {
        let arrivals = overload_arrivals(6, 41);
        let fifo = BatchedServerSim::new(
            server(5, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::fifo(),
        )
        .run(&arrivals)
        .expect("fifo");
        let cont = BatchedServerSim::new(
            server(5, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::continuous(4),
        )
        .run(&arrivals)
        .expect("continuous");
        let (f, c) = (fifo.stream_summary(), cont.stream_summary());
        assert!(
            c.stream_goodput > f.stream_goodput,
            "continuous {} must beat FIFO {} tok/s",
            c.stream_goodput,
            f.stream_goodput
        );
        assert!(cont.makespan() < fifo.makespan());
        assert!(
            c.latency.mean < f.latency.mean,
            "queueing dominates FIFO latency"
        );
        assert!(fifo.peak_reserved_bytes <= fifo.pool_bytes);
        assert!(cont.peak_reserved_bytes <= cont.pool_bytes);
    }

    #[test]
    fn batching_preserves_answers() {
        // The reasoning tree is timing-independent: co-scheduling only
        // changes clocks and memory traffic, never outcomes.
        let arrivals = overload_arrivals(5, 23);
        let fifo = BatchedServerSim::new(
            server(9, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::fifo(),
        )
        .run(&arrivals)
        .expect("fifo");
        let cont = BatchedServerSim::new(
            server(9, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::continuous(3),
        )
        .run(&arrivals)
        .expect("continuous");
        for (f, c) in fifo.served.iter().zip(&cont.served) {
            assert_eq!(f.outcome.answer, c.outcome.answer);
            assert_eq!(f.accepted_tokens(), c.accepted_tokens());
        }
    }

    #[test]
    fn gang_batching_admits_only_while_idle() {
        let arrivals = overload_arrivals(5, 31);
        let gang = BatchedServerSim::new(
            server(3, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::gang(3),
        )
        .run(&arrivals)
        .expect("gang");
        // First gang: requests arrived by t=0 — only request 0 (the rest
        // arrive later), so later arrivals queue until the device drains.
        assert_eq!(gang.served.len(), 5);
        for r in &gang.served {
            assert!(r.finished_at > r.arrived_at);
        }
    }

    #[test]
    fn preemption_fires_under_memory_pressure_and_conserves_tokens() {
        // A tight pool with several concurrent deep searches: equal
        // shares shrink until some request's working set no longer
        // fits, forcing a swap-out. "No accepted tokens lost" is
        // checked the only non-vacuous way: every preempted request's
        // final beams match the preemption-free FIFO replay of the same
        // stream exactly.
        let problems = Dataset::Aime2024.problems(4, 51);
        let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
        let sim = BatchedServerSim::new(
            server(13, 0.30),
            24,
            SearchKind::BeamSearch,
            BatchConfig::continuous(4),
        );
        let run = sim.run(&arrivals).expect("pressured run completes");
        assert_eq!(run.served.len(), 4);
        assert!(run.preemptions > 0, "pressure must trigger preemption");
        assert!(run.peak_reserved_bytes <= run.pool_bytes);
        let fifo = crate::ServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch)
            .run(&arrivals)
            .expect("fifo replay");
        let mut saw_preempted = false;
        for (r, f) in run.served.iter().zip(&fifo) {
            if r.preemptions == 0 {
                continue;
            }
            saw_preempted = true;
            assert!(r.preempted_secs > 0.0);
            assert_eq!(
                r.accepted_tokens(),
                f.accepted_tokens(),
                "swap-out/readmission must not lose generated tokens"
            );
            assert_eq!(r.outcome.answer, f.outcome.answer);
            assert_eq!(r.outcome.stats.beams.len(), f.outcome.stats.beams.len());
        }
        assert!(saw_preempted);
    }

    #[test]
    fn min_share_caps_concurrency() {
        let arrivals = overload_arrivals(4, 61);
        let pool = server(1, 0.9).config().kv_budget_bytes();
        let mut config = BatchConfig::continuous(4);
        // Equal shares for 3+ requests would dip below the floor.
        config.min_share_bytes = pool / 2;
        let run = BatchedServerSim::new(server(1, 0.9), 8, SearchKind::BeamSearch, config)
            .run(&arrivals)
            .expect("run");
        assert_eq!(run.served.len(), 4);
    }

    #[test]
    fn stream_summary_counts_everything() {
        let arrivals = overload_arrivals(3, 71);
        let run = BatchedServerSim::new(
            server(2, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::continuous(2),
        )
        .run(&arrivals)
        .expect("run");
        let s = run.stream_summary();
        assert_eq!(s.requests, 3);
        assert!(s.stream_goodput > 0.0);
        assert!(s.makespan > 0.0);
        assert_eq!(
            s.total_accepted_tokens,
            run.served.iter().map(|r| r.accepted_tokens()).sum::<u64>()
        );
    }
}
