//! Continuous batching across requests.
//!
//! [`ServerSim`](crate::ServerSim) drains arrivals FIFO at batch size 1:
//! every request runs to completion in isolation, so the accelerator's
//! decode batch is only as wide as one request's beam frontier. This
//! module adds the request-level scheduler a production serving system
//! needs: [`BatchedServerSim`] admits arrivals *mid-flight*, steps every
//! in-flight [`RequestRun`] one TTS iteration per lockstep round, and
//! arbitrates the device KV budget between them through a
//! [`PoolBudget`] reservation ledger.
//!
//! # Execution model
//!
//! * **Phase-split lockstep rounds.** Each round, every active request
//!   executes one TTS iteration through `RequestRun`'s split-phase API,
//!   in four explicit stages: **plan** (`plan_iteration` — memory
//!   replan plus the co-batched decode: each run is costed over the
//!   *combined* sequence batch, one shared weight sweep, everyone's KV
//!   traffic — `RequestRun::set_co_batch`), **gather**
//!   (`take_verify_batch` — every run's verifier mirror work and its
//!   pending prefill chunks), **cost** (the scheduler prices all
//!   verifier sweeps over the one shared accelerator) and **commit**
//!   (`apply_verify_results` — charge the sweeps, reveal scores,
//!   branch). Runs that finish early idle-wait at the round barrier
//!   (charged to their latency as `idle`).
//! * **Cross-request verifier co-batching.** The verifier is a shared
//!   device. Without fusion ([`BatchConfig::fused_verify`] off) the
//!   requests' prefill sweeps are distinct kernels and *serialize* in
//!   admission order — later requests wait their turn as `idle` time.
//!   With fusion on, all requests' wave-`w` chunks launch as **one
//!   shared fused sweep per round** (`Roofline::prefill_fused`): the
//!   weights stream once instead of `k` times, sub-batches are
//!   processed back to back inside the kernel, and each participant is
//!   charged the prefix of the kernel up to its own sequences — its
//!   slice as `LatencyBreakdown::verifier` busy time, the wait for
//!   earlier sub-batches as `idle` — so the slices sum to the kernel
//!   seconds exactly and busy time is never double-counted across
//!   requests.
//! * **Admission control and elastic shares.** The device KV budget is
//!   split among active requests through the [`PoolBudget`] ledger:
//!   equal shares by default, or **demand-proportional** shares
//!   ([`BatchConfig::demand_shares`]) sized by each run's working-set
//!   estimate (live beams × mean depth × bytes/token) with a floor that
//!   keeps accepted tokens resident. Shares rebalance only at
//!   admission, completion and preemption boundaries; idle reservation
//!   is reclaimed without evicting anyone's accepted tokens. The ledger
//!   guarantees reservations never exceed the pool.
//! * **Preemption.** A request whose KV demand outgrows its share is
//!   swapped out (PCIe-costed), its reservation released, and requeued;
//!   it readmits when shares regrow, restoring or recomputing prefixes
//!   through the normal pin path. Accepted tokens are never lost.
//! * **First Finish cut (opt-in).** With [`BatchConfig::first_finish`]
//!   set, a request whose best verified beam clears the acceptance bar
//!   cancels its sibling beams and completes immediately, releasing its
//!   reservation to waiting work (First Finish Search). Answers of
//!   non-opted runs are untouched.
//! * **Two-phase speculation.** Speculative Beam Extension runs only
//!   while a request has the system to itself (no other active, queued
//!   or preempted request) — the request-level generalization of the
//!   paper's Sec. 4.1.2 rule, and exactly [`ServerSim`]'s rule when the
//!   batch size is 1.
//!
//! With `max_batch = 1` and mid-flight admission disabled the scheduler
//! reproduces [`ServerSim::run`] bit-for-bit (outcomes, latencies,
//! eviction stats) — with or without `fused_verify`, since a fused
//! sweep over one participant degenerates to that request's own solo
//! sweep. Enforced by the lockstep tests in
//! `crates/core/tests/batch_lockstep.rs`.
//!
//! [`ServerSim`]: crate::ServerSim

use std::collections::VecDeque;

use ftts_engine::{EngineError, VerifyCharge, VerifyChunk};
use ftts_kv::{HostTier, KvTierConfig, PoolBudget};
use ftts_metrics::{StreamRecord, StreamSummary};
use ftts_search::SearchKind;
use ftts_workload::RequestArrival;
use serde::{Deserialize, Serialize};

use crate::admission::{self, InFlight, SchedCtx};
use crate::faults::{FaultCursor, FaultPlan, LaunchFaults, RobustConfig};
use crate::server::{ServeOutcome, ServedRequest, TtsServer};
use crate::tenant::TenantPolicy;

/// Request-level scheduling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Maximum concurrently active requests.
    pub max_batch: usize,
    /// Admit new arrivals while others are in flight (continuous
    /// batching). When `false`, admission waits for the device to drain
    /// — batch-1 FIFO or gang scheduling depending on `max_batch`.
    pub admit_mid_flight: bool,
    /// Do not admit a request mid-flight if equal shares would fall
    /// below this many bytes (0 = only `max_batch` limits admission).
    pub min_share_bytes: u64,
    /// Fuse all in-flight requests' verifier prefills into one shared
    /// sweep per round instead of serializing per-request kernels on
    /// the shared accelerator.
    pub fused_verify: bool,
    /// Size KV shares proportionally to each request's declared
    /// working-set demand (rebalanced at admission / completion /
    /// preemption boundaries) instead of an equal split.
    pub demand_shares: bool,
    /// First Finish cut: complete a request as soon as its best
    /// verified beam clears [`BatchConfig::first_finish_bar`],
    /// cancelling sibling beams and releasing their reservation.
    /// Changes which beams finish (never how any path is generated), so
    /// it is opt-in and excluded from the equivalence suite.
    pub first_finish: bool,
    /// Acceptance bar for the First Finish cut (a verifier score).
    pub first_finish_bar: f64,
    /// Fault-handling and SLO policy (see [`RobustConfig`]). The
    /// default — retry with backoff, no deadline enforcement — is
    /// bit-inert on fault-free runs.
    pub robust: RobustConfig,
    /// Host-RAM KV tier behind the device pool (see
    /// [`ftts_kv::HostTier`]). The default — capacity 0 — disables the
    /// tier and is bit-inert: preemption swaps to the implicit
    /// unbounded host and completed requests' KV vanishes, exactly the
    /// pre-tier behaviour.
    pub tier: KvTierConfig,
    /// Per-tenant fair-share policy (see [`TenantPolicy`]): weighted KV
    /// fair-share across tenants with hard byte caps and admission
    /// quotas. The default — `None` — is bit-inert: requests' tenant
    /// tags are ignored and scheduling is exactly the untenanted
    /// policy.
    pub tenants: Option<TenantPolicy>,
}

impl BatchConfig {
    /// FIFO batch-1 — semantically identical to [`crate::ServerSim`].
    pub fn fifo() -> Self {
        Self {
            max_batch: 1,
            admit_mid_flight: false,
            min_share_bytes: 0,
            fused_verify: false,
            demand_shares: false,
            first_finish: false,
            first_finish_bar: 0.0,
            robust: RobustConfig::default(),
            tier: KvTierConfig::default(),
            tenants: None,
        }
    }

    /// Continuous batching: up to `max_batch` requests, joined and
    /// retired mid-flight.
    pub fn continuous(max_batch: usize) -> Self {
        Self {
            max_batch: max_batch.max(1),
            admit_mid_flight: true,
            ..Self::fifo()
        }
    }

    /// Gang (static) batching: admit up to `max_batch` only while the
    /// device is idle, then run the gang to completion.
    pub fn gang(max_batch: usize) -> Self {
        Self {
            max_batch: max_batch.max(1),
            admit_mid_flight: false,
            ..Self::fifo()
        }
    }

    /// The full PR-3 serving policy: continuous batching with the
    /// cross-request fused verifier sweep and demand-proportional
    /// elastic KV shares.
    pub fn fused(max_batch: usize) -> Self {
        Self {
            fused_verify: true,
            demand_shares: true,
            ..Self::continuous(max_batch)
        }
    }

    /// Enable the First Finish cut at the given acceptance bar.
    pub fn with_first_finish(mut self, bar: f64) -> Self {
        self.first_finish = true;
        self.first_finish_bar = bar;
        self
    }

    /// Replace the fault-handling/SLO policy.
    pub fn with_robust(mut self, robust: RobustConfig) -> Self {
        self.robust = robust;
        self
    }

    /// Put a host-RAM KV tier behind the device pool.
    pub fn with_tier(mut self, tier: KvTierConfig) -> Self {
        self.tier = tier;
        self
    }

    /// Attach a per-tenant fair-share policy: weighted KV fair-share
    /// across tenants at every rebalance boundary, hard per-tenant byte
    /// caps, and per-tenant admission quotas.
    pub fn with_tenants(mut self, tenants: TenantPolicy) -> Self {
        self.tenants = Some(tenants);
        self
    }
}

/// Result of replaying one arrival stream through [`BatchedServerSim`].
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-request records, in arrival order.
    pub served: Vec<ServedRequest>,
    /// Scheduling rounds executed (lockstep rounds, or co-batch
    /// launches under event-driven scheduling).
    pub rounds: u64,
    /// Request-iterations executed across all rounds; `group_iters /
    /// rounds` is the mean co-batch width the scheduler achieved.
    pub group_iters: u64,
    /// Total preemption events.
    pub preemptions: u32,
    /// High-water mark of KV reservations, bytes.
    pub peak_reserved_bytes: u64,
    /// The shared device KV budget, bytes.
    pub pool_bytes: u64,
    /// Verifier prefill sweeps launched on the shared device (a fused
    /// sweep counts once regardless of how many requests it served).
    pub ver_sweeps: u64,
    /// Sequences prefilled across all verifier sweeps.
    pub ver_seqs: u64,
    /// Device-busy seconds across all verifier sweeps. Equals the sum
    /// of every served request's attributed `verifier` breakdown: the
    /// no-double-count audit for fused sweeps.
    pub ver_busy_secs: f64,
    /// Injected transient kernel failures that hit a launch.
    pub kernel_faults: u32,
    /// Retry attempts (blind or backed-off) those failures cost.
    pub fault_retries: u32,
    /// Injected device KV-loss events that hit a launch.
    pub kv_loss_events: u32,
    /// KV blocks dropped by those loss events across all requests.
    pub lost_blocks: u64,
    /// Arrivals rejected before admission (expired deadline slack or an
    /// infeasible working set) by SLO enforcement.
    pub shed: u32,
    /// Admitted runs cancelled past their deadline by SLO enforcement.
    pub cancelled: u32,
    /// Fresh admissions the degradation controller granted a narrower
    /// beam width than configured.
    pub degradations: u32,
    /// KV bytes still reserved when the stream drained — 0 unless the
    /// ledger leaked a reservation (asserted in tests).
    pub final_reserved_bytes: u64,
    /// Warm admissions served from the host tier's prefix store
    /// (0 when the tier is disabled).
    pub kv_tier_hits: u64,
    /// Prefixes the host tier demoted under capacity pressure.
    pub kv_tier_demotions: u64,
    /// Preempted KV bytes the host tier accepted (swap-down instead of
    /// drop).
    pub kv_tier_parked_bytes: u64,
    /// Preempted KV bytes that did not fit the host tier and were
    /// dropped (recomputed on readmission).
    pub kv_tier_dropped_bytes: u64,
    /// Parked KV bytes reclaimed from the host tier — readmission
    /// swap-ins plus cancellation unparks. Equal to
    /// [`BatchRun::kv_tier_parked_bytes`] once a run drains: every
    /// parked byte is eventually swapped back in or dropped on
    /// cancellation, never stranded.
    pub kv_tier_unparked_bytes: u64,
    /// Per-tenant peak KV grant (tenant id, bytes) recorded at tenant
    /// rebalance boundaries, in tenant-id order — the audit that hard
    /// caps held for the whole run. Empty without a tenant policy.
    pub tenant_peak_bytes: Vec<(u32, u64)>,
    /// Device-timeline occupancy roll-up. Only the global-timeline
    /// scheduler ([`crate::TimelineServerSim`]) records segments; the
    /// lockstep and event-driven schedulers leave it at the default
    /// (empty) value.
    pub timeline: ftts_metrics::TimelineOccupancy,
}

impl BatchRun {
    /// First arrival to last completion, seconds.
    pub fn makespan(&self) -> f64 {
        let first = self
            .served
            .iter()
            .map(|r| r.arrived_at)
            .fold(f64::INFINITY, f64::min);
        let last = self
            .served
            .iter()
            .map(|r| r.finished_at)
            .fold(0.0f64, f64::max);
        (last - first).max(0.0)
    }

    /// Stream-level summary: system goodput over the makespan, latency
    /// / queueing distributions, per-phase goodput over attributed busy
    /// time, and the verifier-sweep occupancy the scheduler measured.
    pub fn stream_summary(&self) -> StreamSummary {
        let records: Vec<StreamRecord> = self
            .served
            .iter()
            .map(|r| StreamRecord {
                arrived_at: r.arrived_at,
                finished_at: r.finished_at,
                queue_delay: r.queue_delay(),
                accepted_tokens: r.accepted_tokens(),
                generator_secs: r.outcome.stats.breakdown().generator_side(),
                verifier_secs: r.outcome.stats.breakdown().verifier,
                slo: r.slo,
                deadline: r.deadline,
                completed: !r.shed,
            })
            .collect();
        let occupancy = if self.ver_sweeps > 0 {
            self.ver_seqs as f64 / self.ver_sweeps as f64
        } else {
            0.0
        };
        StreamSummary::of(&records)
            .with_verifier_occupancy(occupancy)
            .with_kv_tier(self.kv_tier_hits, self.kv_tier_demotions)
    }
}

/// Replays a request arrival stream with continuous batching across
/// requests over one shared accelerator and KV pool.
#[derive(Debug, Clone)]
pub struct BatchedServerSim {
    server: TtsServer,
    n: usize,
    kind: SearchKind,
    config: BatchConfig,
}

impl BatchedServerSim {
    /// Simulate `server` answering requests with `n` beams each under
    /// the given batching policy.
    pub fn new(server: TtsServer, n: usize, kind: SearchKind, config: BatchConfig) -> Self {
        assert!(config.max_batch >= 1, "need at least one batch slot");
        Self {
            server,
            n,
            kind,
            config,
        }
    }

    /// The batching policy in effect.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Serve the arrival stream to completion on a fault-free device.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit even with
    /// the entire pool to itself.
    pub fn run(&self, arrivals: &[RequestArrival]) -> Result<BatchRun, EngineError> {
        self.run_faulted(arrivals, &FaultPlan::none())
    }

    /// Serve the arrival stream to completion while `plan` injects
    /// faults into the simulated device. The empty plan reproduces
    /// [`BatchedServerSim::run`] bit-for-bit; any plan is itself
    /// deterministic (same `(stream, plan, config)` → same run).
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit even with
    /// the entire pool to itself.
    #[allow(clippy::too_many_lines)]
    pub fn run_faulted(
        &self,
        arrivals: &[RequestArrival],
        plan: &FaultPlan,
    ) -> Result<BatchRun, EngineError> {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival times must be non-decreasing"
        );
        let pool_bytes = self.server.config().kv_budget_bytes();
        let device = self.server.config().device.clone();
        let gen_bpt = self.server.config().models.gen_spec.kv_bytes_per_token();
        let mut pool = PoolBudget::new(pool_bytes);
        if let Some(policy) = self.config.tenants {
            for spec in policy.specs() {
                pool.set_tenant_cap(u64::from(spec.id), spec.kv_cap_bytes);
            }
        }
        let mut tier = HostTier::new(self.config.tier);
        let mut global = 0.0f64;
        let mut next_arrival = 0usize;
        let mut waiting: VecDeque<usize> = VecDeque::new();
        let mut paused: VecDeque<InFlight> = VecDeque::new();
        let mut active: Vec<InFlight> = Vec::new();
        let mut served: Vec<Option<ServedRequest>> = (0..arrivals.len()).map(|_| None).collect();
        let mut admit_seq = 0u64;
        let mut rounds = 0u64;
        let mut group_iters = 0u64;
        let mut preemptions = 0u32;
        let mut ver_sweeps = 0u64;
        let mut ver_seqs = 0u64;
        let mut ver_busy_secs = 0.0f64;
        let mut cursor = FaultCursor::default();
        let mut kernel_faults = 0u32;
        let mut fault_retries = 0u32;
        let mut kv_loss_events = 0u32;
        let mut lost_blocks = 0u64;
        let mut shed = 0u32;
        let mut cancelled = 0u32;
        let mut degradations = 0u32;
        let mut tier_dropped = 0u64;

        loop {
            // Ingest arrivals due by now.
            while next_arrival < arrivals.len() && arrivals[next_arrival].at <= global {
                waiting.push_back(next_arrival);
                next_arrival += 1;
            }

            let ctx = SchedCtx {
                server: &self.server,
                n: self.n,
                kind: self.kind,
                config: &self.config,
            };
            // Deadline/SLO enforcement (active only under the Degrade
            // policy): shed stale or infeasible arrivals, cancel
            // hopeless runs — before they are (re)admitted and burn
            // device time on a guaranteed miss.
            let mut no_rest: Vec<InFlight> = Vec::new();
            let sweep = admission::enforce_slo(
                &ctx,
                global,
                pool_bytes,
                arrivals,
                &mut waiting,
                &mut paused,
                &mut active,
                &mut no_rest,
                &mut pool,
                &mut tier,
                &mut served,
            );
            shed += sweep.shed;
            cancelled += sweep.cancelled;
            let report = admission::admit(
                &ctx,
                &mut active,
                &mut [],
                &mut paused,
                &mut waiting,
                &mut pool,
                &mut tier,
                arrivals,
                global,
                &mut admit_seq,
            )?;
            degradations += report.degradations;
            // Admission boundary: size elastic shares by demand (and,
            // under a tenant policy, by tenant fair-share).
            if report.admitted && admission::elastic(&self.config) {
                admission::rebalance_elastic(&self.config, &mut active, &mut [], &mut pool);
            }

            if active.is_empty() {
                if waiting.is_empty() && paused.is_empty() {
                    if next_arrival >= arrivals.len() {
                        break; // everything served
                    }
                    // Idle until the next arrival.
                    global = global.max(arrivals[next_arrival].at);
                    continue;
                }
                // A lone candidate that cannot fit the whole pool: fresh
                // requests already propagated from admission, so this is
                // a preempted run whose paths outgrew the device.
                let p = paused.front().expect("paused candidate");
                let (needed, capacity) = p.run.kv_demand();
                return Err(EngineError::PathExceedsMemory { needed, capacity });
            }

            // Memory-pressure preemption: a request whose worst path no
            // longer fits its share cannot progress at all; one whose
            // frontier working set outgrew the share would thrash the
            // cache with evict/recompute cycles every iteration. Either
            // way requests are swapped out youngest-first (vLLM's victim
            // rule) and the survivors regrow. A lone request is never
            // preempted — it holds the whole pool, like FIFO would.
            while active.len() > 1 {
                let victim = active
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.run.can_progress() || !a.run.fits_working_set())
                    .max_by_key(|(_, a)| a.admit_seq)
                    .map(|(i, _)| i);
                let Some(vi) = victim else { break };
                let mut v = active.remove(vi);
                // With a host tier, swap-down is capped at the tier's
                // free capacity: what fits parks (and is PCIe-costed),
                // the overflow is genuinely dropped — no transfer, but
                // recomputed on readmission. Disabled tier: the legacy
                // unbounded swap, bit-for-bit.
                let bytes = if tier.enabled() {
                    let (swapped, dropped) = v.run.preempt_capped(tier.available_bytes());
                    tier.park(v.idx as u64, swapped);
                    tier_dropped += dropped;
                    swapped
                } else {
                    v.run.preempt()
                };
                global += device.pcie_transfer_seconds(bytes);
                pool.release(v.idx as u64);
                v.preemptions += 1;
                preemptions += 1;
                v.paused_at = global;
                v.probe = None;
                paused.push_back(v);
                // Preemption boundary: survivors regrow or rebalance.
                admission::reshare(&self.config, &mut active, &mut [], &mut pool);
            }

            // One lockstep round: every active request executes one TTS
            // iteration over the shared, co-batched accelerator, in four
            // explicit phases (plan → gather → cost → commit).
            let round_start = global;
            rounds += 1;
            group_iters += active.len() as u64;
            let loads: Vec<(usize, u64)> = active.iter().map(|a| a.run.decode_load()).collect();
            let total_seqs: usize = loads.iter().map(|l| l.0).sum();
            let total_ctx: u64 = loads.iter().map(|l| l.1).sum();
            let alone = active.len() == 1 && waiting.is_empty() && paused.is_empty();
            let next_at = arrivals.get(next_arrival).map(|a| a.at);
            // The round barrier is the latest member's absolute clock
            // (`started_at + internal clock` — never re-derived from
            // deltas, which would drift bit-wise from the FIFO path).
            let mut round_end = global;
            let mut finished: Vec<usize> = Vec::new();

            // Phase 1 — plan: memory replan plus the co-batched decode.
            let mut planned: Vec<bool> = Vec::with_capacity(active.len());
            for (i, a) in active.iter_mut().enumerate() {
                a.run
                    .set_co_batch(total_seqs - loads[i].0, total_ctx - loads[i].1);
                // Two-phase rule: speculate only while alone, and only
                // until the next (known) arrival would start waiting.
                let spec_off = if !alone {
                    0.0
                } else if let Some(at) = next_at {
                    (at - a.started_at).max(0.0)
                } else {
                    f64::INFINITY
                };
                a.run.set_spec_off_after(spec_off);
                planned.push(!a.run.plan_iteration(a.driver.as_mut())?.is_finished());
            }

            // Phase 2 — gather: every run's verifier mirror work and the
            // prefill chunks still owed kernel time.
            let plans: Vec<Vec<VerifyChunk>> = active
                .iter_mut()
                .zip(&planned)
                .map(|(a, &p)| {
                    if p {
                        a.run.take_verify_batch().to_vec()
                    } else {
                        Vec::new()
                    }
                })
                .collect();

            // Phase 3 — cost: price all verifier sweeps over the one
            // shared accelerator (fused or serialized).
            let mut charges: Vec<Vec<VerifyCharge>> = vec![Vec::new(); active.len()];
            let sweep = admission::cost_verify_sweeps(
                self.config.fused_verify,
                &mut active,
                &plans,
                &mut charges,
            );
            ver_sweeps += sweep.sweeps;
            ver_seqs += sweep.seqs;
            ver_busy_secs += sweep.busy_secs;

            // Phase 4 — commit: charge the sweeps, reveal scores, branch
            // survivors; apply the opt-in First Finish cut.
            for (i, a) in active.iter_mut().enumerate() {
                let status = if planned[i] {
                    a.run.apply_verify_results(a.driver.as_mut(), &charges[i])?
                } else {
                    ftts_engine::StepStatus::Finished
                };
                let mut done = status.is_finished();
                if !done
                    && self.config.first_finish
                    && a.run.first_finish_cut(self.config.first_finish_bar)
                {
                    done = true;
                }
                round_end = round_end.max(a.started_at + a.run.clock());
                if done {
                    finished.push(i);
                }
            }

            // Injected faults due this round (popped once, in time
            // order, from the shared cursor — both schedulers consume
            // the plan at the same launch boundaries). All fault time
            // is booked to the dedicated `fault` bucket, proportional
            // to each member's own busy seconds this round (the members
            // share the faulty kernel), so the busy-phase attribution
            // stays identical to the fault-free run.
            let faults = LaunchFaults::at(&mut cursor, plan, &self.config.robust, round_start);
            if faults.fired() {
                kernel_faults += faults.kernel_faults;
                fault_retries += faults.retries;
                for a in active.iter_mut() {
                    let dt = (a.started_at + a.run.clock() - round_start).max(0.0);
                    a.run
                        .stall_fault(dt * faults.busy_stretch + faults.backoff_secs);
                    if faults.kernel_faults > 0 {
                        a.run.note_kernel_faults(
                            faults.kernel_faults,
                            faults.retries,
                            faults.backoff_secs,
                        );
                    }
                    if faults.slowdown_stretch > 0.0 {
                        a.run.note_slowdown(dt * faults.slowdown_stretch);
                    }
                }
                if faults.kv_losses > 0 {
                    // Device KV loss hits every device-resident request;
                    // swapped-out (paused) requests survive in host RAM.
                    // Recovery is recompute-on-pin: deterministic
                    // replay, no accepted tokens lost.
                    kv_loss_events += faults.kv_losses;
                    for a in active.iter_mut() {
                        lost_blocks += a.run.lose_device_kv();
                    }
                }
                round_end = active
                    .iter()
                    .map(|a| a.started_at + a.run.clock())
                    .fold(round_start, f64::max);
            }
            global = round_end;

            // Completions leave the batch at their own finish instant.
            // The prompt prefix is offered to the host tier's shared
            // store on the way out (a no-op when the tier is disabled):
            // a later request for the same problem admits warm.
            for &i in finished.iter().rev() {
                let a = active.remove(i);
                pool.release(a.idx as u64);
                let prompt_tokens = arrivals[a.idx].problem.prompt_tokens;
                tier.publish_prefix(
                    arrivals[a.idx].problem.seed,
                    prompt_tokens,
                    prompt_tokens.saturating_mul(gen_bpt),
                );
                let stats = a.run.finish();
                let answer = ftts_metrics::top1_majority(&stats.answers());
                served[a.idx] = Some(ServedRequest {
                    arrived_at: a.arrived_at,
                    started_at: a.started_at,
                    finished_at: a.started_at + stats.latency(),
                    preemptions: a.preemptions,
                    preempted_secs: a.preempted_secs,
                    slo: a.slo,
                    deadline: a.deadline,
                    shed: false,
                    granted_n: a.granted_n,
                    outcome: ServeOutcome { stats, answer },
                });
            }

            // Survivors idle-wait at the round barrier (booked as
            // barrier idle — the attribution event-driven scheduling
            // exists to drain); regrow or rebalance shares if the batch
            // shrank (completion boundary).
            if !active.is_empty() {
                for a in &mut active {
                    admission::pad_to_barrier(a, global);
                }
                if !finished.is_empty() {
                    admission::reshare(&self.config, &mut active, &mut [], &mut pool);
                } else if admission::elastic(&self.config)
                    && admission::demand_drifted(&active, &[])
                {
                    // Demand-drift boundary: trees grow for many rounds
                    // between admissions/completions; shares frozen at
                    // an early snapshot would shrink a growing request
                    // into preemption. Re-declare and rebalance once any
                    // run's demand drifts ±25% past its declaration.
                    admission::rebalance_elastic(&self.config, &mut active, &mut [], &mut pool);
                }
            }
        }

        Ok(BatchRun {
            served: served
                .into_iter()
                .map(|r| r.expect("every request served"))
                .collect(),
            rounds,
            group_iters,
            preemptions,
            peak_reserved_bytes: pool.peak_reserved_bytes(),
            pool_bytes,
            ver_sweeps,
            ver_seqs,
            ver_busy_secs,
            kernel_faults,
            fault_retries,
            kv_loss_events,
            lost_blocks,
            shed,
            cancelled,
            degradations,
            final_reserved_bytes: pool.reserved_bytes(),
            kv_tier_hits: tier.stats().prefix_hits,
            kv_tier_demotions: tier.stats().demotions,
            kv_tier_parked_bytes: tier.stats().parked_bytes,
            kv_tier_dropped_bytes: tier_dropped + tier.stats().overflow_dropped_bytes,
            kv_tier_unparked_bytes: tier.stats().unparked_bytes,
            tenant_peak_bytes: pool
                .tenant_peaks()
                .into_iter()
                .map(|(t, b)| (t as u32, b))
                .collect(),
            timeline: ftts_metrics::TimelineOccupancy::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_engine::ModelPairing;
    use ftts_hw::GpuDevice;
    use ftts_workload::{ArrivalPattern, Dataset};

    fn server(seed: u64, memory_fraction: f64) -> TtsServer {
        let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        s.config_mut().seed = seed;
        s.config_mut().memory_fraction = memory_fraction;
        s
    }

    fn overload_arrivals(count: usize, seed: u64) -> Vec<RequestArrival> {
        let problems = Dataset::Amc2023.problems(count, seed);
        ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0)
    }

    #[test]
    fn config_presets() {
        assert_eq!(BatchConfig::fifo().max_batch, 1);
        assert!(!BatchConfig::fifo().admit_mid_flight);
        assert!(BatchConfig::continuous(4).admit_mid_flight);
        assert_eq!(BatchConfig::continuous(0).max_batch, 1, "cap is clamped");
        assert!(!BatchConfig::gang(4).admit_mid_flight);
        assert_eq!(BatchConfig::gang(4).max_batch, 4);
    }

    #[test]
    fn continuous_batching_beats_fifo_under_overload() {
        let arrivals = overload_arrivals(6, 41);
        let fifo = BatchedServerSim::new(
            server(5, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::fifo(),
        )
        .run(&arrivals)
        .expect("fifo");
        let cont = BatchedServerSim::new(
            server(5, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::continuous(4),
        )
        .run(&arrivals)
        .expect("continuous");
        let (f, c) = (fifo.stream_summary(), cont.stream_summary());
        assert!(
            c.stream_goodput > f.stream_goodput,
            "continuous {} must beat FIFO {} tok/s",
            c.stream_goodput,
            f.stream_goodput
        );
        assert!(cont.makespan() < fifo.makespan());
        assert!(
            c.latency.mean < f.latency.mean,
            "queueing dominates FIFO latency"
        );
        assert!(fifo.peak_reserved_bytes <= fifo.pool_bytes);
        assert!(cont.peak_reserved_bytes <= cont.pool_bytes);
    }

    #[test]
    fn batching_preserves_answers() {
        // The reasoning tree is timing-independent: co-scheduling only
        // changes clocks and memory traffic, never outcomes.
        let arrivals = overload_arrivals(5, 23);
        let fifo = BatchedServerSim::new(
            server(9, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::fifo(),
        )
        .run(&arrivals)
        .expect("fifo");
        let cont = BatchedServerSim::new(
            server(9, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::continuous(3),
        )
        .run(&arrivals)
        .expect("continuous");
        for (f, c) in fifo.served.iter().zip(&cont.served) {
            assert_eq!(f.outcome.answer, c.outcome.answer);
            assert_eq!(f.accepted_tokens(), c.accepted_tokens());
        }
    }

    #[test]
    fn gang_batching_admits_only_while_idle() {
        let arrivals = overload_arrivals(5, 31);
        let gang = BatchedServerSim::new(
            server(3, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::gang(3),
        )
        .run(&arrivals)
        .expect("gang");
        // First gang: requests arrived by t=0 — only request 0 (the rest
        // arrive later), so later arrivals queue until the device drains.
        assert_eq!(gang.served.len(), 5);
        for r in &gang.served {
            assert!(r.finished_at > r.arrived_at);
        }
    }

    #[test]
    fn preemption_fires_under_memory_pressure_and_conserves_tokens() {
        // A tight pool with several concurrent deep searches: equal
        // shares shrink until some request's working set no longer
        // fits, forcing a swap-out. "No accepted tokens lost" is
        // checked the only non-vacuous way: every preempted request's
        // final beams match the preemption-free FIFO replay of the same
        // stream exactly.
        let problems = Dataset::Aime2024.problems(4, 51);
        let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
        let sim = BatchedServerSim::new(
            server(13, 0.30),
            24,
            SearchKind::BeamSearch,
            BatchConfig::continuous(4),
        );
        let run = sim.run(&arrivals).expect("pressured run completes");
        assert_eq!(run.served.len(), 4);
        assert!(run.preemptions > 0, "pressure must trigger preemption");
        assert!(run.peak_reserved_bytes <= run.pool_bytes);
        let fifo = crate::ServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch)
            .run(&arrivals)
            .expect("fifo replay");
        let mut saw_preempted = false;
        for (r, f) in run.served.iter().zip(&fifo) {
            if r.preemptions == 0 {
                continue;
            }
            saw_preempted = true;
            assert!(r.preempted_secs > 0.0);
            assert_eq!(
                r.accepted_tokens(),
                f.accepted_tokens(),
                "swap-out/readmission must not lose generated tokens"
            );
            assert_eq!(r.outcome.answer, f.outcome.answer);
            assert_eq!(r.outcome.stats.beams.len(), f.outcome.stats.beams.len());
        }
        assert!(saw_preempted);
    }

    #[test]
    fn min_share_caps_concurrency() {
        let arrivals = overload_arrivals(4, 61);
        let pool = server(1, 0.9).config().kv_budget_bytes();
        let mut config = BatchConfig::continuous(4);
        // Equal shares for 3+ requests would dip below the floor.
        config.min_share_bytes = pool / 2;
        let run = BatchedServerSim::new(server(1, 0.9), 8, SearchKind::BeamSearch, config)
            .run(&arrivals)
            .expect("run");
        assert_eq!(run.served.len(), 4);
    }

    #[test]
    fn stream_summary_counts_everything() {
        let arrivals = overload_arrivals(3, 71);
        let run = BatchedServerSim::new(
            server(2, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::continuous(2),
        )
        .run(&arrivals)
        .expect("run");
        let s = run.stream_summary();
        assert_eq!(s.requests, 3);
        assert!(s.stream_goodput > 0.0);
        assert!(s.makespan > 0.0);
        assert_eq!(
            s.total_accepted_tokens,
            run.served.iter().map(|r| r.accepted_tokens()).sum::<u64>()
        );
    }
}
