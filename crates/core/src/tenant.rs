//! Per-tenant fair-share policy for the request schedulers.
//!
//! PR 6 gave individual requests SLO classes and deadlines; this module
//! adds the *tenant* axis on top: every [`RequestArrival`] bills to a
//! tenant (`arrival.tenant`), and a [`TenantPolicy`] attached to
//! [`BatchConfig::with_tenants`] makes both schedulers arbitrate the
//! shared KV pool **across tenants first, requests second**:
//!
//! * **Weighted fair-share at rebalance boundaries.** At every
//!   admission / completion / preemption / drift boundary the pool is
//!   split across the tenants present by weight (water-filling, see
//!   [`ftts_kv::tenant_weighted_budgets`]), each tenant bounded by its
//!   hard KV cap, then each tenant's budget is split among its own
//!   requests demand-proportionally. A noisy tenant therefore competes
//!   with *itself* for its own budget instead of starving neighbours.
//! * **Hard KV byte caps.** [`ftts_kv::PoolBudget::rebalance_tenants`]
//!   never grants a tenant's requests more than the tenant's cap; the
//!   per-tenant steady-state peak is recorded in
//!   [`BatchRun::tenant_peak_bytes`] for audit.
//! * **Per-tenant admission quotas.** At most
//!   [`TenantSpec::max_in_flight`] of a tenant's requests hold device
//!   reservations at once; further arrivals queue (without blocking
//!   other tenants' arrivals behind them).
//! * **Working-set-aware early rejection.** Under SLO enforcement, an
//!   arrival whose *cold* prompt working set could never fit its
//!   tenant's cap is shed immediately instead of burning device time.
//!
//! `tenants: None` (the default everywhere) is bit-inert: every
//! existing scheduling path is untouched.
//!
//! [`BatchConfig::with_tenants`]: crate::BatchConfig::with_tenants
//! [`BatchRun::tenant_peak_bytes`]: crate::BatchRun
//! [`RequestArrival`]: ftts_workload::RequestArrival

use serde::{Deserialize, Serialize};

/// Maximum tenants one [`TenantPolicy`] can carry. The policy rides
/// inside the `Copy` scheduler config, so it is a fixed-capacity
/// inline table rather than a heap collection.
pub const MAX_TENANTS: usize = 8;

/// One tenant's isolation contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant id, matched against [`ftts_workload::RequestArrival`]
    /// `tenant` fields.
    pub id: u32,
    /// Fair-share weight (≥ 1): the pool splits across contending
    /// tenants proportionally to weight.
    pub weight: u32,
    /// Hard cap on the tenant's total KV grant, bytes.
    pub kv_cap_bytes: u64,
    /// Maximum requests of this tenant holding device reservations at
    /// once (0 = unlimited).
    pub max_in_flight: u32,
}

impl TenantSpec {
    /// The in-flight quota as a comparable count (`usize::MAX` when
    /// unlimited).
    pub fn quota(&self) -> usize {
        if self.max_in_flight == 0 {
            usize::MAX
        } else {
            self.max_in_flight as usize
        }
    }
}

/// A validated, fixed-capacity table of [`TenantSpec`]s.
///
/// Requests billing to a tenant *not* in the table fall back to
/// [`TenantPolicy::DEFAULT_SPEC`] (weight 1, uncapped, no quota) — the
/// serving front-end rejects unknown tenants at the wire, so inside the
/// simulator this is a graceful default rather than an error path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantPolicy {
    specs: [TenantSpec; MAX_TENANTS],
    len: usize,
}

impl TenantPolicy {
    /// The fallback contract for tenants outside the table.
    pub const DEFAULT_SPEC: TenantSpec = TenantSpec {
        id: u32::MAX,
        weight: 1,
        kv_cap_bytes: u64::MAX,
        max_in_flight: 0,
    };

    /// Build a policy from up to [`MAX_TENANTS`] specs.
    ///
    /// # Panics
    ///
    /// On more than [`MAX_TENANTS`] specs, duplicate tenant ids, a zero
    /// weight, or a zero byte cap (use `u64::MAX` for "uncapped").
    pub fn new(specs: &[TenantSpec]) -> Self {
        assert!(
            specs.len() <= MAX_TENANTS,
            "at most {MAX_TENANTS} tenants per policy"
        );
        let mut table = [Self::DEFAULT_SPEC; MAX_TENANTS];
        for (i, spec) in specs.iter().enumerate() {
            assert!(spec.weight >= 1, "tenant weight must be >= 1");
            assert!(spec.kv_cap_bytes > 0, "tenant KV cap must be > 0");
            assert!(
                specs[..i].iter().all(|s| s.id != spec.id),
                "duplicate tenant id {}",
                spec.id
            );
            table[i] = *spec;
        }
        Self {
            specs: table,
            len: specs.len(),
        }
    }

    /// The configured specs, in declaration order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs[..self.len]
    }

    /// The contract for `tenant` ([`TenantPolicy::DEFAULT_SPEC`] when
    /// absent from the table).
    pub fn spec(&self, tenant: u32) -> TenantSpec {
        self.specs()
            .iter()
            .find(|s| s.id == tenant)
            .copied()
            .unwrap_or(Self::DEFAULT_SPEC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u32, weight: u32, cap: u64, quota: u32) -> TenantSpec {
        TenantSpec {
            id,
            weight,
            kv_cap_bytes: cap,
            max_in_flight: quota,
        }
    }

    #[test]
    fn policy_lookup_and_fallback() {
        let p = TenantPolicy::new(&[spec(0, 3, 1000, 2), spec(7, 1, 500, 0)]);
        assert_eq!(p.specs().len(), 2);
        assert_eq!(p.spec(0).weight, 3);
        assert_eq!(p.spec(7).quota(), usize::MAX);
        assert_eq!(p.spec(0).quota(), 2);
        assert_eq!(p.spec(42), TenantPolicy::DEFAULT_SPEC);
    }

    #[test]
    #[should_panic(expected = "duplicate tenant id")]
    fn duplicate_ids_are_rejected() {
        let _ = TenantPolicy::new(&[spec(1, 1, 10, 0), spec(1, 1, 10, 0)]);
    }

    #[test]
    #[should_panic(expected = "weight must be >= 1")]
    fn zero_weight_is_rejected() {
        let _ = TenantPolicy::new(&[spec(1, 0, 10, 0)]);
    }
}
