//! The FastTTS serving facade and the multi-request stream simulator.

use ftts_engine::{
    Engine, EngineConfig, EngineError, MemoryPlanner, ModelPairing, OrderPolicy, RandomOrder,
    RunStats, SearchDriver, SpecConfig, StaticSplitPlanner,
};
use ftts_hw::GpuDevice;
use ftts_model::ProblemSpec;
use ftts_search::{make_driver, SearchKind};
use ftts_workload::RequestArrival;
use serde::{Deserialize, Serialize};

use crate::memalloc::RooflinePlanner;
use crate::prefix_sched::PrefixAwareOrder;

/// Which of the three FastTTS optimizations are active — the knobs behind
/// the paper's ablation studies (Fig. 16, Fig. 18 right).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationFlags {
    /// Dynamic Prefix-Aware Scheduling (P).
    pub prefix_aware: bool,
    /// Asymmetric Multi-Model Memory Allocation (M).
    pub asym_memory: bool,
    /// Speculative Beam Extension incl. LookAhead Verification (S).
    pub speculation: bool,
    /// Allow the offloading extension of the memory allocator.
    pub offload: bool,
}

impl AblationFlags {
    /// The vLLM baseline: nothing on.
    pub fn baseline() -> Self {
        Self {
            prefix_aware: false,
            asym_memory: false,
            speculation: false,
            offload: false,
        }
    }

    /// Full FastTTS: everything on.
    pub fn fasttts() -> Self {
        Self {
            prefix_aware: true,
            asym_memory: true,
            speculation: true,
            offload: false,
        }
    }

    /// Full FastTTS plus the offloading search space (for ≤ 8 GB GPUs).
    pub fn fasttts_offload() -> Self {
        Self {
            offload: true,
            ..Self::fasttts()
        }
    }

    /// The cumulative ablation ladder of Fig. 16: P, then M+P, then
    /// M+P+S.
    pub fn ladder() -> [(&'static str, AblationFlags); 3] {
        [
            (
                "P",
                AblationFlags {
                    prefix_aware: true,
                    ..AblationFlags::baseline()
                },
            ),
            (
                "M+P",
                AblationFlags {
                    prefix_aware: true,
                    asym_memory: true,
                    ..AblationFlags::baseline()
                },
            ),
            ("M+P+S", AblationFlags::fasttts()),
        ]
    }

    /// Short label like `"P+M+S"` (baseline prints `"vLLM"`).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.prefix_aware {
            parts.push("P");
        }
        if self.asym_memory {
            parts.push("M");
        }
        if self.speculation {
            parts.push("S");
        }
        if parts.is_empty() {
            "vLLM".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Result of serving one TTS request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeOutcome {
    /// Full engine statistics.
    pub stats: RunStats,
    /// The answer picked by majority voting, if any.
    pub answer: Option<u32>,
}

impl ServeOutcome {
    /// Precise goodput (tokens/s) of the run.
    pub fn goodput(&self) -> f64 {
        self.stats.goodput()
    }

    /// End-to-end completion latency in seconds.
    pub fn latency(&self) -> f64 {
        self.stats.latency()
    }

    /// Whether majority voting found the correct answer.
    pub fn top1_correct(&self) -> bool {
        self.stats.top1_correct()
    }
}

/// A TTS serving system: a device, a generator/verifier pairing and a
/// set of optimizations. This is the paper's "plug-and-play third-party
/// library" surface.
///
/// The engine configuration is shared behind `Arc`: cloning a server or
/// building a per-request [`Engine`] bumps a reference count instead of
/// deep-cloning device/model descriptions, which keeps the serve loop's
/// steady-state path allocation-light and makes parallel sweeps cheap.
#[derive(Debug, Clone)]
pub struct TtsServer {
    config: std::sync::Arc<EngineConfig>,
    flags: AblationFlags,
}

impl TtsServer {
    /// FastTTS with every optimization enabled (paper defaults).
    pub fn fasttts(device: GpuDevice, models: ModelPairing) -> Self {
        Self::with_flags(device, models, AblationFlags::fasttts())
    }

    /// The paper's baseline: two static vLLM instances, FIFO scheduling,
    /// no speculation.
    pub fn vllm_baseline(device: GpuDevice, models: ModelPairing) -> Self {
        Self::with_flags(device, models, AblationFlags::baseline())
    }

    /// Any ablation combination.
    pub fn with_flags(device: GpuDevice, models: ModelPairing, flags: AblationFlags) -> Self {
        Self::from_config(EngineConfig::baseline(device, models), flags)
    }

    /// Build from a fully custom engine config (advanced use). The
    /// config's `spec` and verifier-caching fields are derived from
    /// `flags.speculation`.
    pub fn from_config(mut config: EngineConfig, flags: AblationFlags) -> Self {
        config.spec = if flags.speculation {
            SpecConfig::fasttts_default()
        } else {
            SpecConfig::disabled()
        };
        // Incremental verifier caching is what LookAhead exploits; the
        // baseline re-prefills each verification (HF search-and-learn).
        config.ver_prefix_caching = flags.speculation;
        Self {
            config: std::sync::Arc::new(config),
            flags,
        }
    }

    /// The active optimization flags.
    pub fn flags(&self) -> &AblationFlags {
        &self.flags
    }

    /// The underlying engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.config.as_ref()
    }

    /// Mutable access for experiment-specific tweaks (memory fraction,
    /// tracing, seeds, truncation ratio…). Copy-on-write: if the config
    /// is currently shared with live engines or server clones, this
    /// clones it once before mutating.
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        std::sync::Arc::make_mut(&mut self.config)
    }

    fn order_policy(&self) -> Box<dyn OrderPolicy> {
        if self.flags.prefix_aware {
            Box::new(PrefixAwareOrder::new())
        } else {
            // vLLM's effective running order under continuous batching is
            // arbitrary with respect to prefix locality (the paper's
            // Fig. 5 right / Fig. 18 "random scheduling" baseline).
            Box::new(RandomOrder::new(self.config.seed))
        }
    }

    fn memory_planner(&self) -> Box<dyn MemoryPlanner> {
        if self.flags.asym_memory {
            if self.flags.offload {
                Box::new(RooflinePlanner::with_offload())
            } else {
                Box::new(RooflinePlanner::new())
            }
        } else {
            Box::new(StaticSplitPlanner)
        }
    }

    /// Build a fresh engine with this server's policies.
    pub fn engine(&self) -> Engine {
        Engine::new(
            self.config.clone(),
            self.order_policy(),
            self.memory_planner(),
        )
    }

    /// Start a resumable run for one request — the entry point the
    /// continuous-batching scheduler uses to multiplex many requests
    /// over one simulated accelerator. `kv_budget` is the request's
    /// share of the shared KV pool (`None` = the whole device budget).
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when the prompt cannot fit in the
    /// share.
    pub fn begin_request(
        &self,
        problem: &ProblemSpec,
        n: usize,
        driver: &mut dyn ftts_engine::SearchDriver,
        spec_off_after: f64,
        kv_budget: Option<u64>,
    ) -> Result<ftts_engine::RequestRun, EngineError> {
        self.engine()
            .begin(problem, n, driver, spec_off_after, kv_budget)
    }

    /// [`TtsServer::begin_request`] with a warm-start grant from the
    /// host KV tier: `warm.tokens` prompt-prefix tokens swap in from
    /// host RAM instead of prefilling. `None` is bit-identical to
    /// [`TtsServer::begin_request`].
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when the prompt cannot fit in the
    /// share.
    pub fn begin_request_warm(
        &self,
        problem: &ProblemSpec,
        n: usize,
        driver: &mut dyn ftts_engine::SearchDriver,
        spec_off_after: f64,
        kv_budget: Option<u64>,
        warm: Option<ftts_engine::WarmStart>,
    ) -> Result<ftts_engine::RequestRun, EngineError> {
        self.engine()
            .begin_warm(problem, n, driver, spec_off_after, kv_budget, warm)
    }

    /// Serve one problem with `n` beams using a named search algorithm.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when the KV budget cannot host a single
    /// reasoning path.
    pub fn serve(
        &self,
        problem: &ProblemSpec,
        n: usize,
        kind: SearchKind,
    ) -> Result<ServeOutcome, EngineError> {
        let mut driver = make_driver(kind, n, 4);
        self.serve_with(problem, n, driver.as_mut())
    }

    /// Serve with a custom [`SearchDriver`].
    ///
    /// # Errors
    ///
    /// See [`TtsServer::serve`].
    pub fn serve_with(
        &self,
        problem: &ProblemSpec,
        n: usize,
        driver: &mut dyn SearchDriver,
    ) -> Result<ServeOutcome, EngineError> {
        let mut engine = self.engine();
        let stats = engine.run(problem, n, driver)?;
        let answer = ftts_metrics::top1_majority(&stats.answers());
        Ok(ServeOutcome { stats, answer })
    }
}

/// One served request in a stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServedRequest {
    /// Arrival time of the request.
    pub arrived_at: f64,
    /// Time serving started (after queueing).
    pub started_at: f64,
    /// Time serving finished.
    pub finished_at: f64,
    /// How many times the request was preempted mid-flight (always 0
    /// under FIFO batch-1 serving).
    pub preemptions: u32,
    /// Seconds spent preempted (swapped out awaiting readmission).
    pub preempted_secs: f64,
    /// SLO class the request arrived with.
    pub slo: ftts_metrics::SloClass,
    /// Absolute completion deadline (`f64::INFINITY` = none).
    pub deadline: f64,
    /// Whether the request was shed instead of completed: rejected at
    /// admission or cancelled by deadline enforcement. A shed request
    /// delivered no answer; `finished_at` is its rejection/cancellation
    /// instant.
    pub shed: bool,
    /// Beam width actually granted (0 for a request shed before
    /// admission; below the configured width when the degradation
    /// controller shrank the TTS budget).
    pub granted_n: usize,
    /// The serve outcome.
    pub outcome: ServeOutcome,
}

impl ServedRequest {
    /// Queueing delay before service.
    pub fn queue_delay(&self) -> f64 {
        self.started_at - self.arrived_at
    }

    /// End-to-end latency including queueing.
    pub fn total_latency(&self) -> f64 {
        self.finished_at - self.arrived_at
    }

    /// Accepted (generated, completed-beam) tokens of the request.
    pub fn accepted_tokens(&self) -> u64 {
        self.outcome.stats.beams.iter().map(|b| b.tokens).sum()
    }

    /// Whether the request missed its SLO: shed, or finished past its
    /// deadline. Always `false` without a deadline.
    pub fn deadline_missed(&self) -> bool {
        self.shed || self.finished_at > self.deadline
    }
}

/// Replays a request arrival stream against a server, applying the
/// two-phase scheduling rule: Speculative Beam Extension only runs while
/// the waiting queue is empty, and is preempted the moment the next
/// request arrives (Sec. 4.1.2).
#[derive(Debug, Clone)]
pub struct ServerSim {
    server: TtsServer,
    n: usize,
    kind: SearchKind,
}

impl ServerSim {
    /// Simulate `server` answering requests with `n` beams each.
    pub fn new(server: TtsServer, n: usize, kind: SearchKind) -> Self {
        Self { server, n, kind }
    }

    /// Serve the arrival stream to completion (FIFO, batch size 1 as in
    /// the paper's interactive setting).
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] encountered.
    pub fn run(&self, arrivals: &[RequestArrival]) -> Result<Vec<ServedRequest>, EngineError> {
        let mut clock = 0.0f64;
        let mut served = Vec::with_capacity(arrivals.len());
        for (i, req) in arrivals.iter().enumerate() {
            let start = clock.max(req.at);
            // Speculation must stop when the next request is waiting.
            let next_arrival = arrivals.get(i + 1).map_or(f64::INFINITY, |a| a.at);
            let spec_deadline = (next_arrival - start).max(0.0);
            let mut engine = self.server.engine();
            let mut driver = make_driver(self.kind, self.n, 4);
            let stats =
                engine.run_with_deadline(&req.problem, self.n, driver.as_mut(), spec_deadline)?;
            let answer = ftts_metrics::top1_majority(&stats.answers());
            let finish = start + stats.latency();
            served.push(ServedRequest {
                arrived_at: req.at,
                started_at: start,
                finished_at: finish,
                preemptions: 0,
                preempted_secs: 0.0,
                slo: req.slo,
                deadline: req.deadline,
                shed: false,
                granted_n: self.n,
                outcome: ServeOutcome { stats, answer },
            });
            clock = finish;
        }
        Ok(served)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_workload::{ArrivalPattern, Dataset};

    fn problem() -> ProblemSpec {
        Dataset::Amc2023.problems(1, 3)[0]
    }

    #[test]
    fn flags_labels() {
        assert_eq!(AblationFlags::baseline().label(), "vLLM");
        assert_eq!(AblationFlags::fasttts().label(), "P+M+S");
        let ladder = AblationFlags::ladder();
        assert_eq!(ladder[0].1.label(), "P");
        assert_eq!(ladder[1].1.label(), "P+M");
        assert_eq!(ladder[2].1.label(), "P+M+S");
        assert!(AblationFlags::fasttts_offload().offload);
    }

    #[test]
    fn fasttts_beats_baseline_on_goodput() {
        let models = ModelPairing::pair_1_5b_1_5b();
        let base = TtsServer::vllm_baseline(GpuDevice::rtx4090(), models.clone());
        let fast = TtsServer::fasttts(GpuDevice::rtx4090(), models);
        let p = problem();
        let b = base.serve(&p, 32, SearchKind::BeamSearch).unwrap();
        let f = fast.serve(&p, 32, SearchKind::BeamSearch).unwrap();
        assert!(
            f.goodput() > b.goodput(),
            "fasttts {} must beat baseline {}",
            f.goodput(),
            b.goodput()
        );
        assert!(f.latency() < b.latency());
        // Algorithmic equivalence: identical final answers.
        assert_eq!(f.answer, b.answer);
    }

    #[test]
    fn serve_with_custom_driver() {
        let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        let mut driver = ftts_search::BeamSearch::new(8, 4);
        let out = server.serve_with(&problem(), 8, &mut driver).unwrap();
        assert!(out.goodput() > 0.0);
    }

    #[test]
    fn server_sim_orders_and_queues_requests() {
        let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        let sim = ServerSim::new(server, 8, SearchKind::BeamSearch);
        let problems = Dataset::Amc2023.problems(3, 9);
        let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
        let served = sim.run(&arrivals).unwrap();
        assert_eq!(served.len(), 3);
        // FIFO: each starts when the previous finished.
        assert!(served[1].queue_delay() > 0.0);
        assert!((served[1].started_at - served[0].finished_at).abs() < 1e-9);
        // Queued requests preempt speculation entirely.
        assert_eq!(served[0].outcome.stats.spec.spec_tokens, 0);
        // The last request has no successor: speculation may run.
        assert!(served[2].outcome.stats.spec.spec_tokens > 0);
    }

    #[test]
    fn config_mut_allows_memory_tweaks() {
        let mut server =
            TtsServer::vllm_baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        server.config_mut().memory_fraction = 0.4;
        assert_eq!(server.config().memory_fraction, 0.4);
        let out = server.serve(&problem(), 8, SearchKind::BeamSearch).unwrap();
        assert!(out.latency() > 0.0);
    }
}
