//! Event-driven (iteration-granularity) continuous batching.
//!
//! [`BatchedServerSim`](crate::BatchedServerSim) runs *lockstep rounds*:
//! every in-flight request executes one TTS iteration per round, then
//! waits at a global barrier for the round's straggler. Under
//! heterogeneous workloads (shallow AMC requests co-scheduled with deep
//! AIME searches) the barrier is the dominant idle source: fast
//! requests burn `LatencyBreakdown::barrier_idle` every round instead
//! of decoding. [`EventServerSim`] removes the barrier the way vLLM's
//! continuous batching does — scheduling at *iteration* granularity:
//!
//! * **A ready queue instead of rounds.** Each in-flight request
//!   carries its own next-event time (`started_at +
//!   RequestRun::next_event_at()` — the instant its next iteration
//!   could start). The scheduler always serves the earliest event: the
//!   earliest-ready request, or a pending arrival when mid-flight
//!   admission could open a fresh co-batch of its own.
//! * **Opportunistic co-batching inside a window.** Waiting forever for
//!   partners re-creates the barrier; never waiting forfeits the
//!   co-batched decode's amortized weight sweep and the fused verifier
//!   sweep. [`EventConfig::window_secs`] is the dial between the two: a
//!   launch groups every request whose next iteration can start within
//!   `window_secs` of the earliest event, launches at the latest
//!   member's ready time (members that are ready earlier wait that gap
//!   as plain `idle` — a *window* wait, never `barrier_idle`), and
//!   leaves requests mid-iteration beyond the horizon alone to advance
//!   at their own cadence.
//! * **One iteration per launch, phases shared.** A launch runs the
//!   split-phase protocol across its group exactly like one lockstep
//!   round — plan (co-batched decode over the *group's* loads) → gather
//!   → cost (fused or serialized verifier sweeps via the shared
//!   [`admission`] plumbing) → commit — then returns the survivors to
//!   the in-flight set with their new ready times. Groups may interleave
//!   arbitrarily with other requests' iterations; the split-phase
//!   protocol is re-entrant per run, so out-of-order costing across
//!   launches is safe (`RunPhase` asserts it).
//! * **Shared admission, shares and preemption.** Admission order,
//!   equal/demand-proportional KV shares and youngest-first preemption
//!   are the same code the lockstep scheduler uses
//!   (`crate::admission`), with one generalization: shares and caps
//!   count the *whole* in-flight set, not just the launching group.
//!
//! # Equivalence anchors
//!
//! Two degenerate modes pin the scheduler to known-good paths, enforced
//! bit-for-bit in `crates/core/tests/event_sched.rs`:
//!
//! * **Batch 1** ([`BatchConfig::fifo`]): groups are always singletons,
//!   no window wait, no barrier — the event loop reproduces
//!   [`ServerSim::run`](crate::ServerSim::run) exactly, like the
//!   lockstep scheduler does.
//! * **Infinite window** ([`EventConfig::lockstep`]): every launch
//!   waits for all in-flight requests, the launch instant is exactly
//!   the lockstep barrier, and the device floor advances to each
//!   launch's round end (finished members hold the barrier, as they do
//!   in a lockstep round) — the event loop reproduces
//!   [`BatchedServerSim::run`](crate::BatchedServerSim::run) exactly,
//!   including `barrier_idle` attribution.
//!
//! # Time model
//!
//! Launches are processed in non-decreasing launch order (a device
//! `floor` enforces it: preemption PCIe transfers and — in the
//! infinite-window mode — round ends raise it). KV reservations release
//! at the *commit* of a request's final iteration, which can precede
//! its finish instant by at most that one iteration: the same
//! iteration-granularity approximation the lockstep scheduler makes
//! when it resizes shares at round boundaries while members' clocks
//! disagree. The ledger itself is never overcommitted.

use std::collections::VecDeque;

use ftts_engine::{EngineError, RunPhase, StepStatus, VerifyCharge, VerifyChunk};
use ftts_kv::{HostTier, PoolBudget};
use ftts_search::SearchKind;
use ftts_workload::RequestArrival;

use crate::admission::{self, InFlight, SchedCtx};
use crate::batch_server::{BatchConfig, BatchRun};
use crate::faults::{FaultCursor, FaultPlan, LaunchFaults};
use crate::server::{ServeOutcome, ServedRequest, TtsServer};

/// Event-driven scheduling knobs: a request-level batching policy plus
/// the co-batch window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// The request-level policy (admission, fusion, shares, preemption)
    /// — the same knobs the lockstep scheduler takes.
    pub batch: BatchConfig,
    /// How long a launch may wait for co-batch partners beyond the
    /// earliest ready request, in seconds. `0.0` co-batches only
    /// simultaneously-ready requests; `f64::INFINITY` waits for
    /// everyone — the degenerate lockstep mode.
    pub window_secs: f64,
}

impl EventConfig {
    /// Event-driven scheduling of `batch` with the given co-batch
    /// window.
    pub fn new(batch: BatchConfig, window_secs: f64) -> Self {
        assert!(window_secs >= 0.0, "window must be non-negative");
        Self { batch, window_secs }
    }

    /// The full PR-4 serving policy: fused verifier sweeps and
    /// demand-proportional shares ([`BatchConfig::fused`]) scheduled at
    /// iteration granularity with the given window.
    pub fn windowed(max_batch: usize, window_secs: f64) -> Self {
        Self::new(BatchConfig::fused(max_batch), window_secs)
    }

    /// The degenerate infinite-window mode: every launch waits for all
    /// in-flight requests, reproducing [`crate::BatchedServerSim`]'s
    /// lockstep rounds bit-for-bit — the correctness anchor.
    pub fn lockstep(batch: BatchConfig) -> Self {
        Self {
            batch,
            window_secs: f64::INFINITY,
        }
    }
}

/// A prefix published into the host tier mid-run by an external
/// director (see [`RunDirectives`]): at the first launch boundary at or
/// after `at`, `bytes` of prompt KV for problem `key` appear in the
/// tier's shared store. A fleet uses this to hand a crashed replica's
/// host-resident prompt prefix to the failover target, so the migrated
/// request warm-starts there instead of re-prefilling from scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrewarmPrefix {
    /// Absolute simulated time the prefix becomes available, seconds.
    pub at: f64,
    /// The problem seed the prefix belongs to.
    pub key: u64,
    /// Prompt tokens covered by the prefix.
    pub tokens: u64,
    /// Host bytes the prefix occupies.
    pub bytes: u64,
}

/// External directives applied to one [`EventServerSim`] run — the
/// interface a fleet router uses to steer a device timeline it does not
/// otherwise control. Empty directives leave the run bit-identical to
/// [`EventServerSim::run_faulted`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunDirectives {
    /// `(arrival index, instant)`: cancel the request at the first
    /// launch boundary at or after the instant (crash failover, hedge
    /// losers). Cancelled requests reclaim everything — pool
    /// reservation, parked tier bytes — but publish no prefix; a
    /// request already finished by its instant is untouched.
    pub cancels: Vec<(usize, f64)>,
    /// Prefixes to publish into the host tier mid-run (failover
    /// warm-start handoff).
    pub prewarms: Vec<PrewarmPrefix>,
}

impl RunDirectives {
    /// Whether the directives change nothing.
    pub fn is_empty(&self) -> bool {
        self.cancels.is_empty() && self.prewarms.is_empty()
    }
}

/// Replays a request arrival stream with event-driven
/// (iteration-granularity) continuous batching over one shared
/// accelerator and KV pool. See the module docs for the execution
/// model.
#[derive(Debug, Clone)]
pub struct EventServerSim {
    server: TtsServer,
    n: usize,
    kind: SearchKind,
    config: EventConfig,
}

impl EventServerSim {
    /// Simulate `server` answering requests with `n` beams each under
    /// the given event-driven policy.
    pub fn new(server: TtsServer, n: usize, kind: SearchKind, config: EventConfig) -> Self {
        assert!(config.batch.max_batch >= 1, "need at least one batch slot");
        assert!(config.window_secs >= 0.0, "window must be non-negative");
        Self {
            server,
            n,
            kind,
            config,
        }
    }

    /// The event-driven policy in effect.
    pub fn config(&self) -> &EventConfig {
        &self.config
    }

    /// Serve the arrival stream to completion on a fault-free device.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit even with
    /// the entire pool to itself.
    pub fn run(&self, arrivals: &[RequestArrival]) -> Result<BatchRun, EngineError> {
        self.run_faulted(arrivals, &FaultPlan::none())
    }

    /// Serve the arrival stream to completion while `plan` injects
    /// faults into the simulated device. The empty plan reproduces
    /// [`EventServerSim::run`] bit-for-bit, and the lockstep
    /// (infinite-window) mode consumes the plan at exactly the lockstep
    /// scheduler's round boundaries — the equivalence anchors extend to
    /// faulty runs.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit even with
    /// the entire pool to itself.
    pub fn run_faulted(
        &self,
        arrivals: &[RequestArrival],
        plan: &FaultPlan,
    ) -> Result<BatchRun, EngineError> {
        self.run_directed(arrivals, plan, &RunDirectives::default())
    }

    /// Serve the arrival stream under `plan` while `directives` steer
    /// the timeline from outside: directed cancellations (crash
    /// failover, hedge losers) and mid-run host-tier prefix handoffs.
    /// Empty directives reproduce [`EventServerSim::run_faulted`]
    /// bit-for-bit — the fleet's 1-device pass-through anchor.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] when a request cannot fit even with
    /// the entire pool to itself.
    #[allow(clippy::too_many_lines)]
    pub fn run_directed(
        &self,
        arrivals: &[RequestArrival],
        plan: &FaultPlan,
        directives: &RunDirectives,
    ) -> Result<BatchRun, EngineError> {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival times must be non-decreasing"
        );
        let batch = &self.config.batch;
        let window = self.config.window_secs;
        let lockstep = window.is_infinite();
        let pool_bytes = self.server.config().kv_budget_bytes();
        let device = self.server.config().device.clone();
        let gen_bpt = self.server.config().models.gen_spec.kv_bytes_per_token();
        let mut pool = PoolBudget::new(pool_bytes);
        if let Some(policy) = batch.tenants {
            for spec in policy.specs() {
                pool.set_tenant_cap(u64::from(spec.id), spec.kv_cap_bytes);
            }
        }
        let mut tier = HostTier::new(batch.tier);
        // Earliest instant the next launch may happen: raised by
        // preemption PCIe transfers, by completions that drain the
        // device, and (in lockstep mode) by every launch's round end.
        let mut floor = 0.0f64;
        // Latest completion instant seen — the device-drained floor.
        let mut finish_max = 0.0f64;
        let mut next_arrival = 0usize;
        let mut waiting: VecDeque<usize> = VecDeque::new();
        let mut paused: VecDeque<InFlight> = VecDeque::new();
        let mut active: Vec<InFlight> = Vec::new();
        let mut served: Vec<Option<ServedRequest>> = (0..arrivals.len()).map(|_| None).collect();
        let mut admit_seq = 0u64;
        let mut rounds = 0u64;
        let mut group_iters = 0u64;
        let mut preemptions = 0u32;
        let mut ver_sweeps = 0u64;
        let mut ver_seqs = 0u64;
        let mut ver_busy_secs = 0.0f64;
        let mut cursor = FaultCursor::default();
        let mut kernel_faults = 0u32;
        let mut fault_retries = 0u32;
        let mut kv_loss_events = 0u32;
        let mut lost_blocks = 0u64;
        let mut shed = 0u32;
        let mut cancelled = 0u32;
        let mut degradations = 0u32;
        let mut tier_dropped = 0u64;
        // Directed cancels: earliest instant per arrival index (∞ =
        // never), applied at launch boundaries like deadline sweeps.
        let has_cancels = !directives.cancels.is_empty();
        let mut cancel_at = vec![f64::INFINITY; arrivals.len()];
        for &(idx, t) in &directives.cancels {
            assert!(idx < arrivals.len(), "cancel index out of range");
            cancel_at[idx] = cancel_at[idx].min(t);
        }
        let mut prewarms = directives.prewarms.clone();
        prewarms.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite prewarm times"));
        let mut prewarm_next = 0usize;

        loop {
            // Next decision instant: the earliest ready request, or the
            // next arrival.
            let next_ready = active
                .iter()
                .map(InFlight::ready_at)
                .fold(f64::INFINITY, f64::min);
            let next_arr = arrivals.get(next_arrival).map_or(f64::INFINITY, |a| a.at);

            if active.is_empty() {
                // The device is drained; nothing launches before the
                // last completion.
                floor = floor.max(finish_max);
                if waiting.is_empty() && paused.is_empty() {
                    if next_arrival >= arrivals.len() {
                        break; // everything served
                    }
                    // Idle until the next arrival.
                    floor = floor.max(next_arr);
                }
            }

            // Anchor: the earliest instant a new co-batch can launch. A
            // pending arrival anchors its own (fresh) launch only when
            // mid-flight admission could actually take it — otherwise
            // it is ingested when the next ready-driven launch forms.
            let arrival_anchor = next_arr.max(floor);
            let consider_arrival = batch.admit_mid_flight
                && active.len() < batch.max_batch
                && arrival_anchor < next_ready;
            let anchor = if active.is_empty() {
                floor
            } else if consider_arrival {
                arrival_anchor
            } else {
                next_ready
            };

            // Group: every in-flight request whose next iteration can
            // start inside the batching window. The partition is stable,
            // so the group keeps admission order (the order shares
            // resize and unfused sweeps serialize in).
            let horizon = anchor + window;
            let mut group: Vec<InFlight> = Vec::new();
            let mut rest: Vec<InFlight> = Vec::new();
            for a in active.drain(..) {
                if a.ready_at() <= horizon {
                    group.push(a);
                } else {
                    rest.push(a);
                }
            }

            // Launch: the latest member's ready time, never before the
            // device floor. Members ready earlier wait the gap — a
            // window wait (plain idle), except in the degenerate
            // infinite-window mode where the wait *is* the lockstep
            // round barrier.
            let mut launch = group
                .iter()
                .map(InFlight::ready_at)
                .fold(anchor.max(floor), f64::max);
            for a in &mut group {
                if lockstep {
                    admission::pad_to_barrier(a, launch);
                } else {
                    admission::pad_to(a, launch);
                }
            }

            // Ingest arrivals due by the launch, then admit (readmits
            // first, then fresh arrivals — the shared tiebreak) into the
            // group at the launch instant.
            while next_arrival < arrivals.len() && arrivals[next_arrival].at <= launch {
                waiting.push_back(next_arrival);
                next_arrival += 1;
            }
            let ctx = SchedCtx {
                server: &self.server,
                n: self.n,
                kind: self.kind,
                config: batch,
            };
            // Directed prefix handoffs due by this launch land in the
            // tier before admission, so a migrated request admits warm.
            while prewarm_next < prewarms.len() && prewarms[prewarm_next].at <= launch {
                let p = prewarms[prewarm_next];
                tier.publish_prefix(p.key, p.tokens, p.bytes);
                prewarm_next += 1;
            }
            // Directed cancellations sweep at the same pre-admission
            // boundary as deadline enforcement, under any fault policy.
            if has_cancels {
                let sweep = admission::apply_cancels(
                    batch,
                    &cancel_at,
                    launch,
                    arrivals,
                    &mut waiting,
                    &mut paused,
                    &mut group,
                    &mut rest,
                    &mut pool,
                    &mut tier,
                    &mut served,
                );
                shed += sweep.shed;
                cancelled += sweep.cancelled;
            }
            // Deadline/SLO enforcement (active only under the Degrade
            // policy), at the same pre-admission boundary the lockstep
            // scheduler sweeps at.
            let sweep = admission::enforce_slo(
                &ctx,
                launch,
                pool_bytes,
                arrivals,
                &mut waiting,
                &mut paused,
                &mut group,
                &mut rest,
                &mut pool,
                &mut tier,
                &mut served,
            );
            shed += sweep.shed;
            cancelled += sweep.cancelled;
            let report = admission::admit(
                &ctx,
                &mut group,
                &mut rest,
                &mut paused,
                &mut waiting,
                &mut pool,
                &mut tier,
                arrivals,
                launch,
                &mut admit_seq,
            )?;
            degradations += report.degradations;
            // Admission boundary: size elastic shares by demand (and,
            // under a tenant policy, by tenant fair-share).
            if report.admitted && admission::elastic(batch) {
                admission::rebalance_elastic(batch, &mut group, &mut rest, &mut pool);
            }

            if group.is_empty() && rest.is_empty() {
                if waiting.is_empty() && paused.is_empty() {
                    continue; // idle to the next arrival (or done)
                }
                // A lone candidate that cannot fit the whole pool: fresh
                // requests already propagated from admission, so this is
                // a preempted run whose paths outgrew the device.
                let p = paused.front().expect("paused candidate");
                let (needed, capacity) = p.run.kv_demand();
                return Err(EngineError::PathExceedsMemory { needed, capacity });
            }
            if group.is_empty() {
                // The anchor produced no launch (a blocked arrival, or
                // every in-flight request beyond the horizon): put the
                // in-flight set back and wait for the next ready event.
                active = rest;
                continue;
            }

            // Memory-pressure preemption over the launching group
            // (requests outside the group are between iterations and
            // re-probed when they launch). Victims are swapped out
            // youngest-first; a lone request is never preempted.
            while group.len() + rest.len() > 1 {
                let victim = group
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.run.can_progress() || !a.run.fits_working_set())
                    .max_by_key(|(_, a)| a.admit_seq)
                    .map(|(i, _)| i);
                let Some(vi) = victim else { break };
                let mut v = group.remove(vi);
                // With a host tier, swap-down is capped at the tier's
                // free capacity: what fits parks (and is PCIe-costed),
                // the overflow is genuinely dropped — no transfer, but
                // recomputed on readmission. Disabled tier: the legacy
                // unbounded swap, bit-for-bit.
                let bytes = if tier.enabled() {
                    let (swapped, dropped) = v.run.preempt_capped(tier.available_bytes());
                    tier.park(v.idx as u64, swapped);
                    tier_dropped += dropped;
                    swapped
                } else {
                    v.run.preempt()
                };
                launch += device.pcie_transfer_seconds(bytes);
                pool.release(v.idx as u64);
                v.preemptions += 1;
                preemptions += 1;
                v.paused_at = launch;
                v.probe = None;
                paused.push_back(v);
                // Preemption boundary: survivors regrow or rebalance.
                admission::reshare(batch, &mut group, &mut rest, &mut pool);
            }
            // The launch (with any preemption PCIe time) is committed
            // device time: later launches never precede it.
            floor = floor.max(launch);
            if group.is_empty() {
                active = rest;
                continue;
            }

            // One launch: the group executes one TTS iteration over the
            // shared, co-batched accelerator, in the four split phases
            // (plan → gather → cost → commit). Decode contention counts
            // the *whole* in-flight set — requests outside the launch
            // are mid-iteration and genuinely overlap on the device, so
            // their sequences ride the same weight sweep and memory
            // traffic even though only group members join this launch's
            // fused verifier sweep. (With an infinite window the rest is
            // empty and this is exactly the lockstep round's co-batch.)
            rounds += 1;
            group_iters += group.len() as u64;
            let loads: Vec<(usize, u64)> = group.iter().map(|a| a.run.decode_load()).collect();
            let (rest_seqs, rest_ctx) = rest
                .iter()
                .map(|a| a.run.decode_load())
                .fold((0usize, 0u64), |(s, c), (ls, lc)| (s + ls, c + lc));
            let total_seqs: usize = loads.iter().map(|l| l.0).sum::<usize>() + rest_seqs;
            let total_ctx: u64 = loads.iter().map(|l| l.1).sum::<u64>() + rest_ctx;
            let alone =
                group.len() == 1 && rest.is_empty() && waiting.is_empty() && paused.is_empty();
            let next_at = arrivals.get(next_arrival).map(|a| a.at);
            let mut round_end = launch;
            let mut finished: Vec<usize> = Vec::new();

            // Phase 1 — plan: memory replan plus the co-batched decode.
            let mut planned: Vec<bool> = Vec::with_capacity(group.len());
            for (i, a) in group.iter_mut().enumerate() {
                a.run
                    .set_co_batch(total_seqs - loads[i].0, total_ctx - loads[i].1);
                // Two-phase rule: speculate only while alone, and only
                // until the next (known) arrival would start waiting.
                let spec_off = if !alone {
                    0.0
                } else if let Some(at) = next_at {
                    (at - a.started_at).max(0.0)
                } else {
                    f64::INFINITY
                };
                a.run.set_spec_off_after(spec_off);
                planned.push(!a.run.plan_iteration(a.driver.as_mut())?.is_finished());
            }

            // Phase 2 — gather: every run's verifier mirror work and the
            // prefill chunks still owed kernel time.
            let plans: Vec<Vec<VerifyChunk>> = group
                .iter_mut()
                .zip(&planned)
                .map(|(a, &p)| {
                    if p {
                        a.run.take_verify_batch().to_vec()
                    } else {
                        Vec::new()
                    }
                })
                .collect();

            // Phase 3 — cost: price the group's verifier sweeps over the
            // one shared accelerator (fused or serialized).
            let mut charges: Vec<Vec<VerifyCharge>> = vec![Vec::new(); group.len()];
            let sweep =
                admission::cost_verify_sweeps(batch.fused_verify, &mut group, &plans, &mut charges);
            ver_sweeps += sweep.sweeps;
            ver_seqs += sweep.seqs;
            ver_busy_secs += sweep.busy_secs;

            // Phase 4 — commit: charge the sweeps, reveal scores, branch
            // survivors; apply the opt-in First Finish cut.
            for (i, a) in group.iter_mut().enumerate() {
                let status = if planned[i] {
                    a.run.apply_verify_results(a.driver.as_mut(), &charges[i])?
                } else {
                    StepStatus::Finished
                };
                debug_assert!(
                    a.run.run_phase() == RunPhase::Ready || !planned[i],
                    "a committed run must be back between iterations"
                );
                let mut done = status.is_finished();
                if !done && batch.first_finish && a.run.first_finish_cut(batch.first_finish_bar) {
                    done = true;
                }
                round_end = round_end.max(a.started_at + a.run.clock());
                if done {
                    finished.push(i);
                }
            }

            // Injected faults due this launch, popped from the same
            // cursor position the lockstep scheduler would pop them at
            // (in lockstep mode the launch instant *is* the round
            // barrier, so faulty runs stay bit-identical across
            // schedulers). Kernel faults and throttle windows hit the
            // kernels launched now — the group; device KV loss is state
            // damage and hits every device-resident request, including
            // bystanders mid-iteration outside the window (`rest`).
            // Swapped-out (paused) requests survive in host RAM.
            let faults = LaunchFaults::at(&mut cursor, plan, &batch.robust, launch);
            if faults.fired() {
                kernel_faults += faults.kernel_faults;
                fault_retries += faults.retries;
                for a in group.iter_mut() {
                    let dt = (a.started_at + a.run.clock() - launch).max(0.0);
                    a.run
                        .stall_fault(dt * faults.busy_stretch + faults.backoff_secs);
                    if faults.kernel_faults > 0 {
                        a.run.note_kernel_faults(
                            faults.kernel_faults,
                            faults.retries,
                            faults.backoff_secs,
                        );
                    }
                    if faults.slowdown_stretch > 0.0 {
                        a.run.note_slowdown(dt * faults.slowdown_stretch);
                    }
                }
                if faults.kv_losses > 0 {
                    kv_loss_events += faults.kv_losses;
                    for a in group.iter_mut().chain(rest.iter_mut()) {
                        lost_blocks += a.run.lose_device_kv();
                    }
                }
                round_end = group
                    .iter()
                    .map(|a| a.started_at + a.run.clock())
                    .fold(launch, f64::max);
            }
            // In lockstep mode the round end *is* the barrier: nothing —
            // including the next admission — happens before it, and
            // finished members hold it exactly as they hold a lockstep
            // round's. With a finite window the floor stays at the
            // launch: survivors and bystanders advance at their own
            // cadence.
            if lockstep {
                floor = floor.max(round_end);
            }

            // Completions leave the batch at their own finish instant.
            // The prompt prefix is offered to the host tier's shared
            // store on the way out (a no-op when the tier is disabled):
            // a later request for the same problem admits warm.
            for &i in finished.iter().rev() {
                let a = group.remove(i);
                pool.release(a.idx as u64);
                let prompt_tokens = arrivals[a.idx].problem.prompt_tokens;
                tier.publish_prefix(
                    arrivals[a.idx].problem.seed,
                    prompt_tokens,
                    prompt_tokens.saturating_mul(gen_bpt),
                );
                let stats = a.run.finish();
                let answer = ftts_metrics::top1_majority(&stats.answers());
                let finished_at = a.started_at + stats.latency();
                finish_max = finish_max.max(finished_at);
                served[a.idx] = Some(ServedRequest {
                    arrived_at: a.arrived_at,
                    started_at: a.started_at,
                    finished_at,
                    preemptions: a.preemptions,
                    preempted_secs: a.preempted_secs,
                    slo: a.slo,
                    deadline: a.deadline,
                    shed: false,
                    granted_n: a.granted_n,
                    outcome: ServeOutcome { stats, answer },
                });
            }

            // Completion boundary: re-share the surviving in-flight set;
            // otherwise check demand drift (trees grow many iterations
            // between boundaries).
            if !(group.is_empty() && rest.is_empty()) {
                if !finished.is_empty() {
                    admission::reshare(batch, &mut group, &mut rest, &mut pool);
                } else if admission::elastic(batch) && admission::demand_drifted(&group, &rest) {
                    admission::rebalance_elastic(batch, &mut group, &mut rest, &mut pool);
                }
            }

            // Return survivors to the in-flight set in admission order
            // (admit_seq is assigned monotonically, so sorting restores
            // the same order the lockstep scheduler maintains).
            rest.append(&mut group);
            active = rest;
            active.sort_by_key(|a| a.admit_seq);
        }

        Ok(BatchRun {
            served: served
                .into_iter()
                .map(|r| r.expect("every request served"))
                .collect(),
            rounds,
            group_iters,
            preemptions,
            peak_reserved_bytes: pool.peak_reserved_bytes(),
            pool_bytes,
            ver_sweeps,
            ver_seqs,
            ver_busy_secs,
            kernel_faults,
            fault_retries,
            kv_loss_events,
            lost_blocks,
            shed,
            cancelled,
            degradations,
            final_reserved_bytes: pool.reserved_bytes(),
            kv_tier_hits: tier.stats().prefix_hits,
            kv_tier_demotions: tier.stats().demotions,
            kv_tier_parked_bytes: tier.stats().parked_bytes,
            kv_tier_dropped_bytes: tier_dropped + tier.stats().overflow_dropped_bytes,
            kv_tier_unparked_bytes: tier.stats().unparked_bytes,
            tenant_peak_bytes: pool
                .tenant_peaks()
                .into_iter()
                .map(|(t, b)| (t as u32, b))
                .collect(),
            timeline: ftts_metrics::TimelineOccupancy::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_engine::ModelPairing;
    use ftts_hw::GpuDevice;
    use ftts_workload::{ArrivalPattern, Dataset};

    fn server(seed: u64, memory_fraction: f64) -> TtsServer {
        let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        s.config_mut().seed = seed;
        s.config_mut().memory_fraction = memory_fraction;
        s
    }

    fn overload_arrivals(count: usize, seed: u64) -> Vec<RequestArrival> {
        let problems = Dataset::Amc2023.problems(count, seed);
        ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0)
    }

    #[test]
    fn config_presets() {
        let cfg = EventConfig::windowed(8, 0.25);
        assert!(cfg.batch.fused_verify && cfg.batch.demand_shares);
        assert_eq!(cfg.window_secs, 0.25);
        let anchor = EventConfig::lockstep(BatchConfig::continuous(4));
        assert!(anchor.window_secs.is_infinite());
    }

    #[test]
    #[should_panic(expected = "window must be non-negative")]
    fn negative_window_is_rejected() {
        let _ = EventConfig::new(BatchConfig::fifo(), -1.0);
    }

    #[test]
    fn event_scheduling_serves_everyone_within_budget() {
        let arrivals = overload_arrivals(6, 41);
        let run = EventServerSim::new(
            server(5, 0.9),
            8,
            SearchKind::BeamSearch,
            EventConfig::windowed(4, 0.2),
        )
        .run(&arrivals)
        .expect("event run");
        assert_eq!(run.served.len(), 6);
        assert!(run.peak_reserved_bytes <= run.pool_bytes);
        for r in &run.served {
            assert!(r.finished_at > r.arrived_at);
        }
        // Launches outnumber lockstep rounds (groups are narrower), but
        // every request still iterates to completion.
        assert!(run.group_iters >= run.rounds);
    }

    #[test]
    fn event_scheduling_preserves_answers() {
        // Scheduling moves clocks, never outcomes: the event-driven
        // replay must answer exactly like the lockstep replay.
        let arrivals = overload_arrivals(5, 23);
        let lockstep = crate::BatchedServerSim::new(
            server(9, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::continuous(3),
        )
        .run(&arrivals)
        .expect("lockstep");
        let event = EventServerSim::new(
            server(9, 0.9),
            8,
            SearchKind::BeamSearch,
            EventConfig::new(BatchConfig::continuous(3), 0.1),
        )
        .run(&arrivals)
        .expect("event");
        for (l, e) in lockstep.served.iter().zip(&event.served) {
            assert_eq!(l.outcome.answer, e.outcome.answer);
            assert_eq!(l.accepted_tokens(), e.accepted_tokens());
        }
    }

    #[test]
    fn finite_window_never_books_barrier_idle() {
        let arrivals = overload_arrivals(5, 61);
        let run = EventServerSim::new(
            server(3, 0.9),
            8,
            SearchKind::BeamSearch,
            EventConfig::windowed(4, 0.5),
        )
        .run(&arrivals)
        .expect("event run");
        for r in &run.served {
            assert_eq!(
                r.outcome.stats.breakdown().barrier_idle,
                0.0,
                "event-driven scheduling has no round barrier to wait at"
            );
        }
    }
}
