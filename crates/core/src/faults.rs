//! Deterministic fault injection and the SLO/robustness policy.
//!
//! Every run so far assumed a perfect device and infinite patience. This
//! module makes robustness first-class, in three pieces shared by both
//! request schedulers ([`BatchedServerSim`] and [`EventServerSim`]):
//!
//! * **A seeded fault plan** ([`FaultPlan`]) — a sorted timeline of
//!   [`FaultEvent`]s perturbing the simulated device: transient kernel
//!   failures, thermal-throttle slowdown windows, and device KV-block
//!   loss. The plan is *data*, not randomness at run time: the same
//!   `(seed, plan)` pair always replays bit-identically, and the empty
//!   plan leaves a run bit-identical to the fault-free scheduler (the
//!   equivalence anchors extend to faulty runs because both schedulers
//!   consume the plan through the same cursor at their launch
//!   boundaries).
//! * **A retry/repair model.** A kernel fault poisons the next launch:
//!   the launch's device work is partially wasted and the iteration is
//!   retried from its last committed state — the beam tree and accepted
//!   tokens live outside the device kernels, so a retry replays the
//!   same iteration deterministically with warm KV. Under
//!   [`FaultPolicy::NoHandling`] the failed kernel is re-dispatched
//!   blindly into the still-faulty device ([`RobustConfig::blind_retries`]
//!   collisions of pure device burn); with retry handling the launch
//!   pays one wasted attempt plus *exponential backoff* off-device —
//!   the device is free during backoff, which is exactly what the
//!   event-driven scheduler exploits. KV loss drops unpinned
//!   device-resident blocks (no host copy); recovery is the normal
//!   recompute-on-pin path, i.e. deterministic replay. All fault time
//!   is booked to the dedicated `LatencyBreakdown::fault` bucket, never
//!   to the busy phases — retries cannot double-bill device time.
//! * **Deadlines, SLO classes and graceful degradation**
//!   ([`FaultPolicy::Degrade`]): working-set-aware early rejection at
//!   admit time, earliest-deadline-first admission rank, timeout
//!   enforcement that cancels hopeless runs (releasing their KV
//!   reservations), and a degradation controller that shrinks the
//!   test-time-scaling budget (beam width) per SLO class under queue
//!   pressure *before* shedding load — the FastTTS-specific degradation
//!   axis.
//!
//! [`BatchedServerSim`]: crate::BatchedServerSim
//! [`EventServerSim`]: crate::EventServerSim

use ftts_metrics::SloClass;
use ftts_model::stream;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A transient kernel-launch failure. Poisons the next scheduler
    /// launch at or after the event time: part of that launch's device
    /// work is wasted and the iteration retries from its last committed
    /// state (policy-dependent — see [`FaultPolicy`]).
    KernelFault,
    /// A thermal-throttle window: every launch starting within
    /// `[at, at + duration)` runs `factor`× slower than nominal.
    Slowdown {
        /// Kernel-time multiplier, `>= 1`.
        factor: f64,
        /// Window length in seconds, `> 0`.
        duration: f64,
    },
    /// Device KV-block loss: at the next launch, every *unpinned
    /// device-resident* KV block of every resident request is dropped
    /// without a host copy. Swapped-out (preempted) requests survive —
    /// host RAM is not on the faulting device. Recovery is the normal
    /// recompute-on-pin path: deterministic replay, no accepted tokens
    /// lost.
    KvLoss,
    /// A whole-device crash with recovery after `down_for` seconds.
    /// In a single-device run this is an outage: device KV is lost
    /// (the KV-loss replay path) and the affected launch stalls
    /// off-device for the outage, booked to the fault bucket. A fleet
    /// ([`FleetSim`](crate::FleetSim)) instead handles the event at the
    /// routing layer: in-flight and queued requests on the crashed
    /// replica fail over to survivors while the device is down.
    DeviceCrash {
        /// Outage length in seconds, `> 0`; the device recovers
        /// (cold, empty KV) at `at + down_for`.
        down_for: f64,
    },
    /// A device-health degradation window: like
    /// [`FaultKind::Slowdown`] but modelling a sick replica (ECC
    /// scrubbing, a flaky PCIe link) rather than thermals. Every launch
    /// starting within `[at, at + duration)` runs `factor`× slower;
    /// health-aware fleet routing observes the inflated completion
    /// latencies and steers new work away.
    DeviceDegrade {
        /// Kernel-time multiplier, `>= 1`.
        factor: f64,
        /// Window length in seconds, `> 0`.
        duration: f64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Absolute simulated time the fault fires, seconds.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, replayable fault timeline. Construct directly from
/// events ([`FaultPlan::new`]), empty ([`FaultPlan::none`]), or as a
/// seeded storm ([`FaultPlan::storm`]). Events are kept sorted by time;
/// discrete events (kernel faults, KV losses) are consumed in order by
/// the schedulers' launch cursor, slowdown windows are queried by
/// launch instant.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Shape of a seeded fault storm (see [`FaultPlan::storm`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormConfig {
    /// Transient kernel failures to scatter over the horizon.
    pub kernel_faults: usize,
    /// Thermal-throttle windows to scatter.
    pub slowdowns: usize,
    /// Kernel-time multiplier inside each window (`>= 1`).
    pub slowdown_factor: f64,
    /// Length of each window, seconds.
    pub slowdown_secs: f64,
    /// Device KV-loss events to scatter.
    pub kv_losses: usize,
    /// Whole-device crash/recovery events to scatter (device-scoped;
    /// defaults to 0 so pre-existing storms are bit-identical).
    pub device_crashes: usize,
    /// Outage length of each crash, seconds.
    pub crash_down_secs: f64,
    /// Device-health degradation windows to scatter (defaults to 0).
    pub device_degrades: usize,
    /// Kernel-time multiplier inside each degradation window (`>= 1`).
    pub degrade_factor: f64,
    /// Length of each degradation window, seconds.
    pub degrade_secs: f64,
}

impl Default for StormConfig {
    fn default() -> Self {
        Self {
            kernel_faults: 6,
            slowdowns: 2,
            slowdown_factor: 1.5,
            slowdown_secs: 10.0,
            kv_losses: 2,
            device_crashes: 0,
            crash_down_secs: 60.0,
            device_degrades: 0,
            degrade_factor: 2.0,
            degrade_secs: 30.0,
        }
    }
}

impl FaultPlan {
    /// The empty plan: a run under it is bit-identical to the
    /// fault-free scheduler.
    pub fn none() -> Self {
        Self::default()
    }

    /// Build a plan from events (sorted by time; order among
    /// simultaneous events is preserved).
    ///
    /// # Panics
    ///
    /// Panics on malformed events: negative times, slowdown factors
    /// below 1, non-positive window durations.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        for e in &events {
            assert!(e.at >= 0.0 && e.at.is_finite(), "fault time must be finite");
            match e.kind {
                FaultKind::Slowdown { factor, duration }
                | FaultKind::DeviceDegrade { factor, duration } => {
                    assert!(factor >= 1.0, "slowdown factor must be >= 1");
                    assert!(duration > 0.0, "slowdown window must be positive");
                }
                FaultKind::DeviceCrash { down_for } => {
                    assert!(down_for > 0.0, "crash outage must be positive");
                }
                FaultKind::KernelFault | FaultKind::KvLoss => {}
            }
        }
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        Self { events }
    }

    /// A seeded fault storm: `cfg.kernel_faults` transient failures,
    /// `cfg.slowdowns` throttle windows and `cfg.kv_losses` KV-loss
    /// events scattered uniformly over `[0, horizon)`, deterministically
    /// from `seed`. The same `(seed, horizon, cfg)` always produces the
    /// same plan — reproducible chaos.
    pub fn storm(seed: u64, horizon: f64, cfg: &StormConfig) -> Self {
        assert!(horizon > 0.0, "storm horizon must be positive");
        let mut rng = stream(&[seed, 0xFA17_5708]);
        let mut events = Vec::new();
        for _ in 0..cfg.kernel_faults {
            events.push(FaultEvent {
                at: rng.gen::<f64>() * horizon,
                kind: FaultKind::KernelFault,
            });
        }
        for _ in 0..cfg.slowdowns {
            events.push(FaultEvent {
                at: rng.gen::<f64>() * horizon,
                kind: FaultKind::Slowdown {
                    factor: cfg.slowdown_factor,
                    duration: cfg.slowdown_secs,
                },
            });
        }
        for _ in 0..cfg.kv_losses {
            events.push(FaultEvent {
                at: rng.gen::<f64>() * horizon,
                kind: FaultKind::KvLoss,
            });
        }
        // Device-scoped events draw *after* the legacy kinds so a
        // config with the new knobs at zero replays the exact RNG
        // sequence of older storms — existing plans stay bit-identical.
        for _ in 0..cfg.device_crashes {
            events.push(FaultEvent {
                at: rng.gen::<f64>() * horizon,
                kind: FaultKind::DeviceCrash {
                    down_for: cfg.crash_down_secs,
                },
            });
        }
        for _ in 0..cfg.device_degrades {
            events.push(FaultEvent {
                at: rng.gen::<f64>() * horizon,
                kind: FaultKind::DeviceDegrade {
                    factor: cfg.degrade_factor,
                    duration: cfg.degrade_secs,
                },
            });
        }
        Self::new(events)
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Combined thermal-throttle multiplier for a kernel launched at
    /// `t` (product of all windows covering `t`; `1.0` outside every
    /// window).
    pub fn slowdown_factor(&self, t: f64) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if e.at > t {
                break;
            }
            if let FaultKind::Slowdown {
                factor: f,
                duration,
            }
            | FaultKind::DeviceDegrade {
                factor: f,
                duration,
            } = e.kind
            {
                if t < e.at + duration {
                    factor *= f;
                }
            }
        }
        factor
    }

    /// Crash outage windows `(at, down_for)` in the plan, in time
    /// order. [`FleetSim`](crate::FleetSim) consumes these at the
    /// routing layer (failover) after stripping them from the
    /// per-device plan via [`FaultPlan::without_crashes`].
    pub fn crash_windows(&self) -> Vec<(f64, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::DeviceCrash { down_for } => Some((e.at, down_for)),
                _ => None,
            })
            .collect()
    }

    /// The plan with every [`FaultKind::DeviceCrash`] event removed
    /// (all other events, and their order, preserved).
    pub fn without_crashes(&self) -> Self {
        Self {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| !matches!(e.kind, FaultKind::DeviceCrash { .. }))
                .collect(),
        }
    }
}

/// How the serving layer responds to faults and SLOs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPolicy {
    /// No fault handling: a failed kernel is re-dispatched blindly into
    /// the still-faulty device ([`RobustConfig::blind_retries`]
    /// immediate collisions, pure device burn, no backoff), deadlines
    /// are observed but never enforced, nothing degrades or sheds.
    NoHandling,
    /// Retry with exponential backoff from the last committed state
    /// (warm KV). No deadline enforcement, no degradation — the
    /// default, and bit-identical to [`FaultPolicy::NoHandling`] under
    /// an empty fault plan.
    #[default]
    Retry,
    /// The full robustness policy: backoff retries *plus* deadline/SLO
    /// machinery — working-set-aware early rejection, EDF admission
    /// rank, timeout cancellation of hopeless runs, and per-SLO-class
    /// degradation of the TTS budget before shedding.
    Degrade,
}

/// Fault-handling and SLO knobs, carried inside
/// [`BatchConfig`](crate::BatchConfig). The default (`Retry` policy,
/// empty fault plan) changes nothing about a fault-free run — the
/// equivalence anchors rely on that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustConfig {
    /// The response policy.
    pub policy: FaultPolicy,
    /// First retry's backoff, seconds; attempt `k` waits `2^k` times
    /// this (exponential backoff).
    pub backoff_base_secs: f64,
    /// Fraction of a launch's device time wasted per failed kernel
    /// attempt (the fault hits partway through the kernel).
    pub waste_frac: f64,
    /// [`FaultPolicy::NoHandling`] only: immediate re-dispatches burned
    /// into the still-faulty device per kernel fault.
    pub blind_retries: u32,
    /// Degradation controller: one degradation level (beam-width
    /// halving) per this many queued-or-preempted requests.
    pub degrade_queue_per_level: usize,
    /// Early rejection: shed an arrival at admission time if its
    /// deadline slack has fallen below this many seconds (0 rejects
    /// only already-expired requests).
    pub min_slack_secs: f64,
}

impl Default for RobustConfig {
    fn default() -> Self {
        Self {
            policy: FaultPolicy::default(),
            backoff_base_secs: 0.25,
            waste_frac: 0.5,
            blind_retries: 4,
            degrade_queue_per_level: 2,
            min_slack_secs: 0.0,
        }
    }
}

impl RobustConfig {
    /// The given policy with default knobs.
    pub fn with_policy(policy: FaultPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// Whether deadline/SLO machinery (rejection, EDF, cancellation,
    /// degradation) is active.
    pub fn slo_enforcement(&self) -> bool {
        self.policy == FaultPolicy::Degrade
    }
}

/// Beam width granted to a fresh request of class `slo` at degradation
/// `level` (0 = no pressure). Each level halves the width, floored per
/// class: latency-critical classes degrade deepest (a narrower search
/// finishes sooner — trading accuracy for deadline hits), batch work
/// keeps full quality and simply waits.
pub fn degraded_beams(base: usize, slo: SloClass, level: u32) -> usize {
    let floor = match slo {
        SloClass::Interactive => (base / 4).max(1),
        SloClass::Standard => (base / 2).max(1),
        SloClass::Batch => base,
    };
    (base >> level.min(8)).max(floor).max(1)
}

/// The schedulers' cursor over a plan's discrete events: pops every
/// event due at or before each launch, exactly once, in time order.
/// Both schedulers drive it from the same launch instants, which is
/// what extends the lockstep-equivalence anchors to faulty runs.
#[derive(Debug, Default, Clone)]
pub(crate) struct FaultCursor {
    next: usize,
}

impl FaultCursor {
    /// Events due at or before `t` (kernel faults and KV losses;
    /// slowdown windows are time-queried instead, via
    /// [`FaultPlan::slowdown_factor`]). Each event is returned once.
    pub(crate) fn due<'p>(&mut self, plan: &'p FaultPlan, t: f64) -> &'p [FaultEvent] {
        let start = self.next;
        let events = plan.events();
        while self.next < events.len() && events[self.next].at <= t {
            self.next += 1;
        }
        &events[start..self.next]
    }
}

/// What one launch's due faults cost, per the active policy.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct LaunchFaults {
    /// Kernel faults that hit the launch.
    pub(crate) kernel_faults: u32,
    /// Retry attempts (blind or backed-off) those faults cost.
    pub(crate) retries: u32,
    /// KV-loss events that fired.
    pub(crate) kv_losses: u32,
    /// Extra *device-busy* seconds per wasted-kernel second of the
    /// member's iteration: `waste_frac × attempts`, plus the throttle
    /// stretch `factor - 1`. Multiplied by each member's own iteration
    /// time (members of one launch share the kernel, so they share the
    /// failure).
    pub(crate) busy_stretch: f64,
    /// Of `busy_stretch`, the slice due to thermal throttle.
    pub(crate) slowdown_stretch: f64,
    /// Off-device backoff seconds (flat per member — the waiting is
    /// wall-clock, not kernel-proportional).
    pub(crate) backoff_secs: f64,
}

impl LaunchFaults {
    /// Evaluate the faults due for a launch at `t` under `robust`.
    pub(crate) fn at(
        cursor: &mut FaultCursor,
        plan: &FaultPlan,
        robust: &RobustConfig,
        t: f64,
    ) -> Self {
        let mut out = Self::default();
        if plan.is_empty() {
            return out;
        }
        for e in cursor.due(plan, t) {
            match e.kind {
                FaultKind::KernelFault => out.kernel_faults += 1,
                FaultKind::KvLoss => out.kv_losses += 1,
                // With no fleet to fail over to, a crash is an outage:
                // device KV is gone (the KV-loss replay path recovers
                // it deterministically) and the launch waits out the
                // whole downtime off-device, booked to the fault
                // bucket like backoff. Fleet runs never see this arm —
                // FleetSim strips crash events and reroutes instead.
                FaultKind::DeviceCrash { down_for } => {
                    out.kv_losses += 1;
                    out.backoff_secs += down_for;
                }
                FaultKind::Slowdown { .. } | FaultKind::DeviceDegrade { .. } => {}
            }
        }
        let slow = plan.slowdown_factor(t) - 1.0;
        out.slowdown_stretch = slow;
        out.busy_stretch = slow;
        if out.kernel_faults > 0 {
            match robust.policy {
                FaultPolicy::NoHandling => {
                    // Blind immediate re-dispatches collide with the
                    // still-faulty device: every attempt burns another
                    // wasted kernel slice, and the device is busy the
                    // whole time.
                    out.retries = out.kernel_faults * robust.blind_retries.max(1);
                    out.busy_stretch += robust.waste_frac * out.retries as f64;
                }
                FaultPolicy::Retry | FaultPolicy::Degrade => {
                    // One wasted attempt per fault, then exponential
                    // backoff clears the transient: the k-th fault of a
                    // launch waits 2^k × base off-device.
                    out.retries = out.kernel_faults;
                    out.busy_stretch += robust.waste_frac * out.kernel_faults as f64;
                    for k in 0..out.kernel_faults {
                        out.backoff_secs += robust.backoff_base_secs * f64::powi(2.0, k as i32);
                    }
                }
            }
        }
        out
    }

    /// Whether anything fired (the schedulers skip all fault
    /// bookkeeping when nothing did — the zero-fault bit-equivalence
    /// anchor).
    pub(crate) fn fired(&self) -> bool {
        self.kernel_faults > 0 || self.kv_losses > 0 || self.busy_stretch != 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.slowdown_factor(5.0), 1.0);
        let mut cursor = FaultCursor::default();
        assert!(cursor.due(&plan, 1e9).is_empty());
        let f = LaunchFaults::at(&mut cursor, &plan, &RobustConfig::default(), 3.0);
        assert!(!f.fired());
        assert_eq!(f.busy_stretch, 0.0);
        assert_eq!(f.backoff_secs, 0.0);
    }

    #[test]
    fn storms_are_deterministic_and_sorted() {
        let cfg = StormConfig::default();
        let a = FaultPlan::storm(7, 100.0, &cfg);
        let b = FaultPlan::storm(7, 100.0, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::storm(8, 100.0, &cfg));
        assert_eq!(
            a.events().len(),
            cfg.kernel_faults + cfg.slowdowns + cfg.kv_losses
        );
        for w in a.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn slowdown_windows_multiply_and_expire() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 10.0,
                kind: FaultKind::Slowdown {
                    factor: 2.0,
                    duration: 5.0,
                },
            },
            FaultEvent {
                at: 12.0,
                kind: FaultKind::Slowdown {
                    factor: 1.5,
                    duration: 5.0,
                },
            },
        ]);
        assert_eq!(plan.slowdown_factor(9.0), 1.0);
        assert_eq!(plan.slowdown_factor(11.0), 2.0);
        assert_eq!(plan.slowdown_factor(13.0), 3.0, "windows overlap");
        assert_eq!(plan.slowdown_factor(16.0), 1.5, "first expired");
        assert_eq!(plan.slowdown_factor(17.5), 1.0, "both expired");
    }

    #[test]
    fn cursor_pops_each_event_once_in_order() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 3.0,
                kind: FaultKind::KernelFault,
            },
            FaultEvent {
                at: 1.0,
                kind: FaultKind::KvLoss,
            },
            FaultEvent {
                at: 5.0,
                kind: FaultKind::KernelFault,
            },
        ]);
        let mut cursor = FaultCursor::default();
        let first = cursor.due(&plan, 3.5);
        assert_eq!(first.len(), 2, "events at 1.0 and 3.0");
        assert_eq!(first[0].kind, FaultKind::KvLoss, "sorted by time");
        assert!(cursor.due(&plan, 3.5).is_empty(), "never re-delivered");
        assert_eq!(cursor.due(&plan, 10.0).len(), 1);
    }

    #[test]
    fn backoff_is_exponential_and_blind_retries_burn_device() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 1.0,
                kind: FaultKind::KernelFault,
            },
            FaultEvent {
                at: 2.0,
                kind: FaultKind::KernelFault,
            },
        ]);
        let retry = RobustConfig::default();
        let mut cursor = FaultCursor::default();
        let f = LaunchFaults::at(&mut cursor, &plan, &retry, 5.0);
        assert_eq!(f.kernel_faults, 2);
        assert_eq!(f.retries, 2);
        // 0.25 * (2^0 + 2^1)
        assert!((f.backoff_secs - 0.75).abs() < 1e-12);
        assert!((f.busy_stretch - 2.0 * retry.waste_frac).abs() < 1e-12);

        let blind = RobustConfig::with_policy(FaultPolicy::NoHandling);
        let mut cursor = FaultCursor::default();
        let f = LaunchFaults::at(&mut cursor, &plan, &blind, 5.0);
        assert_eq!(f.retries, 2 * blind.blind_retries);
        assert_eq!(f.backoff_secs, 0.0, "no backoff, pure burn");
        assert!(f.busy_stretch > 2.0 * blind.waste_frac);
    }

    #[test]
    fn degradation_halves_with_class_floors() {
        use SloClass::*;
        assert_eq!(degraded_beams(16, Interactive, 0), 16, "no pressure");
        assert_eq!(degraded_beams(16, Interactive, 1), 8);
        assert_eq!(degraded_beams(16, Interactive, 4), 4, "floor n/4");
        assert_eq!(degraded_beams(16, Standard, 4), 8, "floor n/2");
        assert_eq!(degraded_beams(16, Batch, 4), 16, "batch never degrades");
        assert_eq!(degraded_beams(1, Interactive, 7), 1, "never below 1");
    }

    #[test]
    fn device_scoped_storms_are_deterministic_and_opt_in() {
        // Default knobs draw zero device-scoped events: pre-existing
        // (seed, horizon, cfg) storms replay bit-identically.
        let legacy = FaultPlan::storm(7, 100.0, &StormConfig::default());
        assert!(legacy.crash_windows().is_empty());
        assert_eq!(legacy.without_crashes(), legacy);

        let cfg = StormConfig {
            device_crashes: 2,
            crash_down_secs: 25.0,
            device_degrades: 1,
            degrade_factor: 3.0,
            degrade_secs: 40.0,
            ..StormConfig::default()
        };
        let a = FaultPlan::storm(7, 100.0, &cfg);
        let b = FaultPlan::storm(7, 100.0, &cfg);
        assert_eq!(a, b, "same (seed, horizon, config), same plan");
        assert_ne!(a, FaultPlan::storm(8, 100.0, &cfg));
        assert_eq!(
            a.events().len(),
            cfg.kernel_faults + cfg.slowdowns + cfg.kv_losses + 3
        );
        for w in a.events().windows(2) {
            assert!(w[0].at <= w[1].at, "plans stay sorted");
        }
        // The legacy kinds draw before the device-scoped ones, so the
        // non-crash, non-degrade slice matches the legacy storm.
        let crashes = a.crash_windows();
        assert_eq!(crashes.len(), 2);
        assert!(crashes.iter().all(|&(at, d)| at < 100.0 && d == 25.0));
        let stripped = a.without_crashes();
        assert_eq!(stripped.events().len(), a.events().len() - 2);
        assert!(stripped.crash_windows().is_empty());
    }

    #[test]
    fn crash_is_an_outage_for_a_single_device() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 4.0,
            kind: FaultKind::DeviceCrash { down_for: 30.0 },
        }]);
        let mut cursor = FaultCursor::default();
        let f = LaunchFaults::at(&mut cursor, &plan, &RobustConfig::default(), 5.0);
        assert!(f.fired());
        assert_eq!(f.kv_losses, 1, "device KV lost on crash");
        assert_eq!(f.kernel_faults, 0);
        assert!(
            (f.backoff_secs - 30.0).abs() < 1e-12,
            "waits out the outage"
        );
    }

    #[test]
    fn degrade_windows_throttle_like_slowdowns() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 10.0,
            kind: FaultKind::DeviceDegrade {
                factor: 2.5,
                duration: 5.0,
            },
        }]);
        assert_eq!(plan.slowdown_factor(9.0), 1.0);
        assert_eq!(plan.slowdown_factor(12.0), 2.5);
        assert_eq!(plan.slowdown_factor(15.5), 1.0, "window expired");
    }

    #[test]
    #[should_panic(expected = "outage must be positive")]
    fn zero_length_crashes_are_rejected() {
        let _ = FaultPlan::new(vec![FaultEvent {
            at: 0.0,
            kind: FaultKind::DeviceCrash { down_for: 0.0 },
        }]);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn speedup_windows_are_rejected() {
        let _ = FaultPlan::new(vec![FaultEvent {
            at: 0.0,
            kind: FaultKind::Slowdown {
                factor: 0.5,
                duration: 1.0,
            },
        }]);
    }
}
