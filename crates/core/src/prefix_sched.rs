//! Dynamic Prefix-Aware Scheduling (paper Sec. 4.2).
//!
//! At each iteration the scheduler receives the active reasoning paths
//! and must order them before the engine packs memory-fitting groups.
//! Modelling eviction cost as `Σ (Nodes(T_i) − P(T_i, T_{i+1}))`, and
//! with total work constant, minimizing evictions is maximizing the sum
//! of consecutive shared prefixes. The greedy invariant
//!
//! ```text
//! T_{k+1} = argmax_{c_i ∈ Q} P(c_k, c_i)
//! ```
//!
//! is locally optimal under the paper's Appendix-A assumptions, which we
//! verify with a pairwise-interchange property test. In practice (as the
//! paper notes, Sec. 5) the greedy is implemented by grouping beams that
//! share a parent while preserving the parents' relative order; the
//! general `argmax` form below subsumes that and also handles
//! mid-parent forks created by speculative truncation.

use ftts_engine::{OrderItem, OrderPolicy};
use ftts_kv::KvCache;

/// Greedy maximum-shared-prefix ordering (the paper's Dynamic
/// Prefix-Aware Scheduling).
#[derive(Debug, Clone, Default)]
pub struct PrefixAwareOrder;

impl PrefixAwareOrder {
    /// Create the policy.
    pub fn new() -> Self {
        Self
    }

    /// Sum of consecutive shared prefixes of an ordering — the surrogate
    /// objective `Score(S)` from Appendix A.2 (exposed for tests and the
    /// Fig. 18 ablation).
    pub fn score(order: &[usize], items: &[OrderItem], kv: &KvCache) -> u64 {
        order
            .windows(2)
            .map(|w| kv.shared_prefix(items[w[0]].kv, items[w[1]].kv))
            .sum()
    }
}

impl OrderPolicy for PrefixAwareOrder {
    fn name(&self) -> &'static str {
        "prefix-aware"
    }

    fn order(&mut self, items: &[OrderItem], kv: &KvCache) -> Vec<usize> {
        if items.is_empty() {
            return Vec::new();
        }
        let n = items.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        // Start from the earliest-born beam (stable across iterations,
        // preserving parents' relative order as in the paper's
        // implementation note).
        let first_pos = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| items[i].born_rank)
            .map(|(pos, _)| pos)
            .unwrap();
        let mut order = Vec::with_capacity(n);
        order.push(remaining.swap_remove(first_pos));
        while !remaining.is_empty() {
            let last = *order.last().unwrap();
            let best_pos = remaining
                .iter()
                .enumerate()
                .max_by_key(|&(_, &i)| {
                    (
                        kv.shared_prefix(items[last].kv, items[i].kv),
                        std::cmp::Reverse(items[i].born_rank),
                    )
                })
                .map(|(pos, _)| pos)
                .unwrap();
            order.push(remaining.swap_remove(best_pos));
        }
        order
    }
}

/// Adversarial ordering: each step picks the candidate sharing the
/// *least* prefix with the previous one (the "Worst-Case" baseline of
/// Fig. 18 left).
#[derive(Debug, Clone, Default)]
pub struct WorstCaseOrder;

impl WorstCaseOrder {
    /// Create the policy.
    pub fn new() -> Self {
        Self
    }
}

impl OrderPolicy for WorstCaseOrder {
    fn name(&self) -> &'static str {
        "worst-case"
    }

    fn order(&mut self, items: &[OrderItem], kv: &KvCache) -> Vec<usize> {
        if items.is_empty() {
            return Vec::new();
        }
        let n = items.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        order.push(remaining.swap_remove(0));
        while !remaining.is_empty() {
            let last = *order.last().unwrap();
            let worst_pos = remaining
                .iter()
                .enumerate()
                .min_by_key(|&(_, &i)| {
                    (
                        kv.shared_prefix(items[last].kv, items[i].kv),
                        items[i].born_rank,
                    )
                })
                .map(|(pos, _)| pos)
                .unwrap();
            order.push(remaining.swap_remove(worst_pos));
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_engine::FifoOrder;
    use ftts_kv::{KvCacheConfig, NodeId};

    /// Two parents with interleaved children (the Fig. 8 example shape).
    fn interleaved() -> (KvCache, Vec<OrderItem>) {
        let mut kv = KvCache::new(KvCacheConfig {
            block_size: 16,
            capacity_bytes: 1 << 22,
            bytes_per_token: 4,
            prefix_sharing: true,
        });
        let root = kv.root(64).unwrap();
        let pa = kv.fork(root).unwrap();
        let pb = kv.fork(root).unwrap();
        kv.pin(pa).unwrap();
        kv.pin(pb).unwrap();
        kv.extend(pa, 100).unwrap();
        kv.extend(pb, 100).unwrap();
        let mut items = Vec::new();
        // Interleave children of pa and pb, as naive branching would.
        for i in 0..6u32 {
            let parent = if i % 2 == 0 { pa } else { pb };
            let leaf = kv.fork(parent).unwrap();
            items.push(OrderItem {
                index: i as usize,
                kv: leaf,
                parent_kv: Some(parent),
                born_rank: i,
            });
        }
        (kv, items)
    }

    fn leaves(items: &[OrderItem]) -> Vec<NodeId> {
        items.iter().map(|i| i.kv).collect()
    }

    #[test]
    fn prefix_aware_groups_siblings() {
        let (kv, items) = interleaved();
        let mut policy = PrefixAwareOrder::new();
        let order = policy.order(&items, &kv);
        // After the first element, consecutive pairs must share the full
        // parent path (164 tokens) until the policy switches subtree once.
        let shared: Vec<u64> = order
            .windows(2)
            .map(|w| kv.shared_prefix(items[w[0]].kv, items[w[1]].kv))
            .collect();
        let switches = shared.iter().filter(|&&s| s == 64).count();
        assert_eq!(switches, 1, "exactly one subtree switch, got {shared:?}");
        let _ = leaves(&items);
    }

    #[test]
    fn prefix_aware_beats_fifo_and_worst_case_on_the_surrogate() {
        let (kv, items) = interleaved();
        let aware = PrefixAwareOrder::new().order(&items, &kv);
        let fifo = FifoOrder.order(&items, &kv);
        let worst = WorstCaseOrder::new().order(&items, &kv);
        let s_aware = PrefixAwareOrder::score(&aware, &items, &kv);
        let s_fifo = PrefixAwareOrder::score(&fifo, &items, &kv);
        let s_worst = PrefixAwareOrder::score(&worst, &items, &kv);
        assert!(s_aware > s_fifo, "aware {s_aware} vs fifo {s_fifo}");
        assert!(s_fifo >= s_worst, "fifo {s_fifo} vs worst {s_worst}");
    }

    #[test]
    fn orders_are_permutations() {
        let (kv, items) = interleaved();
        for policy in [
            &mut PrefixAwareOrder::new() as &mut dyn OrderPolicy,
            &mut WorstCaseOrder::new(),
        ] {
            let mut order = policy.order(&items, &kv);
            order.sort_unstable();
            assert_eq!(
                order,
                (0..items.len()).collect::<Vec<_>>(),
                "{}",
                policy.name()
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let (kv, items) = interleaved();
        let mut policy = PrefixAwareOrder::new();
        assert!(policy.order(&[], &kv).is_empty());
        assert_eq!(policy.order(&items[..1], &kv), vec![0]);
    }

    #[test]
    fn greedy_satisfies_the_paper_invariant() {
        // T_{k+1} maximizes P(c_k, ·) over the remaining queue.
        let (kv, items) = interleaved();
        let order = PrefixAwareOrder::new().order(&items, &kv);
        for k in 0..order.len() - 1 {
            let chosen = kv.shared_prefix(items[order[k]].kv, items[order[k + 1]].kv);
            for &other in &order[k + 1..] {
                let alt = kv.shared_prefix(items[order[k]].kv, items[other].kv);
                assert!(chosen >= alt, "greedy invariant violated at position {k}");
            }
        }
    }
}
