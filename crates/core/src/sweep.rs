//! Parallel evaluation harness: run independent request streams and
//! configuration sweeps across OS threads with results bit-identical to
//! sequential execution.
//!
//! # Determinism guarantees
//!
//! Every stochastic decision in the stack is drawn from a ChaCha stream
//! keyed by stable identifiers (`ftts-model::stream`): the engine mixes
//! `EngineConfig::seed` with each problem's own seed, and scheduling /
//! speculation outcomes depend only on the request's own configuration —
//! never on global mutable RNG state, wall-clock time or thread identity.
//! Two consequences, which the tests in this module assert:
//!
//! 1. **Per-request seeding is explicit.** A sweep job's results are a
//!    pure function of `(server config, problem specs, n, kind)`.
//! 2. **Parallel == sequential, bit for bit.** [`parallel_map`] assigns
//!    each input to exactly one closure invocation and returns results
//!    in input order, so [`ServerSim::run_parallel`] and [`sweep`]
//!    produce exactly the bytes a sequential loop would, regardless of
//!    worker count or interleaving. The fleet layer
//!    (`crate::fleet::FleetSim`) leans on the same property: its final
//!    per-device pass runs on [`parallel_map`] and is debug-asserted
//!    bit-identical to the sequential routing loop's cached timelines.
//!
//! # Why not rayon
//!
//! The build environment is fully offline (see `crates/vendor/`), so the
//! harness uses a small `std::thread::scope` work-stealing pool with the
//! same split-by-index semantics a `par_iter().map().collect()` would
//! have. The API surface is deliberately rayon-shaped so swapping the
//! implementation later is mechanical.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ftts_engine::EngineError;
use ftts_model::ProblemSpec;
use ftts_search::SearchKind;
use ftts_workload::RequestArrival;

use crate::server::{ServeOutcome, ServedRequest, ServerSim, TtsServer};

/// Map `f` over `items` on up to `available_parallelism` OS threads,
/// returning results in input order.
///
/// Each item is claimed by exactly one worker via an atomic cursor, so
/// `f` runs once per item no matter how many workers race; results carry
/// their input index and are re-sorted before returning. With one core
/// (or one item) this degrades gracefully to a sequential loop.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let result = f(idx, &items[idx]);
                slots.lock().expect("result mutex").push((idx, result));
            });
        }
    });
    let mut collected = slots.into_inner().expect("result mutex");
    collected.sort_by_key(|&(idx, _)| idx);
    debug_assert_eq!(collected.len(), items.len());
    collected.into_iter().map(|(_, r)| r).collect()
}

/// One cell of a configuration sweep: a server, a problem set and a
/// search configuration to evaluate.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Display label for reports (e.g. `"4090/1.5B+7B/n=64"`).
    pub label: String,
    /// The serving system under test.
    pub server: TtsServer,
    /// Problems to serve, in order.
    pub problems: Vec<ProblemSpec>,
    /// Beams per request.
    pub n: usize,
    /// Search algorithm.
    pub kind: SearchKind,
}

impl SweepJob {
    /// Serve every problem sequentially (the deterministic reference
    /// path; [`sweep`] runs this same code on a worker thread).
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`].
    pub fn run(&self) -> Result<Vec<ServeOutcome>, EngineError> {
        self.problems
            .iter()
            .map(|p| self.server.serve(p, self.n, self.kind))
            .collect()
    }
}

/// Evaluate sweep jobs in parallel. `results[i]` is exactly what
/// `jobs[i].run()` returns — see the module docs for why.
pub fn sweep(jobs: &[SweepJob]) -> Vec<Result<Vec<ServeOutcome>, EngineError>> {
    parallel_map(jobs, |_, job| job.run())
}

impl ServerSim {
    /// Replay independent arrival streams in parallel, one stream per
    /// work item. `results[i]` is bit-identical to `self.run(&streams[i])`:
    /// streams share no state (each request stream has its own FIFO
    /// clock), so this models independent replicas — e.g. the same
    /// server sweep-tested under eight traffic traces at once.
    ///
    /// Errors are reported per stream rather than short-circuiting, so a
    /// sweep over aggressive memory budgets still yields every feasible
    /// stream's results.
    pub fn run_parallel(
        &self,
        streams: &[Vec<RequestArrival>],
    ) -> Vec<Result<Vec<ServedRequest>, EngineError>> {
        parallel_map(streams, |_, stream| self.run(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_engine::ModelPairing;
    use ftts_hw::GpuDevice;
    use ftts_workload::{ArrivalPattern, Dataset};

    fn server(seed: u64) -> TtsServer {
        let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        s.config_mut().seed = seed;
        s
    }

    #[test]
    fn parallel_map_preserves_order_and_coverage() {
        let items: Vec<u64> = (0..97).collect();
        let out = parallel_map(&items, |i, &x| (i as u64, x * 2));
        assert_eq!(out.len(), 97);
        for (i, &(idx, doubled)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(doubled, items[i] * 2);
        }
        assert!(parallel_map::<u8, u8, _>(&[], |_, &x| x).is_empty());
    }

    #[test]
    fn run_parallel_is_bit_identical_to_sequential() {
        let sim = ServerSim::new(server(3), 8, SearchKind::BeamSearch);
        let streams: Vec<Vec<RequestArrival>> = (0..4)
            .map(|i| {
                ArrivalPattern::Poisson { rate: 0.05 }
                    .schedule(&Dataset::Amc2023.problems(2, 100 + i), i)
            })
            .collect();
        let parallel = sim.run_parallel(&streams);
        for (stream, par) in streams.iter().zip(&parallel) {
            let seq = sim.run(stream).unwrap();
            let par = par.as_ref().unwrap();
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(par) {
                assert_eq!(s.arrived_at, p.arrived_at);
                assert_eq!(s.started_at, p.started_at);
                assert_eq!(s.finished_at, p.finished_at);
                assert_eq!(s.outcome.answer, p.outcome.answer);
                assert_eq!(
                    s.outcome.stats.decoded_tokens,
                    p.outcome.stats.decoded_tokens
                );
                assert_eq!(
                    s.outcome.stats.completion.latency,
                    p.outcome.stats.completion.latency
                );
                assert_eq!(s.outcome.stats.gen_cache, p.outcome.stats.gen_cache);
            }
        }
    }

    #[test]
    fn sweep_matches_sequential_jobs() {
        let jobs: Vec<SweepJob> = [8usize, 16]
            .iter()
            .map(|&n| SweepJob {
                label: format!("n={n}"),
                server: server(7),
                problems: Dataset::Aime2024.problems(2, 11),
                n,
                kind: SearchKind::BeamSearch,
            })
            .collect();
        let parallel = sweep(&jobs);
        for (job, par) in jobs.iter().zip(&parallel) {
            let seq = job.run().unwrap();
            let par = par.as_ref().unwrap();
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(par) {
                assert_eq!(s.answer, p.answer);
                assert_eq!(s.goodput(), p.goodput());
                assert_eq!(s.latency(), p.latency());
            }
        }
    }

    #[test]
    fn sweep_reports_errors_per_job() {
        let mut starved = server(1);
        starved.config_mut().memory_fraction = 0.26; // weights alone exceed this
        let jobs = vec![
            SweepJob {
                label: "ok".into(),
                server: server(1),
                problems: Dataset::Amc2023.problems(1, 5),
                n: 8,
                kind: SearchKind::BeamSearch,
            },
            SweepJob {
                label: "starved".into(),
                server: starved,
                problems: Dataset::Amc2023.problems(1, 5),
                n: 8,
                kind: SearchKind::BeamSearch,
            },
        ];
        let results = sweep(&jobs);
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "infeasible budget must fail loudly");
    }
}
