//! Correctness anchors for the host-RAM KV tier (PR 7).
//!
//! * **Capacity-0 inertness**: a disabled tier (`host_capacity_bytes ==
//!   0`, any other knob values) reproduces the tier-free run
//!   bit-for-bit under both schedulers, fault-free and faulted — the
//!   schedulers' legacy code paths are gated on `HostTier::enabled`
//!   alone, and every tier counter stays zero.
//! * **Swap-down conserves tokens**: with an ample tier, preempted KV
//!   parks in host RAM and restores on readmission; answers and
//!   accepted-token counts match the preemption-free FIFO replay
//!   exactly, and no bytes are dropped.
//! * **Tiny tier degrades to drop-and-recompute**: a starved tier
//!   forces preemption overflow to drop; the run still serves everyone
//!   with the same answers (recompute is deterministic replay), it just
//!   pays recompute instead of swap traffic.
//! * **Lockstep equivalence extends to the tier**: both schedulers
//!   consume the tier at the same boundaries (admission, preemption,
//!   cancellation, completion), so the infinite-window event scheduler
//!   stays bit-identical to the lockstep scheduler with the tier
//!   enabled — including under an injected fault storm.

use ftts_core::{
    BatchConfig, BatchRun, BatchedServerSim, EventConfig, EventServerSim, FaultPlan, KvTierConfig,
    ServerSim, StormConfig, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

/// The PR-2 preemption fixture: four deep AIME searches bursting into a
/// tight pool, so equal shares shrink until someone swaps out.
fn pressured_arrivals() -> Vec<RequestArrival> {
    let problems = Dataset::Aime2024.problems(4, 51);
    ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0)
}

fn assert_runs_identical(label: &str, a: &BatchRun, b: &BatchRun) {
    assert_eq!(a.served.len(), b.served.len(), "{label}: request counts");
    for (x, y) in a.served.iter().zip(&b.served) {
        assert_eq!(x.started_at, y.started_at, "{label}: admission instants");
        assert_eq!(x.finished_at, y.finished_at, "{label}: completion instants");
        assert_eq!(x.preemptions, y.preemptions, "{label}: preemption counts");
        assert_eq!(x.preempted_secs, y.preempted_secs, "{label}: pause time");
        assert_eq!(x.shed, y.shed, "{label}: shed flags");
        assert_eq!(x.outcome.answer, y.outcome.answer, "{label}: answers");
        let (xs, ys) = (&x.outcome.stats, &y.outcome.stats);
        assert_eq!(
            xs.completion.latency, ys.completion.latency,
            "{label}: latency"
        );
        assert_eq!(
            xs.completion.breakdown, ys.completion.breakdown,
            "{label}: breakdown (incl. swap bucket)"
        );
        assert_eq!(xs.decoded_tokens, ys.decoded_tokens, "{label}: decoded");
        assert_eq!(xs.verified_tokens, ys.verified_tokens, "{label}: verified");
    }
    assert_eq!(a.rounds, b.rounds, "{label}: round counts");
    assert_eq!(a.group_iters, b.group_iters, "{label}: group iterations");
    assert_eq!(a.preemptions, b.preemptions, "{label}: preemptions");
    assert_eq!(
        a.peak_reserved_bytes, b.peak_reserved_bytes,
        "{label}: peak reservations"
    );
    assert_eq!(a.kernel_faults, b.kernel_faults, "{label}: kernel faults");
    assert_eq!(a.lost_blocks, b.lost_blocks, "{label}: lost blocks");
    assert_eq!(a.shed, b.shed, "{label}: shed counts");
    assert_eq!(a.cancelled, b.cancelled, "{label}: cancellations");
    assert_eq!(a.kv_tier_hits, b.kv_tier_hits, "{label}: tier hits");
    assert_eq!(
        a.kv_tier_demotions, b.kv_tier_demotions,
        "{label}: tier demotions"
    );
    assert_eq!(
        a.kv_tier_parked_bytes, b.kv_tier_parked_bytes,
        "{label}: tier parked bytes"
    );
    assert_eq!(
        a.kv_tier_dropped_bytes, b.kv_tier_dropped_bytes,
        "{label}: tier dropped bytes"
    );
    assert_eq!(
        a.final_reserved_bytes, b.final_reserved_bytes,
        "{label}: residual reservations"
    );
}

// ---------------------------------------------------------------------
// Anchor 1: a zero-capacity tier is bit-inert under both schedulers,
// fault-free and faulted.
// ---------------------------------------------------------------------

#[test]
fn capacity_zero_tier_is_bit_inert() {
    let arrivals = pressured_arrivals();
    // Disabled tier with non-default secondary knobs: still capacity 0,
    // so every scheduler must take its legacy path unchanged.
    let disabled = KvTierConfig {
        host_capacity_bytes: 0,
        pin_hot_after: 7,
    };
    let base = BatchConfig::continuous(4);
    let tiered = base.with_tier(disabled);
    let plan = FaultPlan::storm(7, 60.0, &StormConfig::default());

    for (label, plan) in [("fault-free", FaultPlan::none()), ("faulted", plan)] {
        let plain = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, base)
            .run_faulted(&arrivals, &plan)
            .expect("plain run");
        let gated = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, tiered)
            .run_faulted(&arrivals, &plan)
            .expect("tiered run");
        assert_runs_identical(&format!("lockstep {label}"), &plain, &gated);
        assert_eq!(gated.kv_tier_hits, 0, "{label}: no hits on a disabled tier");
        assert_eq!(gated.kv_tier_parked_bytes, 0, "{label}: nothing parks");
        assert_eq!(gated.kv_tier_dropped_bytes, 0, "{label}: nothing drops");

        let plain_ev = EventServerSim::new(
            server(13, 0.30),
            24,
            SearchKind::BeamSearch,
            EventConfig::new(base, 0.2),
        )
        .run_faulted(&arrivals, &plan)
        .expect("plain event run");
        let gated_ev = EventServerSim::new(
            server(13, 0.30),
            24,
            SearchKind::BeamSearch,
            EventConfig::new(tiered, 0.2),
        )
        .run_faulted(&arrivals, &plan)
        .expect("tiered event run");
        assert_runs_identical(&format!("event {label}"), &plain_ev, &gated_ev);
    }
}

// ---------------------------------------------------------------------
// Anchor 2: ample-tier swap-down conserves every accepted token.
// ---------------------------------------------------------------------

#[test]
fn ample_tier_parks_preempted_kv_and_conserves_tokens() {
    let arrivals = pressured_arrivals();
    let cfg = BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(1 << 30));
    let run = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, cfg)
        .run(&arrivals)
        .expect("pressured run completes");
    assert!(run.preemptions > 0, "pressure must trigger preemption");
    assert!(
        run.kv_tier_parked_bytes > 0,
        "preempted KV must park in the host tier"
    );
    assert_eq!(
        run.kv_tier_dropped_bytes, 0,
        "an ample tier never drops preempted KV"
    );
    // Every byte offered to the tier was accepted or returned: the run
    // drained, so nothing stays parked.
    let fifo = ServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch)
        .run(&arrivals)
        .expect("fifo replay");
    for (r, f) in run.served.iter().zip(&fifo) {
        assert_eq!(
            r.accepted_tokens(),
            f.accepted_tokens(),
            "swap-down/restore must not lose generated tokens"
        );
        assert_eq!(r.outcome.answer, f.outcome.answer, "answers");
    }
}

// ---------------------------------------------------------------------
// Anchor 3: a starved tier degrades to drop-and-recompute, correctly.
// ---------------------------------------------------------------------

#[test]
fn starved_tier_drops_overflow_but_still_serves_everyone() {
    let arrivals = pressured_arrivals();
    // One KV block of host capacity: parks are all but rejected, so
    // preemption overflow genuinely drops and readmission recomputes.
    let cfg = BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(4096));
    let run = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, cfg)
        .run(&arrivals)
        .expect("starved run completes");
    assert!(run.preemptions > 0, "pressure must trigger preemption");
    assert!(
        run.kv_tier_dropped_bytes > 0,
        "a starved tier must drop preemption overflow"
    );
    let fifo = ServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch)
        .run(&arrivals)
        .expect("fifo replay");
    for (r, f) in run.served.iter().zip(&fifo) {
        assert_eq!(
            r.accepted_tokens(),
            f.accepted_tokens(),
            "recompute is deterministic replay — tokens survive the drop"
        );
        assert_eq!(r.outcome.answer, f.outcome.answer, "answers");
    }
}

// ---------------------------------------------------------------------
// Anchor 4: lockstep equivalence extends to tier-enabled (and faulted)
// runs.
// ---------------------------------------------------------------------

#[test]
fn tiered_runs_keep_lockstep_equivalence() {
    let arrivals = pressured_arrivals();
    let cfg = BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(1 << 28));
    for (label, plan) in [
        ("fault-free", FaultPlan::none()),
        (
            "faulted",
            FaultPlan::storm(7, 60.0, &StormConfig::default()),
        ),
    ] {
        let batch = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, cfg)
            .run_faulted(&arrivals, &plan)
            .expect("batch run");
        let event = EventServerSim::new(
            server(13, 0.30),
            24,
            SearchKind::BeamSearch,
            EventConfig::lockstep(cfg),
        )
        .run_faulted(&arrivals, &plan)
        .expect("event run");
        assert!(batch.preemptions > 0, "{label}: fixture must preempt");
        assert_runs_identical(&format!("tiered {label}"), &batch, &event);
    }
}
