//! Correctness anchors for the host-RAM KV tier (PR 7).
//!
//! * **Capacity-0 inertness**: a disabled tier (`host_capacity_bytes ==
//!   0`, any other knob values) reproduces the tier-free run
//!   bit-for-bit under both schedulers, fault-free and faulted — the
//!   schedulers' legacy code paths are gated on `HostTier::enabled`
//!   alone, and every tier counter stays zero.
//! * **Swap-down conserves tokens**: with an ample tier, preempted KV
//!   parks in host RAM and restores on readmission; answers and
//!   accepted-token counts match the preemption-free FIFO replay
//!   exactly, and no bytes are dropped.
//! * **Tiny tier degrades to drop-and-recompute**: a starved tier
//!   forces preemption overflow to drop; the run still serves everyone
//!   with the same answers (recompute is deterministic replay), it just
//!   pays recompute instead of swap traffic.
//! * **Lockstep equivalence extends to the tier**: both schedulers
//!   consume the tier at the same boundaries (admission, preemption,
//!   cancellation, completion), so the infinite-window event scheduler
//!   stays bit-identical to the lockstep scheduler with the tier
//!   enabled — including under an injected fault storm.

use ftts_core::{
    BatchConfig, BatchRun, BatchedServerSim, EventConfig, EventServerSim, FaultPlan, FaultPolicy,
    KvTierConfig, RobustConfig, RunDirectives, ServerSim, StormConfig, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::SloClass;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

/// The PR-2 preemption fixture: four deep AIME searches bursting into a
/// tight pool, so equal shares shrink until someone swaps out.
fn pressured_arrivals() -> Vec<RequestArrival> {
    let problems = Dataset::Aime2024.problems(4, 51);
    ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0)
}

fn assert_runs_identical(label: &str, a: &BatchRun, b: &BatchRun) {
    assert_eq!(a.served.len(), b.served.len(), "{label}: request counts");
    for (x, y) in a.served.iter().zip(&b.served) {
        assert_eq!(x.started_at, y.started_at, "{label}: admission instants");
        assert_eq!(x.finished_at, y.finished_at, "{label}: completion instants");
        assert_eq!(x.preemptions, y.preemptions, "{label}: preemption counts");
        assert_eq!(x.preempted_secs, y.preempted_secs, "{label}: pause time");
        assert_eq!(x.shed, y.shed, "{label}: shed flags");
        assert_eq!(x.outcome.answer, y.outcome.answer, "{label}: answers");
        let (xs, ys) = (&x.outcome.stats, &y.outcome.stats);
        assert_eq!(
            xs.completion.latency, ys.completion.latency,
            "{label}: latency"
        );
        assert_eq!(
            xs.completion.breakdown, ys.completion.breakdown,
            "{label}: breakdown (incl. swap bucket)"
        );
        assert_eq!(xs.decoded_tokens, ys.decoded_tokens, "{label}: decoded");
        assert_eq!(xs.verified_tokens, ys.verified_tokens, "{label}: verified");
    }
    assert_eq!(a.rounds, b.rounds, "{label}: round counts");
    assert_eq!(a.group_iters, b.group_iters, "{label}: group iterations");
    assert_eq!(a.preemptions, b.preemptions, "{label}: preemptions");
    assert_eq!(
        a.peak_reserved_bytes, b.peak_reserved_bytes,
        "{label}: peak reservations"
    );
    assert_eq!(a.kernel_faults, b.kernel_faults, "{label}: kernel faults");
    assert_eq!(a.lost_blocks, b.lost_blocks, "{label}: lost blocks");
    assert_eq!(a.shed, b.shed, "{label}: shed counts");
    assert_eq!(a.cancelled, b.cancelled, "{label}: cancellations");
    assert_eq!(a.kv_tier_hits, b.kv_tier_hits, "{label}: tier hits");
    assert_eq!(
        a.kv_tier_demotions, b.kv_tier_demotions,
        "{label}: tier demotions"
    );
    assert_eq!(
        a.kv_tier_parked_bytes, b.kv_tier_parked_bytes,
        "{label}: tier parked bytes"
    );
    assert_eq!(
        a.kv_tier_dropped_bytes, b.kv_tier_dropped_bytes,
        "{label}: tier dropped bytes"
    );
    assert_eq!(
        a.final_reserved_bytes, b.final_reserved_bytes,
        "{label}: residual reservations"
    );
}

// ---------------------------------------------------------------------
// Anchor 1: a zero-capacity tier is bit-inert under both schedulers,
// fault-free and faulted.
// ---------------------------------------------------------------------

#[test]
fn capacity_zero_tier_is_bit_inert() {
    let arrivals = pressured_arrivals();
    // Disabled tier with non-default secondary knobs: still capacity 0,
    // so every scheduler must take its legacy path unchanged.
    let disabled = KvTierConfig {
        host_capacity_bytes: 0,
        pin_hot_after: 7,
    };
    let base = BatchConfig::continuous(4);
    let tiered = base.with_tier(disabled);
    let plan = FaultPlan::storm(7, 60.0, &StormConfig::default());

    for (label, plan) in [("fault-free", FaultPlan::none()), ("faulted", plan)] {
        let plain = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, base)
            .run_faulted(&arrivals, &plan)
            .expect("plain run");
        let gated = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, tiered)
            .run_faulted(&arrivals, &plan)
            .expect("tiered run");
        assert_runs_identical(&format!("lockstep {label}"), &plain, &gated);
        assert_eq!(gated.kv_tier_hits, 0, "{label}: no hits on a disabled tier");
        assert_eq!(gated.kv_tier_parked_bytes, 0, "{label}: nothing parks");
        assert_eq!(gated.kv_tier_dropped_bytes, 0, "{label}: nothing drops");

        let plain_ev = EventServerSim::new(
            server(13, 0.30),
            24,
            SearchKind::BeamSearch,
            EventConfig::new(base, 0.2),
        )
        .run_faulted(&arrivals, &plan)
        .expect("plain event run");
        let gated_ev = EventServerSim::new(
            server(13, 0.30),
            24,
            SearchKind::BeamSearch,
            EventConfig::new(tiered, 0.2),
        )
        .run_faulted(&arrivals, &plan)
        .expect("tiered event run");
        assert_runs_identical(&format!("event {label}"), &plain_ev, &gated_ev);
    }
}

// ---------------------------------------------------------------------
// Anchor 2: ample-tier swap-down conserves every accepted token.
// ---------------------------------------------------------------------

#[test]
fn ample_tier_parks_preempted_kv_and_conserves_tokens() {
    let arrivals = pressured_arrivals();
    let cfg = BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(1 << 30));
    let run = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, cfg)
        .run(&arrivals)
        .expect("pressured run completes");
    assert!(run.preemptions > 0, "pressure must trigger preemption");
    assert!(
        run.kv_tier_parked_bytes > 0,
        "preempted KV must park in the host tier"
    );
    assert_eq!(
        run.kv_tier_dropped_bytes, 0,
        "an ample tier never drops preempted KV"
    );
    // Every byte offered to the tier was accepted or returned: the run
    // drained, so nothing stays parked.
    let fifo = ServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch)
        .run(&arrivals)
        .expect("fifo replay");
    for (r, f) in run.served.iter().zip(&fifo) {
        assert_eq!(
            r.accepted_tokens(),
            f.accepted_tokens(),
            "swap-down/restore must not lose generated tokens"
        );
        assert_eq!(r.outcome.answer, f.outcome.answer, "answers");
    }
}

// ---------------------------------------------------------------------
// Anchor 3: a starved tier degrades to drop-and-recompute, correctly.
// ---------------------------------------------------------------------

#[test]
fn starved_tier_drops_overflow_but_still_serves_everyone() {
    let arrivals = pressured_arrivals();
    // One KV block of host capacity: parks are all but rejected, so
    // preemption overflow genuinely drops and readmission recomputes.
    let cfg = BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(4096));
    let run = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, cfg)
        .run(&arrivals)
        .expect("starved run completes");
    assert!(run.preemptions > 0, "pressure must trigger preemption");
    assert!(
        run.kv_tier_dropped_bytes > 0,
        "a starved tier must drop preemption overflow"
    );
    let fifo = ServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch)
        .run(&arrivals)
        .expect("fifo replay");
    for (r, f) in run.served.iter().zip(&fifo) {
        assert_eq!(
            r.accepted_tokens(),
            f.accepted_tokens(),
            "recompute is deterministic replay — tokens survive the drop"
        );
        assert_eq!(r.outcome.answer, f.outcome.answer, "answers");
    }
}

// ---------------------------------------------------------------------
// Regression (PR 8): a request cancelled while its KV is parked in the
// host tier must unpark-and-drop — tier usage returns to its
// pre-request level instead of stranding parked bytes forever.
// ---------------------------------------------------------------------

#[test]
fn directive_cancel_while_parked_reclaims_tier_bytes() {
    let arrivals = pressured_arrivals();
    let cfg = BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(1 << 30));
    // The burst preempts the youngest request almost immediately; its
    // KV parks in the tier and stays parked until a completion frees
    // device share — hundreds of seconds away. Cancelling it at t=60
    // (a hedge-loser / crash-failover directive) hits the parked
    // window.
    let directives = RunDirectives {
        cancels: vec![(2, 60.0)],
        prewarms: Vec::new(),
    };
    let run = EventServerSim::new(
        server(13, 0.30),
        24,
        SearchKind::BeamSearch,
        EventConfig::lockstep(cfg),
    )
    .run_directed(&arrivals, &FaultPlan::none(), &directives)
    .expect("directed run");
    assert!(run.preemptions > 0, "fixture must preempt");
    assert!(run.kv_tier_parked_bytes > 0, "preempted KV must park");
    let victim = &run.served[2];
    assert!(victim.shed, "the directed cancel must shed request 2");
    assert!(
        victim.preemptions >= 1,
        "request 2 must have been preempted (parked) before its cancel"
    );
    assert_eq!(
        run.kv_tier_unparked_bytes, run.kv_tier_parked_bytes,
        "every parked byte must be reclaimed — cancellation unparks-and-drops"
    );
    assert_eq!(run.final_reserved_bytes, 0, "device pool fully released");
    // Survivors are untouched: same answers as the directive-free run.
    let base = EventServerSim::new(
        server(13, 0.30),
        24,
        SearchKind::BeamSearch,
        EventConfig::lockstep(cfg),
    )
    .run(&arrivals)
    .expect("baseline run");
    for idx in [0usize, 1, 3] {
        assert_eq!(
            run.served[idx].outcome.answer, base.served[idx].outcome.answer,
            "cancelling a parked bystander must not change survivor answers"
        );
    }
}

#[test]
fn deadline_cancel_while_parked_reclaims_tier_bytes() {
    // Same parked window, but the cancellation comes from the Degrade
    // policy's deadline sweep instead of an external directive. The
    // whole burst runs in the Batch class (full beam widths — the
    // degradation controller never shrinks the working set away from
    // the preemption pressure) and only the victim carries a deadline
    // that expires inside its parked window.
    let mut arrivals = pressured_arrivals();
    for a in arrivals.iter_mut() {
        *a = a.clone().with_slo(SloClass::Batch, f64::INFINITY);
    }
    arrivals[2] = arrivals[2].clone().with_slo(SloClass::Batch, 60.0);
    let cfg = BatchConfig::continuous(4)
        .with_tier(KvTierConfig::with_capacity(1 << 30))
        .with_robust(RobustConfig::with_policy(FaultPolicy::Degrade));
    let run = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, cfg)
        .run(&arrivals)
        .expect("degrade run");
    assert!(run.kv_tier_parked_bytes > 0, "preempted KV must park");
    assert!(run.cancelled >= 1, "the deadline sweep must cancel");
    let victim = &run.served[2];
    assert!(victim.shed, "the deadline must shed request 2");
    assert!(
        victim.preemptions >= 1,
        "request 2 must have been preempted (parked) before its deadline"
    );
    assert_eq!(
        run.kv_tier_unparked_bytes, run.kv_tier_parked_bytes,
        "deadline cancellation of a parked run must unpark its bytes"
    );
}

// ---------------------------------------------------------------------
// Anchor 4: lockstep equivalence extends to tier-enabled (and faulted)
// runs.
// ---------------------------------------------------------------------

#[test]
fn tiered_runs_keep_lockstep_equivalence() {
    let arrivals = pressured_arrivals();
    let cfg = BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(1 << 28));
    for (label, plan) in [
        ("fault-free", FaultPlan::none()),
        (
            "faulted",
            FaultPlan::storm(7, 60.0, &StormConfig::default()),
        ),
    ] {
        let batch = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, cfg)
            .run_faulted(&arrivals, &plan)
            .expect("batch run");
        let event = EventServerSim::new(
            server(13, 0.30),
            24,
            SearchKind::BeamSearch,
            EventConfig::lockstep(cfg),
        )
        .run_faulted(&arrivals, &plan)
        .expect("event run");
        assert!(batch.preemptions > 0, "{label}: fixture must preempt");
        assert_runs_identical(&format!("tiered {label}"), &batch, &event);
    }
}
