//! Lockstep equivalence: `BatchedServerSim` with `max_batch = 1` and
//! mid-flight admission disabled must reproduce `ServerSim::run`
//! bit-identically — outcomes, latencies and eviction stats — over the
//! existing arrival fixtures. This pins the continuous-batching
//! scheduler to the known-good FIFO path before any batching is turned
//! on.

use ftts_core::{BatchConfig, BatchedServerSim, ServedRequest, ServerSim, TtsServer};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

fn server(seed: u64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s
}

fn assert_bit_identical(fifo: &[ServedRequest], batched: &[ServedRequest]) {
    assert_eq!(fifo.len(), batched.len());
    for (f, b) in fifo.iter().zip(batched) {
        assert_eq!(f.arrived_at, b.arrived_at);
        assert_eq!(f.started_at, b.started_at, "admission instants must match");
        assert_eq!(
            f.finished_at, b.finished_at,
            "completion instants must match"
        );
        assert_eq!(b.preemptions, 0, "batch-1 FIFO never preempts");
        assert_eq!(b.preempted_secs, 0.0);
        let (fs, bs) = (&f.outcome.stats, &b.outcome.stats);
        assert_eq!(f.outcome.answer, b.outcome.answer);
        assert_eq!(fs.completion.latency, bs.completion.latency);
        assert_eq!(fs.completion.breakdown, bs.completion.breakdown);
        assert_eq!(fs.iterations, bs.iterations);
        assert_eq!(fs.decoded_tokens, bs.decoded_tokens);
        assert_eq!(fs.verified_tokens, bs.verified_tokens);
        assert_eq!(fs.spec, bs.spec, "speculation counters must match");
        assert_eq!(fs.gen_cache, bs.gen_cache, "gen eviction stats must match");
        assert_eq!(fs.ver_cache, bs.ver_cache, "ver eviction stats must match");
        assert_eq!(fs.beams.len(), bs.beams.len());
        for (x, y) in fs.beams.iter().zip(&bs.beams) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.completion_time, y.completion_time);
            assert_eq!(x.answer, y.answer);
            assert_eq!(x.score, y.score);
        }
    }
}

fn check_pattern_with(seed: u64, arrivals: &[RequestArrival], n: usize, config: BatchConfig) {
    let fifo = ServerSim::new(server(seed), n, SearchKind::BeamSearch)
        .run(arrivals)
        .expect("fifo run");
    let batched = BatchedServerSim::new(server(seed), n, SearchKind::BeamSearch, config)
        .run(arrivals)
        .expect("batched run");
    assert_bit_identical(&fifo, &batched.served);
    assert_eq!(batched.preemptions, 0);
    assert!(batched.peak_reserved_bytes <= batched.pool_bytes);
}

fn check_pattern(seed: u64, arrivals: &[RequestArrival], n: usize) {
    check_pattern_with(seed, arrivals, n, BatchConfig::fifo());
}

#[test]
fn lockstep_burst_fixture() {
    let problems = Dataset::Amc2023.problems(3, 9);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    check_pattern(0, &arrivals, 8);
}

#[test]
fn lockstep_poisson_fixture() {
    let problems = Dataset::Amc2023.problems(4, 21);
    let arrivals = ArrivalPattern::Poisson { rate: 0.05 }.schedule(&problems, 5);
    check_pattern(3, &arrivals, 8);
}

#[test]
fn lockstep_interactive_fixture() {
    let problems = Dataset::Aime2024.problems(2, 13);
    let arrivals = ArrivalPattern::Interactive.schedule(&problems, 0);
    check_pattern(7, &arrivals, 8);
}

#[test]
fn lockstep_uniform_overload_fixture() {
    // Overload: arrivals far faster than service. FIFO queues them; the
    // batch-1 scheduler must queue identically.
    let problems = Dataset::Amc2023.problems(3, 33);
    let arrivals = ArrivalPattern::Uniform { interval: 0.5 }.schedule(&problems, 0);
    check_pattern(11, &arrivals, 8);
}

#[test]
fn lockstep_survives_the_phase_split_extras_at_batch1() {
    // The PR-3 features must be no-ops at batch 1: a fused sweep over
    // one participant degenerates to that request's own solo sweep, and
    // a demand-proportional rebalance of a single holder hands it the
    // whole pool — exactly the equal split. Bit-for-bit both ways.
    let problems = Dataset::Amc2023.problems(3, 9);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    let fused = BatchConfig {
        fused_verify: true,
        ..BatchConfig::fifo()
    };
    check_pattern_with(0, &arrivals, 8, fused);
    let elastic = BatchConfig {
        fused_verify: true,
        demand_shares: true,
        ..BatchConfig::fifo()
    };
    check_pattern_with(0, &arrivals, 8, elastic);
}

#[test]
fn lockstep_holds_for_baseline_server_too() {
    // The vLLM baseline path (random order, static split, no spec).
    let problems = Dataset::Amc2023.problems(3, 17);
    let arrivals = ArrivalPattern::Burst { at: 2.0 }.schedule(&problems, 0);
    let base = TtsServer::vllm_baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let fifo = ServerSim::new(base.clone(), 8, SearchKind::BeamSearch)
        .run(&arrivals)
        .expect("fifo");
    let batched = BatchedServerSim::new(base, 8, SearchKind::BeamSearch, BatchConfig::fifo())
        .run(&arrivals)
        .expect("batched");
    assert_bit_identical(&fifo, &batched.served);
}
