//! Scheduler invariants of `BatchedServerSim` under randomized
//! arrivals, batch caps and pool sizes:
//!
//! 1. KV reservations never exceed the pool budget (the `PoolBudget`
//!    ledger's high-water mark stays within the device budget).
//! 2. Every admitted request eventually completes, with causally
//!    ordered timestamps and non-empty outcomes.
//! 3. Preempted requests lose no accepted tokens (also asserted inside
//!    the scheduler at completion), and scheduling never changes
//!    *outcomes* — answers and accepted tokens match the FIFO replay of
//!    the same stream, because batching may only move clocks and
//!    memory traffic.

use ftts_core::{BatchConfig, BatchedServerSim, ServerSim, TtsServer};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset};
use proptest::prelude::*;

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scheduler_invariants_hold(
        count in 2usize..5,
        max_batch in 1usize..5,
        interval in prop::sample::select(vec![0.5f64, 2.0, 20.0]),
        fraction in prop::sample::select(vec![0.33f64, 0.5, 0.9]),
        n in prop::sample::select(vec![4usize, 8]),
        seed in 0u64..1000,
    ) {
        let problems = Dataset::Amc2023.problems(count, seed);
        let arrivals = ArrivalPattern::Uniform { interval }.schedule(&problems, seed);
        let batched = BatchedServerSim::new(
            server(seed, fraction),
            n,
            SearchKind::BeamSearch,
            BatchConfig::continuous(max_batch),
        )
        .run(&arrivals)
        .expect("batched run completes");

        // (1) The pool is never overcommitted.
        prop_assert!(batched.peak_reserved_bytes <= batched.pool_bytes);

        // (2) Everyone admitted completes, in causal order.
        prop_assert_eq!(batched.served.len(), arrivals.len());
        for (r, a) in batched.served.iter().zip(&arrivals) {
            prop_assert_eq!(r.arrived_at, a.at);
            prop_assert!(r.started_at >= r.arrived_at);
            prop_assert!(r.finished_at >= r.started_at);
            prop_assert!(!r.outcome.stats.beams.is_empty());
            prop_assert!(r.outcome.stats.decoded_tokens > 0);
            prop_assert!(r.preempted_secs >= 0.0);
        }

        // (3) Scheduling moves clocks, never outcomes: answers and
        // accepted tokens match the preemption-free FIFO replay bit for
        // bit — which is exactly what "preemption loses no accepted
        // tokens" means (FIFO never preempts, so any loss would show as
        // a token mismatch here).
        let fifo = ServerSim::new(server(seed, fraction), n, SearchKind::BeamSearch)
            .run(&arrivals)
            .expect("fifo run completes");
        for (b, f) in batched.served.iter().zip(&fifo) {
            prop_assert_eq!(b.outcome.answer, f.outcome.answer);
            prop_assert_eq!(b.accepted_tokens(), f.accepted_tokens());
            prop_assert_eq!(
                b.outcome.stats.beams.len(),
                f.outcome.stats.beams.len()
            );
        }
    }
}
