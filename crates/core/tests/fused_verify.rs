//! Cross-request verifier co-batching and elastic-share regressions:
//! the fused-sweep time attribution audit (shared kernel seconds are
//! never double-counted across requests), the opt-in First Finish cut,
//! and demand-proportional shares easing preemption pressure.

use ftts_core::{BatchConfig, BatchRun, BatchedServerSim, ServerSim, TtsServer};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

fn overload_arrivals(count: usize, seed: u64) -> Vec<RequestArrival> {
    let problems = Dataset::Amc2023.problems(count, seed);
    ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0)
}

fn run_policy(config: BatchConfig, arrivals: &[RequestArrival], n: usize) -> BatchRun {
    BatchedServerSim::new(server(7, 0.9), n, SearchKind::BeamSearch, config)
        .run(arrivals)
        .expect("run")
}

/// Summed per-request attributed verifier seconds must equal the
/// device's verifier busy seconds: under serialization every sweep is
/// attributed to exactly its owner, under fusion each participant books
/// only its share of the shared kernel.
fn assert_no_double_count(run: &BatchRun) {
    let attributed: f64 = run
        .served
        .iter()
        .map(|r| r.outcome.stats.breakdown().verifier)
        .sum();
    assert!(run.ver_busy_secs > 0.0, "requests verified something");
    let rel = (attributed - run.ver_busy_secs).abs() / run.ver_busy_secs;
    assert!(
        rel < 1e-9,
        "attributed verifier seconds {} must equal device busy seconds {} (rel err {rel})",
        attributed,
        run.ver_busy_secs
    );
}

#[test]
fn verifier_attribution_is_conserved_serialized_and_fused() {
    let arrivals = overload_arrivals(5, 43);
    let serialized = run_policy(BatchConfig::continuous(3), &arrivals, 8);
    let fused = run_policy(BatchConfig::fused(3), &arrivals, 8);
    assert_no_double_count(&serialized);
    assert_no_double_count(&fused);
    // Fusing packs more sequences into fewer shared sweeps.
    assert!(fused.ver_sweeps < serialized.ver_sweeps);
    let occ = |r: &BatchRun| r.ver_seqs as f64 / r.ver_sweeps as f64;
    assert!(
        occ(&fused) > occ(&serialized),
        "fused occupancy {} must beat serialized {}",
        occ(&fused),
        occ(&serialized)
    );
    let fs = fused.stream_summary();
    assert!((fs.verifier_occupancy - occ(&fused)).abs() < 1e-12);
    assert!(fs.verifier_goodput > 0.0 && fs.generator_goodput > 0.0);
    // Fusion moves clocks only: outcomes stay schedule-invariant.
    for (a, b) in serialized.served.iter().zip(&fused.served) {
        assert_eq!(a.outcome.answer, b.outcome.answer);
        assert_eq!(a.accepted_tokens(), b.accepted_tokens());
    }
}

#[test]
fn first_finish_cut_finishes_streams_early_without_breaking_anyone() {
    let arrivals = overload_arrivals(4, 61);
    let base = run_policy(BatchConfig::continuous(2), &arrivals, 8);
    let cut = run_policy(
        BatchConfig::continuous(2).with_first_finish(0.0),
        &arrivals,
        8,
    );
    assert_eq!(cut.served.len(), base.served.len());
    let mut cuts = 0u32;
    for r in &cut.served {
        assert!(
            !r.outcome.stats.beams.is_empty(),
            "the accepted beam survives"
        );
        cuts += r.outcome.stats.first_finish_cuts;
    }
    assert!(cuts > 0, "bar 0.0 must fire on the first verified beam");
    assert!(
        cut.makespan() < base.makespan(),
        "cancelled siblings release the device early: {} vs {}",
        cut.makespan(),
        base.makespan()
    );
    let (c, b) = (cut.stream_summary(), base.stream_summary());
    assert!(c.total_accepted_tokens <= b.total_accepted_tokens);
    assert!(c.latency.mean < b.latency.mean);
    // Non-opted runs are untouched by the feature's existence.
    for r in &base.served {
        assert_eq!(r.outcome.stats.first_finish_cuts, 0);
    }
}

#[test]
fn demand_shares_ease_preemption_pressure_at_the_same_pool_size() {
    // The pressured fixture: several deep searches contending for a
    // tight pool. Equal shares starve the deepest request into
    // swap-out; demand-proportional shares size it up instead.
    let problems = Dataset::Aime2024.problems(4, 51);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    let equal = BatchedServerSim::new(
        server(13, 0.30),
        24,
        SearchKind::BeamSearch,
        BatchConfig::continuous(4),
    )
    .run(&arrivals)
    .expect("equal-share run");
    let demand_cfg = BatchConfig {
        demand_shares: true,
        ..BatchConfig::continuous(4)
    };
    let demand = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, demand_cfg)
        .run(&arrivals)
        .expect("demand-share run");
    assert!(equal.preemptions > 0, "the fixture must actually pressure");
    assert!(
        demand.preemptions <= equal.preemptions,
        "demand shares must not preempt more: {} vs {}",
        demand.preemptions,
        equal.preemptions
    );
    assert!(demand.peak_reserved_bytes <= demand.pool_bytes);
    // Elastic shares move memory and clocks, never outcomes.
    let fifo = ServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch)
        .run(&arrivals)
        .expect("fifo replay");
    for (d, f) in demand.served.iter().zip(&fifo) {
        assert_eq!(d.outcome.answer, f.outcome.answer);
        assert_eq!(d.accepted_tokens(), f.accepted_tokens());
    }
}
