//! Property tests for fault-injected serving (PR 6):
//!
//! 1. **Bit-determinism**: a `(workload seed, fault plan)` pair fully
//!    determines the run — replaying it yields identical timestamps,
//!    answers and fault counters.
//! 2. **Conservation under faults**: per request, `queue_delay +
//!    breakdown.total()` still equals arrival-to-completion wall-clock
//!    — the `fault` bucket closes the books, nothing leaks.
//! 3. **No double billing**: under compute-only storms (kernel faults
//!    and slowdowns, no KV loss) with burst admission, the faulty run's
//!    busy buckets — generator, verifier, recompute, offload — are
//!    *byte-identical* to the fault-free run; every injected second
//!    lands in the `fault` bucket. Retrying from the last committed
//!    state never re-executes committed device work.

use ftts_core::{
    BatchConfig, BatchRun, BatchedServerSim, FaultPlan, FaultPolicy, RobustConfig, StormConfig,
    TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset};
use proptest::prelude::*;

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

fn run_storm(seed: u64, count: usize, storm: &StormConfig, policy: FaultPolicy) -> BatchRun {
    let problems = Dataset::Amc2023.problems(count, seed);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    let plan = FaultPlan::storm(seed ^ 0xF0F0, 60.0, storm);
    let cfg = BatchConfig::continuous(8).with_robust(RobustConfig::with_policy(policy));
    BatchedServerSim::new(server(seed, 0.9), 8, SearchKind::BeamSearch, cfg)
        .run_faulted(&arrivals, &plan)
        .expect("faulted run completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn faulty_runs_are_bit_deterministic(
        count in 2usize..5,
        kernel_faults in 0usize..8,
        slowdowns in 0usize..3,
        kv_losses in 0usize..3,
        seed in 0u64..1000,
    ) {
        let storm = StormConfig {
            kernel_faults,
            slowdowns,
            kv_losses,
            ..StormConfig::default()
        };
        let a = run_storm(seed, count, &storm, FaultPolicy::Retry);
        let b = run_storm(seed, count, &storm, FaultPolicy::Retry);
        prop_assert_eq!(a.served.len(), b.served.len());
        for (x, y) in a.served.iter().zip(&b.served) {
            prop_assert_eq!(x.finished_at, y.finished_at);
            prop_assert_eq!(x.outcome.answer, y.outcome.answer);
            prop_assert_eq!(
                &x.outcome.stats.completion.breakdown,
                &y.outcome.stats.completion.breakdown
            );
            prop_assert_eq!(x.outcome.stats.decoded_tokens, y.outcome.stats.decoded_tokens);
        }
        prop_assert_eq!(a.kernel_faults, b.kernel_faults);
        prop_assert_eq!(a.fault_retries, b.fault_retries);
        prop_assert_eq!(a.kv_loss_events, b.kv_loss_events);
        prop_assert_eq!(a.lost_blocks, b.lost_blocks);
        prop_assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn time_is_conserved_on_faulty_runs(
        count in 2usize..5,
        kernel_faults in 1usize..8,
        kv_losses in 0usize..3,
        seed in 0u64..1000,
        policy in prop::sample::select(vec![
            FaultPolicy::NoHandling,
            FaultPolicy::Retry,
            FaultPolicy::Degrade,
        ]),
    ) {
        let storm = StormConfig {
            kernel_faults,
            kv_losses,
            ..StormConfig::default()
        };
        let run = run_storm(seed, count, &storm, policy);
        prop_assert!(run.peak_reserved_bytes <= run.pool_bytes);
        prop_assert_eq!(run.final_reserved_bytes, 0);
        for (i, r) in run.served.iter().enumerate() {
            let b = r.outcome.stats.breakdown();
            let accounted = r.queue_delay() + b.total();
            let wall = r.finished_at - r.arrived_at;
            prop_assert!(
                (accounted - wall).abs() <= 1e-9 * wall.max(1.0),
                "request {}: accounted {} != wall-clock {}",
                i, accounted, wall
            );
            prop_assert!(b.fault >= 0.0);
        }
    }

    #[test]
    fn retries_never_double_bill_device_time(
        count in 2usize..5,
        kernel_faults in 1usize..8,
        slowdowns in 0usize..3,
        seed in 0u64..1000,
    ) {
        // Compute-only storms: KV loss would perturb the recompute
        // bucket (recovery legitimately re-runs prefill), but kernel
        // faults and slowdowns must be pure `fault`-bucket time.
        let storm = StormConfig {
            kernel_faults,
            slowdowns,
            kv_losses: 0,
            ..StormConfig::default()
        };
        let clean = run_storm(seed, count, &StormConfig {
            kernel_faults: 0,
            slowdowns: 0,
            kv_losses: 0,
            ..StormConfig::default()
        }, FaultPolicy::Retry);
        let faulty = run_storm(seed, count, &storm, FaultPolicy::Retry);
        prop_assert_eq!(clean.served.len(), faulty.served.len());
        let mut injected = 0.0f64;
        for (c, f) in clean.served.iter().zip(&faulty.served) {
            let (cb, fb) = (c.outcome.stats.breakdown(), f.outcome.stats.breakdown());
            prop_assert_eq!(cb.generator, fb.generator, "generator busy time");
            prop_assert_eq!(cb.verifier, fb.verifier, "verifier busy time");
            prop_assert_eq!(cb.recompute, fb.recompute, "recompute time");
            prop_assert_eq!(cb.offload, fb.offload, "offload time");
            prop_assert_eq!(cb.fault, 0.0, "fault-free run books no fault time");
            prop_assert_eq!(c.outcome.answer, f.outcome.answer);
            prop_assert_eq!(
                c.outcome.stats.decoded_tokens,
                f.outcome.stats.decoded_tokens,
                "accepted tokens survive retries"
            );
            injected += fb.fault;
        }
        if faulty.kernel_faults > 0 {
            prop_assert!(
                injected > 0.0,
                "fired faults must book fault-bucket time"
            );
        }
    }
}
