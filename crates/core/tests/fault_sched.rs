//! Correctness anchors for fault-injected serving (PR 6).
//!
//! * **Zero-fault inertness**: `run_faulted(&FaultPlan::none())` must
//!   reproduce `run()` bit-for-bit under every policy, so the fault
//!   layer provably costs nothing when no faults fire.
//! * **Faulty lockstep equivalence**: the PR-4 anchor extends to faulty
//!   runs — `EventConfig::lockstep(..)` under a seeded storm must
//!   reproduce `BatchedServerSim::run_faulted` bit-for-bit, fault
//!   counters included.
//! * **Determinism**: a `(seed, FaultPlan)` pair fully determines the
//!   run; replaying it yields identical bytes.
//! * **Answer invariance**: with the `Retry` policy, answers and
//!   accepted-token counts are fault-schedule-invariant — faults move
//!   time, never tokens.
//! * **Deadlines × preemption**: a swapped-out request whose deadline
//!   expires while paused is cancelled and its KV reservation fully
//!   reclaimed (no `PoolBudget` leak).

use ftts_core::{
    BatchConfig, BatchRun, BatchedServerSim, EventConfig, EventServerSim, FaultPlan, FaultPolicy,
    RobustConfig, StormConfig, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::SloClass;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

/// The overload fixture from the PR-4 anchors: six AMC problems at a
/// one-second cadence against a batch window of four.
fn overload_arrivals() -> Vec<RequestArrival> {
    let problems = Dataset::Amc2023.problems(6, 41);
    ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0)
}

fn assert_runs_identical(label: &str, a: &BatchRun, b: &BatchRun) {
    assert_eq!(a.served.len(), b.served.len(), "{label}: request counts");
    for (x, y) in a.served.iter().zip(&b.served) {
        assert_eq!(x.arrived_at, y.arrived_at, "{label}: arrivals");
        assert_eq!(x.started_at, y.started_at, "{label}: admission instants");
        assert_eq!(x.finished_at, y.finished_at, "{label}: completion instants");
        assert_eq!(x.preemptions, y.preemptions, "{label}: preemption counts");
        assert_eq!(x.preempted_secs, y.preempted_secs, "{label}: pause time");
        assert_eq!(x.slo, y.slo, "{label}: SLO classes");
        assert_eq!(x.deadline, y.deadline, "{label}: deadlines");
        assert_eq!(x.shed, y.shed, "{label}: shed flags");
        assert_eq!(x.granted_n, y.granted_n, "{label}: granted beam widths");
        assert_eq!(x.outcome.answer, y.outcome.answer, "{label}: answers");
        let (xs, ys) = (&x.outcome.stats, &y.outcome.stats);
        assert_eq!(
            xs.completion.latency, ys.completion.latency,
            "{label}: latency"
        );
        assert_eq!(
            xs.completion.breakdown, ys.completion.breakdown,
            "{label}: breakdown (incl. fault bucket)"
        );
        assert_eq!(xs.iterations, ys.iterations, "{label}: iterations");
        assert_eq!(xs.decoded_tokens, ys.decoded_tokens, "{label}: decoded");
        assert_eq!(xs.verified_tokens, ys.verified_tokens, "{label}: verified");
        assert_eq!(xs.faults, ys.faults, "{label}: per-request fault stats");
    }
    assert_eq!(a.rounds, b.rounds, "{label}: round counts");
    assert_eq!(a.group_iters, b.group_iters, "{label}: group iterations");
    assert_eq!(a.preemptions, b.preemptions, "{label}: preemptions");
    assert_eq!(
        a.peak_reserved_bytes, b.peak_reserved_bytes,
        "{label}: peak reservations"
    );
    assert_eq!(a.kernel_faults, b.kernel_faults, "{label}: kernel faults");
    assert_eq!(a.fault_retries, b.fault_retries, "{label}: retries");
    assert_eq!(
        a.kv_loss_events, b.kv_loss_events,
        "{label}: KV-loss events"
    );
    assert_eq!(a.lost_blocks, b.lost_blocks, "{label}: lost blocks");
    assert_eq!(a.shed, b.shed, "{label}: shed counts");
    assert_eq!(a.cancelled, b.cancelled, "{label}: cancellations");
    assert_eq!(a.degradations, b.degradations, "{label}: degradations");
    assert_eq!(
        a.final_reserved_bytes, b.final_reserved_bytes,
        "{label}: residual reservations"
    );
}

// ---------------------------------------------------------------------
// Anchor 1: an empty fault plan is bit-inert under every policy.
// ---------------------------------------------------------------------

#[test]
fn zero_fault_plan_is_bit_inert() {
    let arrivals = overload_arrivals();
    for policy in [
        FaultPolicy::NoHandling,
        FaultPolicy::Retry,
        FaultPolicy::Degrade,
    ] {
        let cfg = BatchConfig::continuous(4).with_robust(RobustConfig::with_policy(policy));
        let plain = BatchedServerSim::new(server(5, 0.9), 8, SearchKind::BeamSearch, cfg)
            .run(&arrivals)
            .expect("plain run");
        let faulted = BatchedServerSim::new(server(5, 0.9), 8, SearchKind::BeamSearch, cfg)
            .run_faulted(&arrivals, &FaultPlan::none())
            .expect("faulted run");
        assert_runs_identical(&format!("{policy:?}"), &plain, &faulted);
        assert_eq!(faulted.kernel_faults, 0);
        assert_eq!(faulted.kv_loss_events, 0);
        for r in &faulted.served {
            assert_eq!(r.outcome.stats.breakdown().fault, 0.0);
        }
    }
}

// ---------------------------------------------------------------------
// Anchor 2: lockstep equivalence extends to faulty runs.
// ---------------------------------------------------------------------

#[test]
fn faulty_runs_keep_lockstep_equivalence() {
    let arrivals = overload_arrivals();
    let plan = FaultPlan::storm(7, 60.0, &StormConfig::default());
    let cfg = BatchConfig::continuous(4);
    let batch = BatchedServerSim::new(server(5, 0.9), 8, SearchKind::BeamSearch, cfg)
        .run_faulted(&arrivals, &plan)
        .expect("batch run");
    let event = EventServerSim::new(
        server(5, 0.9),
        8,
        SearchKind::BeamSearch,
        EventConfig::lockstep(cfg),
    )
    .run_faulted(&arrivals, &plan)
    .expect("event run");
    assert!(batch.kernel_faults > 0, "storm must actually fire");
    assert!(batch.kv_loss_events > 0, "storm must lose KV");
    assert_runs_identical("lockstep storm", &batch, &event);
}

// ---------------------------------------------------------------------
// Anchor 3: (seed, plan) fully determines the run.
// ---------------------------------------------------------------------

#[test]
fn fault_runs_are_deterministic() {
    let arrivals = overload_arrivals();
    let storm = StormConfig::default();
    let once = FaultPlan::storm(9, 50.0, &storm);
    let twice = FaultPlan::storm(9, 50.0, &storm);
    assert_eq!(once.events(), twice.events(), "storm synthesis");
    let run = |plan: &FaultPlan| {
        BatchedServerSim::new(
            server(5, 0.9),
            8,
            SearchKind::BeamSearch,
            BatchConfig::continuous(4),
        )
        .run_faulted(&arrivals, plan)
        .expect("run")
    };
    assert_runs_identical("replay", &run(&once), &run(&twice));
}

// ---------------------------------------------------------------------
// Anchor 4: under Retry, faults move time but never tokens.
// ---------------------------------------------------------------------

#[test]
fn answers_and_accepted_tokens_survive_faults() {
    // Burst admission with max_batch >= count keeps the scheduling
    // structure independent of absolute time, so the faulty run decodes
    // the exact token stream of the fault-free one — only later.
    let problems = Dataset::Amc2023.problems(5, 23);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    let cfg = BatchConfig::continuous(8);
    let clean = BatchedServerSim::new(server(3, 0.9), 8, SearchKind::BeamSearch, cfg)
        .run(&arrivals)
        .expect("clean run");

    // Compute-only storm (no KV loss): the faulty run is the clean run
    // shifted in time — every token counter matches exactly.
    let compute_only = StormConfig {
        kv_losses: 0,
        ..StormConfig::default()
    };
    let plan = FaultPlan::storm(17, 40.0, &compute_only);
    let faulty = BatchedServerSim::new(server(3, 0.9), 8, SearchKind::BeamSearch, cfg)
        .run_faulted(&arrivals, &plan)
        .expect("faulty run");
    assert!(faulty.kernel_faults > 0, "storm must actually fire");
    for (c, f) in clean.served.iter().zip(&faulty.served) {
        assert_eq!(c.outcome.answer, f.outcome.answer, "answers");
        let (cs, fs) = (&c.outcome.stats, &f.outcome.stats);
        assert_eq!(cs.decoded_tokens, fs.decoded_tokens, "accepted tokens");
        assert_eq!(cs.verified_tokens, fs.verified_tokens, "verified tokens");
        assert_eq!(cs.spec, fs.spec, "speculation counters");
        assert_eq!(cs.iterations, fs.iterations, "iterations");
    }
    assert!(
        faulty.makespan() > clean.makespan(),
        "faults must cost wall-clock time"
    );

    // Full storm with KV loss: recovery is deterministic replay, so
    // answers and accepted tokens are still invariant; the verifier
    // merely re-does work for the lost prefixes.
    let plan = FaultPlan::storm(17, 40.0, &StormConfig::default());
    let replayed = BatchedServerSim::new(server(3, 0.9), 8, SearchKind::BeamSearch, cfg)
        .run_faulted(&arrivals, &plan)
        .expect("replayed run");
    assert!(replayed.kv_loss_events > 0, "storm must lose KV");
    for (c, f) in clean.served.iter().zip(&replayed.served) {
        assert_eq!(c.outcome.answer, f.outcome.answer, "answers after replay");
        let (cs, fs) = (&c.outcome.stats, &f.outcome.stats);
        assert_eq!(cs.decoded_tokens, fs.decoded_tokens, "accepted tokens");
        assert!(
            fs.verified_tokens >= cs.verified_tokens,
            "replay can only add verifier work"
        );
    }
}

// ---------------------------------------------------------------------
// Anchor 5: costed retry beats blind re-execution.
// ---------------------------------------------------------------------

#[test]
fn retry_with_backoff_beats_blind_reexecution() {
    let arrivals = overload_arrivals();
    let storm = StormConfig {
        kernel_faults: 10,
        slowdowns: 0,
        kv_losses: 0,
        ..StormConfig::default()
    };
    let plan = FaultPlan::storm(29, 45.0, &storm);
    let run = |policy: FaultPolicy| {
        let cfg = BatchConfig::continuous(4).with_robust(RobustConfig::with_policy(policy));
        BatchedServerSim::new(server(5, 0.9), 8, SearchKind::BeamSearch, cfg)
            .run_faulted(&arrivals, &plan)
            .expect("run")
    };
    let blind = run(FaultPolicy::NoHandling);
    let retry = run(FaultPolicy::Retry);
    assert!(blind.kernel_faults > 0);
    assert_eq!(blind.kernel_faults, retry.kernel_faults, "same schedule");
    assert!(
        blind.makespan() > retry.makespan(),
        "blind re-execution ({:.2}s) must cost more than checkpointed \
         retry ({:.2}s)",
        blind.makespan(),
        retry.makespan()
    );
}

// ---------------------------------------------------------------------
// Anchor 6 (satellite d): deadline expiry while swapped out.
// ---------------------------------------------------------------------

#[test]
fn preempted_request_past_deadline_is_cancelled_and_reclaimed() {
    // The PR-4 pressure fixture: four AIME problems bursting into a
    // 30% memory budget forces a preemption cascade. A 100s deadline
    // lands inside the loser's swap-out window, so SLO enforcement must
    // cancel it while it is host-resident and reclaim every byte.
    let problems = Dataset::Aime2024.problems(4, 51);
    let arrivals: Vec<RequestArrival> = ArrivalPattern::Burst { at: 0.0 }
        .schedule(&problems, 0)
        .into_iter()
        .map(|a| a.with_slo(SloClass::Standard, 100.0))
        .collect();
    let mut robust = RobustConfig::with_policy(FaultPolicy::Degrade);
    // Isolate deadline enforcement from budget degradation: keep the
    // full beam width so the preemption cascade actually happens.
    robust.degrade_queue_per_level = 1000;
    let cfg = BatchConfig::continuous(4).with_robust(robust);
    let run = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, cfg)
        .run_faulted(&arrivals, &FaultPlan::none())
        .expect("run");

    assert!(run.preemptions >= 1, "fixture must preempt");
    assert!(run.cancelled >= 1, "expired requests must be cancelled");
    assert_eq!(
        run.final_reserved_bytes, 0,
        "cancellation must reclaim every reserved byte"
    );
    let paused_victim = run
        .served
        .iter()
        .find(|r| r.shed && r.preemptions >= 1)
        .expect("a swapped-out request must be cancelled at its deadline");
    assert_eq!(paused_victim.outcome.answer, None, "no answer after cancel");
    assert!(paused_victim.deadline_missed());
    let finished = run.served.iter().filter(|r| !r.shed).count();
    assert!(finished >= 1, "at least one request must still finish");
    let summary = run.stream_summary();
    assert_eq!(summary.shed, (run.shed + run.cancelled) as usize);
    assert_eq!(
        summary.deadline_misses,
        run.served.iter().filter(|r| r.deadline_missed()).count()
    );
}

// ---------------------------------------------------------------------
// Anchor 7: degradation sheds beams before it sheds requests.
// ---------------------------------------------------------------------

#[test]
fn degradation_shrinks_beam_width_under_backlog() {
    let problems = Dataset::Aime2024.problems(4, 51);
    let arrivals: Vec<RequestArrival> = ArrivalPattern::Burst { at: 0.0 }
        .schedule(&problems, 0)
        .into_iter()
        .map(|a| a.with_slo(SloClass::Interactive, f64::INFINITY))
        .collect();
    let cfg =
        BatchConfig::continuous(4).with_robust(RobustConfig::with_policy(FaultPolicy::Degrade));
    let run = BatchedServerSim::new(server(13, 0.30), 24, SearchKind::BeamSearch, cfg)
        .run_faulted(&arrivals, &FaultPlan::none())
        .expect("run");
    assert!(
        run.degradations >= 1,
        "burst backlog must trigger degradation"
    );
    assert_eq!(run.shed, 0, "infinite deadlines shed nothing");
    assert_eq!(run.cancelled, 0);
    assert!(
        run.served.iter().any(|r| r.granted_n < 24),
        "some request must run with a shrunken beam budget"
    );
    assert!(
        run.served
            .iter()
            .all(|r| !r.shed && r.outcome.answer.is_some()),
        "degraded requests still finish with answers"
    );
}
