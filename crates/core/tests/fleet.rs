//! Fleet-serving anchors (PR 8).
//!
//! * A 1-device fleet with the pass-through router is **bit-identical**
//!   to bare `EventServerSim` — answers, tokens, instants and breakdown
//!   buckets — fault-free, under a (crash-free) fault storm, and with a
//!   crash-bearing plan in no-failover mode (where the crash stays an
//!   on-device outage).
//! * N-device fleet results are deterministic and invariant to worker
//!   -thread count: the final device timelines execute on the parallel
//!   sweep harness and are `debug_assert`-checked bit-identical to the
//!   sequential routing caches on every run of this suite.
//! * A hedged duplicate never changes the winning answer — scheduling
//!   moves clocks, never outcomes.
//! * Crash failover migrates interrupted requests to survivors and
//!   completes them.

use ftts_core::{
    BatchConfig, BatchRun, EventConfig, EventServerSim, FaultEvent, FaultKind, FaultPlan,
    FleetConfig, FleetRun, FleetSim, HedgeConfig, KvTierConfig, RoutePolicy, ServedRequest,
    StormConfig, TimelineTuning, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

fn arrivals(count: usize, problem_seed: u64, interval: f64) -> Vec<RequestArrival> {
    let problems = Dataset::Amc2023.problems(count, problem_seed);
    ArrivalPattern::Uniform { interval }.schedule(&problems, 0)
}

fn event_config() -> EventConfig {
    EventConfig::new(
        BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(1 << 30)),
        0.25,
    )
}

fn assert_served_identical(label: &str, a: &[ServedRequest], b: &[ServedRequest]) {
    assert_eq!(a.len(), b.len(), "{label}: request counts");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.arrived_at, y.arrived_at, "{label}[{i}]: arrivals");
        assert_eq!(x.started_at, y.started_at, "{label}[{i}]: admission");
        assert_eq!(x.finished_at, y.finished_at, "{label}[{i}]: completion");
        assert_eq!(x.shed, y.shed, "{label}[{i}]: shed");
        assert_eq!(x.granted_n, y.granted_n, "{label}[{i}]: granted width");
        assert_eq!(x.outcome.answer, y.outcome.answer, "{label}[{i}]: answers");
        assert_eq!(
            x.accepted_tokens(),
            y.accepted_tokens(),
            "{label}[{i}]: accepted tokens"
        );
        let (bx, by) = (x.outcome.stats.breakdown(), y.outcome.stats.breakdown());
        assert_eq!(bx.generator, by.generator, "{label}[{i}]: generator bucket");
        assert_eq!(bx.verifier, by.verifier, "{label}[{i}]: verifier bucket");
        assert_eq!(bx.recompute, by.recompute, "{label}[{i}]: recompute bucket");
        assert_eq!(bx.offload, by.offload, "{label}[{i}]: offload bucket");
        assert_eq!(bx.swap, by.swap, "{label}[{i}]: swap bucket");
        assert_eq!(bx.fault, by.fault, "{label}[{i}]: fault bucket");
        assert_eq!(bx.idle, by.idle, "{label}[{i}]: idle bucket");
    }
}

fn assert_run_matches_bare(label: &str, fleet: &FleetRun, bare: &BatchRun) {
    assert_eq!(fleet.device_runs.len(), 1, "{label}: one device");
    let dev = &fleet.device_runs[0];
    assert_served_identical(label, &dev.served, &bare.served);
    assert_served_identical(
        &format!("{label} (fleet view)"),
        &fleet.served,
        &bare.served,
    );
    assert_eq!(dev.rounds, bare.rounds, "{label}: rounds");
    assert_eq!(dev.group_iters, bare.group_iters, "{label}: group iters");
    assert_eq!(dev.preemptions, bare.preemptions, "{label}: preemptions");
    assert_eq!(dev.ver_sweeps, bare.ver_sweeps, "{label}: verifier sweeps");
    assert_eq!(dev.ver_seqs, bare.ver_seqs, "{label}: verifier seqs");
    assert_eq!(
        dev.peak_reserved_bytes, bare.peak_reserved_bytes,
        "{label}: peak reservations"
    );
    assert_eq!(dev.kv_tier_hits, bare.kv_tier_hits, "{label}: warm hits");
    assert_eq!(fleet.migrations, 0, "{label}: no migrations on 1 device");
    assert_eq!(fleet.hedges_launched, 0, "{label}: no hedges on 1 device");
}

/// Anchor 1: a 1-device fleet with the pass-through router is
/// bit-identical to bare `EventServerSim`, fault-free.
#[test]
fn one_device_fleet_is_bit_identical_fault_free() {
    let stream = arrivals(5, 31, 12.0);
    let config = event_config();
    let bare = EventServerSim::new(server(9, 0.55), 16, SearchKind::BeamSearch, config)
        .run_faulted(&stream, &FaultPlan::none())
        .expect("bare run");
    let fleet = FleetSim::new(
        vec![server(9, 0.55)],
        16,
        SearchKind::BeamSearch,
        FleetConfig::new(config, RoutePolicy::RoundRobin),
    )
    .run(&stream)
    .expect("fleet run");
    assert_run_matches_bare("fault-free", &fleet, &bare);
}

/// Anchor 2: the same equivalence under a fault storm (no crashes —
/// those are routing-layer events when failover is on).
#[test]
fn one_device_fleet_is_bit_identical_under_storm() {
    let stream = arrivals(5, 47, 12.0);
    let config = event_config();
    let storm = StormConfig {
        kernel_faults: 2,
        slowdowns: 1,
        kv_losses: 1,
        device_degrades: 1,
        ..StormConfig::default()
    };
    let plan = FaultPlan::storm(0xF1EE7, 90.0, &storm);
    let bare = EventServerSim::new(server(9, 0.55), 16, SearchKind::BeamSearch, config)
        .run_faulted(&stream, &plan)
        .expect("bare run");
    let fleet = FleetSim::new(
        vec![server(9, 0.55)],
        16,
        SearchKind::BeamSearch,
        FleetConfig::new(config, RoutePolicy::RoundRobin),
    )
    .run_faulted(&stream, std::slice::from_ref(&plan))
    .expect("fleet run");
    assert_run_matches_bare("storm", &fleet, &bare);
}

/// Anchor 3: with failover *off*, a crash-bearing plan stays an
/// on-device outage and the 1-device fleet still reproduces the bare
/// simulator bit-for-bit.
#[test]
fn one_device_no_failover_crash_matches_bare_outage() {
    let stream = arrivals(4, 63, 15.0);
    let config = event_config();
    let plan = FaultPlan::new(vec![FaultEvent {
        at: 20.0,
        kind: FaultKind::DeviceCrash { down_for: 30.0 },
    }]);
    let bare = EventServerSim::new(server(9, 0.55), 16, SearchKind::BeamSearch, config)
        .run_faulted(&stream, &plan)
        .expect("bare run");
    let fleet = FleetSim::new(
        vec![server(9, 0.55)],
        16,
        SearchKind::BeamSearch,
        FleetConfig::new(config, RoutePolicy::RoundRobin).without_failover(),
    )
    .run_faulted(&stream, std::slice::from_ref(&plan))
    .expect("fleet run");
    assert_run_matches_bare("no-failover crash", &fleet, &bare);
    assert!(
        fleet.crash_downtime_secs > 0.0,
        "downtime is still reported in the naive mode"
    );
}

fn four_device_fleet(route: RoutePolicy, hedge: Option<HedgeConfig>) -> FleetSim {
    let devices: Vec<TtsServer> = (0..4).map(|_| server(9, 0.55)).collect();
    let mut config = FleetConfig::new(event_config(), route);
    config.hedge = hedge;
    FleetSim::new(devices, 16, SearchKind::BeamSearch, config)
}

fn crashy_plans() -> Vec<FaultPlan> {
    let mut plans = vec![FaultPlan::none(); 4];
    plans[1] = FaultPlan::new(vec![FaultEvent {
        at: 25.0,
        kind: FaultKind::DeviceCrash { down_for: 200.0 },
    }]);
    plans
}

/// N-device fleets are deterministic run-to-run, and (via the
/// `debug_assert` in the final parallel pass, active in this build)
/// invariant to sweep worker-thread count.
#[test]
fn fleet_results_are_deterministic_across_reruns() {
    let stream = arrivals(8, 77, 6.0);
    let hedge = Some(HedgeConfig {
        delay_factor: 0.5,
        min_samples: 2,
        min_delay_secs: 1.0,
    });
    let runs: Vec<FleetRun> = (0..2)
        .map(|_| {
            four_device_fleet(RoutePolicy::Jsq, hedge)
                .run_faulted(&stream, &crashy_plans())
                .expect("fleet run")
        })
        .collect();
    let (a, b) = (&runs[0], &runs[1]);
    assert_served_identical("rerun", &a.served, &b.served);
    assert_eq!(a.serving_device, b.serving_device, "placements");
    assert_eq!(a.migrations, b.migrations, "migrations");
    assert_eq!(a.hedges_launched, b.hedges_launched, "hedges launched");
    assert_eq!(a.hedges_won, b.hedges_won, "hedges won");
    for (x, y) in a.device_runs.iter().zip(&b.device_runs) {
        assert_served_identical("rerun device", &x.served, &y.served);
    }
}

/// A hedged duplicate never changes the winning answer: every request
/// resolves to the same answer and token count with hedging on or off.
#[test]
fn hedged_duplicates_never_change_the_winning_answer() {
    let stream = arrivals(8, 91, 18.0);
    let hedged = four_device_fleet(
        RoutePolicy::RoundRobin,
        Some(HedgeConfig {
            delay_factor: 0.05,
            min_samples: 1,
            min_delay_secs: 0.5,
        }),
    )
    .run(&stream)
    .expect("hedged run");
    let plain = four_device_fleet(RoutePolicy::RoundRobin, None)
        .run(&stream)
        .expect("plain run");
    assert!(
        hedged.hedges_launched > 0,
        "the aggressive hedge config must actually hedge"
    );
    assert_eq!(
        hedged.hedges_launched,
        hedged.hedges_won + hedged.hedges_wasted,
        "every hedge is won or wasted"
    );
    for (i, (h, p)) in hedged.served.iter().zip(&plain.served).enumerate() {
        assert_eq!(h.shed, p.shed, "request {i}: completion");
        assert_eq!(
            h.outcome.answer, p.outcome.answer,
            "request {i}: hedging changed the answer"
        );
        assert_eq!(
            h.accepted_tokens(),
            p.accepted_tokens(),
            "request {i}: hedging changed the token count"
        );
    }
}

/// Crash failover migrates interrupted requests to survivors and
/// completes every request; the migration budget lands in the fault
/// bucket and the summary counters agree.
#[test]
fn crash_failover_migrates_and_completes_every_request() {
    let stream = arrivals(8, 105, 6.0);
    let run = four_device_fleet(RoutePolicy::Jsq, None)
        .run_faulted(&stream, &crashy_plans())
        .expect("fleet run");
    assert!(run.migrations > 0, "the crash must interrupt live requests");
    assert!(
        run.served.iter().all(|r| !r.shed),
        "every request completes on a survivor"
    );
    let migrated: Vec<&ServedRequest> = run
        .served
        .iter()
        .zip(&run.serving_device)
        .filter(|(_, d)| **d != Some(1))
        .map(|(r, _)| r)
        .collect();
    assert!(
        migrated
            .iter()
            .any(|r| r.outcome.stats.breakdown().fault > 0.0),
        "migrated winners book the hand-off into the fault bucket"
    );
    let summary = run.summary();
    assert_eq!(summary.devices, 4);
    assert_eq!(summary.migrations, run.migrations);
    assert!((summary.crash_downtime_secs - 200.0).abs() < 1e-9);
    assert!(
        summary.deadline_hit_rate() >= 0.0 && summary.slo_goodput() >= 0.0,
        "fleet summary is well-formed"
    );
    // The crashed device's own view shows the cancelled work.
    assert!(
        run.device_runs[1].cancelled > 0 || run.device_runs[1].served.is_empty(),
        "device 1 either had nothing routed or shows cancelled legs"
    );
}

/// PR 10: attaching an *anchored* timeline tuning to the fleet is pure
/// bookkeeping — per-device runs stay bit-identical to the plain
/// event-driven fleet, but now carry occupancy roll-ups.
#[test]
fn timeline_fleet_anchored_is_bit_identical_to_plain_fleet() {
    let stream = arrivals(6, 77, 4.0);
    let config = event_config();
    let devices = || vec![server(9, 0.55), server(9, 0.55)];
    let plain = FleetSim::new(
        devices(),
        16,
        SearchKind::BeamSearch,
        FleetConfig::new(config, RoutePolicy::Jsq),
    )
    .run(&stream)
    .expect("plain fleet run");
    let timed = FleetSim::new(
        devices(),
        16,
        SearchKind::BeamSearch,
        FleetConfig::new(config, RoutePolicy::Jsq).with_timeline(TimelineTuning::anchored()),
    )
    .run(&stream)
    .expect("timeline fleet run");
    assert_served_identical("anchored fleet", &timed.served, &plain.served);
    assert_eq!(
        timed.serving_device, plain.serving_device,
        "routing decisions are unchanged"
    );
    for (d, run) in timed.device_runs.iter().enumerate() {
        if !run.served.is_empty() {
            assert!(
                run.timeline.segments > 0,
                "device {d} records segments on the global timeline"
            );
            assert_eq!(
                run.timeline.stretch_secs, 0.0,
                "anchored mode never stretches"
            );
        }
    }
    for run in &plain.device_runs {
        assert_eq!(
            run.timeline.segments, 0,
            "the plain event fleet has no timeline"
        );
    }
}

/// PR 10: the honest timeline with token joins serves every request
/// with the same answers as the plain fleet — honesty moves clocks,
/// never outcomes.
#[test]
fn timeline_fleet_honest_joins_preserves_answers() {
    let stream = arrivals(6, 77, 4.0);
    let config = event_config();
    let devices = || vec![server(9, 0.55), server(9, 0.55)];
    let plain = FleetSim::new(
        devices(),
        16,
        SearchKind::BeamSearch,
        FleetConfig::new(config, RoutePolicy::RoundRobin),
    )
    .run(&stream)
    .expect("plain fleet run");
    let honest = FleetSim::new(
        devices(),
        16,
        SearchKind::BeamSearch,
        FleetConfig::new(config, RoutePolicy::RoundRobin).with_timeline(
            TimelineTuning::honest()
                .with_token_joins()
                .with_join_quantum(8),
        ),
    )
    .run(&stream)
    .expect("honest fleet run");
    assert_eq!(honest.served.len(), plain.served.len());
    for (i, (h, p)) in honest.served.iter().zip(&plain.served).enumerate() {
        assert!(!h.shed, "request {i} completes under the honest timeline");
        assert_eq!(
            h.outcome.answer, p.outcome.answer,
            "request {i}: answers survive honest scheduling"
        );
        assert_eq!(
            h.accepted_tokens(),
            p.accepted_tokens(),
            "request {i}: token counts survive honest scheduling"
        );
    }
    assert!(
        honest.device_runs.iter().any(|r| r.timeline.segments > 0),
        "at least one device recorded timeline segments"
    );
}
