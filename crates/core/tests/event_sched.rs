//! Correctness anchors for event-driven (iteration-granularity)
//! scheduling, plus the idle-attribution audit.
//!
//! * **Batch 1**: `EventServerSim` with `BatchConfig::fifo()` must
//!   reproduce `ServerSim::run` bit-for-bit — the same anchor the
//!   lockstep scheduler carries.
//! * **Infinite window**: `EventConfig::lockstep(..)` must reproduce
//!   `BatchedServerSim::run` bit-for-bit across policies — including
//!   fused verifier sweeps, demand shares and preemption-heavy
//!   fixtures — so the event loop provably contains the lockstep
//!   scheduler as its degenerate mode.
//! * **Idle attribution**: per request, `queue_delay + generator +
//!   verifier + recompute + offload + idle` must equal arrival-to-
//!   completion wall-clock under *both* schedulers; `barrier_idle` is a
//!   slice of `idle` that only lockstep rounds may book — a finite
//!   event window never does.

use ftts_core::{
    BatchConfig, BatchRun, BatchedServerSim, EventConfig, EventServerSim, FaultPlan, KvTierConfig,
    ServedRequest, ServerSim, StormConfig, TimelineConfig, TimelineServerSim, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

fn assert_served_identical(label: &str, a: &[ServedRequest], b: &[ServedRequest]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.arrived_at, y.arrived_at, "{label}: arrivals");
        assert_eq!(x.started_at, y.started_at, "{label}: admission instants");
        assert_eq!(x.finished_at, y.finished_at, "{label}: completion instants");
        assert_eq!(x.preemptions, y.preemptions, "{label}: preemption counts");
        assert_eq!(x.preempted_secs, y.preempted_secs, "{label}: pause time");
        let (xs, ys) = (&x.outcome.stats, &y.outcome.stats);
        assert_eq!(x.outcome.answer, y.outcome.answer, "{label}: answers");
        assert_eq!(
            xs.completion.latency, ys.completion.latency,
            "{label}: latency"
        );
        assert_eq!(
            xs.completion.breakdown, ys.completion.breakdown,
            "{label}: breakdown (incl. barrier_idle)"
        );
        assert_eq!(xs.iterations, ys.iterations, "{label}: iterations");
        assert_eq!(xs.decoded_tokens, ys.decoded_tokens, "{label}: decoded");
        assert_eq!(xs.verified_tokens, ys.verified_tokens, "{label}: verified");
        assert_eq!(xs.spec, ys.spec, "{label}: speculation counters");
        assert_eq!(xs.gen_cache, ys.gen_cache, "{label}: gen eviction stats");
        assert_eq!(xs.ver_cache, ys.ver_cache, "{label}: ver eviction stats");
        assert_eq!(xs.beams.len(), ys.beams.len(), "{label}: beam counts");
        for (bx, by) in xs.beams.iter().zip(&ys.beams) {
            assert_eq!(bx.tokens, by.tokens);
            assert_eq!(bx.completion_time, by.completion_time);
            assert_eq!(bx.answer, by.answer);
            assert_eq!(bx.score, by.score);
        }
    }
}

fn assert_runs_identical(label: &str, a: &BatchRun, b: &BatchRun) {
    assert_served_identical(label, &a.served, &b.served);
    assert_eq!(a.rounds, b.rounds, "{label}: round counts");
    assert_eq!(a.group_iters, b.group_iters, "{label}: group iterations");
    assert_eq!(a.preemptions, b.preemptions, "{label}: preemptions");
    assert_eq!(
        a.peak_reserved_bytes, b.peak_reserved_bytes,
        "{label}: peak reservations"
    );
    assert_eq!(a.ver_sweeps, b.ver_sweeps, "{label}: verifier sweeps");
    assert_eq!(a.ver_seqs, b.ver_seqs, "{label}: verifier sequences");
    assert_eq!(
        a.ver_busy_secs, b.ver_busy_secs,
        "{label}: verifier busy time"
    );
}

// ---------------------------------------------------------------------
// Anchor 1: batch-1 event-driven == ServerSim, bit for bit.
// ---------------------------------------------------------------------

fn check_batch1(label: &str, seed: u64, arrivals: &[RequestArrival], n: usize) {
    let fifo = ServerSim::new(server(seed, 0.9), n, SearchKind::BeamSearch)
        .run(arrivals)
        .expect("fifo run");
    // Any finite window (and the infinite one) must degenerate at batch
    // 1: groups are singletons either way.
    for window in [0.0, 0.5, f64::INFINITY] {
        let event = EventServerSim::new(
            server(seed, 0.9),
            n,
            SearchKind::BeamSearch,
            EventConfig::new(BatchConfig::fifo(), window),
        )
        .run(arrivals)
        .expect("event run");
        assert_served_identical(&format!("{label} (window {window})"), &fifo, &event.served);
        assert_eq!(event.preemptions, 0);
        assert!(event.peak_reserved_bytes <= event.pool_bytes);
        for r in &event.served {
            assert_eq!(
                r.outcome.stats.breakdown().barrier_idle,
                0.0,
                "a singleton group has no one to wait for"
            );
        }
    }
}

#[test]
fn batch1_matches_serversim_on_burst() {
    let problems = Dataset::Amc2023.problems(3, 9);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    check_batch1("burst", 0, &arrivals, 8);
}

#[test]
fn batch1_matches_serversim_on_poisson() {
    let problems = Dataset::Amc2023.problems(4, 21);
    let arrivals = ArrivalPattern::Poisson { rate: 0.05 }.schedule(&problems, 5);
    check_batch1("poisson", 3, &arrivals, 8);
}

#[test]
fn batch1_matches_serversim_on_uniform_overload() {
    let problems = Dataset::Amc2023.problems(3, 33);
    let arrivals = ArrivalPattern::Uniform { interval: 0.5 }.schedule(&problems, 0);
    check_batch1("uniform", 11, &arrivals, 8);
}

// ---------------------------------------------------------------------
// Anchor 2: infinite window == BatchedServerSim, bit for bit.
// ---------------------------------------------------------------------

fn check_infinite_window(
    label: &str,
    seed: u64,
    memory_fraction: f64,
    arrivals: &[RequestArrival],
    n: usize,
    config: BatchConfig,
) -> BatchRun {
    let lockstep = BatchedServerSim::new(
        server(seed, memory_fraction),
        n,
        SearchKind::BeamSearch,
        config,
    )
    .run(arrivals)
    .expect("lockstep run");
    let event = EventServerSim::new(
        server(seed, memory_fraction),
        n,
        SearchKind::BeamSearch,
        EventConfig::lockstep(config),
    )
    .run(arrivals)
    .expect("event run");
    assert_runs_identical(label, &lockstep, &event);
    lockstep
}

#[test]
fn infinite_window_matches_lockstep_continuous() {
    let problems = Dataset::Amc2023.problems(6, 41);
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);
    check_infinite_window(
        "continuous-4",
        5,
        0.9,
        &arrivals,
        8,
        BatchConfig::continuous(4),
    );
}

#[test]
fn infinite_window_matches_lockstep_fused_demand() {
    let problems = Dataset::Amc2023.problems(5, 29);
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);
    check_infinite_window("fused-8", 17, 0.9, &arrivals, 16, BatchConfig::fused(8));
}

#[test]
fn infinite_window_matches_lockstep_gang() {
    let problems = Dataset::Amc2023.problems(5, 31);
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);
    check_infinite_window("gang-3", 3, 0.9, &arrivals, 8, BatchConfig::gang(3));
}

#[test]
fn infinite_window_matches_lockstep_under_preemption_pressure() {
    // The pressure fixture: a tight pool forces swap-outs and
    // readmissions. The event loop must reproduce the preemption
    // cascade — victims, PCIe stalls, pause durations — exactly.
    let problems = Dataset::Aime2024.problems(4, 51);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    let run = check_infinite_window(
        "pressure",
        13,
        0.30,
        &arrivals,
        24,
        BatchConfig::continuous(4),
    );
    assert!(run.preemptions > 0, "the fixture must actually preempt");
}

// ---------------------------------------------------------------------
// Idle attribution.
// ---------------------------------------------------------------------

/// `queue + decode + verifier + recompute + offload + idle` must equal
/// arrival-to-completion wall-clock for every request, under any
/// scheduler. (`barrier_idle` is inside `idle`, not a sixth bucket.)
fn assert_time_conserved(label: &str, served: &[ServedRequest]) {
    for (i, r) in served.iter().enumerate() {
        let b = r.outcome.stats.breakdown();
        let accounted = r.queue_delay() + b.total();
        let wall = r.finished_at - r.arrived_at;
        assert!(
            (accounted - wall).abs() <= 1e-9 * wall.max(1.0),
            "{label} request {i}: accounted {accounted} != wall-clock {wall}"
        );
        assert!(
            b.barrier_idle <= b.idle + 1e-12,
            "{label} request {i}: barrier idle must be a slice of idle"
        );
    }
}

#[test]
fn idle_attribution_sums_to_wall_clock_under_lockstep() {
    let problems = Dataset::Amc2023.problems(6, 41);
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);
    let run = BatchedServerSim::new(
        server(5, 0.9),
        16,
        SearchKind::BeamSearch,
        BatchConfig::fused(8),
    )
    .run(&arrivals)
    .expect("lockstep run");
    assert_time_conserved("lockstep fused-8", &run.served);
    // Multi-request lockstep rounds must actually wait at barriers —
    // the idle source event-driven scheduling drains.
    let barrier: f64 = run
        .served
        .iter()
        .map(|r| r.outcome.stats.breakdown().barrier_idle)
        .sum();
    assert!(barrier > 0.0, "lockstep rounds must book barrier idle");
}

#[test]
fn idle_attribution_sums_to_wall_clock_under_event_scheduling() {
    let problems = Dataset::Amc2023.problems(6, 41);
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);
    for window in [0.0, 0.1, 1.0] {
        let run = EventServerSim::new(
            server(5, 0.9),
            16,
            SearchKind::BeamSearch,
            EventConfig::windowed(8, window),
        )
        .run(&arrivals)
        .expect("event run");
        assert_time_conserved(&format!("event window {window}"), &run.served);
        // The headline attribution guarantee: no finite-window launch
        // ever waits at a round barrier.
        for r in &run.served {
            assert_eq!(
                r.outcome.stats.breakdown().barrier_idle,
                0.0,
                "event-driven scheduling never reports barrier idle"
            );
        }
    }
}

#[test]
fn preempted_requests_conserve_time_too() {
    let problems = Dataset::Aime2024.problems(4, 51);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    let run = EventServerSim::new(
        server(13, 0.30),
        24,
        SearchKind::BeamSearch,
        EventConfig::new(BatchConfig::continuous(4), 0.2),
    )
    .run(&arrivals)
    .expect("pressured event run");
    assert!(run.preemptions > 0, "fixture must preempt");
    assert_time_conserved("event under pressure", &run.served);
}

// ---------------------------------------------------------------------
// Admission-order determinism.
// ---------------------------------------------------------------------

#[test]
fn simultaneous_arrivals_admit_in_stream_order_on_both_schedulers() {
    // A burst delivers every request at t = 0: the shared tiebreak must
    // admit them in arrival-index order on both schedulers, giving
    // identical, deterministic admission instants.
    let problems = Dataset::Amc2023.problems(5, 77);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    let lockstep = BatchedServerSim::new(
        server(2, 0.9),
        8,
        SearchKind::BeamSearch,
        BatchConfig::continuous(3),
    )
    .run(&arrivals)
    .expect("lockstep");
    let event = EventServerSim::new(
        server(2, 0.9),
        8,
        SearchKind::BeamSearch,
        EventConfig::new(BatchConfig::continuous(3), 0.1),
    )
    .run(&arrivals)
    .expect("event");
    for run in [&lockstep, &event] {
        // The first `max_batch` requests admit at t = 0 in stream
        // order; the rest queue behind them, also in stream order.
        assert!(run
            .served
            .windows(2)
            .all(|w| w[0].started_at <= w[1].started_at));
        for r in &run.served[..3] {
            assert_eq!(r.started_at, 0.0, "first wave admits at the burst");
        }
        for r in &run.served[3..] {
            assert!(r.queue_delay() > 0.0, "overflow waits for capacity");
        }
    }
}

// ---------------------------------------------------------------------
// Anchor 3: the global-timeline scheduler with both honesty features
// disabled (`TimelineConfig::anchored`) reproduces `EventServerSim`
// bit for bit — the timeline records segments purely as an observer.
// ---------------------------------------------------------------------

fn check_timeline_anchor(
    label: &str,
    seed: u64,
    memory_fraction: f64,
    arrivals: &[RequestArrival],
    n: usize,
    event: EventConfig,
    plan: &FaultPlan,
) {
    let reference = EventServerSim::new(
        server(seed, memory_fraction),
        n,
        SearchKind::BeamSearch,
        event,
    )
    .run_faulted(arrivals, plan)
    .expect("event run");
    let timeline = TimelineServerSim::new(
        server(seed, memory_fraction),
        n,
        SearchKind::BeamSearch,
        TimelineConfig::anchored(event),
    )
    .run_faulted(arrivals, plan)
    .expect("timeline run");
    assert_runs_identical(label, &reference, &timeline);
    assert_eq!(
        reference.kernel_faults, timeline.kernel_faults,
        "{label}: fault counters"
    );
    assert_eq!(
        reference.lost_blocks, timeline.lost_blocks,
        "{label}: kv loss"
    );
    assert!(
        timeline.timeline.segments > 0,
        "{label}: the observer still records segments"
    );
    assert_eq!(
        timeline.timeline.stretch_secs, 0.0,
        "{label}: anchored mode never stretches"
    );
    // The reference scheduler records nothing.
    assert_eq!(reference.timeline.segments, 0);
}

#[test]
fn timeline_anchored_matches_event_fault_free() {
    let problems = Dataset::Amc2023.problems(6, 41);
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);
    for window in [0.0, 0.1, 1.0] {
        check_timeline_anchor(
            &format!("anchored window {window}"),
            5,
            0.9,
            &arrivals,
            16,
            EventConfig::windowed(8, window),
            &FaultPlan::none(),
        );
    }
}

#[test]
fn timeline_anchored_matches_event_under_fault_storm() {
    let problems = Dataset::Amc2023.problems(5, 29);
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);
    let plan = FaultPlan::storm(0xBEEF, 80.0, &StormConfig::default());
    check_timeline_anchor(
        "anchored faulted",
        17,
        0.9,
        &arrivals,
        16,
        EventConfig::windowed(8, 0.1),
        &plan,
    );
}

#[test]
fn timeline_anchored_matches_event_with_host_tier() {
    // The PR-7 pressure fixture: a tight pool plus an enabled host
    // tier, so preemption swap-downs, parks and warm readmissions all
    // exercise identically through the timeline loop.
    let problems = Dataset::Aime2024.problems(4, 51);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    let tiered = BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(1 << 30));
    check_timeline_anchor(
        "anchored tiered",
        13,
        0.30,
        &arrivals,
        24,
        EventConfig::new(tiered, 0.2),
        &FaultPlan::none(),
    );
}

#[test]
fn timeline_batch1_matches_serversim() {
    // Batch 1 collapses the whole stack: the anchored timeline loop
    // must still reproduce the FIFO `ServerSim` exactly, like the
    // lockstep and event schedulers do.
    let problems = Dataset::Amc2023.problems(3, 33);
    let arrivals = ArrivalPattern::Uniform { interval: 0.5 }.schedule(&problems, 0);
    let fifo = ServerSim::new(server(11, 0.9), 8, SearchKind::BeamSearch)
        .run(&arrivals)
        .expect("fifo run");
    for window in [0.0, 0.5, f64::INFINITY] {
        let timeline = TimelineServerSim::new(
            server(11, 0.9),
            8,
            SearchKind::BeamSearch,
            TimelineConfig::anchored(EventConfig::new(BatchConfig::fifo(), window)),
        )
        .run(&arrivals)
        .expect("timeline run");
        assert_served_identical(
            &format!("timeline batch-1 (window {window})"),
            &fifo,
            &timeline.served,
        );
    }
}

// ---------------------------------------------------------------------
// Honest-mode attribution: contention joins the conservation identity,
// join waits stay a slice of idle.
// ---------------------------------------------------------------------

#[test]
fn honest_timeline_conserves_time_and_prices_overlap() {
    let problems = Dataset::Amc2023.problems(6, 41);
    let arrivals = ArrivalPattern::Uniform { interval: 0.5 }.schedule(&problems, 0);
    let event = EventConfig::windowed(6, 0.0);
    let honest = TimelineServerSim::new(
        server(5, 0.9),
        16,
        SearchKind::BeamSearch,
        TimelineConfig::honest(event),
    )
    .run(&arrivals)
    .expect("honest run");
    assert_time_conserved("honest timeline", &honest.served);
    let stretched: f64 = honest
        .served
        .iter()
        .map(|r| r.outcome.stats.breakdown().contention)
        .sum();
    assert!(
        stretched > 0.0,
        "window-0 overlap under load must book contention stretch"
    );
    assert!(
        honest.timeline.stretch_secs > 0.0,
        "segments already on the timeline must stretch retroactively"
    );
    // The iteration-granularity reference books none.
    let anchored = TimelineServerSim::new(
        server(5, 0.9),
        16,
        SearchKind::BeamSearch,
        TimelineConfig::anchored(event),
    )
    .run(&arrivals)
    .expect("anchored run");
    for r in &anchored.served {
        assert_eq!(r.outcome.stats.breakdown().contention, 0.0);
    }
}

#[test]
fn token_join_timeline_conserves_time() {
    let problems = Dataset::Amc2023.problems(6, 41);
    let arrivals = ArrivalPattern::Uniform { interval: 0.5 }.schedule(&problems, 0);
    let joins = TimelineServerSim::new(
        server(5, 0.9),
        16,
        SearchKind::BeamSearch,
        TimelineConfig::honest(EventConfig::windowed(6, 0.0))
            .with_token_joins()
            .with_join_quantum(8),
    )
    .run(&arrivals)
    .expect("joins run");
    assert_time_conserved("token-join timeline", &joins.served);
    for r in &joins.served {
        let b = r.outcome.stats.breakdown();
        assert!(
            b.join_wait <= b.idle + 1e-9,
            "join_wait must stay a slice of idle"
        );
    }
}
