//! Per-tenant fair-share integration regressions: hard KV caps hold at
//! every rebalance boundary (audited through the per-tenant peak
//! grants), capping a noisy tenant protects its neighbour, per-tenant
//! admission quotas do not block other tenants' arrivals, and tenanted
//! runs stay bit-deterministic.

use ftts_core::{
    BatchConfig, BatchRun, BatchedServerSim, EventConfig, EventServerSim, TenantPolicy, TenantSpec,
    TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

/// The noisy-neighbor fixture: tenant 0 (the victim) trickles shallow
/// AMC requests in at a steady cadence; tenant 1 (the noisy one) dumps
/// a burst of deep AIME searches at t=0 that, uncapped, would hold most
/// of the KV pool for the whole run.
fn noisy_neighbor_arrivals() -> Vec<RequestArrival> {
    let victim = Dataset::Amc2023.problems(4, 11);
    let noisy = Dataset::Aime2024.problems(3, 13);
    let mut arrivals: Vec<RequestArrival> = ArrivalPattern::Burst { at: 0.0 }
        .schedule(&noisy, 0)
        .into_iter()
        .map(|a| a.with_tenant(1))
        .collect();
    arrivals.extend(
        ArrivalPattern::Uniform { interval: 2.0 }
            .schedule(&victim, 0)
            .iter()
            .cloned()
            .map(|a| a.with_tenant(0)),
    );
    arrivals.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite arrival times"));
    arrivals
}

fn victim_mean_latency(run: &BatchRun, arrivals: &[RequestArrival]) -> f64 {
    let lats: Vec<f64> = run
        .served
        .iter()
        .zip(arrivals)
        .filter(|(_, a)| a.tenant == 0)
        .map(|(r, _)| r.finished_at - r.arrived_at)
        .collect();
    lats.iter().sum::<f64>() / lats.len() as f64
}

#[test]
fn tenant_caps_hold_and_protect_the_victim() {
    let arrivals = noisy_neighbor_arrivals();
    let pool = server(7, 0.45).config().kv_budget_bytes();
    let cap = pool / 4;
    let policy = TenantPolicy::new(&[
        TenantSpec {
            id: 0,
            weight: 1,
            kv_cap_bytes: u64::MAX,
            max_in_flight: 0,
        },
        TenantSpec {
            id: 1,
            weight: 1,
            kv_cap_bytes: cap,
            max_in_flight: 0,
        },
    ]);
    let run = |config: BatchConfig| {
        BatchedServerSim::new(server(7, 0.45), 12, SearchKind::BeamSearch, config)
            .run(&arrivals)
            .expect("run")
    };
    let uncapped = run(BatchConfig::fused(4));
    let capped = run(BatchConfig::fused(4).with_tenants(policy));

    // The hard cap held at every boundary the whole run: the noisy
    // tenant's peak steady-state grant never exceeded it.
    let peak = |r: &BatchRun, t: u32| {
        r.tenant_peak_bytes
            .iter()
            .find(|&&(id, _)| id == t)
            .map_or(0, |&(_, b)| b)
    };
    assert!(
        peak(&capped, 1) <= cap,
        "noisy tenant peak {} must stay within its cap {cap}",
        peak(&capped, 1)
    );
    assert!(peak(&capped, 1) > 0, "the noisy tenant did run");
    assert!(
        peak(&uncapped, 1) == 0,
        "without a policy no tenant grants are recorded"
    );
    assert!(capped.peak_reserved_bytes <= capped.pool_bytes);
    assert_eq!(capped.final_reserved_bytes, 0, "no leaked reservations");

    // Everyone is still served (caps squeeze, never starve)...
    assert_eq!(capped.served.len(), arrivals.len());
    // ...and the victim tenant is measurably better off with the noisy
    // neighbour confined to its cap.
    let (v_capped, v_uncapped) = (
        victim_mean_latency(&capped, &arrivals),
        victim_mean_latency(&uncapped, &arrivals),
    );
    assert!(
        v_capped < v_uncapped,
        "victim mean latency {v_capped} must improve on the uncapped {v_uncapped}"
    );
}

#[test]
fn admission_quota_limits_one_tenant_without_blocking_the_other() {
    // Tenant 1 bursts 4 requests with an in-flight quota of 1; tenant 0
    // arrives shortly after. Without the quota filter tenant 0's
    // arrival would queue behind tenant 1's backlog (FIFO head-only
    // admission); with it, tenant 0 admits as soon as a slot is free.
    let noisy = Dataset::Amc2023.problems(4, 5);
    let victim = Dataset::Amc2023.problems(1, 21);
    let mut arrivals: Vec<RequestArrival> = ArrivalPattern::Burst { at: 0.0 }
        .schedule(&noisy, 0)
        .into_iter()
        .map(|a| a.with_tenant(1))
        .collect();
    arrivals.extend(
        ArrivalPattern::Burst { at: 0.1 }
            .schedule(&victim, 0)
            .iter()
            .cloned()
            .map(|a| a.with_tenant(0)),
    );
    let policy = TenantPolicy::new(&[
        TenantSpec {
            id: 0,
            weight: 1,
            kv_cap_bytes: u64::MAX,
            max_in_flight: 0,
        },
        TenantSpec {
            id: 1,
            weight: 1,
            kv_cap_bytes: u64::MAX,
            max_in_flight: 1,
        },
    ]);
    let run = BatchedServerSim::new(
        server(3, 0.9),
        8,
        SearchKind::BeamSearch,
        BatchConfig::fused(4).with_tenants(policy),
    )
    .run(&arrivals)
    .expect("run");
    assert_eq!(run.served.len(), 5, "everyone is eventually served");
    // The victim (arrival index 4) starts while tenant 1's backlog is
    // still queued: it must not wait for all four noisy requests.
    let victim_start = run.served[4].started_at;
    let noisy_last_finish = run.served[..4]
        .iter()
        .map(|r| r.finished_at)
        .fold(0.0f64, f64::max);
    assert!(
        victim_start < noisy_last_finish,
        "the quota must not make tenant 0 wait out tenant 1's backlog \
         (start {victim_start} vs backlog drain {noisy_last_finish})"
    );
}

#[test]
fn tenanted_runs_are_deterministic_across_replays() {
    let arrivals = noisy_neighbor_arrivals();
    let pool = server(7, 0.4).config().kv_budget_bytes();
    let policy = TenantPolicy::new(&[
        TenantSpec {
            id: 0,
            weight: 3,
            kv_cap_bytes: u64::MAX,
            max_in_flight: 0,
        },
        TenantSpec {
            id: 1,
            weight: 1,
            kv_cap_bytes: pool / 3,
            max_in_flight: 2,
        },
    ]);
    let config = EventConfig::new(BatchConfig::fused(4).with_tenants(policy), 0.2);
    let go = || {
        EventServerSim::new(server(7, 0.4), 12, SearchKind::BeamSearch, config)
            .run(&arrivals)
            .expect("run")
    };
    let (a, b) = (go(), go());
    assert_eq!(a.tenant_peak_bytes, b.tenant_peak_bytes);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.preemptions, b.preemptions);
    for (x, y) in a.served.iter().zip(&b.served) {
        assert_eq!(x.finished_at, y.finished_at);
        assert_eq!(x.outcome.answer, y.outcome.answer);
        assert_eq!(x.accepted_tokens(), y.accepted_tokens());
    }
}
