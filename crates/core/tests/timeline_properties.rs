//! Property tests for the global device timeline (PR 10):
//!
//! 1. **Segment conservation**: for any recorded segment set, the
//!    occupancy roll-up satisfies `busy + idle == span` exactly, the
//!    busy union never exceeds the span or the per-kind sums, and the
//!    per-kind sums partition the total recorded duration.
//! 2. **No negative overlap**: every segment has `end >= start`, the
//!    union is non-negative, and peak concurrency never exceeds the
//!    number of segments.
//! 3. **Stretch monotonicity**: retroactive contention stretch never
//!    shrinks a segment — ends only move right, and the roll-up's
//!    `stretch_secs` accounts every applied second.
//! 4. **Run determinism**: a `(workload seed, storm, mode)` triple
//!    fully determines a `TimelineServerSim` run — honest contention
//!    pricing and token-granularity joins replay bit-identically.
//! 5. **Conservation under honesty**: per served request,
//!    `queue_delay + breakdown.total()` equals arrival-to-completion
//!    wall-clock in every timeline mode; `join_wait` stays a slice of
//!    `idle`.

use ftts_core::{
    DeviceTimeline, EventConfig, FaultPlan, SegmentKind, StormConfig, TimelineConfig,
    TimelineServerSim, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset};
use proptest::prelude::*;

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

fn kind_of(tag: u8) -> SegmentKind {
    match tag % 3 {
        0 => SegmentKind::Decode,
        1 => SegmentKind::Verify,
        _ => SegmentKind::Swap,
    }
}

/// Map centisecond integers (the shim has no float strategies) to
/// seconds.
fn secs(centi: u64) -> f64 {
    centi as f64 / 100.0
}

fn timeline_run(
    seed: u64,
    count: usize,
    storm: &StormConfig,
    config: TimelineConfig,
) -> ftts_core::BatchRun {
    let problems = Dataset::Amc2023.problems(count, seed);
    let arrivals = ArrivalPattern::Uniform { interval: 0.5 }.schedule(&problems, 0);
    let plan = FaultPlan::storm(seed ^ 0xA11CE, 60.0, storm);
    TimelineServerSim::new(server(seed, 0.9), 8, SearchKind::BeamSearch, config)
        .run_faulted(&arrivals, &plan)
        .expect("timeline run completes")
}

fn quiet_storm() -> StormConfig {
    StormConfig {
        kernel_faults: 0,
        slowdowns: 0,
        kv_losses: 0,
        ..StormConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn occupancy_conserves_span_and_partitions_kinds(
        segs in prop::collection::vec((0u64..10_000, 0u64..1_000, 0u8..6), 1..40),
    ) {
        let mut tl = DeviceTimeline::default();
        let mut total_dur = 0.0f64;
        for &(start, dur, tag) in &segs {
            tl.record(secs(start), secs(dur), kind_of(tag), usize::from(tag) + 1);
            total_dur += secs(dur);
        }
        let occ = tl.occupancy();
        prop_assert_eq!(occ.segments, segs.len() as u64);
        // busy + idle == span, exactly (idle is defined as the clamped
        // difference).
        prop_assert!((occ.busy_secs + occ.idle_secs() - occ.span_secs).abs() <= 1e-9);
        // The union never exceeds the span nor the summed durations.
        prop_assert!(occ.busy_secs <= occ.span_secs + 1e-9);
        prop_assert!(occ.busy_secs <= total_dur + 1e-9);
        // Per-kind sums partition the total recorded duration.
        let kinds = occ.decode_secs + occ.verify_secs + occ.swap_secs;
        prop_assert!((kinds - total_dur).abs() <= 1e-6 * total_dur.max(1.0));
        // No negative overlap, bounded concurrency.
        prop_assert!(occ.busy_secs >= 0.0);
        prop_assert!(occ.max_concurrency >= 1);
        prop_assert!(occ.max_concurrency as usize <= segs.len());
        prop_assert!(occ.utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn stretch_never_shrinks_any_segment(
        segs in prop::collection::vec((0u64..5_000, 0u64..500), 1..20),
        stretches in prop::collection::vec((0usize..20, 0u64..300), 0..30),
    ) {
        let mut tl = DeviceTimeline::default();
        for &(start, dur) in &segs {
            tl.record(secs(start), secs(dur), SegmentKind::Decode, 1);
        }
        let before: Vec<f64> = tl.segments().iter().map(|s| s.end).collect();
        let mut applied = 0.0f64;
        for &(id, extra) in &stretches {
            let id = id % segs.len();
            tl.stretch(id, secs(extra));
            applied += secs(extra);
        }
        for (s, &b) in tl.segments().iter().zip(&before) {
            prop_assert!(s.end >= b, "stretch moved an end left");
            prop_assert!(s.end >= s.start, "stretch broke segment ordering");
        }
        let occ = tl.occupancy();
        prop_assert!((occ.stretch_secs - applied).abs() <= 1e-9 * applied.max(1.0));
    }

    #[test]
    fn timeline_runs_are_bit_deterministic(
        count in 2usize..4,
        kernel_faults in 0usize..4,
        slowdowns in 0usize..2,
        seed in 0u64..500,
        joins in any::<bool>(),
    ) {
        // Faults stay launch-granularity; keep the faulted determinism
        // check on the iteration path and the joins check fault-free.
        let base = TimelineConfig::honest(EventConfig::windowed(4, 0.0));
        let (config, storm) = if joins {
            (base.with_token_joins().with_join_quantum(8), quiet_storm())
        } else {
            (base, StormConfig {
                kernel_faults,
                slowdowns,
                kv_losses: 0,
                ..StormConfig::default()
            })
        };
        let a = timeline_run(seed, count, &storm, config);
        let b = timeline_run(seed, count, &storm, config);
        prop_assert_eq!(a.served.len(), b.served.len());
        for (x, y) in a.served.iter().zip(&b.served) {
            prop_assert_eq!(x.started_at, y.started_at);
            prop_assert_eq!(x.finished_at, y.finished_at);
            prop_assert_eq!(x.outcome.answer.clone(), y.outcome.answer.clone());
            prop_assert_eq!(
                &x.outcome.stats.completion.breakdown,
                &y.outcome.stats.completion.breakdown
            );
        }
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.group_iters, b.group_iters);
        prop_assert_eq!(a.timeline, b.timeline);
    }

    #[test]
    fn honest_modes_conserve_wall_clock(
        count in 2usize..5,
        seed in 0u64..500,
        mode in 0u8..3,
    ) {
        let event = EventConfig::windowed(4, 0.0);
        let config = match mode {
            0 => TimelineConfig::anchored(event),
            1 => TimelineConfig::honest(event),
            _ => TimelineConfig::honest(event).with_token_joins().with_join_quantum(8),
        };
        let run = timeline_run(seed, count, &quiet_storm(), config);
        for (i, r) in run.served.iter().enumerate() {
            let b = r.outcome.stats.breakdown();
            let accounted = r.queue_delay() + b.total();
            let wall = r.finished_at - r.arrived_at;
            prop_assert!(
                (accounted - wall).abs() <= 1e-9 * wall.max(1.0),
                "request {} (mode {}): accounted {} != wall {}",
                i, mode, accounted, wall
            );
            prop_assert!(b.join_wait <= b.idle + 1e-9);
            prop_assert!(b.contention >= 0.0);
        }
        // The timeline roll-up stays internally consistent on real runs.
        let occ = run.timeline;
        prop_assert!(occ.busy_secs <= occ.span_secs + 1e-9);
        prop_assert!((occ.busy_secs + occ.idle_secs() - occ.span_secs).abs() <= 1e-9);
    }
}
