//! End-to-end tests of the serving loop with a minimal beam-search driver.

use ftts_engine::{
    Engine, EngineConfig, FifoOrder, ModelPairing, RunStats, ScoredBeam, SearchDriver, SelectCtx,
    SpecConfig, StaticSplitPlanner, StepStatus,
};
use ftts_hw::GpuDevice;
use ftts_workload::Dataset;

/// Plain beam search: keep the top n/B beams, expand each into B children.
struct PlainBeam {
    n: usize,
    b: usize,
}

impl SearchDriver for PlainBeam {
    fn branching(&self) -> usize {
        self.b
    }

    fn select(
        &mut self,
        frontier: &[ScoredBeam],
        _ctx: &SelectCtx,
    ) -> Vec<(ftts_engine::BeamId, usize)> {
        let mut ranked: Vec<&ScoredBeam> = frontier.iter().collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        let keep = (self.n / self.b).max(1).min(ranked.len());
        ranked[..keep].iter().map(|s| (s.id, self.b)).collect()
    }
}

fn engine(spec: SpecConfig, fraction: f64, seed: u64, trace: bool) -> Engine {
    let mut cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    cfg.spec = spec;
    // LookAhead piggybacks on the verifier's cross-iteration cache.
    cfg.ver_prefix_caching = spec.enabled && spec.lookahead;
    cfg.memory_fraction = fraction;
    cfg.seed = seed;
    cfg.trace = trace;
    Engine::new(cfg, Box::new(FifoOrder), Box::new(StaticSplitPlanner))
}

fn problem(idx: usize) -> ftts_model::ProblemSpec {
    Dataset::Aime2024.problems(idx + 1, 42)[idx]
}

#[test]
fn run_completes_and_records_outcomes() {
    let mut eng = engine(SpecConfig::disabled(), 0.9, 1, false);
    let mut driver = PlainBeam { n: 16, b: 4 };
    let stats = eng.run(&problem(0), 16, &mut driver).unwrap();
    assert!(!stats.beams.is_empty(), "some beams must complete");
    assert!(stats.latency() > 0.0);
    assert!(stats.goodput() > 0.0);
    assert!(stats.iterations > 0);
    assert!(stats.decoded_tokens > 0);
    assert!(stats.verified_tokens > 0);
    // Generator and verifier both contribute latency.
    assert!(stats.breakdown().generator > 0.0);
    assert!(stats.breakdown().verifier > 0.0);
}

#[test]
fn runs_are_deterministic() {
    let collect = || {
        let mut eng = engine(SpecConfig::disabled(), 0.9, 7, false);
        let mut driver = PlainBeam { n: 8, b: 4 };
        eng.run(&problem(1), 8, &mut driver).unwrap()
    };
    let a = collect();
    let b = collect();
    assert_eq!(a.beams.len(), b.beams.len());
    assert_eq!(a.latency(), b.latency());
    for (x, y) in a.beams.iter().zip(&b.beams) {
        assert_eq!(x.tokens, y.tokens);
        assert_eq!(x.answer, y.answer);
        assert_eq!(x.score, y.score);
    }
}

#[test]
fn speculation_preserves_the_reasoning_tree_exactly() {
    // The central algorithmic-equivalence property (paper Sec. 4.1):
    // identical selected paths, answers and scores; only timing differs.
    let run = |spec: SpecConfig| {
        let mut eng = engine(spec, 0.9, 11, false);
        let mut driver = PlainBeam { n: 16, b: 4 };
        eng.run(&problem(2), 16, &mut driver).unwrap()
    };
    let base = run(SpecConfig::disabled());
    let fast = run(SpecConfig::fasttts_default());
    assert_eq!(base.beams.len(), fast.beams.len());
    for (x, y) in base.beams.iter().zip(&fast.beams) {
        assert_eq!(x.tokens, y.tokens, "path lengths must match");
        assert_eq!(x.answer, y.answer, "answers must match");
        assert_eq!(x.score, y.score, "scores must match");
    }
    assert!(fast.spec.spec_tokens > 0, "speculation must have happened");
    assert!(
        fast.latency() < base.latency(),
        "speculation should reduce latency: {} vs {}",
        fast.latency(),
        base.latency()
    );
}

#[test]
fn lookahead_skips_verifications() {
    let mut eng = engine(SpecConfig::fasttts_default(), 0.9, 3, false);
    let mut driver = PlainBeam { n: 32, b: 4 };
    let stats = eng.run(&problem(0), 32, &mut driver).unwrap();
    assert!(
        stats.spec.lookahead_hits > 0,
        "some steps should be pre-verified"
    );
}

#[test]
fn memory_pressure_causes_evictions_but_completes() {
    let mut eng = engine(SpecConfig::disabled(), 0.32, 5, false);
    let mut driver = PlainBeam { n: 64, b: 4 };
    let stats = eng.run(&problem(0), 64, &mut driver).unwrap();
    assert!(
        stats.gen_cache.evicted_blocks > 0,
        "64 beams at 40% memory must evict"
    );
    assert!(
        stats.breakdown().recompute > 0.0,
        "evictions cost recompute time"
    );
    assert!(!stats.beams.is_empty());
}

#[test]
fn preemption_deadline_disables_speculation() {
    let mut eng = engine(SpecConfig::fasttts_default(), 0.9, 3, false);
    let mut driver = PlainBeam { n: 16, b: 4 };
    let stats = eng
        .run_with_deadline(&problem(0), 16, &mut driver, 0.0)
        .unwrap();
    assert_eq!(
        stats.spec.spec_tokens, 0,
        "deadline at t=0 forbids all speculation"
    );
}

#[test]
fn trace_records_both_phases() {
    let mut eng = engine(SpecConfig::disabled(), 0.9, 1, true);
    let mut driver = PlainBeam { n: 8, b: 4 };
    let stats = eng.run(&problem(0), 8, &mut driver).unwrap();
    let trace = stats.trace.expect("trace enabled");
    assert!(!trace.is_empty());
    assert!(trace.phase_seconds(ftts_hw::Phase::Generation) > 0.0);
    assert!(trace.phase_seconds(ftts_hw::Phase::Verification) > 0.0);
    // Prefill (verification) achieves higher compute utilization than
    // bandwidth-bound decode — the contrast of Fig. 4.
    let gen_util = trace.mean_util(Some(ftts_hw::Phase::Generation));
    let ver_util = trace.mean_util(Some(ftts_hw::Phase::Verification));
    assert!(
        ver_util > gen_util,
        "verify {ver_util} vs generate {gen_util}"
    );
}

#[test]
fn larger_n_generates_more_tokens() {
    let run_tokens = |n: usize| {
        let mut eng = engine(SpecConfig::disabled(), 0.9, 1, false);
        let mut driver = PlainBeam { n, b: 4 };
        eng.run(&problem(3), n, &mut driver).unwrap().decoded_tokens
    };
    assert!(run_tokens(32) > 2 * run_tokens(8));
}

fn assert_stats_identical(a: &RunStats, b: &RunStats) {
    assert_eq!(a.latency(), b.latency());
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.decoded_tokens, b.decoded_tokens);
    assert_eq!(a.verified_tokens, b.verified_tokens);
    assert_eq!(a.gen_cache, b.gen_cache);
    assert_eq!(a.ver_cache, b.ver_cache);
    assert_eq!(a.beams.len(), b.beams.len());
    for (x, y) in a.beams.iter().zip(&b.beams) {
        assert_eq!(x.tokens, y.tokens);
        assert_eq!(x.completion_time, y.completion_time);
        assert_eq!(x.answer, y.answer);
        assert_eq!(x.score, y.score);
    }
}

#[test]
fn stepped_run_matches_one_shot_run() {
    // `Engine::begin` + `step` loop is the same state machine `run`
    // drives; decomposing it must not change a single bit.
    let one_shot = {
        let mut eng = engine(SpecConfig::fasttts_default(), 0.9, 11, false);
        let mut driver = PlainBeam { n: 16, b: 4 };
        eng.run(&problem(2), 16, &mut driver).unwrap()
    };
    let stepped = {
        let eng = engine(SpecConfig::fasttts_default(), 0.9, 11, false);
        let mut driver = PlainBeam { n: 16, b: 4 };
        let mut run = eng
            .begin(&problem(2), 16, &mut driver, f64::INFINITY, None)
            .unwrap();
        let mut steps = 0u32;
        while run.step(&mut driver).unwrap() == StepStatus::Running {
            steps += 1;
        }
        assert!(steps > 0, "multi-iteration request");
        assert!(run.is_finished());
        run.finish()
    };
    assert_stats_identical(&one_shot, &stepped);
}

#[test]
fn split_phases_match_step_bit_for_bit() {
    // `step` is a wrapper over plan_iteration / take_verify_batch /
    // apply_verify_results with solo-costed sweeps; driving the phases
    // explicitly (as a cross-request scheduler does) must not change a
    // single bit.
    use ftts_engine::{VerifyCharge, VerifyChunk};
    let stepped = {
        let mut eng = engine(SpecConfig::fasttts_default(), 0.9, 11, false);
        let mut driver = PlainBeam { n: 16, b: 4 };
        eng.run(&problem(2), 16, &mut driver).unwrap()
    };
    let phased = {
        let eng = engine(SpecConfig::fasttts_default(), 0.9, 11, false);
        let mut driver = PlainBeam { n: 16, b: 4 };
        let mut run = eng
            .begin(&problem(2), 16, &mut driver, f64::INFINITY, None)
            .unwrap();
        let mut sweeps = 0usize;
        while !run.is_finished() {
            if run.plan_iteration(&mut driver).unwrap().is_finished() {
                break;
            }
            let chunks: Vec<VerifyChunk> = run.take_verify_batch().to_vec();
            let charges: Vec<VerifyCharge> = chunks
                .iter()
                .map(|c| VerifyCharge::full(&c.solo_cost(run.verifier_roofline())))
                .collect();
            sweeps += charges.len();
            if run
                .apply_verify_results(&mut driver, &charges)
                .unwrap()
                .is_finished()
            {
                break;
            }
        }
        assert!(sweeps > 0, "the request actually verified something");
        run.finish()
    };
    assert_stats_identical(&stepped, &phased);
    assert_eq!(stepped.ver_sweeps, phased.ver_sweeps);
    assert_eq!(stepped.completion.breakdown, phased.completion.breakdown);
}

#[test]
fn split_phases_are_reentrant_across_out_of_order_costing() {
    // An event-driven scheduler interleaves the split phases of
    // different requests in launch order, not admission order: request
    // B may plan, cost and commit a whole iteration while request A
    // sits between its own plan and commit. Each run owns its phase
    // position, so any interleaving must leave both runs bit-identical
    // to stepping them alone.
    use ftts_engine::{RunPhase, VerifyCharge, VerifyChunk};
    let solo = |seed_problem: usize| {
        let mut eng = engine(SpecConfig::fasttts_default(), 0.9, 11, false);
        let mut driver = PlainBeam { n: 8, b: 4 };
        eng.run(&problem(seed_problem), 8, &mut driver).unwrap()
    };
    let (solo_a, solo_b) = (solo(2), solo(5));

    let mut driver_a = PlainBeam { n: 8, b: 4 };
    let mut driver_b = PlainBeam { n: 8, b: 4 };
    let mut run_a = engine(SpecConfig::fasttts_default(), 0.9, 11, false)
        .begin(&problem(2), 8, &mut driver_a, f64::INFINITY, None)
        .unwrap();
    let mut run_b = engine(SpecConfig::fasttts_default(), 0.9, 11, false)
        .begin(&problem(5), 8, &mut driver_b, f64::INFINITY, None)
        .unwrap();
    let cost_and_commit = |run: &mut ftts_engine::RequestRun, driver: &mut PlainBeam| {
        let chunks: Vec<VerifyChunk> = run.take_verify_batch().to_vec();
        let charges: Vec<VerifyCharge> = chunks
            .iter()
            .map(|c| VerifyCharge::full(&c.solo_cost(run.verifier_roofline())))
            .collect();
        run.apply_verify_results(driver, &charges).unwrap();
    };
    let mut interleaved = 0u32;
    while !(run_a.is_finished() && run_b.is_finished()) {
        // A plans, then B runs 1-2 complete iterations *inside* A's
        // open iteration, then A finishes costing — out-of-order
        // costing across requests.
        let a_open =
            !run_a.is_finished() && !run_a.plan_iteration(&mut driver_a).unwrap().is_finished();
        if a_open {
            assert_eq!(run_a.run_phase(), RunPhase::Generated);
        }
        for _ in 0..2 {
            if !run_b.is_finished() && !run_b.plan_iteration(&mut driver_b).unwrap().is_finished() {
                cost_and_commit(&mut run_b, &mut driver_b);
                assert_eq!(run_b.run_phase(), RunPhase::Ready);
            }
        }
        if a_open {
            cost_and_commit(&mut run_a, &mut driver_a);
            interleaved += 1;
        }
    }
    assert!(interleaved > 0, "iterations actually interleaved");
    assert_stats_identical(&solo_a, &run_a.finish());
    assert_stats_identical(&solo_b, &run_b.finish());
}

#[test]
fn first_finish_cut_prunes_siblings_and_finishes_early() {
    let full = {
        let mut eng = engine(SpecConfig::disabled(), 0.9, 5, false);
        let mut driver = PlainBeam { n: 16, b: 4 };
        eng.run(&problem(0), 16, &mut driver).unwrap()
    };
    let cut = {
        let eng = engine(SpecConfig::disabled(), 0.9, 5, false);
        let mut driver = PlainBeam { n: 16, b: 4 };
        let mut run = eng
            .begin(&problem(0), 16, &mut driver, f64::INFINITY, None)
            .unwrap();
        while !run.is_finished() {
            run.step(&mut driver).unwrap();
            // Bar 0.0: cut as soon as the first verified beam completes.
            if !run.is_finished() && run.first_finish_cut(0.0) {
                break;
            }
        }
        run.finish()
    };
    assert!(!cut.beams.is_empty(), "the accepted beam survives the cut");
    assert!(
        cut.beams.len() < full.beams.len(),
        "siblings were cancelled: {} vs {}",
        cut.beams.len(),
        full.beams.len()
    );
    assert_eq!(cut.first_finish_cuts, 1);
    assert_eq!(full.first_finish_cuts, 0, "non-opted runs never cut");
    assert!(
        cut.latency() < full.latency(),
        "cutting siblings finishes the request early"
    );
    // The beams that did complete are the same beams the full run
    // completed first — the cut cancels futures, never rewrites pasts.
    for (c, f) in cut.beams.iter().zip(&full.beams) {
        assert_eq!(c.tokens, f.tokens);
        assert_eq!(c.answer, f.answer);
        assert_eq!(c.score, f.score);
    }
}

#[test]
fn interleaved_requests_share_no_state() {
    // Two requests served step-by-step by interleaving on one simulated
    // device: each run owns its Scratch, caches and policy state, so
    // interleaving must reproduce the isolated runs exactly — no
    // cross-request leakage through recycled containers.
    let standalone = |idx: usize, seed: u64| {
        let mut eng = engine(SpecConfig::disabled(), 0.9, seed, false);
        let mut driver = PlainBeam { n: 8, b: 4 };
        eng.run(&problem(idx), 8, &mut driver).unwrap()
    };
    let solo_a = standalone(0, 5);
    let solo_b = standalone(1, 6);

    let mut driver_a = PlainBeam { n: 8, b: 4 };
    let mut driver_b = PlainBeam { n: 8, b: 4 };
    let mut run_a = engine(SpecConfig::disabled(), 0.9, 5, false)
        .begin(&problem(0), 8, &mut driver_a, f64::INFINITY, None)
        .unwrap();
    let mut run_b = engine(SpecConfig::disabled(), 0.9, 6, false)
        .begin(&problem(1), 8, &mut driver_b, f64::INFINITY, None)
        .unwrap();
    let mut interleaves = 0u32;
    while !(run_a.is_finished() && run_b.is_finished()) {
        if !run_a.is_finished() {
            run_a.step(&mut driver_a).unwrap();
        }
        if !run_b.is_finished() {
            run_b.step(&mut driver_b).unwrap();
            interleaves += 1;
        }
    }
    assert!(interleaves > 1, "the runs actually interleaved");
    assert_stats_identical(&solo_a, &run_a.finish());
    assert_stats_identical(&solo_b, &run_b.finish());
}

#[test]
fn co_batched_decode_amortizes_the_weight_sweep() {
    // With co-resident sequences declared, a step takes longer on its
    // own clock (bigger combined batch) but far less than two isolated
    // requests run back to back — the continuous-batching win.
    let run_with_co = |co: usize| {
        let eng = engine(SpecConfig::disabled(), 0.9, 3, false);
        let mut driver = PlainBeam { n: 8, b: 4 };
        let mut run = eng
            .begin(&problem(0), 8, &mut driver, f64::INFINITY, None)
            .unwrap();
        while !run.is_finished() {
            let (seqs, ctx) = run.decode_load();
            run.set_co_batch(co * seqs.max(1), co as u64 * ctx);
            run.step(&mut driver).unwrap();
        }
        run.finish().latency()
    };
    let alone = run_with_co(0);
    let shared = run_with_co(1);
    assert!(shared > alone, "co-batching costs some per-request latency");
    assert!(
        shared < 1.5 * alone,
        "one co-resident clone must cost far less than a second pass: {shared} vs {alone}"
    );
}

#[test]
fn preempt_swaps_out_and_resumes_without_losing_tokens() {
    let eng = engine(SpecConfig::disabled(), 0.9, 7, false);
    let mut driver = PlainBeam { n: 8, b: 4 };
    let mut run = eng
        .begin(&problem(1), 8, &mut driver, f64::INFINITY, None)
        .unwrap();
    run.step(&mut driver).unwrap();
    let tokens_before = run.decoded_tokens();
    let clock_before = run.clock();
    let bytes = run.preempt();
    assert!(bytes > 0, "mid-flight KV must be resident to swap out");
    // The scheduler parks it, then resumes later at a new global time.
    run.sync_clock_to(clock_before + 5.0);
    while !run.is_finished() {
        run.step(&mut driver).unwrap();
    }
    let stats = run.finish();
    assert!(stats.decoded_tokens > tokens_before, "run kept generating");
    assert!(stats.latency() > clock_before + 5.0);
    assert_eq!(
        stats.completion.breakdown.idle, 5.0,
        "the preemption gap is accounted as idle time"
    );
    assert!(!stats.beams.is_empty());
}

#[test]
fn infeasible_memory_reports_path_exceeds() {
    let mut cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    // Weights + reserve exceed the usable fraction: KV budget is zero.
    cfg.memory_fraction = 0.26;
    let mut eng = Engine::new(cfg, Box::new(FifoOrder), Box::new(StaticSplitPlanner));
    let mut driver = PlainBeam { n: 8, b: 4 };
    let err = eng.run(&problem(0), 8, &mut driver);
    assert!(err.is_err(), "a ~0-byte KV budget cannot serve");
}
