//! Per-run statistics.

use ftts_hw::UtilizationTrace;
use ftts_kv::CacheStats;
use ftts_metrics::{precise_goodput, BeamOutcome, CompletionRecord, LatencyBreakdown};
use serde::{Deserialize, Serialize};

/// Counters specific to Speculative Beam Extension.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecStats {
    /// Speculative tokens generated in filled slots.
    pub spec_tokens: u64,
    /// Speculative tokens actually reused as head starts.
    pub spec_tokens_used: u64,
    /// Speculative branches started.
    pub spec_branches: u64,
    /// Steps whose verification was skipped thanks to LookAhead.
    pub lookahead_hits: u64,
    /// Speculative branches aborted by preemption.
    pub preempted_branches: u64,
}

impl SpecStats {
    /// Fraction of speculative tokens that turned out useful.
    pub fn efficiency(&self) -> f64 {
        if self.spec_tokens == 0 {
            0.0
        } else {
            self.spec_tokens_used as f64 / self.spec_tokens as f64
        }
    }
}

/// Counters for injected faults and the recovery work they caused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultRunStats {
    /// Transient kernel failures that hit this request's iterations.
    pub kernel_faults: u32,
    /// Retry attempts performed after kernel faults.
    pub retries: u32,
    /// Seconds spent waiting out exponential backoff between retries
    /// (a slice of `LatencyBreakdown::fault`).
    pub backoff_secs: f64,
    /// Extra seconds of kernel time under thermal-throttle slowdown
    /// windows (a slice of `LatencyBreakdown::fault`).
    pub slowdown_secs: f64,
    /// Device KV-loss events that hit this request while resident.
    pub kv_loss_events: u32,
    /// KV blocks dropped by those loss events (recovered by recompute).
    pub lost_blocks: u64,
}

/// Everything measured over one request.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Outcome of every completed beam.
    pub beams: Vec<BeamOutcome>,
    /// End-to-end completion record.
    pub completion: CompletionRecord,
    /// Number of TTS iterations executed.
    pub iterations: u32,
    /// Total tokens decoded by the generator (speculation included).
    pub decoded_tokens: u64,
    /// Total tokens prefilled by the verifier.
    pub verified_tokens: u64,
    /// Verifier prefill sweeps this request was charged for (fused
    /// sweeps shared with other requests count once per participant;
    /// their *seconds* are attributed without double-counting — see
    /// `LatencyBreakdown::verifier`).
    pub ver_sweeps: u64,
    /// Times the First Finish cut cancelled this request's sibling
    /// beams (0 unless the serving layer opted in).
    pub first_finish_cuts: u32,
    /// Generator KV-cache counters.
    pub gen_cache: CacheStats,
    /// Verifier KV-cache counters.
    pub ver_cache: CacheStats,
    /// Speculation counters.
    pub spec: SpecStats,
    /// Injected-fault counters.
    pub faults: FaultRunStats,
    /// Utilization trace (present when tracing was enabled).
    pub trace: Option<UtilizationTrace>,
    /// Ground-truth answer for accuracy computation.
    pub correct_answer: u32,
}

impl RunStats {
    /// Precise goodput over the completed beams (paper Sec. 6.1).
    pub fn goodput(&self) -> f64 {
        precise_goodput(&self.beams)
    }

    /// End-to-end completion latency, seconds.
    pub fn latency(&self) -> f64 {
        self.completion.latency
    }

    /// Phase breakdown.
    pub fn breakdown(&self) -> &LatencyBreakdown {
        &self.completion.breakdown
    }

    /// Final answers with scores, for majority voting.
    pub fn answers(&self) -> Vec<(u32, f64)> {
        self.beams
            .iter()
            .filter_map(|b| b.answer.map(|a| (a, b.score)))
            .collect()
    }

    /// `(score, correct)` pairs for Pass@N.
    pub fn candidates(&self) -> Vec<(f64, bool)> {
        self.beams.iter().map(|b| (b.score, b.correct)).collect()
    }

    /// Whether majority voting picks the right answer (Top-1).
    pub fn top1_correct(&self) -> bool {
        ftts_metrics::top1_majority(&self.answers()) == Some(self.correct_answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_efficiency_guards_zero() {
        assert_eq!(SpecStats::default().efficiency(), 0.0);
        let s = SpecStats {
            spec_tokens: 100,
            spec_tokens_used: 40,
            ..Default::default()
        };
        assert!((s.efficiency() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn run_stats_metrics_flow_through() {
        let stats = RunStats {
            beams: vec![
                BeamOutcome {
                    tokens: 200,
                    completion_time: 4.0,
                    answer: Some(0),
                    score: 0.8,
                    correct: true,
                },
                BeamOutcome {
                    tokens: 100,
                    completion_time: 2.0,
                    answer: Some(3),
                    score: 0.4,
                    correct: false,
                },
            ],
            correct_answer: 0,
            ..Default::default()
        };
        assert_eq!(stats.goodput(), 50.0);
        assert_eq!(stats.answers().len(), 2);
        assert_eq!(stats.candidates().len(), 2);
        // One vote each; tie breaks toward higher score -> answer 0.
        assert!(stats.top1_correct());
    }
}
