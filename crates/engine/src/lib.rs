//! Discrete-event TTS serving engine.
//!
//! This crate is the reproduction's stand-in for vLLM plus the paper's
//! baseline verifier-guided search runner (Sec. 6.1, "Baseline
//! Implementation"). It executes the abstract two-stage TTS loop the
//! paper identifies (Sec. 3.1) at *token granularity* on a simulated
//! clock:
//!
//! 1. **Generation** — every active reasoning path decodes its next
//!    thinking step. Paths are packed into KV-memory-fitting groups by a
//!    pluggable [`OrderPolicy`]; within a group, decoding is
//!    iteration-synchronous, so short paths finish early and leave GPU
//!    slots idle until the straggler completes (the paper's Challenge-1)
//!    — unless Speculative Beam Extension refills the slots
//!    ([`SpecConfig`]).
//! 2. **Verification** — a discriminative PRM prefills each new step in
//!    batches sized by the current [`MemoryPlan`]; with LookAhead
//!    enabled, completed speculative continuations piggyback on the same
//!    pass (Sec. 4.1.3).
//!
//! Selection and branching decisions are delegated to a [`SearchDriver`]
//! (implemented per TTS algorithm in `ftts-search`); memory partitioning
//! is delegated to a [`MemoryPlanner`] (the paper's roofline search lives
//! in `ftts-core`, a static split here as the baseline); and scheduling
//! order is delegated to an [`OrderPolicy`] (Dynamic Prefix-Aware
//! Scheduling lives in `ftts-core`, FIFO here as the baseline).
//!
//! All model behaviour is deterministic in the search-tree position (see
//! `ftts-model`), so two engines with different scheduling/speculation
//! settings produce **identical reasoning trees** — only the clock
//! differs. That property is tested, not assumed.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod beam;
mod config;
mod engine;
mod order;
mod planner;
mod stats;

pub use beam::{Beam, BeamId, BeamState, ScoredBeam};
pub use config::{EngineConfig, ModelPairing, SpecConfig};
pub use engine::{
    DecodeChunk, DecodeStatus, Engine, EngineError, RequestRun, RunPhase, SearchDriver, SelectCtx,
    StepStatus, VerifyCharge, VerifyChunk, WarmStart,
};
pub use order::{FifoOrder, OrderItem, OrderPolicy, RandomOrder};
pub use planner::{working_set_demand, MemoryPlan, MemoryPlanner, PlanContext, StaticSplitPlanner};
pub use stats::{FaultRunStats, RunStats, SpecStats};
