//! Scheduling-order policies for the generation and verification phases.
//!
//! The engine packs beams into KV-fitting groups *in the order a policy
//! yields them*, so ordering directly controls prefix-cache locality
//! (paper Sec. 3.2.2). The baseline policies here reproduce vLLM's
//! behaviour; FastTTS's Dynamic Prefix-Aware Scheduling implements this
//! trait in `ftts-core`.

use ftts_kv::{KvCache, NodeId};
use ftts_model::stream;
use rand::seq::SliceRandom;

/// A beam as seen by an ordering policy.
#[derive(Debug, Clone, Copy)]
pub struct OrderItem {
    /// Index into the engine's current frontier.
    pub index: usize,
    /// The beam's KV leaf.
    pub kv: NodeId,
    /// KV leaf of the beam's parent group (beams forked from the same
    /// parent share everything up to the fork).
    pub parent_kv: Option<NodeId>,
    /// Insertion order at branching time.
    pub born_rank: u32,
}

/// Orders the frontier before group packing.
pub trait OrderPolicy: std::fmt::Debug + Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Return the indices of `items` in scheduling order.
    fn order(&mut self, items: &[OrderItem], kv: &KvCache) -> Vec<usize>;
}

/// Insertion-order scheduling: beams are processed in the order branching
/// created them. Because selection interleaves subtrees, siblings end up
/// scattered — the "similar beams not grouped together" effect of
/// Fig. 5 (right).
#[derive(Debug, Clone, Default)]
pub struct FifoOrder;

impl OrderPolicy for FifoOrder {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn order(&mut self, items: &[OrderItem], _kv: &KvCache) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..items.len()).collect();
        idx.sort_by_key(|&i| items[i].born_rank);
        idx
    }
}

/// Uniformly random scheduling order (the paper's "Random" baseline in
/// Fig. 18 left). Deterministic per `(seed, call index)`.
#[derive(Debug, Clone)]
pub struct RandomOrder {
    seed: u64,
    calls: u64,
}

impl RandomOrder {
    /// Create a random-order policy with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, calls: 0 }
    }
}

impl OrderPolicy for RandomOrder {
    fn name(&self) -> &'static str {
        "random"
    }

    fn order(&mut self, items: &[OrderItem], _kv: &KvCache) -> Vec<usize> {
        let mut rng = stream(&[self.seed, 0x08DE, self.calls]);
        self.calls += 1;
        let mut idx: Vec<usize> = (0..items.len()).collect();
        idx.shuffle(&mut rng);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftts_kv::KvCacheConfig;

    fn setup() -> (KvCache, Vec<OrderItem>) {
        let mut kv = KvCache::new(KvCacheConfig {
            block_size: 16,
            capacity_bytes: 1 << 20,
            bytes_per_token: 4,
            prefix_sharing: true,
        });
        let root = kv.root(32).unwrap();
        let items: Vec<OrderItem> = (0..6)
            .map(|i| OrderItem {
                index: i,
                kv: kv.fork(root).unwrap(),
                parent_kv: Some(root),
                born_rank: (5 - i) as u32, // reversed insertion order
            })
            .collect();
        (kv, items)
    }

    #[test]
    fn fifo_respects_born_rank() {
        let (kv, items) = setup();
        let mut policy = FifoOrder;
        let order = policy.order(&items, &kv);
        assert_eq!(order, vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(policy.name(), "fifo");
    }

    #[test]
    fn random_is_a_permutation_and_deterministic() {
        let (kv, items) = setup();
        let mut p1 = RandomOrder::new(9);
        let mut p2 = RandomOrder::new(9);
        let o1 = p1.order(&items, &kv);
        let o2 = p2.order(&items, &kv);
        assert_eq!(o1, o2);
        let mut sorted = o1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn random_calls_differ() {
        let (kv, items) = setup();
        let mut p = RandomOrder::new(9);
        let o1 = p.order(&items, &kv);
        let o2 = p.order(&items, &kv);
        // With 6! permutations a repeat is unlikely; the call counter
        // guarantees the streams differ.
        assert_ne!(o1, o2);
    }
}
