//! The serving engine: the verifier-guided TTS loop on a simulated clock.

use ftts_hw::{Phase, Roofline, UtilizationTrace};
use ftts_kv::{KvCache, KvCacheConfig, KvError, NodeId};
use ftts_metrics::{BeamOutcome, LatencyBreakdown};
use ftts_model::{normal, stream, ProblemSpec, StepPlan, SyntheticGenerator, SyntheticPrm};

use crate::beam::{Beam, BeamId, BeamState, ScoredBeam, SpecBranch};
use crate::config::EngineConfig;
use crate::order::{OrderItem, OrderPolicy};
use crate::planner::{MemoryPlan, MemoryPlanner, PlanContext, StaticSplitPlanner};
use crate::stats::RunStats;

/// Context handed to [`SearchDriver::select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectCtx {
    /// TTS iteration index (0-based).
    pub iteration: u32,
    /// Total beam budget `n` of the request.
    pub n_target: usize,
    /// Paths already completed (terminal).
    pub completed: usize,
}

/// A TTS search algorithm, driving selection and branching.
///
/// The engine owns execution and timing; the driver owns the *search
/// heuristics* — exactly the split the paper's pattern analysis justifies
/// (Sec. 3.1: all mainstream TTS methods are instances of one
/// generation/verification loop differing in these hooks).
pub trait SearchDriver {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }

    /// Branching factor `B` (children per selected beam, and the bin
    /// count for Speculative Candidate Selection).
    fn branching(&self) -> usize;

    /// Whether intermediate steps are verified (PRM). Best-of-N returns
    /// `false`: only terminal outputs are scored (ORM).
    fn verify_every_step(&self) -> bool {
        true
    }

    /// Per-depth cap on thinking-step tokens (Varying Granularity hook).
    fn step_token_cap(&self, _depth: u32) -> Option<u64> {
        None
    }

    /// Decide expansions from the scored, non-terminal frontier. Each
    /// returned pair is `(beam, number_of_children)`; beams not listed
    /// are pruned.
    fn select(&mut self, frontier: &[ScoredBeam], ctx: &SelectCtx) -> Vec<(BeamId, usize)>;
}

/// Fatal serving errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A single reasoning path cannot fit in the generator KV budget even
    /// with everything else evicted. The configuration is infeasible
    /// without offloading or a smaller search.
    PathExceedsMemory {
        /// Blocks the path needs.
        needed: u64,
        /// Capacity of the generator cache, in blocks.
        capacity: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::PathExceedsMemory { needed, capacity } => write!(
                f,
                "a single path needs {needed} KV blocks but the generator cache holds {capacity}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The serving engine. See the crate docs for the execution model.
///
/// The configuration is held behind `Arc`: building an engine per
/// request (as the serving facade does) shares one config allocation
/// instead of deep-cloning device specs, model architectures and
/// behaviour profiles every time.
pub struct Engine {
    config: std::sync::Arc<EngineConfig>,
    order: Box<dyn OrderPolicy>,
    planner: Box<dyn MemoryPlanner>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("device", &self.config.device.name)
            .field("models", &self.config.models.label())
            .field("order", &self.order.name())
            .field("planner", &self.planner.name())
            .finish()
    }
}

impl Engine {
    /// Build an engine with the given scheduling and memory policies.
    /// Accepts an owned config or a shared `Arc` (no deep copy).
    pub fn new(
        config: impl Into<std::sync::Arc<EngineConfig>>,
        order: Box<dyn OrderPolicy>,
        planner: Box<dyn MemoryPlanner>,
    ) -> Self {
        Self {
            config: config.into(),
            order,
            planner,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        self.config.as_ref()
    }

    /// Serve one TTS request with `n` parallel beams.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PathExceedsMemory`] when a single path
    /// cannot fit in the generator's KV allocation.
    pub fn run(
        &mut self,
        problem: &ProblemSpec,
        n: usize,
        driver: &mut dyn SearchDriver,
    ) -> Result<RunStats, EngineError> {
        self.run_with_deadline(problem, n, driver, f64::INFINITY)
    }

    /// Like [`Engine::run`], but speculation is disallowed once the clock
    /// passes `spec_off_after` — modelling a new request entering the
    /// waiting queue (two-phase scheduling, Sec. 4.1.2).
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn run_with_deadline(
        &mut self,
        problem: &ProblemSpec,
        n: usize,
        driver: &mut dyn SearchDriver,
        spec_off_after: f64,
    ) -> Result<RunStats, EngineError> {
        assert!(n > 0, "need at least one beam");
        // The policies move into the (owned, resumable) run and come back
        // afterwards, so the engine stays usable for the next request.
        let order = std::mem::replace(&mut self.order, Box::new(crate::order::FifoOrder));
        let planner = std::mem::replace(&mut self.planner, Box::new(StaticSplitPlanner));
        let mut run = RequestRun::start(
            self.config.clone(),
            order,
            planner,
            problem,
            n,
            spec_off_after,
            None,
            None,
        );
        let mut result = run.init(driver);
        if result.is_ok() {
            loop {
                match run.step(driver) {
                    Ok(StepStatus::Running) => {}
                    Ok(StepStatus::Finished) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
        }
        let (stats, order, planner) = run.into_parts();
        self.order = order;
        self.planner = planner;
        result.map(|()| stats)
    }

    /// Start a resumable per-request run, consuming the engine: the
    /// config and policies move into the returned [`RequestRun`]. The
    /// serving layer steps it with [`RequestRun::step`] — one TTS
    /// iteration at a time — which is what lets one scheduler multiplex
    /// many requests over shared hardware (continuous batching).
    ///
    /// `kv_budget` overrides the device KV budget for this request (its
    /// share of a pool shared with other in-flight requests); `None`
    /// means the whole device budget, exactly like [`Engine::run`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PathExceedsMemory`] when the prompt alone
    /// cannot fit in the generator's KV allocation.
    pub fn begin(
        self,
        problem: &ProblemSpec,
        n: usize,
        driver: &mut dyn SearchDriver,
        spec_off_after: f64,
        kv_budget: Option<u64>,
    ) -> Result<RequestRun, EngineError> {
        self.begin_warm(problem, n, driver, spec_off_after, kv_budget, None)
    }

    /// [`Engine::begin`] with an optional warm start from a host KV
    /// tier: `warm.tokens` prompt-prefix tokens are host-resident, so
    /// the run swaps them in (booked to the `swap` latency bucket) and
    /// prefills only the cold tail. `None` is bit-identical to
    /// [`Engine::begin`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PathExceedsMemory`] when the prompt alone
    /// cannot fit in the generator's KV allocation.
    pub fn begin_warm(
        self,
        problem: &ProblemSpec,
        n: usize,
        driver: &mut dyn SearchDriver,
        spec_off_after: f64,
        kv_budget: Option<u64>,
        warm: Option<WarmStart>,
    ) -> Result<RequestRun, EngineError> {
        assert!(n > 0, "need at least one beam");
        let Engine {
            config,
            order,
            planner,
        } = self;
        let mut run = RequestRun::start(
            config,
            order,
            planner,
            problem,
            n,
            spec_off_after,
            kv_budget,
            warm,
        );
        run.init(driver)?;
        Ok(run)
    }
}

/// A warm-start grant from a host KV tier: the first `tokens` of the
/// request's prompt are already host-resident (published by an earlier
/// request for the same problem), so admission swaps them in over the
/// host link instead of prefilling them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStart {
    /// Host-resident prompt-prefix tokens (clamped to the prompt length).
    pub tokens: u64,
}

/// Progress of a [`RequestRun`] after one [`RequestRun::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The request still has active beams; call `step` again.
    Running,
    /// The request completed; call [`RequestRun::finish`].
    Finished,
}

impl StepStatus {
    /// Whether the run completed.
    pub fn is_finished(self) -> bool {
        matches!(self, StepStatus::Finished)
    }
}

/// Where a [`RequestRun`] stands inside the split-phase iteration
/// protocol (`plan_iteration` → `take_verify_batch` →
/// `apply_verify_results`). [`RequestRun::step`] drives the whole cycle
/// itself; an external scheduler advances it phase by phase so verifier
/// prefills can be costed *across* requests.
///
/// The protocol is **re-entrant across requests**: each run owns its
/// phase position, so a scheduler may interleave phases of different
/// runs in any order — plan A, plan B, cost B, commit B, cost A, commit
/// A — and every run still advances exactly as if it were stepped
/// alone. This is what lets an event-driven scheduler cost iterations
/// out of order across co-batch groups. Inspect with
/// [`RequestRun::run_phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPhase {
    /// Between iterations: `plan_iteration` is the only legal call.
    Ready,
    /// Mid-generation under the chunked sub-iteration decode protocol:
    /// `plan_decode_chunk` / `apply_decode_chunk` drive the phase until
    /// it reports [`DecodeStatus::Generated`]. The monolithic
    /// `plan_iteration` wrapper never exposes this state.
    Decoding,
    /// Generation ran; `take_verify_batch` must run next.
    Generated,
    /// Verifier mirror work done, chunks await costing;
    /// `apply_verify_results` must run next.
    VerifyPending,
}

/// One verifier prefill batch a [`RequestRun`] needs costed: `members`
/// sequences, each adding `new_tokens / members` fresh tokens on top of
/// `cached_tokens / members` cached ones. The KV-cache side effects
/// (mirroring, pins, PCIe transfers) already happened when the chunk was
/// produced by [`RequestRun::take_verify_batch`]; only the prefill
/// *kernel time* is still owed, which is what lets a scheduler fuse
/// chunks from many requests into one shared sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyChunk {
    /// Sequences in the batch (≥ 1).
    pub members: usize,
    /// Total fresh tokens prefetched across the batch.
    pub new_tokens: u64,
    /// Total cached-prefix tokens reused across the batch.
    pub cached_tokens: u64,
}

impl VerifyChunk {
    /// Cost this chunk as its own (unfused) sweep — exactly what the
    /// monolithic [`RequestRun::step`] charges. Kept as the single
    /// source of truth so the wrapper and external schedulers can never
    /// diverge bit-wise at batch 1.
    pub fn solo_cost(&self, roof: &Roofline) -> ftts_hw::KernelCost {
        let members = self.members.max(1);
        roof.prefill_batch(
            members,
            self.new_tokens / members as u64,
            self.cached_tokens / members as u64,
        )
    }
}

/// The time a scheduler charges one [`VerifyChunk`]: the wall-clock
/// `seconds` the request waits for the sweep, of which `busy_seconds`
/// are attributed to *this* request's verifier work. For an unfused
/// sweep the two are equal; for a sweep fused across requests each
/// participant waits the full sweep but is attributed only its share,
/// so summing `LatencyBreakdown::verifier` across requests never
/// double-counts shared sweep seconds (the remainder lands in `idle`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyCharge {
    /// Wall-clock seconds the request's clock advances.
    pub seconds: f64,
    /// Compute-utilization fraction of the sweep (for traces).
    pub compute_util: f64,
    /// Seconds attributed to this request's `verifier` bucket
    /// (clamped to `seconds`; the rest is `idle`).
    pub busy_seconds: f64,
}

impl VerifyCharge {
    /// A charge that attributes the whole sweep to this request — the
    /// unfused case.
    pub fn full(cost: &ftts_hw::KernelCost) -> Self {
        Self {
            seconds: cost.seconds,
            compute_util: cost.compute_util,
            busy_seconds: cost.seconds,
        }
    }
}

/// One planned slice of the generation phase: the next `k` decode steps
/// over this request's `batch` decoding sequences (active beams plus
/// filled speculative slots), whose context lengths sum to `ctx_sum`
/// tokens. Produced by [`RequestRun::plan_decode_chunk`]; the kernel
/// time is charged when the scheduler calls
/// [`RequestRun::apply_decode_chunk`], priced over the co-batch
/// declared at that instant — which is what lets an external scheduler
/// admit new requests into the decode batch *between* chunks (token-
/// granularity joins) instead of at iteration boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeChunk {
    /// Decode steps (tokens per sequence) this chunk advances.
    pub k: u64,
    /// Sequences decoding in this request's own batch (beams + spec
    /// slots); co-resident sequences from other requests are added at
    /// pricing time from [`RequestRun::set_co_batch`].
    pub batch: usize,
    /// Sum of those sequences' context lengths, in tokens.
    pub ctx_sum: u64,
}

/// Progress of the chunked sub-iteration decode protocol
/// ([`RequestRun::plan_decode_chunk`] /
/// [`RequestRun::apply_decode_chunk`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStatus {
    /// A chunk is planned and awaits [`RequestRun::apply_decode_chunk`].
    Planned(DecodeChunk),
    /// The chunk was applied and generation continues: call
    /// [`RequestRun::plan_decode_chunk`] again.
    Decoding,
    /// The generation phase is complete;
    /// [`RequestRun::take_verify_batch`] is the next legal call.
    Generated,
    /// The run already completed; nothing was planned.
    Finished,
}

/// Transient speculative decoding task (one filled slot).
struct SpecTask {
    beam: usize,
    branch: u64,
    node: NodeId,
    plan: StepPlan,
    eps: f64,
    target: u64,
    generated: u64,
}

/// Reusable per-iteration containers. The serve loop runs thousands of
/// iterations per request; allocating these afresh in every generation /
/// verification phase dominated the simulator's own runtime, so they are
/// owned by [`Run`] and recycled (cleared, never shrunk) across
/// iterations. Methods that need a container while also borrowing
/// `self` mutably `mem::take` it and hand it back when done.
#[derive(Default)]
struct Scratch {
    /// Order-policy input items (generation phase).
    items: Vec<OrderItem>,
    /// Frontier beam indices in scheduling order (generation phase
    /// output, reused by the verification phase).
    ordered: Vec<usize>,
    /// Admission queue of frontier beam indices.
    queue: std::collections::VecDeque<usize>,
    /// Currently decoding beam indices.
    active: Vec<usize>,
    /// Beams that finished their step this phase.
    finished: Vec<usize>,
    /// Beams deferred by memory pressure within one segment.
    deferred: Vec<usize>,
    /// Beams still failing after speculation was aborted.
    still_failing: Vec<usize>,
    /// Survivors of the active set after a segment.
    still_active: Vec<usize>,
    /// Scored frontier view handed to the search driver.
    scored: Vec<ScoredBeam>,
    /// Selected (beam index, children) pairs.
    picks: Vec<(usize, usize)>,
    /// Frontier KV leaves (replanning).
    leaves: Vec<NodeId>,
    /// SelectSPEC score bins per frontier beam.
    bins: std::collections::HashMap<usize, u64>,
    /// Speculative branches started per beam this phase.
    spec_started: std::collections::HashMap<usize, u64>,
    /// Per-beam deferral counts (for the repeated-failure bailout).
    defer_counts: std::collections::HashMap<usize, u32>,
    /// In-flight speculative tasks.
    spec_tasks: Vec<SpecTask>,
    /// Retained speculative tasks while filtering (avoids realloc).
    kept_spec: Vec<SpecTask>,
    /// Beams needing verification this iteration.
    to_verify: Vec<usize>,
    /// Verifier nodes pinned for the current chunk.
    pinned: Vec<NodeId>,
    /// Frontier scratch for branching (old frontier recycled into new).
    frontier_next: Vec<usize>,
    /// (beam, score) pairs for score-bin ranking.
    bin_ranking: Vec<(usize, f64)>,
    /// Selected beam indices during branching.
    selected: std::collections::HashSet<usize>,
    /// Unconsumed speculative KV nodes being discarded.
    spec_leftovers: Vec<NodeId>,
    /// Per-chunk verifier charges (the solo-costing wrapper path).
    charges: Vec<VerifyCharge>,
}

/// All per-request state of one TTS request, resumable step by step.
///
/// A `RequestRun` owns its KV caches, policies, search frontier and
/// statistics, so a serving layer can hold many in-flight runs at once
/// and interleave them one iteration at a time — the substrate for
/// continuous batching across requests. [`Engine::run`] drives exactly
/// this state machine to completion in a single call; [`Engine::begin`]
/// hands it out for external scheduling.
pub struct RequestRun {
    cfg: std::sync::Arc<EngineConfig>,
    order: Box<dyn OrderPolicy>,
    planner: Box<dyn MemoryPlanner>,
    gen_roof: Roofline,
    ver_roof: Roofline,
    generator: SyntheticGenerator,
    prm: SyntheticPrm,
    gen_kv: KvCache,
    ver_kv: KvCache,
    ver_root: NodeId,
    problem: ProblemSpec,
    clock: f64,
    breakdown: LatencyBreakdown,
    beams: Vec<Beam>,
    frontier: Vec<usize>,
    stats: RunStats,
    trace: Option<UtilizationTrace>,
    spec_off_after: f64,
    plan: MemoryPlan,
    born_counter: u32,
    root_eps: f64,
    scratch: Scratch,
    /// Beam budget `n` of the request.
    n: usize,
    /// TTS iterations completed so far.
    iteration: u32,
    /// Iteration cap (`max_depth + 4`, as in the original serve loop).
    max_iterations: u32,
    /// Whether the run has completed (frontier drained or cap reached).
    done: bool,
    /// KV budget this request may plan against (its pool share).
    kv_budget: u64,
    /// Decode sequences co-resident from *other* requests sharing the
    /// accelerator this step (continuous batching across requests).
    co_seqs: usize,
    /// Sum of those co-resident sequences' context lengths, in tokens.
    co_ctx_sum: u64,
    /// Split-phase protocol position (see [`RequestRun::plan_iteration`]).
    phase: RunPhase,
    /// Peak decode batch width observed so far in the current
    /// generation phase (spec-slot target; persists across decode
    /// chunks).
    gen_target_batch: usize,
    /// The decode chunk planned by `plan_decode_chunk`, awaiting its
    /// `apply_decode_chunk` charge.
    pending_decode: Option<DecodeChunk>,
    /// Verifier chunks produced by `take_verify_batch`, awaiting their
    /// `apply_verify_results` charges.
    pending_chunks: Vec<VerifyChunk>,
    /// `driver.verify_every_step()` captured at plan time.
    pending_verify_all: bool,
    /// Memoized elastic-share demand declaration (see
    /// [`RequestRun::demand_bytes`]); refreshed on every replan.
    last_demand: u64,
    /// Memoized accepted-token share floor (see
    /// [`RequestRun::kv_floor_bytes`]); refreshed on every replan.
    last_floor: u64,
    /// Whether restore transfers book into the `swap` breakdown bucket
    /// (host-tier accounting) instead of `offload` (legacy). See
    /// [`RequestRun::set_swap_accounting`].
    swap_accounting: bool,
}

impl std::fmt::Debug for RequestRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestRun")
            .field("clock", &self.clock)
            .field("iteration", &self.iteration)
            .field("frontier", &self.frontier.len())
            .field("done", &self.done)
            .finish()
    }
}

impl RequestRun {
    #[allow(clippy::too_many_arguments)]
    fn start(
        cfg: std::sync::Arc<EngineConfig>,
        order: Box<dyn OrderPolicy>,
        planner: Box<dyn MemoryPlanner>,
        problem: &ProblemSpec,
        n: usize,
        spec_off_after: f64,
        kv_budget: Option<u64>,
        warm: Option<WarmStart>,
    ) -> Self {
        let gen_roof = Roofline::new(cfg.device.clone(), cfg.models.gen_spec.clone());
        let ver_roof = Roofline::new(cfg.device.clone(), cfg.models.ver_spec.clone());
        let budget = kv_budget.unwrap_or_else(|| cfg.kv_budget_bytes());
        // Initial half/half placeholder; the planner repartitions before
        // the first generation phase.
        let mut gen_kv = KvCache::new(KvCacheConfig {
            block_size: cfg.block_size,
            capacity_bytes: budget / 2,
            bytes_per_token: cfg.models.gen_spec.kv_bytes_per_token(),
            prefix_sharing: cfg.prefix_sharing,
        });
        let mut ver_kv = KvCache::new(KvCacheConfig {
            block_size: cfg.block_size,
            capacity_bytes: budget / 2,
            bytes_per_token: cfg.models.ver_spec.kv_bytes_per_token(),
            prefix_sharing: cfg.prefix_sharing,
        });
        let problem = ProblemSpec {
            seed: ftts_model::mix64(problem.seed, cfg.seed),
            ..*problem
        };
        let generator = SyntheticGenerator::new(cfg.models.gen_profile.clone());
        let prm = SyntheticPrm::new(cfg.models.prm_profile.clone());
        let gen_root = gen_kv.root(problem.prompt_tokens).expect("root");
        let ver_root = ver_kv.root(problem.prompt_tokens).expect("ver root");
        let root_eps = prm.root_eps(problem.seed);
        let trace = if cfg.trace {
            Some(UtilizationTrace::new())
        } else {
            None
        };
        let max_iterations = problem.steps.max_depth + 4;
        let mut run = Self {
            order,
            planner,
            gen_roof,
            ver_roof,
            generator,
            prm,
            gen_kv,
            ver_kv,
            ver_root,
            problem,
            clock: 0.0,
            breakdown: LatencyBreakdown::default(),
            beams: Vec::new(),
            frontier: Vec::new(),
            stats: RunStats {
                correct_answer: problem.correct_answer(),
                ..RunStats::default()
            },
            trace,
            spec_off_after,
            plan: MemoryPlan {
                gen_kv_bytes: budget / 2,
                ver_kv_bytes: budget / 2,
                ver_batch: 8,
                offload: false,
            },
            born_counter: 0,
            root_eps,
            scratch: Scratch::default(),
            cfg,
            n,
            iteration: 0,
            max_iterations,
            done: false,
            kv_budget: budget,
            co_seqs: 0,
            co_ctx_sum: 0,
            phase: RunPhase::Ready,
            gen_target_batch: 0,
            pending_decode: None,
            pending_chunks: Vec::new(),
            pending_verify_all: true,
            last_demand: 0,
            last_floor: 0,
            swap_accounting: false,
        };
        // The prompt must be prefilled once by the generator before any
        // decoding; charged to the generator bucket. A warm start (host
        // KV tier holds the prompt's prefix) replaces the warm tokens'
        // prefill with a costed host→device swap-in: only the cold tail
        // is computed, attending over the swapped-in prefix as cached
        // context. With `warm` absent the charge is bit-identical to
        // the legacy full prefill.
        let warm_tokens = warm.map_or(0, |w| w.tokens).min(run.problem.prompt_tokens);
        if warm_tokens > 0 {
            let cold = run.problem.prompt_tokens - warm_tokens;
            if cold > 0 {
                let cost = run.gen_roof.prefill(cold, warm_tokens);
                run.advance(cost.seconds, cost.compute_util, Phase::Generation);
                run.breakdown.generator += cost.seconds;
            }
            let bytes = warm_tokens * run.cfg.models.gen_spec.kv_bytes_per_token();
            let t = run.gen_roof.swap_transfer(bytes);
            run.advance(t.seconds, 0.0, Phase::Generation);
            run.breakdown.swap += t.seconds;
        } else {
            let cost = run.gen_roof.prefill(run.problem.prompt_tokens, 0);
            run.advance(cost.seconds, cost.compute_util, Phase::Generation);
            run.breakdown.generator += cost.seconds;
        }
        run.frontier.clear();
        run.root_beam(gen_root);
        run
    }

    /// Record a pseudo-beam for the prompt so initial expansion can share
    /// the branching code path.
    fn root_beam(&mut self, gen_root: NodeId) {
        let latent = self.generator.root_latent(&self.problem);
        self.beams.push(Beam {
            id: BeamId(0),
            parent: None,
            subtree: 0,
            kv: gen_root,
            ver_kv: Some(self.ver_root),
            latent,
            eps: self.root_eps,
            score: Some(0.5),
            prev_score: 0.5,
            step_target: 0,
            step_done: 0,
            preverified: None,
            state: BeamState::Active,
            spec: Vec::new(),
            completed_at: None,
        });
        self.born_counter = 1;
    }

    fn advance(&mut self, seconds: f64, util: f64, phase: Phase) {
        if seconds <= 0.0 {
            return;
        }
        if let Some(trace) = &mut self.trace {
            trace.record(self.clock, seconds, util, phase);
        }
        self.clock += seconds;
    }

    /// Feasibility check + initial expansion (the serve-loop preamble).
    fn init(&mut self, driver: &mut dyn SearchDriver) -> Result<(), EngineError> {
        // The prompt itself must fit in the generator cache, or no path
        // ever can.
        let root_kv = self.beams[0].kv;
        match self.gen_kv.pin(root_kv) {
            Ok(_) => self.gen_kv.unpin(root_kv),
            Err(_) => {
                return Err(EngineError::PathExceedsMemory {
                    needed: self.gen_kv.blocks_needed(root_kv, 0),
                    capacity: self.gen_kv.config().capacity_blocks(),
                })
            }
        }
        // Initial expansion: n children of the prompt, subtree i for DVTS.
        let initial: Vec<(usize, usize)> = vec![(0, self.n)];
        self.branch(&initial, driver, true)?;
        if self.frontier.is_empty() || self.iteration >= self.max_iterations {
            self.finalize();
        }
        // A scheduler may ask for share declarations right after
        // admission, before the first replan; seed the memos from the
        // initial frontier (pure bookkeeping — the planner is not
        // consulted, so `run` and `begin` stay bit-identical).
        let ctx = self.plan_context();
        self.refresh_share_declarations(&ctx);
        Ok(())
    }

    /// Execute one TTS iteration: replan memory, run the generation and
    /// verification phases, retire terminal beams and branch the
    /// survivors. Returns [`StepStatus::Finished`] when the request is
    /// complete (and [`RequestRun::finish`] should be called).
    ///
    /// This is a thin wrapper over the split-phase protocol —
    /// [`RequestRun::plan_iteration`], [`RequestRun::take_verify_batch`],
    /// [`RequestRun::apply_verify_results`] — costing each verifier
    /// chunk as its own sweep, so a batch-1 scheduler driving the phases
    /// explicitly reproduces `step` bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PathExceedsMemory`] when a single path
    /// cannot fit in the generator's KV allocation.
    pub fn step(&mut self, driver: &mut dyn SearchDriver) -> Result<StepStatus, EngineError> {
        if self.plan_iteration(driver)?.is_finished() {
            return Ok(StepStatus::Finished);
        }
        self.take_verify_batch();
        let mut charges = std::mem::take(&mut self.scratch.charges);
        charges.clear();
        for i in 0..self.pending_chunks.len() {
            let cost = self.pending_chunks[i].solo_cost(&self.ver_roof);
            charges.push(VerifyCharge::full(&cost));
        }
        let status = self.apply_verify_results(driver, &charges);
        self.scratch.charges = charges;
        status
    }

    /// Split phase 1 of an iteration: replan memory and run the
    /// (co-batched) generation phase. Returns [`StepStatus::Finished`]
    /// without doing anything when the run already completed; otherwise
    /// [`RequestRun::take_verify_batch`] must be called next.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PathExceedsMemory`] when a single path
    /// cannot fit in the generator's KV allocation.
    pub fn plan_iteration(
        &mut self,
        driver: &mut dyn SearchDriver,
    ) -> Result<StepStatus, EngineError> {
        assert!(
            self.phase == RunPhase::Ready,
            "plan_iteration called mid-iteration (phase {:?})",
            self.phase
        );
        if self.done {
            return Ok(StepStatus::Finished);
        }
        // Drive the chunked sub-iteration protocol with an uncapped
        // chunk size: every chunk is one full decode segment, so the
        // sequence of kernel launches (and every float op) is identical
        // to the historical monolithic generation phase — the wrapper
        // is bit-identical by construction.
        loop {
            match self.plan_decode_chunk(driver, u64::MAX)? {
                DecodeStatus::Finished => return Ok(StepStatus::Finished),
                DecodeStatus::Generated | DecodeStatus::Decoding => return Ok(StepStatus::Running),
                DecodeStatus::Planned(_) => {
                    if self.apply_decode_chunk(driver)? == DecodeStatus::Generated {
                        return Ok(StepStatus::Running);
                    }
                }
            }
        }
    }

    /// Split phase 2: mirror this iteration's fresh steps into the
    /// verifier cache (all KV side effects and PCIe transfers happen
    /// here, exactly as the monolithic path would) and return the
    /// prefill batches still owed kernel time. A scheduler costs them —
    /// solo, serialized, or fused with other requests' chunks into one
    /// shared sweep — and settles via
    /// [`RequestRun::apply_verify_results`].
    pub fn take_verify_batch(&mut self) -> &[VerifyChunk] {
        assert!(
            self.phase == RunPhase::Generated,
            "take_verify_batch requires a planned iteration (phase {:?})",
            self.phase
        );
        self.phase = RunPhase::VerifyPending;
        self.prepare_verify();
        &self.pending_chunks
    }

    /// Split phase 3: charge the costed verifier sweeps (one
    /// [`VerifyCharge`] per pending chunk, in order), reveal scores,
    /// retire terminal beams and branch the survivors — the commit of
    /// one iteration. `busy_seconds` of each charge lands in the
    /// `verifier` latency bucket, the remainder of `seconds` in `idle`
    /// (see [`VerifyCharge`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PathExceedsMemory`] when branching cannot
    /// fit a child path in the generator's KV allocation.
    ///
    /// # Panics
    ///
    /// Panics when called out of phase order or with a charge count
    /// different from the pending chunk count.
    pub fn apply_verify_results(
        &mut self,
        driver: &mut dyn SearchDriver,
        charges: &[VerifyCharge],
    ) -> Result<StepStatus, EngineError> {
        assert!(
            self.phase == RunPhase::VerifyPending,
            "apply_verify_results requires a pending verify batch (phase {:?})",
            self.phase
        );
        assert_eq!(
            charges.len(),
            self.pending_chunks.len(),
            "one charge per pending verifier chunk"
        );
        self.phase = RunPhase::Ready;
        for (i, charge) in charges.iter().enumerate() {
            let chunk = self.pending_chunks[i];
            self.advance(charge.seconds, charge.compute_util, Phase::Verification);
            let busy = charge.busy_seconds.min(charge.seconds);
            self.breakdown.verifier += busy;
            self.breakdown.idle += charge.seconds - busy;
            self.stats.verified_tokens += chunk.new_tokens;
            self.stats.ver_sweeps += 1;
        }
        self.settle_verify_scores();
        self.retire_terminals();
        if self.frontier.is_empty() {
            self.finalize();
            return Ok(StepStatus::Finished);
        }
        let ctx = SelectCtx {
            iteration: self.iteration,
            n_target: self.n,
            completed: self.stats.beams.len(),
        };
        let mut scored = std::mem::take(&mut self.scratch.scored);
        scored.clear();
        scored.extend(self.frontier.iter().map(|&i| self.scored_view(i)));
        let selection = driver.select(&scored, &ctx);
        self.scratch.scored = scored;
        let mut picks = std::mem::take(&mut self.scratch.picks);
        picks.clear();
        picks.extend(selection.into_iter().map(|(id, c)| (id.0 as usize, c)));
        let branched = self.branch(&picks, driver, false);
        self.scratch.picks = picks;
        branched?;
        self.iteration += 1;
        if self.frontier.is_empty() || self.iteration >= self.max_iterations {
            self.finalize();
            return Ok(StepStatus::Finished);
        }
        // Post-branch share declarations: a scheduler's end-of-round
        // drift check reads the frontier the *next* round will decode.
        let ctx = self.plan_context();
        self.refresh_share_declarations(&ctx);
        Ok(StepStatus::Running)
    }

    /// First Finish Search cut (opt-in): if any *completed, verified*
    /// beam has cleared `bar`, prune the surviving frontier — sibling
    /// beams are cancelled, their speculative KV discarded and their
    /// leaf nodes dropped from the cache — and finish the run, freeing
    /// the request's pool reservation for waiting work. Returns whether
    /// the cut fired. Only legal between iterations; non-opted runs
    /// never call this, so their answers are untouched.
    pub fn first_finish_cut(&mut self, bar: f64) -> bool {
        assert!(
            self.phase == RunPhase::Ready,
            "first_finish_cut is only legal between iterations"
        );
        if self.done || self.frontier.is_empty() {
            return false;
        }
        if !self.stats.beams.iter().any(|b| b.score >= bar) {
            return false;
        }
        let frontier = std::mem::take(&mut self.frontier);
        for &bi in &frontier {
            self.beams[bi].state = BeamState::Pruned;
            self.discard_leftover_spec(bi);
            self.gen_kv.discard(self.beams[bi].kv);
        }
        let mut recycled = frontier;
        recycled.clear();
        self.scratch.frontier_next = recycled;
        self.stats.first_finish_cuts += 1;
        self.finalize();
        true
    }

    /// Seal completion statistics (idempotent; exactly the serve-loop
    /// epilogue).
    fn finalize(&mut self) {
        self.done = true;
        self.stats.iterations = self.iteration;
        self.stats.completion.latency = self.clock;
        self.stats.completion.breakdown = self.breakdown;
    }

    /// Whether the run has completed.
    pub fn is_finished(&self) -> bool {
        self.done
    }

    /// The run's internal clock: seconds of simulated service time since
    /// the request started (idle waits included).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The run's *next-event time* on its own clock: the instant its
    /// next iteration could start. Between iterations (phase
    /// [`RunPhase::Ready`]) this is simply [`RequestRun::clock`]; an
    /// event-driven scheduler keys its ready queue on
    /// `started_at + next_event_at()` instead of a global round counter.
    pub fn next_event_at(&self) -> f64 {
        self.clock
    }

    /// Where the run stands inside the split-phase protocol. A
    /// scheduler interleaving many runs uses this to assert every run is
    /// back at [`RunPhase::Ready`] before re-budgeting or regrouping it.
    pub fn run_phase(&self) -> RunPhase {
        self.phase
    }

    /// TTS iterations completed so far.
    pub fn iteration(&self) -> u32 {
        self.iteration
    }

    /// Statistics accumulated so far (final once the run is finished).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Total tokens decoded so far (speculation included) — accepted
    /// work that preemption must never lose.
    pub fn decoded_tokens(&self) -> u64 {
        self.stats.decoded_tokens
    }

    /// Move the speculation cut-off (two-phase scheduling): speculation
    /// stops once the internal clock passes `t`. A serving layer calls
    /// this before every step as its queue state changes.
    pub fn set_spec_off_after(&mut self, t: f64) {
        self.spec_off_after = t;
    }

    /// Re-budget this request's share of the device KV pool and replan
    /// the generator/verifier split immediately. Shrinking below current
    /// occupancy is allowed — the caches evict on demand.
    pub fn set_kv_budget(&mut self, bytes: u64) {
        self.kv_budget = bytes;
        self.replan();
    }

    /// This request's current KV pool share, in bytes.
    pub fn kv_budget(&self) -> u64 {
        self.kv_budget
    }

    /// Declare sequences co-resident from other requests for the next
    /// step: the decode kernel is costed over the combined batch (one
    /// shared weight sweep, everyone's KV traffic), which is where
    /// continuous batching wins its throughput.
    pub fn set_co_batch(&mut self, seqs: usize, ctx_sum: u64) {
        self.co_seqs = seqs;
        self.co_ctx_sum = ctx_sum;
    }

    /// This request's decode load as seen by co-scheduled requests:
    /// `(frontier sequences, total context tokens)`.
    pub fn decode_load(&self) -> (usize, u64) {
        let ctx = self
            .frontier
            .iter()
            .map(|&i| self.gen_kv.seq_tokens(self.beams[i].kv))
            .sum();
        (self.frontier.len(), ctx)
    }

    /// Advance the internal clock to `t` as idle time (a co-batch window
    /// wait, a preemption gap or a shared-device wait). No-op if `t` is
    /// in the past.
    pub fn sync_clock_to(&mut self, t: f64) {
        if t > self.clock {
            self.breakdown.idle += t - self.clock;
            self.clock = t;
        }
    }

    /// Advance the internal clock to `t` as *barrier* idle time — a
    /// lockstep-round barrier wait, the scheduling artifact an
    /// event-driven scheduler removes. Books the gap both to `idle` and
    /// to its `barrier_idle` slice, so idle attribution can distinguish
    /// barrier waits from window/device waits. No-op if `t` is in the
    /// past.
    pub fn sync_clock_to_barrier(&mut self, t: f64) {
        if t > self.clock {
            self.breakdown.barrier_idle += t - self.clock;
        }
        self.sync_clock_to(t);
    }

    /// Advance the internal clock to `t` as *token-join* idle time — the
    /// wait at a shared chunk boundary for the slowest co-batched decode
    /// chunk, where newly arrived requests may join the batch. Books the
    /// gap both to `idle` and to its `join_wait` slice. No-op if `t` is
    /// in the past.
    pub fn sync_clock_to_join(&mut self, t: f64) {
        if t > self.clock {
            self.breakdown.join_wait += t - self.clock;
        }
        self.sync_clock_to(t);
    }

    /// Retroactively stretch this run's in-flight iteration for decode
    /// contention from a *later* launch: `add_seqs` new sequences (with
    /// `add_ctx` total context tokens) started sharing the device while
    /// this run still had `remaining` seconds of its current iteration
    /// in flight. The remaining time is stretched by the marginal
    /// co-batch slowdown — the ratio of the decode-step cost with and
    /// without the new load on top of this run's own frontier plus its
    /// declared co-batch — and the stretch is booked to the
    /// `contention` latency bucket (wall-clock, not device-busy time,
    /// so busy buckets stay comparable to contention-free scheduling).
    /// Returns the seconds added; never negative, and zero whenever the
    /// added load does not slow the shared kernel.
    pub fn contention_stretch(&mut self, add_seqs: usize, add_ctx: u64, remaining: f64) -> f64 {
        if add_seqs == 0 || remaining <= 0.0 {
            return 0.0;
        }
        let (seqs, ctx) = self.decode_load();
        let total = seqs + self.co_seqs;
        if total == 0 {
            return 0.0;
        }
        let base_ctx = ctx + self.co_ctx_sum;
        let before = self.gen_roof.decode_step(total, base_ctx / total as u64);
        let after = self.gen_roof.decode_step(
            total + add_seqs,
            (base_ctx + add_ctx) / (total + add_seqs) as u64,
        );
        if before.seconds <= 0.0 || after.seconds <= before.seconds {
            return 0.0;
        }
        let extra = remaining * (after.seconds / before.seconds - 1.0);
        self.clock += extra;
        self.breakdown.contention += extra;
        extra
    }

    /// Preempt the request: swap all unpinned KV (generator and
    /// verifier) to host memory, freeing its device blocks for other
    /// requests. Returns the bytes moved, for PCIe costing by the
    /// scheduler. Accepted tokens are never lost — resuming restores or
    /// recomputes prefixes through the normal pin path.
    pub fn preempt(&mut self) -> u64 {
        self.gen_kv.swap_out_unpinned() + self.ver_kv.swap_out_unpinned()
    }

    /// Preempt against a *bounded* host tier: swap unpinned KV down
    /// until at most `cap_bytes` have moved, then drop the rest without
    /// a host copy (recomputed through the normal pin path on
    /// readmission). Generator KV — the shared prompt/accepted prefixes
    /// — claims the capacity before verifier KV. Returns
    /// `(swapped_bytes, dropped_bytes)`; `cap_bytes == u64::MAX` is
    /// exactly [`RequestRun::preempt`].
    pub fn preempt_capped(&mut self, cap_bytes: u64) -> (u64, u64) {
        let (gen_swapped, gen_dropped) = self.gen_kv.swap_out_unpinned_capped(cap_bytes);
        let (ver_swapped, ver_dropped) = self
            .ver_kv
            .swap_out_unpinned_capped(cap_bytes - gen_swapped);
        (gen_swapped + ver_swapped, gen_dropped + ver_dropped)
    }

    /// Route restore transfer charges into the `swap` breakdown bucket
    /// (host-tier accounting) instead of the legacy `offload` bucket.
    /// The seconds are identical either way — this only changes
    /// attribution, so schedulers enable it exactly when the tier is
    /// enabled and the disabled-tier anchor stays bit-identical.
    pub fn set_swap_accounting(&mut self, enabled: bool) {
        self.swap_accounting = enabled;
    }

    /// Advance the internal clock by `secs` of injected-fault time:
    /// device work wasted by a transient kernel failure, a retry
    /// backoff wait, or thermal-throttle stretch. Booked to the
    /// dedicated `fault` breakdown bucket — never to the busy phases —
    /// so attributed generator/verifier seconds stay identical to the
    /// fault-free run (retries can't double-bill device time).
    pub fn stall_fault(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0, "fault stalls only move time forward");
        if secs > 0.0 {
            self.breakdown.fault += secs;
            self.clock += secs;
        }
    }

    /// Record `faults` transient kernel failures on this request's
    /// iteration: `retries` re-dispatch attempts were needed and
    /// `backoff_secs` of the recovery was exponential-backoff waiting
    /// (already included in the accompanying
    /// [`RequestRun::stall_fault`] charge).
    pub fn note_kernel_faults(&mut self, faults: u32, retries: u32, backoff_secs: f64) {
        self.stats.faults.kernel_faults += faults;
        self.stats.faults.retries += retries;
        self.stats.faults.backoff_secs += backoff_secs;
    }

    /// Record `secs` of thermal-throttle stretch (already booked via
    /// [`RequestRun::stall_fault`]).
    pub fn note_slowdown(&mut self, secs: f64) {
        self.stats.faults.slowdown_secs += secs;
    }

    /// Injected device KV loss: drop every unpinned device-resident KV
    /// block of both caches *without* host copies. The committed state
    /// (latents, scores, accepted tokens) lives in the beam tree, so
    /// recovery is a deterministic replay: the next iteration's pins
    /// recompute exactly the lost prefixes through the normal recompute
    /// path. Host-resident (swapped-out) blocks of preempted requests
    /// are untouched — host RAM is not on the faulting device. Returns
    /// the blocks lost.
    pub fn lose_device_kv(&mut self) -> u64 {
        let lost = self.gen_kv.lose_unpinned() + self.ver_kv.lose_unpinned();
        if lost > 0 {
            self.stats.faults.kv_loss_events += 1;
            self.stats.faults.lost_blocks += lost;
        }
        lost
    }

    /// Worst single-path KV demand vs the generator's capacity, in
    /// blocks. A request whose demand exceeds capacity cannot make
    /// progress under its current pool share and should be preempted
    /// until shares regrow.
    pub fn kv_demand(&self) -> (u64, u64) {
        let needed = self
            .frontier
            .iter()
            .map(|&i| {
                let b = &self.beams[i];
                self.gen_kv.blocks_needed(b.kv, b.remaining()) + 2
            })
            .max()
            .unwrap_or(0);
        (needed, self.gen_kv.config().capacity_blocks())
    }

    /// Whether every frontier path individually fits the current share
    /// (see [`RequestRun::kv_demand`]).
    pub fn can_progress(&self) -> bool {
        let (needed, capacity) = self.kv_demand();
        needed <= capacity
    }

    /// Generator-side working set vs cache capacity, in bytes: the
    /// unique tokens across all frontier paths (prefix sharing already
    /// accounted) are what the cache must retain across iterations to
    /// avoid recompute thrash.
    pub fn kv_working_set(&self) -> (u64, u64) {
        let leaves: Vec<NodeId> = self.frontier.iter().map(|&i| self.beams[i].kv).collect();
        let tokens = self.gen_kv.unique_path_tokens(&leaves);
        (
            tokens * self.gen_kv.config().bytes_per_token,
            self.gen_kv.config().capacity_bytes,
        )
    }

    /// Whether the frontier's working set fits the current share (no
    /// eviction thrash). A scheduler sharing the pool across requests
    /// uses this as its soft preemption trigger.
    pub fn fits_working_set(&self) -> bool {
        let (set, capacity) = self.kv_working_set();
        set <= capacity
    }

    /// Final statistics. The run is consumed; callable at any point (a
    /// scheduler abandoning an unfinished run gets stats sealed at the
    /// current clock/iteration).
    pub fn finish(self) -> RunStats {
        self.into_parts().0
    }

    /// Destructure into final stats plus the policy boxes (so
    /// [`Engine::run`] can hand its policies back to the engine).
    fn into_parts(mut self) -> (RunStats, Box<dyn OrderPolicy>, Box<dyn MemoryPlanner>) {
        if !self.done {
            // Abandoned mid-flight: seal completion at the current
            // state so the record is internally consistent.
            self.finalize();
        }
        self.stats.gen_cache = *self.gen_kv.stats();
        self.stats.ver_cache = *self.ver_kv.stats();
        self.stats.trace = self.trace.take();
        (self.stats, self.order, self.planner)
    }

    fn scored_view(&self, idx: usize) -> ScoredBeam {
        let b = &self.beams[idx];
        ScoredBeam {
            id: b.id,
            score: b.score.unwrap_or(b.prev_score),
            depth: b.latent.depth,
            terminal: b.latent.terminal,
            subtree: b.subtree,
            path_tokens: self.gen_kv.seq_tokens(b.kv),
        }
    }

    /// Current planner input, derived from the live frontier.
    fn plan_context(&mut self) -> PlanContext {
        let avg_ctx = if self.frontier.is_empty() {
            self.problem.prompt_tokens
        } else {
            self.frontier
                .iter()
                .map(|&i| self.gen_kv.seq_tokens(self.beams[i].kv))
                .sum::<u64>()
                / self.frontier.len() as u64
        };
        let step_tokens = self.problem.steps.median_tokens as u64;
        let mut leaves = std::mem::take(&mut self.scratch.leaves);
        leaves.clear();
        leaves.extend(self.frontier.iter().map(|&i| self.beams[i].kv));
        let tree_tokens = self.gen_kv.unique_path_tokens(&leaves);
        self.scratch.leaves = leaves;
        PlanContext {
            kv_budget_bytes: self.kv_budget,
            n_beams: self.frontier.len(),
            avg_ctx,
            step_tokens,
            ver_seq: avg_ctx + step_tokens,
            tree_tokens,
            ver_caching: self.cfg.ver_prefix_caching,
        }
    }

    /// Working-set demand estimate for elastic pool shares (bytes): live
    /// beams × mean path depth (plus one decode step) × KV bytes/token
    /// across both models, floored by the resident unique tree — see
    /// [`crate::planner::working_set_demand`]. A scheduler rebalancing a
    /// shared pool sizes shares proportionally to this.
    ///
    /// Memoized by the replan that every `plan_iteration` /
    /// `set_kv_budget` performs, so a scheduler's per-round drift check
    /// costs an accessor, not a frontier scan plus prefix-tree walk.
    pub fn demand_bytes(&self) -> u64 {
        self.last_demand
    }

    /// Bytes of pool share needed to keep the accepted generator
    /// working set resident — the floor below which a rebalance would
    /// force the cache to evict accepted tokens into recompute thrash.
    /// The working set lives in the *generator's* slice of the share,
    /// so the floor is scaled up by the planner's current split (a
    /// share equal to the raw working set would leave the generator
    /// only its fraction of it), and includes one decode step of growth
    /// per live path: a share at the floor must survive until the next
    /// rebalance boundary, not just this round. Memoized like
    /// [`RequestRun::demand_bytes`].
    pub fn kv_floor_bytes(&self) -> u64 {
        self.last_floor
    }

    /// The verifier-side cost model of this request (all requests served
    /// by one engine config share identical parameters, so a scheduler
    /// may cost a fused sweep with any participant's roofline).
    pub fn verifier_roofline(&self) -> &Roofline {
        &self.ver_roof
    }

    /// Invoke the memory planner on current state and apply capacities;
    /// refresh the memoized demand/floor declarations from the same
    /// context.
    fn replan(&mut self) {
        let ctx = self.plan_context();
        let plan = self.planner.plan(&self.cfg, &ctx);
        debug_assert!(plan.fits(ctx.kv_budget_bytes), "planner exceeded budget");
        self.plan = plan;
        self.gen_kv.set_capacity_bytes(plan.gen_kv_bytes);
        self.ver_kv.set_capacity_bytes(plan.ver_kv_bytes);
        self.refresh_share_declarations(&ctx);
    }

    /// Refresh the memoized elastic-share declarations from a planner
    /// context (demand estimate and accepted-token floor).
    fn refresh_share_declarations(&mut self, ctx: &PlanContext) {
        self.last_demand = crate::planner::working_set_demand(&self.cfg, ctx);
        let bytes_per_token = self.gen_kv.config().bytes_per_token;
        let working_set = ctx.tree_tokens * bytes_per_token;
        let growth = ctx.n_beams as u64 * ctx.step_tokens * bytes_per_token;
        let gen_fraction = self.plan.gen_kv_bytes.max(1) as f64 / self.kv_budget.max(1) as f64;
        self.last_floor = ((working_set + growth) as f64 / gen_fraction.clamp(0.1, 1.0)) as u64;
    }

    /// Blocks a beam will need to finish its step, with slack.
    fn growth_blocks(&self, beam: &Beam) -> u64 {
        beam.remaining() / self.cfg.block_size + 2
    }

    /// Open a generation phase: offload the verifier's KV if planned,
    /// order the frontier, initialize the admission queue and per-phase
    /// containers. The scheduling order lands in `scratch.ordered` (the
    /// verification phase reuses it for locality).
    fn begin_generation(&mut self, driver: &mut dyn SearchDriver) {
        // Offload: the verifier yields its KV while the generator runs.
        if self.plan.offload {
            let bytes = self.ver_kv.swap_out_unpinned();
            let t = self.cfg.device.pcie_transfer_seconds(bytes);
            self.advance(t, 0.0, Phase::Generation);
            self.breakdown.offload += t;
        }
        let mut items = std::mem::take(&mut self.scratch.items);
        items.clear();
        items.extend(self.frontier.iter().enumerate().map(|(i, &bi)| {
            let b = &self.beams[bi];
            OrderItem {
                index: i,
                kv: b.kv,
                parent_kv: b.parent.map(|p| self.beams[p.0 as usize].kv),
                born_rank: b.id.0,
            }
        }));
        let perm = self.order.order(&items, &self.gen_kv);
        debug_assert_eq!(perm.len(), items.len());
        let mut ordered = std::mem::take(&mut self.scratch.ordered);
        ordered.clear();
        ordered.extend(perm.iter().map(|&i| self.frontier[items[i].index]));
        self.scratch.items = items;

        self.scratch.queue.clear();
        self.scratch.queue.extend(ordered.iter().copied());
        self.scratch.ordered = ordered;
        self.scratch.active.clear();
        self.scratch.finished.clear();
        self.scratch.spec_tasks.clear();
        self.scratch.spec_started.clear();
        self.scratch.defer_counts.clear();
        self.gen_target_batch = 0;
        self.compute_score_bins(driver.branching().max(1));
    }

    /// Close a generation phase: capture the driver's verification mode
    /// and move to [`RunPhase::Generated`].
    fn end_generation(&mut self, driver: &mut dyn SearchDriver) {
        self.pending_verify_all = driver.verify_every_step();
        self.phase = RunPhase::Generated;
    }

    /// Chunked sub-iteration decode, step 1: admit waiting paths into
    /// the decode batch, refill speculative slots, and plan the next
    /// decode segment — capped at `cap` tokens per sequence, so an
    /// external scheduler can force a chunk boundary every `cap` tokens
    /// and admit newly arrived requests into the co-batch there
    /// (token-granularity joins). Called in [`RunPhase::Ready`] it
    /// opens the generation phase first (replan, frontier ordering).
    ///
    /// Returns [`DecodeStatus::Planned`] with the chunk to be charged
    /// via [`RequestRun::apply_decode_chunk`],
    /// [`DecodeStatus::Generated`] when the generation phase completed
    /// without another segment, or [`DecodeStatus::Finished`] when the
    /// run was already complete. With `cap == u64::MAX` every chunk is
    /// one full decode segment and the plan/apply cycle reproduces the
    /// historical monolithic generation phase bit for bit
    /// ([`RequestRun::plan_iteration`] is exactly that loop).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PathExceedsMemory`] when a single path
    /// cannot fit in the generator's KV allocation.
    pub fn plan_decode_chunk(
        &mut self,
        driver: &mut dyn SearchDriver,
        cap: u64,
    ) -> Result<DecodeStatus, EngineError> {
        if self.phase == RunPhase::Ready {
            if self.done {
                return Ok(DecodeStatus::Finished);
            }
            self.replan();
            self.begin_generation(driver);
            self.phase = RunPhase::Decoding;
        }
        assert!(
            self.phase == RunPhase::Decoding,
            "plan_decode_chunk called mid-iteration (phase {:?})",
            self.phase
        );
        assert!(
            self.pending_decode.is_none(),
            "previous decode chunk was never applied"
        );
        let mut queue = std::mem::take(&mut self.scratch.queue);
        let mut active = std::mem::take(&mut self.scratch.active);
        let mut finished_this_phase = std::mem::take(&mut self.scratch.finished);
        let mut spec_tasks = std::mem::take(&mut self.scratch.spec_tasks);
        let mut spec_started = std::mem::take(&mut self.scratch.spec_started);
        let bins = std::mem::take(&mut self.scratch.bins);

        let planned = loop {
            // Admission: fill with waiting paths first (Phase 1,
            // continuous beam batching).
            let reserve: u64 = active
                .iter()
                .map(|&i| self.growth_blocks(&self.beams[i]))
                .sum::<u64>()
                + spec_tasks
                    .iter()
                    .map(|t| (t.target - t.generated) / self.cfg.block_size + 2)
                    .sum::<u64>();
            while let Some(&cand) = queue.front() {
                let (bkv, brem, bdone) = {
                    let beam = &self.beams[cand];
                    (beam.kv, beam.remaining(), beam.step_complete())
                };
                if bdone {
                    queue.pop_front();
                    finished_this_phase.push(cand);
                    continue;
                }
                let needed =
                    self.gen_kv.blocks_needed(bkv, brem) + self.growth_blocks(&self.beams[cand]);
                let obtainable = self.gen_kv.obtainable_blocks_for(bkv);
                let fits = needed + reserve <= obtainable;
                if fits || active.is_empty() {
                    queue.pop_front();
                    match self.gen_kv.pin(bkv) {
                        Ok(cost) => {
                            self.charge_gen_restore(&cost);
                            active.push(cand);
                        }
                        Err(KvError::InsufficientMemory { needed, .. }) => {
                            return Err(EngineError::PathExceedsMemory {
                                needed,
                                capacity: self.gen_kv.config().capacity_blocks(),
                            });
                        }
                        Err(_) => unreachable!("pin only fails on memory"),
                    }
                    if !fits {
                        break; // emergency admission: run it alone
                    }
                } else {
                    break;
                }
            }
            if active.is_empty() {
                if queue.is_empty() {
                    break None;
                }
                continue;
            }
            self.gen_target_batch = self.gen_target_batch.max(active.len() + spec_tasks.len());

            // Phase 2: speculative slot refill, only with an empty
            // waiting queue and before the preemption deadline.
            if self.cfg.spec.enabled && queue.is_empty() && self.clock < self.spec_off_after {
                self.refill_spec_slots(
                    driver,
                    &bins,
                    &finished_this_phase,
                    &active,
                    &mut spec_tasks,
                    &mut spec_started,
                    self.gen_target_batch,
                );
            }

            // One segment: advance until the next completion event (or
            // the scheduler's chunk cap, whichever is nearer).
            let k_active = active
                .iter()
                .map(|&i| self.beams[i].remaining())
                .min()
                .unwrap();
            let k_spec = spec_tasks
                .iter()
                .map(|t| t.target - t.generated)
                .min()
                .unwrap_or(u64::MAX);
            let k = k_active.min(k_spec).max(1).min(cap.max(1));
            let batch = active.len() + spec_tasks.len();
            let ctx_sum: u64 = active
                .iter()
                .map(|&i| self.gen_kv.seq_tokens(self.beams[i].kv))
                .chain(spec_tasks.iter().map(|t| self.gen_kv.seq_tokens(t.node)))
                .sum();
            break Some(DecodeChunk { k, batch, ctx_sum });
        };
        // Hand the containers back between protocol calls (error paths
        // above skip this; the run is over then anyway).
        self.scratch.queue = queue;
        self.scratch.active = active;
        self.scratch.finished = finished_this_phase;
        self.scratch.spec_tasks = spec_tasks;
        self.scratch.spec_started = spec_started;
        self.scratch.bins = bins;
        match planned {
            Some(chunk) => {
                self.pending_decode = Some(chunk);
                Ok(DecodeStatus::Planned(chunk))
            }
            None => {
                self.end_generation(driver);
                Ok(DecodeStatus::Generated)
            }
        }
    }

    /// The wall-clock seconds the planned chunk will charge under the
    /// co-batch currently declared via [`RequestRun::set_co_batch`] —
    /// what a scheduler uses to find the next shared chunk boundary
    /// before committing the chunk. Bit-identical to the charge
    /// [`RequestRun::apply_decode_chunk`] books (same float ops).
    pub fn chunk_seconds(&self, chunk: &DecodeChunk) -> f64 {
        let total_batch = chunk.batch + self.co_seqs;
        let avg_ctx = (chunk.ctx_sum + self.co_ctx_sum) / total_batch as u64 + chunk.k / 2;
        self.gen_roof.decode_step(total_batch, avg_ctx).seconds * chunk.k as f64
    }

    /// Chunked sub-iteration decode, step 2: charge the planned chunk's
    /// decode kernel (priced over the co-batch declared *now*, which may
    /// differ from the plan-time co-batch — that is the point of
    /// token-granularity joins) and apply its `k` tokens to every batch
    /// member: extend KV, handle memory-pressure deferral, advance
    /// speculative slots, retire members whose step completed.
    ///
    /// Returns [`DecodeStatus::Decoding`] while the generation phase has
    /// more work and [`DecodeStatus::Generated`] when it completed
    /// ([`RequestRun::take_verify_batch`] is next).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PathExceedsMemory`] when a repeatedly
    /// deferred path cannot fit the generator's KV allocation at all.
    ///
    /// # Panics
    ///
    /// Panics when called without a planned chunk.
    pub fn apply_decode_chunk(
        &mut self,
        driver: &mut dyn SearchDriver,
    ) -> Result<DecodeStatus, EngineError> {
        assert!(
            self.phase == RunPhase::Decoding,
            "apply_decode_chunk called out of phase (phase {:?})",
            self.phase
        );
        let chunk = self.pending_decode.take().expect("no decode chunk planned");
        let k = chunk.k;
        let mut queue = std::mem::take(&mut self.scratch.queue);
        let mut active = std::mem::take(&mut self.scratch.active);
        let mut finished_this_phase = std::mem::take(&mut self.scratch.finished);
        let mut spec_tasks = std::mem::take(&mut self.scratch.spec_tasks);
        let mut spec_started = std::mem::take(&mut self.scratch.spec_started);
        let mut defer_counts = std::mem::take(&mut self.scratch.defer_counts);
        let mut deferred = std::mem::take(&mut self.scratch.deferred);
        let mut still_failing = std::mem::take(&mut self.scratch.still_failing);
        let mut still_active = std::mem::take(&mut self.scratch.still_active);
        let mut kept_spec = std::mem::take(&mut self.scratch.kept_spec);

        // Sequences co-scheduled from other requests ride the same
        // decode kernel: one shared weight sweep, everyone's KV
        // traffic. With no co-batch this reduces to the standalone
        // cost exactly.
        let total_batch = chunk.batch + self.co_seqs;
        let avg_ctx = (chunk.ctx_sum + self.co_ctx_sum) / total_batch as u64 + k / 2;
        let step_cost = self.gen_roof.decode_step(total_batch, avg_ctx);
        let dt = step_cost.seconds * k as f64;
        self.advance(dt, step_cost.compute_util, Phase::Generation);
        self.breakdown.generator += dt;
        self.stats.decoded_tokens += k * chunk.batch as u64;

        // Apply k tokens to every member.
        deferred.clear();
        let mut emergency = false;
        for &bi in &active {
            match self.gen_kv.extend(self.beams[bi].kv, k) {
                Ok(()) => self.beams[bi].step_done += k,
                Err(KvError::InsufficientMemory { .. }) => {
                    emergency = true;
                    deferred.push(bi);
                }
                Err(e) => panic!("extend failed: {e}"),
            }
        }
        if emergency {
            // Abort speculation to relieve pressure, retry deferred.
            self.abort_spec(&mut spec_tasks, &mut spec_started, true);
            still_failing.clear();
            for &bi in &deferred {
                match self.gen_kv.extend(self.beams[bi].kv, k) {
                    Ok(()) => self.beams[bi].step_done += k,
                    Err(_) => still_failing.push(bi),
                }
            }
            for &bi in &still_failing {
                // Defer the beam: release it and re-queue; its
                // partial step stays cached and resumes later. A beam
                // that keeps failing cannot fit at all.
                let count = defer_counts.entry(bi).or_insert(0);
                *count += 1;
                if *count > 3 {
                    return Err(EngineError::PathExceedsMemory {
                        needed: self.gen_kv.blocks_needed(self.beams[bi].kv, 1),
                        capacity: self.gen_kv.config().capacity_blocks(),
                    });
                }
                self.gen_kv.unpin(self.beams[bi].kv);
                active.retain(|&x| x != bi);
                queue.push_back(bi);
            }
        }
        kept_spec.clear();
        for mut task in spec_tasks.drain(..) {
            match self.gen_kv.extend(task.node, k) {
                Ok(()) => {
                    task.generated += k;
                    self.stats.spec.spec_tokens += k;
                    if task.generated >= task.target {
                        self.finish_spec_branch(task, false);
                    } else {
                        kept_spec.push(task);
                    }
                }
                Err(_) => {
                    // Memory pressure kills the branch (the partial
                    // head start is still recorded and unpinned).
                    self.stats.spec.preempted_branches += 1;
                    self.record_partial_spec(task);
                }
            }
        }
        std::mem::swap(&mut spec_tasks, &mut kept_spec);

        // Retire members that finished their step; their slots will
        // be refilled at the next chunk's admission.
        still_active.clear();
        for &bi in &active {
            if self.beams[bi].step_complete() {
                self.gen_kv.unpin(self.beams[bi].kv);
                finished_this_phase.push(bi);
            } else {
                still_active.push(bi);
            }
        }
        std::mem::swap(&mut active, &mut still_active);

        let over = active.is_empty() && queue.is_empty();
        if over {
            // Straggler done: strictly terminate speculation
            // regardless of progress (Sec. 4.1.2).
            self.abort_spec(&mut spec_tasks, &mut spec_started, false);
        }
        // Hand the containers back for the next chunk / iteration.
        self.scratch.queue = queue;
        self.scratch.active = active;
        self.scratch.finished = finished_this_phase;
        self.scratch.spec_tasks = spec_tasks;
        self.scratch.spec_started = spec_started;
        self.scratch.defer_counts = defer_counts;
        self.scratch.deferred = deferred;
        self.scratch.still_failing = still_failing;
        self.scratch.still_active = still_active;
        self.scratch.kept_spec = kept_spec;
        if over {
            self.end_generation(driver);
            Ok(DecodeStatus::Generated)
        } else {
            Ok(DecodeStatus::Decoding)
        }
    }

    fn charge_gen_restore(&mut self, cost: &ftts_kv::PinCost) {
        if cost.recompute_tokens > 0 {
            let c = self.gen_roof.prefill(cost.recompute_tokens, 0);
            self.advance(c.seconds, c.compute_util, Phase::Generation);
            self.breakdown.recompute += c.seconds;
        }
        if cost.transfer_in_bytes > 0 {
            let t = self
                .cfg
                .device
                .pcie_transfer_seconds(cost.transfer_in_bytes);
            self.advance(t, 0.0, Phase::Generation);
            if self.swap_accounting {
                self.breakdown.swap += t;
            } else {
                self.breakdown.offload += t;
            }
        }
    }

    /// Quantile bins over the frontier's previous scores; fills
    /// `scratch.bins` with each frontier beam's speculative potential
    /// `M_i = B - j + 1` (Sec. 4.1.1).
    fn compute_score_bins(&mut self, b: usize) {
        let mut ranking = std::mem::take(&mut self.scratch.bin_ranking);
        ranking.clear();
        ranking.extend(self.frontier.iter().map(|&i| (i, self.beams[i].prev_score)));
        ranking.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
        let n = ranking.len().max(1);
        self.scratch.bins.clear();
        self.scratch
            .bins
            .extend(ranking.iter().enumerate().map(|(rank, &(idx, _))| {
                let bin = rank * b / n; // 0 = best bin
                (idx, (b - bin) as u64)
            }));
        self.scratch.bin_ranking = ranking;
    }

    #[allow(clippy::too_many_arguments)]
    fn refill_spec_slots(
        &mut self,
        driver: &mut dyn SearchDriver,
        bins: &std::collections::HashMap<usize, u64>,
        finished: &[usize],
        active: &[usize],
        spec_tasks: &mut Vec<SpecTask>,
        spec_started: &mut std::collections::HashMap<usize, u64>,
        target_batch: usize,
    ) {
        let mut free_slots = target_batch.saturating_sub(active.len() + spec_tasks.len());
        if free_slots == 0 {
            return;
        }
        // Candidates: finished, non-terminal beams with unstarted
        // speculative potential, highest potential first.
        let mut candidates: Vec<(u64, usize)> = finished
            .iter()
            .filter(|&&bi| !self.beams[bi].latent.terminal)
            .filter_map(|&bi| {
                let m = bins.get(&bi).copied().unwrap_or(1);
                let started = spec_started.get(&bi).copied().unwrap_or(0);
                (started < m).then_some((m - started, bi))
            })
            .collect();
        candidates.sort_by(|a, b| b.cmp(a));
        for (_, bi) in candidates {
            while free_slots > 0 {
                let started = spec_started.get(&bi).copied().unwrap_or(0);
                let m = bins.get(&bi).copied().unwrap_or(1);
                if started >= m {
                    break;
                }
                let branch = started;
                let parent_latent = self.beams[bi].latent;
                let plan = self
                    .generator
                    .plan_step(&self.problem, &parent_latent, branch);
                let target = driver
                    .step_token_cap(plan.latent.depth)
                    .map_or(plan.n_tokens, |cap| plan.n_tokens.min(cap));
                let eps = self.prm.child_eps(self.beams[bi].eps, plan.latent.key);
                // Speculation is strictly opportunistic: it may only use
                // memory that is *free*, never evict retained prefixes
                // (that would trade real cache hits for speculative
                // work), and it leaves a margin so the next iteration's
                // admissions do not evict live paths either.
                let leaf = self.beams[bi].kv;
                let spec_blocks = target / self.cfg.block_size + 2;
                let margin = self.gen_kv.config().capacity_blocks() / 8;
                if self.gen_kv.free_blocks() < spec_blocks * 2 + margin {
                    return; // no headroom for more speculation
                }
                let node = self.gen_kv.fork(leaf).expect("fork");
                match self.gen_kv.pin(node) {
                    Ok(cost) => self.charge_gen_restore(&cost),
                    Err(_) => return,
                }
                *spec_started.entry(bi).or_insert(0) += 1;
                self.stats.spec.spec_branches += 1;
                spec_tasks.push(SpecTask {
                    beam: bi,
                    branch,
                    node,
                    plan,
                    eps,
                    target,
                    generated: 0,
                });
                free_slots -= 1;
            }
            if free_slots == 0 {
                break;
            }
        }
    }

    /// A speculative branch completed its whole future step.
    fn finish_spec_branch(&mut self, task: SpecTask, aborted: bool) {
        self.gen_kv.unpin(task.node);
        let beam = &mut self.beams[task.beam];
        beam.spec.push(SpecBranch {
            branch: task.branch,
            node: task.node,
            plan: StepPlan {
                n_tokens: task.target,
                ..task.plan
            },
            eps: task.eps,
            generated: task.generated,
            complete: !aborted && task.generated >= task.target,
            preverified: None,
            ver_node: None,
        });
    }

    /// Record a partially generated branch (still usable as head start).
    fn record_partial_spec(&mut self, task: SpecTask) {
        if task.generated > 0 {
            self.finish_spec_branch(task, true);
        } else {
            self.gen_kv.unpin(task.node);
        }
    }

    fn abort_spec(
        &mut self,
        spec_tasks: &mut Vec<SpecTask>,
        _spec_started: &mut std::collections::HashMap<usize, u64>,
        count_preempted: bool,
    ) {
        for task in spec_tasks.drain(..) {
            if count_preempted {
                self.stats.spec.preempted_branches += 1;
            }
            self.record_partial_spec(task);
        }
    }

    /// The verifier mirror pass: mirror every beam that stepped this
    /// iteration (plus LookAhead piggybacks) into the verifier cache, in
    /// scheduler order, batched by the memory plan. All cache side
    /// effects and PCIe transfers happen here; the prefill kernel time
    /// of each batch is *recorded* as a [`VerifyChunk`] instead of
    /// charged, so the sweeps can be costed solo (the [`RequestRun::step`]
    /// wrapper), serialized behind other requests, or fused across
    /// requests into one shared sweep.
    fn prepare_verify(&mut self) {
        self.pending_chunks.clear();
        let order = std::mem::take(&mut self.scratch.ordered);
        if self.plan.offload {
            // Generator yields; verifier KV returns on demand via pins.
            let bytes = self.gen_kv.swap_out_unpinned();
            let t = self.cfg.device.pcie_transfer_seconds(bytes);
            self.advance(t, 0.0, Phase::Verification);
            self.breakdown.offload += t;
        }
        let verify_all = self.pending_verify_all;
        let mut to_verify = std::mem::take(&mut self.scratch.to_verify);
        to_verify.clear();
        to_verify.extend(order.iter().copied().filter(|&bi| {
            let b = &self.beams[bi];
            b.preverified.is_none() && (verify_all || b.latent.terminal)
        }));
        // Beams skipped thanks to LookAhead still need their score set.
        for &bi in &order {
            if let Some(score) = self.beams[bi].preverified {
                self.beams[bi].score = Some(score);
                self.stats.spec.lookahead_hits += 1;
            }
        }
        let batch_size = self.plan.ver_batch.max(1);
        let caching = self.cfg.ver_prefix_caching;
        let lookahead = caching && self.cfg.spec.enabled && self.cfg.spec.lookahead;
        let mut pinned = std::mem::take(&mut self.scratch.pinned);
        for chunk in to_verify.chunks(batch_size) {
            let mut new_tokens = 0u64;
            let mut cached_tokens = 0u64;
            pinned.clear();
            for &bi in chunk {
                if !caching {
                    // Baseline verifier: every verification is an
                    // independent request prefilling the entire path.
                    new_tokens += self.gen_kv.seq_tokens(self.beams[bi].kv);
                    continue;
                }
                // The beam's verifier anchor is its nearest mirrored
                // ancestor (at worst the prompt); the gap covers this
                // step plus any steps a past cache failure skipped.
                let anchor = self.beams[bi].ver_kv.unwrap_or(self.ver_root);
                let gap = self
                    .gen_kv
                    .seq_tokens(self.beams[bi].kv)
                    .saturating_sub(self.ver_kv.seq_tokens(anchor))
                    .max(1);
                match self.mirror_verify(anchor, gap) {
                    Some((node, recompute, transfer)) => {
                        self.beams[bi].ver_kv = Some(node);
                        new_tokens += gap + recompute;
                        cached_tokens +=
                            self.ver_kv.seq_tokens(node).saturating_sub(gap + recompute);
                        if transfer > 0 {
                            let t = self.cfg.device.pcie_transfer_seconds(transfer);
                            self.advance(t, 0.0, Phase::Verification);
                            self.breakdown.offload += t;
                        }
                        pinned.push(node);
                        // LookAhead: a complete speculative continuation
                        // is verified in the same pass (Sec. 4.1.3).
                        if lookahead {
                            if let Some(spec0) = self.beams[bi]
                                .spec
                                .iter()
                                .position(|s| s.branch == 0 && s.complete)
                            {
                                let (spec_tokens, quality, spec_eps) = {
                                    let s = &self.beams[bi].spec[spec0];
                                    (s.generated, s.plan.latent.quality, s.eps)
                                };
                                if let Some((snode, srec, _)) =
                                    self.mirror_verify(node, spec_tokens)
                                {
                                    new_tokens += spec_tokens + srec;
                                    pinned.push(snode);
                                    let score = self.prm.score(quality, spec_eps);
                                    let s = &mut self.beams[bi].spec[spec0];
                                    s.preverified = Some(score);
                                    s.ver_node = Some(snode);
                                }
                            }
                        }
                    }
                    None => {
                        // Verifier cache cannot host the path right now:
                        // stateless full-path prefill. The anchor is kept
                        // so descendants can re-enter the cache later.
                        let full = self.gen_kv.seq_tokens(self.beams[bi].kv);
                        new_tokens += full;
                    }
                }
            }
            self.pending_chunks.push(VerifyChunk {
                members: chunk.len().max(1),
                new_tokens,
                cached_tokens,
            });
            // Unpinning here (before the next chunk's mirror work, after
            // this chunk's) keeps the cache-operation sequence identical
            // to the monolithic verify loop, whose prefill charge sat in
            // between but never touched the cache.
            for &node in &pinned {
                self.ver_kv.unpin(node);
            }
        }
        self.scratch.pinned = pinned;
        self.scratch.to_verify = to_verify;
        self.scratch.ordered = order;
    }

    /// Reveal verifier outputs after the sweeps were charged: scores for
    /// every verified beam, previous scores carried forward for
    /// unverified ones (Best-of-N intermediate steps).
    fn settle_verify_scores(&mut self) {
        let to_verify = std::mem::take(&mut self.scratch.to_verify);
        for &bi in &to_verify {
            let b = &mut self.beams[bi];
            b.score = Some(self.prm.score(b.latent.quality, b.eps));
        }
        self.scratch.to_verify = to_verify;
        let order = std::mem::take(&mut self.scratch.ordered);
        for &bi in &order {
            if self.beams[bi].score.is_none() {
                self.beams[bi].score = Some(self.beams[bi].prev_score);
            }
        }
        self.scratch.ordered = order;
    }

    /// Mirror one step into the verifier cache: fork from the parent's
    /// verifier node, pin, extend. Returns `(node, recompute_tokens,
    /// transfer_bytes)`, or `None` if the verifier cache cannot host it.
    fn mirror_verify(&mut self, parent: NodeId, step_tokens: u64) -> Option<(NodeId, u64, u64)> {
        let node = self.ver_kv.fork(parent).ok()?;
        match self.ver_kv.pin(node) {
            Ok(cost) => match self.ver_kv.extend(node, step_tokens) {
                Ok(()) => Some((node, cost.recompute_tokens, cost.transfer_in_bytes)),
                Err(_) => {
                    self.ver_kv.unpin(node);
                    None
                }
            },
            Err(_) => None,
        }
    }

    /// Move terminal beams out of the frontier, recording outcomes.
    fn retire_terminals(&mut self) {
        let mut remaining = std::mem::take(&mut self.scratch.frontier_next);
        remaining.clear();
        let frontier = std::mem::take(&mut self.frontier);
        for &bi in &frontier {
            if self.beams[bi].latent.terminal {
                let b = &mut self.beams[bi];
                b.state = BeamState::Completed;
                b.completed_at = Some(self.clock);
                let tokens = self
                    .gen_kv
                    .seq_tokens(b.kv)
                    .saturating_sub(self.problem.prompt_tokens);
                let answer = b.latent.answer;
                self.stats.beams.push(BeamOutcome {
                    tokens,
                    completion_time: self.clock,
                    answer,
                    score: b.score.unwrap_or(0.0),
                    correct: answer == Some(self.problem.correct_answer()),
                });
            } else {
                remaining.push(bi);
            }
        }
        let mut recycled = frontier;
        recycled.clear();
        self.scratch.frontier_next = recycled;
        self.frontier = remaining;
    }

    /// Expand selected beams into children, applying speculative
    /// inheritance and truncation (Alg. 1, lines 18–19).
    fn branch(
        &mut self,
        picks: &[(usize, usize)],
        driver: &mut dyn SearchDriver,
        initial: bool,
    ) -> Result<(), EngineError> {
        let mut selected = std::mem::take(&mut self.scratch.selected);
        selected.clear();
        selected.extend(picks.iter().map(|&(i, _)| i));
        // Prune unselected frontier beams; their speculative work is lost
        // and its KV is released immediately so it cannot crowd out live
        // prefixes. The frontier is taken (not cloned) and recycled as
        // next iteration's scratch.
        let mut old_frontier = std::mem::take(&mut self.frontier);
        for &bi in &old_frontier {
            if !selected.contains(&bi) {
                self.beams[bi].state = BeamState::Pruned;
                self.discard_leftover_spec(bi);
            }
        }
        self.scratch.selected = selected;
        let mut next_frontier = std::mem::take(&mut self.scratch.frontier_next);
        next_frontier.clear();
        for &(parent_idx, children) in picks {
            debug_assert!(matches!(self.beams[parent_idx].state, BeamState::Active));
            for j in 0..children as u64 {
                let child = self.make_child(parent_idx, j, driver, initial)?;
                next_frontier.push(child);
            }
            self.beams[parent_idx].state = BeamState::Pruned; // expanded
            self.discard_leftover_spec(parent_idx);
        }
        old_frontier.clear();
        self.scratch.frontier_next = old_frontier;
        self.frontier = next_frontier;
        Ok(())
    }

    /// Free the KV of speculative branches that were not consumed by any
    /// child (dead speculative work).
    fn discard_leftover_spec(&mut self, bi: usize) {
        self.scratch.spec_leftovers.clear();
        let drained = self.beams[bi].spec.drain(..).map(|s| s.node);
        self.scratch.spec_leftovers.extend(drained);
        for &node in &self.scratch.spec_leftovers {
            self.gen_kv.discard(node);
        }
    }

    fn make_child(
        &mut self,
        parent_idx: usize,
        j: u64,
        driver: &mut dyn SearchDriver,
        initial: bool,
    ) -> Result<usize, EngineError> {
        let (parent_latent, parent_eps, parent_score, parent_kv, parent_ver, subtree, parent_id) = {
            let p = &self.beams[parent_idx];
            (
                p.latent,
                p.eps,
                p.score.unwrap_or(0.5),
                p.kv,
                p.ver_kv,
                p.subtree,
                p.id,
            )
        };
        let spec_pos = self.beams[parent_idx]
            .spec
            .iter()
            .position(|s| s.branch == j);
        let spec = spec_pos.map(|pos| self.beams[parent_idx].spec.remove(pos));

        let plan = match &spec {
            Some(s) => s.plan,
            None => self.generator.plan_step(&self.problem, &parent_latent, j),
        };
        let step_target = driver
            .step_token_cap(plan.latent.depth)
            .map_or(plan.n_tokens, |cap| plan.n_tokens.min(cap));
        let eps = match &spec {
            Some(s) => s.eps,
            None => self.prm.child_eps(parent_eps, plan.latent.key),
        };

        let (kv_node, head_start, preverified, ver_node) = match spec {
            Some(s) if s.branch == 0 => {
                // The original keeps its speculative tokens intact.
                self.stats.spec.spec_tokens_used += s.generated;
                let pre = if s.complete { s.preverified } else { None };
                let vnode = if pre.is_some() { s.ver_node } else { None };
                (s.node, s.generated, pre, vnode)
            }
            Some(s) => {
                // Duplicates keep a truncated prefix, drawn around R
                // (Alg. 1 line 19). The kept tokens are block-copied into
                // the duplicate's own node — a device-side copy with
                // negligible latency — so the donor speculative node can
                // be discarded instead of lingering as a residency
                // dependency.
                let mut rng = stream(&[plan.latent.key, 0x7234_6CA7]);
                let ratio = normal(
                    &mut rng,
                    self.cfg.spec.truncation_ratio,
                    self.cfg.spec.truncation_sigma,
                )
                .clamp(0.0, 1.0);
                let keep = ((s.generated as f64 * ratio).round() as u64).min(s.generated);
                let node = self.gen_kv.fork(parent_kv).expect("fork");
                let mut applied = 0;
                if keep > 0 {
                    // Only copy when the source path is still resident;
                    // otherwise the head start is simply lost.
                    if let Ok(cost) = self.gen_kv.pin(node) {
                        if cost.is_hit() && self.gen_kv.extend(node, keep).is_ok() {
                            applied = keep;
                        }
                        self.gen_kv.unpin(node);
                    }
                }
                self.stats.spec.spec_tokens_used += applied;
                self.gen_kv.discard(s.node);
                (node, applied, None, None)
            }
            None => {
                let node = self.gen_kv.fork(parent_kv).expect("fork");
                (node, 0, None, None)
            }
        };

        let id = BeamId(self.beams.len() as u32);
        let subtree = if initial {
            self.born_counter - 1
        } else {
            subtree
        };
        self.born_counter += 1;
        let beam = Beam {
            id,
            parent: Some(parent_id),
            subtree,
            kv: kv_node,
            ver_kv: ver_node.or(parent_ver),
            latent: plan.latent,
            eps,
            score: None,
            prev_score: parent_score,
            step_target,
            step_done: head_start.min(step_target),
            preverified,
            state: BeamState::Active,
            spec: Vec::new(),
            completed_at: None,
        };
        self.beams.push(beam);
        Ok(self.beams.len() - 1)
    }
}
