//! Memory planning interface.
//!
//! The generator and verifier share one KV budget (paper Sec. 3.2.3).
//! A [`MemoryPlanner`] decides the split — and, in the extended search
//! space, whether to time-multiplex the whole budget by offloading the
//! inactive model's KV to host memory (Sec. 4.3.2). The engine re-invokes
//! the planner whenever the system state changes (frontier size or
//! context growth), mirroring the paper's dynamic invocation.
//!
//! [`StaticSplitPlanner`] is the baseline: two independent vLLM instances
//! sized proportionally to their model's weights. The roofline-guided
//! search lives in `ftts-core`.

use serde::{Deserialize, Serialize};

use crate::config::EngineConfig;

/// System state handed to the planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanContext {
    /// Total KV budget to split, in bytes.
    pub kv_budget_bytes: u64,
    /// Number of beams in the current frontier.
    pub n_beams: usize,
    /// Mean context length per beam, in tokens.
    pub avg_ctx: u64,
    /// Expected tokens per thinking step (decode horizon `S_dec`).
    pub step_tokens: u64,
    /// Expected verifier input length (`S` in the paper's formulation).
    pub ver_seq: u64,
    /// Unique tokens in the union of all frontier paths — the working
    /// set a cache must retain across iterations to avoid recomputation
    /// (prefix sharing already accounted for).
    pub tree_tokens: u64,
    /// Whether the verifier retains KV across iterations (FastTTS) or
    /// re-prefills full paths every round (baseline).
    pub ver_caching: bool,
}

/// A KV partition decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Generator KV capacity, bytes.
    pub gen_kv_bytes: u64,
    /// Verifier KV capacity, bytes.
    pub ver_kv_bytes: u64,
    /// Verifier prefill batch size (`B_pre`).
    pub ver_batch: usize,
    /// Time-multiplex the budget: swap the inactive model's KV to host
    /// memory between phases, paying PCIe transfers.
    pub offload: bool,
}

impl MemoryPlan {
    /// Sanity-check the plan against a budget.
    pub fn fits(&self, kv_budget_bytes: u64) -> bool {
        if self.offload {
            // Relaxed, independent constraints (Sec. 4.3.2).
            self.gen_kv_bytes <= kv_budget_bytes && self.ver_kv_bytes <= kv_budget_bytes
        } else {
            self.gen_kv_bytes + self.ver_kv_bytes <= kv_budget_bytes
        }
    }
}

/// Working-set demand estimate of one request, in bytes: live beams ×
/// mean path depth (plus one decode step of growth) × KV bytes/token of
/// *both* models (the pool share is split between generator and
/// verifier mirrors by the planner), floored by the resident unique
/// tree so a request never under-declares memory it already holds.
///
/// A scheduler sharing one KV pool across requests sizes
/// demand-proportional elastic shares with this — deep beam searches
/// declare more and stop starving behind shallow ones hoarding an equal
/// split.
pub fn working_set_demand(config: &EngineConfig, ctx: &PlanContext) -> u64 {
    let per_token =
        config.models.gen_spec.kv_bytes_per_token() + config.models.ver_spec.kv_bytes_per_token();
    let depth = ctx.avg_ctx + ctx.step_tokens;
    let forward = (ctx.n_beams.max(1) as u64) * depth * per_token;
    let resident = ctx.tree_tokens * config.models.gen_spec.kv_bytes_per_token();
    forward.max(resident)
}

/// Decides the generator/verifier KV split.
pub trait MemoryPlanner: std::fmt::Debug + Send {
    /// Planner name for reports.
    fn name(&self) -> &'static str;

    /// Produce a plan for the given state.
    fn plan(&mut self, config: &EngineConfig, ctx: &PlanContext) -> MemoryPlan;
}

/// Baseline: split the KV budget in proportion to each model's weight
/// bytes — what running two separately-configured vLLM instances does.
#[derive(Debug, Clone, Default)]
pub struct StaticSplitPlanner;

impl MemoryPlanner for StaticSplitPlanner {
    fn name(&self) -> &'static str {
        "static-split"
    }

    fn plan(&mut self, config: &EngineConfig, ctx: &PlanContext) -> MemoryPlan {
        let w_gen = config.models.gen_spec.weight_bytes() as f64;
        let w_ver = config.models.ver_spec.weight_bytes() as f64;
        let gen_share = w_gen / (w_gen + w_ver);
        let gen_kv = (ctx.kv_budget_bytes as f64 * gen_share) as u64;
        let ver_kv = ctx.kv_budget_bytes - gen_kv;
        let per_seq = config.models.ver_spec.kv_bytes(ctx.ver_seq.max(1)).max(1);
        let ver_batch = ((ver_kv / per_seq) as usize).clamp(1, 512);
        MemoryPlan {
            gen_kv_bytes: gen_kv,
            ver_kv_bytes: ver_kv,
            ver_batch,
            offload: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPairing;
    use ftts_hw::GpuDevice;

    fn ctx(budget: u64) -> PlanContext {
        PlanContext {
            kv_budget_bytes: budget,
            n_beams: 16,
            avg_ctx: 512,
            step_tokens: 256,
            ver_seq: 768,
            tree_tokens: 16 * 768,
            ver_caching: false,
        }
    }

    #[test]
    fn static_split_is_weight_proportional() {
        let cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_7b());
        let mut p = StaticSplitPlanner;
        let plan = p.plan(&cfg, &ctx(10 << 30));
        assert!(plan.fits(10 << 30));
        // 7B verifier gets the lion's share under the naive split.
        assert!(plan.ver_kv_bytes > 3 * plan.gen_kv_bytes);
        assert!(!plan.offload);
        assert!(plan.ver_batch >= 1);
    }

    #[test]
    fn equal_models_split_evenly() {
        let cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        let mut p = StaticSplitPlanner;
        let plan = p.plan(&cfg, &ctx(8 << 30));
        let ratio = plan.gen_kv_bytes as f64 / plan.ver_kv_bytes as f64;
        assert!((ratio - 1.0).abs() < 0.01);
    }

    #[test]
    fn fits_checks_joint_and_relaxed_constraints() {
        let joint = MemoryPlan {
            gen_kv_bytes: 6,
            ver_kv_bytes: 6,
            ver_batch: 1,
            offload: false,
        };
        assert!(!joint.fits(10));
        let offload = MemoryPlan {
            gen_kv_bytes: 9,
            ver_kv_bytes: 9,
            ver_batch: 1,
            offload: true,
        };
        assert!(offload.fits(10));
        assert!(!offload.fits(8));
    }
}
