//! Beam (reasoning path) bookkeeping.

use ftts_kv::NodeId;
use ftts_model::{NodeLatent, StepPlan};
use serde::{Deserialize, Serialize};

/// Identifier of a beam within one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BeamId(pub u32);

impl std::fmt::Display for BeamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "beam#{}", self.0)
    }
}

/// Lifecycle state of a beam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BeamState {
    /// Currently generating / awaiting verification.
    Active,
    /// Reached a terminal reasoning state; outcome recorded.
    Completed,
    /// Pruned by the search algorithm.
    Pruned,
}

/// One in-flight speculative continuation branch of a beam
/// (pre-generating what would become child `branch` after selection).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SpecBranch {
    /// Which future child this branch pre-generates (0 = continuation).
    pub branch: u64,
    /// KV node holding the speculative tokens.
    pub node: NodeId,
    /// The (deterministic) plan of that future step.
    pub plan: StepPlan,
    /// Verifier-noise state of that future step.
    pub eps: f64,
    /// Tokens generated so far.
    pub generated: u64,
    /// Whether the whole step was pre-generated.
    pub complete: bool,
    /// LookAhead: the step was already verified; its score.
    pub preverified: Option<f64>,
    /// LookAhead: verifier-cache node holding the pre-verified step.
    pub ver_node: Option<NodeId>,
}

/// A reasoning path being served.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Beam {
    /// Beam id.
    pub id: BeamId,
    /// Parent beam id (None for the initial expansion of the prompt).
    pub parent: Option<BeamId>,
    /// Which initial subtree this beam descends from (DVTS selection).
    pub subtree: u32,
    /// Leaf node in the generator KV cache (this step's tokens).
    pub kv: NodeId,
    /// Leaf node in the verifier KV cache, if the path is mirrored there.
    pub ver_kv: Option<NodeId>,
    /// Latent state of the step this beam is generating / just generated.
    pub latent: NodeLatent,
    /// AR(1) verifier-noise state for this step.
    pub eps: f64,
    /// Verifier score of this step once verified.
    pub score: Option<f64>,
    /// Verifier score of the previous step (SelectSPEC's retention proxy).
    pub prev_score: f64,
    /// Target tokens for the current step.
    pub step_target: u64,
    /// Tokens of the current step already produced (inherited speculative
    /// head start plus decoded so far).
    pub step_done: u64,
    /// LookAhead pre-verified score for this step, if any.
    pub preverified: Option<f64>,
    /// Lifecycle state.
    pub state: BeamState,
    /// In-flight speculative branches (cleared at branching).
    pub(crate) spec: Vec<SpecBranch>,
    /// Simulated time this beam's path completed (terminal verification).
    pub completed_at: Option<f64>,
}

impl Beam {
    /// Tokens still to decode for the current step.
    pub fn remaining(&self) -> u64 {
        self.step_target.saturating_sub(self.step_done)
    }

    /// Whether the current step is fully generated.
    pub fn step_complete(&self) -> bool {
        self.remaining() == 0
    }
}

/// Immutable view of a verified beam handed to the search algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredBeam {
    /// Beam id.
    pub id: BeamId,
    /// Verifier score of the newest step, in (0, 1).
    pub score: f64,
    /// Reasoning depth (steps completed).
    pub depth: u32,
    /// Whether the path has terminated.
    pub terminal: bool,
    /// Which initial subtree the beam belongs to.
    pub subtree: u32,
    /// Total path length in tokens (prompt included).
    pub path_tokens: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beam() -> Beam {
        let mut kv = ftts_kv::KvCache::new(ftts_kv::KvCacheConfig {
            block_size: 16,
            capacity_bytes: 1 << 16,
            bytes_per_token: 4,
            prefix_sharing: true,
        });
        let node = kv.root(8).unwrap();
        Beam {
            id: BeamId(1),
            parent: None,
            subtree: 0,
            kv: node,
            ver_kv: None,
            latent: NodeLatent {
                key: 1,
                approach: 1,
                quality: 0.0,
                depth: 1,
                terminal: false,
                answer: None,
            },
            eps: 0.0,
            score: None,
            prev_score: 0.5,
            step_target: 100,
            step_done: 40,
            preverified: None,
            state: BeamState::Active,
            spec: Vec::new(),
            completed_at: None,
        }
    }

    #[test]
    fn remaining_subtracts_head_start() {
        let b = beam();
        assert_eq!(b.remaining(), 60);
        assert!(!b.step_complete());
    }

    #[test]
    fn overshoot_saturates() {
        let mut b = beam();
        b.step_done = 150;
        assert_eq!(b.remaining(), 0);
        assert!(b.step_complete());
    }

    #[test]
    fn ids_display() {
        assert_eq!(BeamId(7).to_string(), "beam#7");
    }
}
