//! Engine configuration.

use std::sync::Arc;

use ftts_hw::{GpuDevice, ModelSpec};
use ftts_model::{GeneratorProfile, PrmProfile};
use serde::{Deserialize, Serialize};

/// A generator + verifier pairing: cost specs (`ftts-hw`) and behaviour
/// profiles (`ftts-model`) for both models.
///
/// All four components are immutable per-request state and are held
/// behind `Arc`, so cloning a pairing (which the serving facade does for
/// every request) is four reference-count bumps, not a deep copy of
/// model descriptions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPairing {
    /// Generator architecture (costs).
    pub gen_spec: Arc<ModelSpec>,
    /// Verifier architecture (costs).
    pub ver_spec: Arc<ModelSpec>,
    /// Generator behaviour.
    pub gen_profile: Arc<GeneratorProfile>,
    /// Verifier behaviour.
    pub prm_profile: Arc<PrmProfile>,
}

impl ModelPairing {
    /// Build a pairing from owned specs and profiles.
    pub fn new(
        gen_spec: ModelSpec,
        ver_spec: ModelSpec,
        gen_profile: GeneratorProfile,
        prm_profile: PrmProfile,
    ) -> Self {
        Self {
            gen_spec: Arc::new(gen_spec),
            ver_spec: Arc::new(ver_spec),
            gen_profile: Arc::new(gen_profile),
            prm_profile: Arc::new(prm_profile),
        }
    }

    /// The paper's memory-constrained configuration: 1.5B generator +
    /// 1.5B verifier.
    pub fn pair_1_5b_1_5b() -> Self {
        Self::new(
            ModelSpec::qwen25_math_1_5b(),
            ModelSpec::skywork_prm_1_5b(),
            GeneratorProfile::qwen25_math_1_5b(),
            PrmProfile::skywork_1_5b(),
        )
    }

    /// The paper's verifier-heavy configuration: 1.5B generator + 7B
    /// verifier.
    pub fn pair_1_5b_7b() -> Self {
        Self::new(
            ModelSpec::qwen25_math_1_5b(),
            ModelSpec::math_shepherd_7b(),
            GeneratorProfile::qwen25_math_1_5b(),
            PrmProfile::math_shepherd_7b(),
        )
    }

    /// The paper's generator-heavy configuration: 7B generator + 1.5B
    /// verifier.
    pub fn pair_7b_1_5b() -> Self {
        Self::new(
            ModelSpec::qwen25_math_7b(),
            ModelSpec::skywork_prm_1_5b(),
            GeneratorProfile::qwen25_math_7b(),
            PrmProfile::skywork_1_5b(),
        )
    }

    /// Figure label, e.g. `"1.5B+7B"`.
    pub fn label(&self) -> String {
        format!(
            "{}+{}",
            self.gen_spec.size_label(),
            self.ver_spec.size_label()
        )
    }

    /// Combined weight bytes of both models.
    pub fn weight_bytes(&self) -> u64 {
        self.gen_spec.weight_bytes() + self.ver_spec.weight_bytes()
    }
}

/// Speculative Beam Extension settings (paper Sec. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecConfig {
    /// Master switch.
    pub enabled: bool,
    /// Mean of the truncation-ratio distribution `R`: duplicates keep on
    /// average `R` of the speculative tokens (Alg. 1 line 19). `R = 0`
    /// keeps nothing (slot filling still helps utilization); the paper's
    /// best setting is `R = 0.85` (Fig. 17 right).
    pub truncation_ratio: f64,
    /// Standard deviation of the truncation ratio draw.
    pub truncation_sigma: f64,
    /// Enable LookAhead Verification (Sec. 4.1.3): completed speculative
    /// continuations are verified together with the current step.
    pub lookahead: bool,
}

impl SpecConfig {
    /// Speculation disabled (the vLLM baseline).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            truncation_ratio: 0.0,
            truncation_sigma: 0.0,
            lookahead: false,
        }
    }

    /// The paper's default FastTTS setting.
    pub fn fasttts_default() -> Self {
        Self {
            enabled: true,
            truncation_ratio: 0.85,
            truncation_sigma: 0.08,
            lookahead: true,
        }
    }
}

impl Default for SpecConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Device to simulate (shared, never deep-cloned per request).
    pub device: Arc<GpuDevice>,
    /// Generator + verifier models.
    pub models: ModelPairing,
    /// Fraction of VRAM the serving system may use, weights included
    /// (vLLM's `gpu_memory_utilization`; the paper uses 0.9, or 0.4 for
    /// the memory-constrained setting).
    pub memory_fraction: f64,
    /// Bytes reserved for CUDA graphs and intermediate activations.
    pub reserved_bytes: u64,
    /// Tokens per KV block.
    pub block_size: u64,
    /// Enable prefix caching in both KV caches (vLLM has this on by
    /// default; disable to model the "w/o prefix cache" baseline).
    pub prefix_sharing: bool,
    /// Retain verifier KV across TTS iterations. The baseline issues each
    /// verification as an independent request that prefills the whole
    /// path (HF `search-and-learn` semantics — the recomputation
    /// LookAhead Verification eliminates, Sec. 4.1.3); FastTTS mirrors
    /// paths in the verifier cache and extends them incrementally.
    pub ver_prefix_caching: bool,
    /// Speculative Beam Extension settings.
    pub spec: SpecConfig,
    /// Record a utilization trace (costs memory; used by Fig. 4/17).
    pub trace: bool,
    /// Experiment seed (combined with problem seeds).
    pub seed: u64,
}

impl EngineConfig {
    /// A baseline-flavored config on the given device.
    pub fn baseline(device: impl Into<Arc<GpuDevice>>, models: ModelPairing) -> Self {
        Self {
            device: device.into(),
            models,
            memory_fraction: 0.9,
            reserved_bytes: 512 * 1024 * 1024,
            block_size: 16,
            prefix_sharing: true,
            ver_prefix_caching: false,
            spec: SpecConfig::disabled(),
            trace: false,
            seed: 0,
        }
    }

    /// Total KV budget in bytes shared by generator and verifier after
    /// weights and reservations.
    pub fn kv_budget_bytes(&self) -> u64 {
        let usable = (self.device.vram_bytes as f64 * self.memory_fraction) as u64;
        usable
            .saturating_sub(self.models.weight_bytes())
            .saturating_sub(self.reserved_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairings_have_expected_labels() {
        assert_eq!(ModelPairing::pair_1_5b_1_5b().label(), "1.5B+1.5B");
        assert_eq!(ModelPairing::pair_1_5b_7b().label(), "1.5B+7B");
        assert_eq!(ModelPairing::pair_7b_1_5b().label(), "7B+1.5B");
    }

    #[test]
    fn kv_budget_subtracts_weights_and_reserve() {
        let cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        let budget = cfg.kv_budget_bytes();
        assert!(
            budget > 10 * (1 << 30),
            "two 1.5B models leave >10 GiB on a 4090"
        );
        let constrained = EngineConfig {
            memory_fraction: 0.4,
            ..EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b())
        };
        assert!(constrained.kv_budget_bytes() < 4 * (1 << 30));
        assert!(constrained.kv_budget_bytes() > 0);
    }

    #[test]
    fn kv_budget_saturates_when_weights_do_not_fit() {
        let cfg = EngineConfig::baseline(GpuDevice::rtx3070ti(), ModelPairing::pair_1_5b_7b());
        // 1.5B + 7B weights (~18 GB) cannot fit in 8 GB.
        assert_eq!(cfg.kv_budget_bytes(), 0);
    }

    #[test]
    fn spec_presets() {
        assert!(!SpecConfig::disabled().enabled);
        let f = SpecConfig::fasttts_default();
        assert!(f.enabled && f.lookahead);
        assert!((f.truncation_ratio - 0.85).abs() < 1e-12);
        assert_eq!(SpecConfig::default(), SpecConfig::disabled());
    }
}
