//! Bench-regression gate: compares freshly emitted `BENCH_PR*.json`
//! reports against committed baselines with per-metric tolerances.
//!
//! Every PR's benchmark asserts its *own* acceptance gate (e.g. "fused
//! ≥ 1.15x continuous"), but nothing used to stop a later PR from
//! silently eroding an earlier PR's win while still clearing that PR's
//! absolute bar. The gate closes the loop: CI snapshots the committed
//! `BENCH_PR*.json` files before re-running the benches, then compares
//! the fresh numbers against the snapshot metric by metric. A metric
//! regressing past its tolerance fails the build; the whole comparison
//! is printed as a markdown delta table for the job summary.
//!
//! Baselines are refreshed *intentionally* by committing the fresh
//! `BENCH_PR*.json` files a bench run writes to the repo root — see
//! `docs/ci.md`.
//!
//! The JSON the benches emit is parsed by the minimal reader in this
//! module (the workspace is offline; the vendored `serde` shim has no
//! deserializer), which supports exactly the subset the reports use:
//! objects, arrays, numbers, strings, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// A parsed JSON value (minimal reader for the bench reports).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An object, with insertion-order-independent key lookup.
    Object(BTreeMap<String, Json>),
    /// An array.
    Array(Vec<Json>),
    /// A number (all JSON numbers are read as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Navigate a dot-separated path of object keys (e.g.
    /// `"policies.fused_batch8.stream_goodput_tok_per_s"`).
    pub fn at(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            match cur {
                Json::Object(map) => cur = map.get(key)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The numeric value at a dot-separated path, if any.
    pub fn number_at(&self, path: &str) -> Option<f64> {
        match self.at(path)? {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Number)
                .map_err(|_| format!("invalid number '{s}' at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                out.push(match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    other => return Err(format!("unsupported escape '\\{}'", other as char)),
                });
            }
            _ => out.push(b as char),
        }
    }
    Err("unterminated string".to_string())
}

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (speedups, goodput).
    HigherIsBetter,
    /// Smaller is better (idle fractions, latencies).
    LowerIsBetter,
}

/// One gated metric: where to find it and how much erosion to tolerate.
#[derive(Debug, Clone)]
pub struct MetricSpec {
    /// Report file name, e.g. `"BENCH_PR3.json"`.
    pub file: &'static str,
    /// Dot-separated path inside the report.
    pub path: &'static str,
    /// Short human label for the delta table.
    pub label: &'static str,
    /// Minimum tolerated goodness ratio (fresh vs baseline, direction-
    /// normalized): `0.95` fails on a > 5% regression. Ignored when
    /// [`MetricSpec::absolute`] is set.
    pub min_ratio: f64,
    /// Absolute bound that *replaces* the baseline-relative ratio test:
    /// a floor for higher-is-better metrics, a ceiling for
    /// lower-is-better ones. Use it for metrics where ratios misbehave —
    /// wall-clock-derived numbers (whose committed baseline was measured
    /// on a different machine) and near-zero fractions (where tiny
    /// absolute shifts produce huge ratios).
    pub absolute: Option<f64>,
    /// Which way the metric is supposed to move.
    pub direction: Direction,
}

/// The committed gate: one entry per headline metric of each PR's
/// bench. All simulated-time metrics (goodput, speedups) are
/// deterministic — any drift is a code change — so their ratio
/// tolerances are deliberately loose (5%) erosion catchers. The two
/// exceptions use absolute bounds instead: PR 1's eviction speedup is
/// *wall-clock*-derived (machine-dependent, so a cross-machine ratio
/// would be flaky) and PR 4's idle fraction sits near zero (where a
/// ratio trips on numeric dust).
pub fn default_specs() -> Vec<MetricSpec> {
    use Direction::{HigherIsBetter, LowerIsBetter};
    vec![
        MetricSpec {
            file: "BENCH_PR1.json",
            path: "eviction.speedup_vs_seed",
            label: "PR1 eviction speedup vs seed scan",
            min_ratio: 0.0,
            // Wall-clock metric: the indexed eviction win is ~26x on
            // any machine; the gate only needs to catch the index
            // collapsing back toward the seed scan's 1x.
            absolute: Some(5.0),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR2.json",
            path: "continuous_goodput_speedup_vs_fifo",
            label: "PR2 continuous-4 goodput vs FIFO",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR2.json",
            path: "policies.continuous_batch4.stream_goodput_tok_per_s",
            label: "PR2 continuous-4 stream goodput",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR3.json",
            path: "fused8_goodput_speedup_vs_continuous4",
            label: "PR3 fused-8 goodput vs continuous-4",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR3.json",
            path: "policies.fused_batch8.stream_goodput_tok_per_s",
            label: "PR3 fused-8 stream goodput",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR4.json",
            path: "event_goodput_speedup_vs_lockstep_fused8",
            label: "PR4 event goodput vs lockstep fused-8",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR4.json",
            path: "policies.event_fused8_window.stream_goodput_tok_per_s",
            label: "PR4 event stream goodput",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR4.json",
            path: "event_idle_fraction",
            label: "PR4 event idle fraction",
            min_ratio: 0.0,
            // Near-zero fraction (0.004 at the baseline): an absolute
            // ceiling expresses the actual invariant — event-driven
            // scheduling keeps idle far below lockstep's ~46% — without
            // tripping on half-a-percentage-point shifts.
            absolute: Some(0.05),
            direction: LowerIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR6.json",
            path: "degrade_deadline_hit_rate",
            label: "PR6 degrade deadline-hit rate",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR6.json",
            path: "policies.degrade.slo_goodput_tok_per_s",
            label: "PR6 degrade SLO goodput",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR6.json",
            path: "degrade_slo_goodput_gain_vs_naive_retry",
            label: "PR6 degrade SLO-goodput gain vs naive retry",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR7.json",
            path: "swap_goodput_gain_vs_drop",
            label: "PR7 swap-tier goodput gain vs drop-and-recompute",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR7.json",
            path: "policies.swap_tier.stream_goodput_tok_per_s",
            label: "PR7 swap-tier stream goodput",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR7.json",
            path: "drop_to_swap_recompute_ratio",
            label: "PR7 recompute-token ratio (drop vs swap)",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR8.json",
            path: "failover_deadline_hit_gain",
            label: "PR8 failover deadline-hit gain vs no-failover",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR8.json",
            path: "failover_slo_goodput_gain",
            label: "PR8 failover SLO-goodput gain vs no-failover",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR8.json",
            path: "affinity_warm_hit_gain",
            label: "PR8 prefix-affinity warm-hit gain vs JSQ",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR8.json",
            path: "fleet4_goodput_scaling_x",
            label: "PR8 4-device crash-free goodput scaling",
            min_ratio: 0.0,
            // The ISSUE's absolute bar: near-linear capacity scaling,
            // never below 3x on four devices.
            absolute: Some(3.0),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR8.json",
            path: "hetero_vs_edge_goodput_x",
            label: "PR8 hetero (Orin+A100) goodput gain vs all-Orin",
            min_ratio: 0.0,
            // JSQ must steer the cadenced trace toward the fast
            // replicas; at or below 1.2x the heterogeneity signal is
            // lost in the noise.
            absolute: Some(1.2),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR10.json",
            path: "token_join_goodput_speedup_vs_iteration_joins",
            label: "PR10 token-join goodput vs iteration joins (honest w=0)",
            min_ratio: 0.0,
            // Strictly-beats is the PR's acceptance bar, under honest
            // contention pricing on both sides.
            absolute: Some(1.01),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR10.json",
            path: "join_wait_reduction_x",
            label: "PR10 late-arrival join-latency cut vs iteration joins",
            min_ratio: 0.0,
            // The sparse fixture's launch-boundary wait must shrink when
            // arrivals join at chunk boundaries instead.
            absolute: Some(1.01),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR10.json",
            path: "retroactive_stretch_secs",
            label: "PR10 retroactive contention stretch (honest w=0)",
            min_ratio: 0.0,
            // Honest pricing must actually stretch overlapped launches;
            // 0.5 s is well below the fixture's ~1.2 s but far from 0.
            absolute: Some(0.5),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR10.json",
            path: "w0_vs_winf_goodput_gap_frac",
            label: "PR10 honest w=0 vs w=inf goodput gap",
            min_ratio: 0.0,
            // Window = 0 must stay meaningfully distinct from lockstep
            // even after overlap is priced (fixture sits near 0.64).
            absolute: Some(0.2),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR10.json",
            path: "anchor_bitwise_identical_to_event",
            label: "PR10 anchored timeline bit-identical to EventServerSim",
            min_ratio: 0.0,
            // The equivalence anchor is boolean: 1.0 or the gate is red.
            absolute: Some(1.0),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR9.json",
            path: "fair_share.victim.deadline_hit_rate",
            label: "PR9 victim deadline-hit rate under fair share",
            min_ratio: 0.0,
            // Near-zero fractions ratio badly; the fixture is tuned so
            // fair share saves every victim deadline.
            absolute: Some(0.99),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR9.json",
            path: "victim_deadline_hit_gain",
            label: "PR9 victim deadline-hit gain vs uncapped",
            min_ratio: 0.0,
            // Strictly-beats is the PR's acceptance bar: any gain at or
            // below 1.0 means the tenant layer stopped protecting.
            absolute: Some(1.05),
            direction: HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR9.json",
            path: "noisy_cap_utilization",
            label: "PR9 noisy tenant peak vs hard cap",
            min_ratio: 0.0,
            // Cap compliance: peak grant / cap must never exceed 1.0.
            absolute: Some(1.0),
            direction: LowerIsBetter,
        },
        MetricSpec {
            file: "BENCH_PR9.json",
            path: "fair_share.victim.stream_goodput_tok_per_s",
            label: "PR9 victim stream goodput under fair share",
            min_ratio: 0.95,
            absolute: None,
            direction: HigherIsBetter,
        },
    ]
}

/// Outcome of one gated metric.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// The metric's human label.
    pub label: &'static str,
    /// Baseline value, if the file/path resolved.
    pub baseline: Option<f64>,
    /// Fresh value, if the file/path resolved.
    pub fresh: Option<f64>,
    /// Direction-normalized goodness ratio (`>= 1.0` means improved).
    pub ratio: Option<f64>,
    /// Whether the metric clears its tolerance.
    pub ok: bool,
    /// Human rendering of the tolerance applied (ratio or absolute).
    pub tolerance: String,
}

/// A full gate comparison.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// One row per gated metric.
    pub rows: Vec<GateRow>,
}

impl GateReport {
    /// Whether every metric cleared its tolerance.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }

    /// Render the delta table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## Bench-regression gate\n\n");
        out.push_str("| metric | baseline | fresh | ratio | tolerance | status |\n");
        out.push_str("|---|---:|---:|---:|---:|:---:|\n");
        for r in &self.rows {
            let fmt =
                |v: Option<f64>| v.map_or_else(|| "missing".to_string(), |x| format!("{x:.4}"));
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                r.label,
                fmt(r.baseline),
                fmt(r.fresh),
                fmt(r.ratio),
                r.tolerance,
                if r.ok { "ok" } else { "REGRESSED" },
            );
        }
        let verdict = if self.passed() {
            "\nAll gated metrics within tolerance.\n"
        } else {
            "\n**Regression detected** — a gated metric eroded past its tolerance. \
             If the change is intentional, refresh the committed `BENCH_PR*.json` \
             baselines (see docs/ci.md).\n"
        };
        out.push_str(verdict);
        out
    }
}

/// The direction-normalized goodness ratio of `fresh` vs `baseline`:
/// `>= 1.0` means at least as good. Values at (or below) zero are
/// clamped to an epsilon so "idle fraction 0.0" baselines cannot divide
/// by zero — a fresh zero against a zero baseline reads as 1.0.
pub fn goodness_ratio(baseline: f64, fresh: f64, direction: Direction) -> f64 {
    const EPS: f64 = 1e-9;
    let (b, f) = (baseline.max(EPS), fresh.max(EPS));
    match direction {
        Direction::HigherIsBetter => f / b,
        Direction::LowerIsBetter => b / f,
    }
}

/// Compare the reports in `fresh_dir` against those in `baseline_dir`
/// over `specs`. A missing file or metric on either side fails that row
/// (the gate must not silently pass because a bench stopped emitting a
/// number).
pub fn run_gate(baseline_dir: &Path, fresh_dir: &Path, specs: &[MetricSpec]) -> GateReport {
    let mut cache: BTreeMap<(bool, &'static str), Option<Json>> = BTreeMap::new();
    let mut load = |fresh: bool, file: &'static str| -> Option<Json> {
        cache
            .entry((fresh, file))
            .or_insert_with(|| {
                let dir = if fresh { fresh_dir } else { baseline_dir };
                std::fs::read_to_string(dir.join(file))
                    .ok()
                    .and_then(|text| Json::parse(&text).ok())
            })
            .clone()
    };
    let rows = specs
        .iter()
        .map(|spec| {
            let baseline = load(false, spec.file).and_then(|j| j.number_at(spec.path));
            let fresh = load(true, spec.file).and_then(|j| j.number_at(spec.path));
            let ratio = baseline
                .zip(fresh)
                .map(|(b, f)| goodness_ratio(b, f, spec.direction));
            let (ok, tolerance) = match (spec.absolute, spec.direction) {
                (Some(bound), Direction::HigherIsBetter) => {
                    (fresh.is_some_and(|f| f >= bound), format!("abs >= {bound}"))
                }
                (Some(bound), Direction::LowerIsBetter) => {
                    (fresh.is_some_and(|f| f <= bound), format!("abs <= {bound}"))
                }
                (None, _) => (
                    ratio.is_some_and(|r| r >= spec.min_ratio),
                    format!("ratio >= {:.2}", spec.min_ratio),
                ),
            };
            GateRow {
                label: spec.label,
                baseline,
                fresh,
                ratio,
                ok,
                tolerance,
            }
        })
        .collect();
    GateReport { rows }
}

/// Validate the fresh reports in `fresh_dir` and install them as the
/// new baseline in `baseline_dir` — the intentional-refresh path
/// (`bench-gate --write-baseline`). Every gated file must parse and
/// every gated metric must resolve to a number *before* anything is
/// copied, so a half-emitted report can never become the baseline.
/// Returns the files installed, in name order.
///
/// # Errors
///
/// Returns a description of every unreadable/unparseable report or
/// unresolvable metric; `baseline_dir` is left untouched on any error.
pub fn write_baseline(
    fresh_dir: &Path,
    baseline_dir: &Path,
    specs: &[MetricSpec],
) -> Result<Vec<&'static str>, String> {
    let mut files: Vec<&'static str> = specs.iter().map(|s| s.file).collect();
    files.sort_unstable();
    files.dedup();
    let mut problems = Vec::new();
    let mut parsed: BTreeMap<&'static str, Json> = BTreeMap::new();
    for file in &files {
        match std::fs::read_to_string(fresh_dir.join(file)) {
            Ok(text) => match Json::parse(&text) {
                Ok(json) => {
                    parsed.insert(file, json);
                }
                Err(why) => problems.push(format!("{file}: does not parse ({why})")),
            },
            Err(why) => problems.push(format!("{file}: unreadable ({why})")),
        }
    }
    for spec in specs {
        if let Some(json) = parsed.get(spec.file) {
            if json.number_at(spec.path).is_none() {
                problems.push(format!(
                    "{}: gated metric '{}' does not resolve to a number",
                    spec.file, spec.path
                ));
            }
        }
    }
    if !problems.is_empty() {
        return Err(problems.join("\n"));
    }
    std::fs::create_dir_all(baseline_dir)
        .map_err(|e| format!("create {}: {e}", baseline_dir.display()))?;
    for file in &files {
        std::fs::copy(fresh_dir.join(file), baseline_dir.join(file))
            .map_err(|e| format!("install {file}: {e}"))?;
    }
    Ok(files)
}

/// The negative self-test: run the gate over a synthetic baseline and a
/// deliberately regressed fresh report, and verify the gate **fails**
/// (plus a control where the fresh report improved, which must pass).
/// Returns an error description if the gate misbehaves either way.
///
/// # Errors
///
/// Returns `Err` when the gate passes a regression or fails an
/// improvement — either means the gate is broken and CI must go red.
pub fn self_test() -> Result<(), String> {
    let specs = vec![
        MetricSpec {
            file: "BENCH_SELFTEST.json",
            path: "policies.best.goodput",
            label: "selftest goodput",
            min_ratio: 0.95,
            absolute: None,
            direction: Direction::HigherIsBetter,
        },
        MetricSpec {
            file: "BENCH_SELFTEST.json",
            path: "idle_fraction",
            label: "selftest idle fraction",
            min_ratio: 0.0,
            absolute: Some(0.15),
            direction: Direction::LowerIsBetter,
        },
    ];
    let dir = std::env::temp_dir().join(format!("ftts-bench-gate-selftest-{}", std::process::id()));
    let (base_dir, good_dir, bad_dir) = (dir.join("base"), dir.join("good"), dir.join("bad"));
    for d in [&base_dir, &good_dir, &bad_dir] {
        std::fs::create_dir_all(d).map_err(|e| e.to_string())?;
    }
    let report = |goodput: f64, idle: f64| {
        format!(
            r#"{{ "policies": {{ "best": {{ "goodput": {goodput} }} }}, "idle_fraction": {idle} }}"#
        )
    };
    let write = |dir: &Path, text: &str| {
        std::fs::write(dir.join("BENCH_SELFTEST.json"), text).map_err(|e| e.to_string())
    };
    write(&base_dir, &report(1000.0, 0.10))?;
    write(&good_dir, &report(1010.0, 0.09))?; // mild improvement
                                              // 30% goodput regression AND the idle fraction blowing through its
                                              // absolute ceiling — both tolerance kinds must trip.
    write(&bad_dir, &report(700.0, 0.50))?;
    let good = run_gate(&base_dir, &good_dir, &specs);
    let bad = run_gate(&base_dir, &bad_dir, &specs);
    let _ = std::fs::remove_dir_all(&dir);
    if !good.passed() {
        return Err(format!(
            "gate failed an improved report:\n{}",
            good.to_markdown()
        ));
    }
    if bad.rows.iter().any(|r| r.ok) {
        return Err(format!(
            "both the ratio and the absolute tolerance must trip:\n{}",
            bad.to_markdown()
        ));
    }
    if bad.passed() {
        return Err(format!(
            "gate passed a 30% goodput regression:\n{}",
            bad.to_markdown()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_report_shapes() {
        let j =
            Json::parse(r#"{ "a": { "b": [1, 2.5, -3e2] }, "s": "x\n", "t": true, "n": null }"#)
                .expect("parse");
        assert_eq!(j.number_at("a.b"), None, "arrays are not numbers");
        assert_eq!(
            j.at("a.b"),
            Some(&Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.5),
                Json::Number(-300.0),
            ]))
        );
        assert_eq!(j.at("s"), Some(&Json::String("x\n".to_string())));
        assert_eq!(j.at("t"), Some(&Json::Bool(true)));
        assert_eq!(j.at("n"), Some(&Json::Null));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn parses_the_real_reports() {
        // The committed baselines must stay parseable by the gate.
        for file in ["BENCH_PR1.json", "BENCH_PR2.json", "BENCH_PR3.json"] {
            let path = Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(file);
            let text = std::fs::read_to_string(&path).expect("baseline exists");
            let json = Json::parse(&text).expect("baseline parses");
            assert!(json.at("bench").is_some(), "{file} names its bench");
        }
    }

    #[test]
    fn goodness_ratio_normalizes_direction() {
        assert!((goodness_ratio(100.0, 110.0, Direction::HigherIsBetter) - 1.1).abs() < 1e-12);
        assert!((goodness_ratio(0.2, 0.1, Direction::LowerIsBetter) - 2.0).abs() < 1e-12);
        // Zero-against-zero reads as unchanged, not a crash.
        assert!((goodness_ratio(0.0, 0.0, Direction::LowerIsBetter) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_metrics_fail_the_gate() {
        let dir = std::env::temp_dir().join(format!("ftts-gate-missing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let specs = vec![MetricSpec {
            file: "BENCH_NOPE.json",
            path: "x",
            label: "missing",
            min_ratio: 0.9,
            absolute: None,
            direction: Direction::HigherIsBetter,
        }];
        let report = run_gate(&dir, &dir, &specs);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(!report.passed(), "a vanished metric must not pass silently");
        assert!(report.to_markdown().contains("missing"));
    }

    #[test]
    fn write_baseline_validates_before_installing() {
        let dir = std::env::temp_dir().join(format!("ftts-gate-wb-{}", std::process::id()));
        let (fresh, base) = (dir.join("fresh"), dir.join("base"));
        std::fs::create_dir_all(&fresh).unwrap();
        let specs = vec![MetricSpec {
            file: "BENCH_WB.json",
            path: "policies.best.goodput",
            label: "wb goodput",
            min_ratio: 0.95,
            absolute: None,
            direction: Direction::HigherIsBetter,
        }];
        // A report whose gated metric is missing must refuse to install.
        std::fs::write(fresh.join("BENCH_WB.json"), r#"{ "policies": {} }"#).unwrap();
        let err = write_baseline(&fresh, &base, &specs).expect_err("missing metric refuses");
        assert!(err.contains("does not resolve"), "{err}");
        assert!(!base.exists(), "nothing installed on refusal");
        // A complete report installs and round-trips through the gate.
        std::fs::write(
            fresh.join("BENCH_WB.json"),
            r#"{ "policies": { "best": { "goodput": 123.0 } } }"#,
        )
        .unwrap();
        let installed = write_baseline(&fresh, &base, &specs).expect("valid report installs");
        assert_eq!(installed, vec!["BENCH_WB.json"]);
        let report = run_gate(&base, &fresh, &specs);
        assert!(report.passed(), "fresh vs just-written baseline is 1.0");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synthetic_regression_fails_and_improvement_passes() {
        // The negative test the ISSUE requires: the gate must go red on
        // a synthetic regression (and green on an improvement).
        self_test().expect("gate distinguishes regression from improvement");
    }

    #[test]
    fn default_specs_cover_every_bench_report() {
        // Discover the committed reports instead of hand-maintaining a
        // list: any `BENCH_PR*.json` landing in the repo root without a
        // gated metric fails this test until a spec is added.
        let specs = default_specs();
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut reports: Vec<String> = std::fs::read_dir(&root)
            .expect("repo root is readable")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .into_string()
                    .expect("utf8 name")
            })
            .filter(|n| n.starts_with("BENCH_PR") && n.ends_with(".json"))
            .collect();
        reports.sort();
        assert!(
            reports.len() >= 8,
            "the committed BENCH_PR*.json baselines must be present (found {reports:?})"
        );
        for file in &reports {
            assert!(
                specs.iter().any(|s| s.file == file),
                "{file} must have at least one gated metric in default_specs()"
            );
        }
        // And the converse: every gated file is a report that exists,
        // so a renamed bench cannot leave a stale spec behind.
        for spec in &specs {
            assert!(
                reports.iter().any(|f| f == spec.file),
                "spec '{}' gates {}, which is not a committed report",
                spec.label,
                spec.file
            );
        }
    }
}
