//! Shared helpers for the figure-regeneration benches.
//!
//! Every figure in the paper's evaluation has a `[[bench]]` target in
//! this crate (`harness = false`), so `cargo bench --workspace`
//! regenerates the full evaluation as printed tables. EXPERIMENTS.md
//! records the paper-vs-measured comparison. The [`gate`] module (and
//! the `bench-gate` binary) compares freshly emitted `BENCH_PR*.json`
//! reports against committed baselines so CI catches cross-PR
//! regressions of earlier wins.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

use ftts_core::{AblationFlags, ServeOutcome, TtsServer};
use ftts_engine::{EngineError, ModelPairing};
use ftts_hw::GpuDevice;
use ftts_model::ProblemSpec;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

/// The paper's three generator+verifier configurations (Sec. 6.1).
pub fn pairings() -> [ModelPairing; 3] {
    [
        ModelPairing::pair_1_5b_1_5b(),
        ModelPairing::pair_1_5b_7b(),
        ModelPairing::pair_7b_1_5b(),
    ]
}

/// Memory fraction per pairing, following the paper: 0.9 for the
/// throughput-limit settings, 0.4 for the memory-constrained 1.5B+1.5B.
pub fn memory_fraction(pairing: &ModelPairing) -> f64 {
    if pairing.label() == "1.5B+1.5B" {
        0.4
    } else {
        0.9
    }
}

/// Baseline and FastTTS servers on a device, with the paper's memory
/// fractions applied.
pub fn server_pair(device: GpuDevice, pairing: ModelPairing) -> (TtsServer, TtsServer) {
    let frac = memory_fraction(&pairing);
    let mut base = TtsServer::vllm_baseline(device.clone(), pairing.clone());
    base.config_mut().memory_fraction = frac;
    let mut fast = TtsServer::fasttts(device, pairing);
    fast.config_mut().memory_fraction = frac;
    (base, fast)
}

/// Server with explicit ablation flags and memory fraction.
pub fn server_with(
    device: GpuDevice,
    pairing: ModelPairing,
    flags: AblationFlags,
    frac: f64,
) -> TtsServer {
    let mut s = TtsServer::with_flags(device, pairing, flags);
    s.config_mut().memory_fraction = frac;
    s
}

/// Mean goodput and latency of a server over `problems`.
///
/// # Errors
///
/// Propagates the first engine error.
pub fn run_set(
    server: &TtsServer,
    problems: &[ProblemSpec],
    n: usize,
    kind: SearchKind,
) -> Result<(f64, f64, Vec<ServeOutcome>), EngineError> {
    let mut goodput = 0.0;
    let mut latency = 0.0;
    let mut outs = Vec::with_capacity(problems.len());
    for p in problems {
        let o = server.serve(p, n, kind)?;
        goodput += o.goodput();
        latency += o.latency();
        outs.push(o);
    }
    let k = problems.len().max(1) as f64;
    Ok((goodput / k, latency / k, outs))
}

/// Problem-count schedule: fewer problems at larger `n` to bound bench
/// wall-time while keeping small-n points statistically steadier.
pub fn problems_for(dataset: Dataset, n: usize, seed: u64) -> Vec<ProblemSpec> {
    let count = match n {
        0..=16 => 4,
        17..=64 => 3,
        65..=256 => 2,
        _ => 1,
    };
    dataset.problems(count, seed)
}

/// The standard `n` grid used by the sweep figures.
pub fn n_grid() -> [usize; 4] {
    [8, 32, 128, 512]
}

/// Format a speedup like `1.84x`.
pub fn speedup(fast: f64, base: f64) -> String {
    if base <= 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", fast / base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairings_cover_the_paper_matrix() {
        let labels: Vec<String> = pairings().iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["1.5B+1.5B", "1.5B+7B", "7B+1.5B"]);
    }

    #[test]
    fn memory_fractions_follow_the_paper() {
        assert_eq!(memory_fraction(&ModelPairing::pair_1_5b_1_5b()), 0.4);
        assert_eq!(memory_fraction(&ModelPairing::pair_1_5b_7b()), 0.9);
    }

    #[test]
    fn problem_schedule_shrinks_with_n() {
        assert!(
            problems_for(Dataset::Aime2024, 8, 1).len()
                > problems_for(Dataset::Aime2024, 512, 1).len()
        );
    }

    #[test]
    fn speedup_formats() {
        assert_eq!(speedup(2.0, 1.0), "2.00x");
        assert_eq!(speedup(1.0, 0.0), "n/a");
    }
}
