//! CI bench-regression gate.
//!
//! ```text
//! bench-gate --baseline <dir> --fresh <dir>     # compare reports, exit 1 on regression
//! bench-gate --self-test                        # verify the gate fails a synthetic regression
//! bench-gate --write-baseline --baseline <dir> --fresh <dir>
//!                                               # validate fresh reports, install as baseline
//! ```
//!
//! Prints the delta table as markdown and, when `$GITHUB_STEP_SUMMARY`
//! is set, appends it to the job summary. See `docs/ci.md` for the
//! tolerance policy and how to refresh baselines intentionally.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use ftts_bench::gate;

const USAGE: &str =
    "usage: bench-gate --baseline <dir> --fresh <dir> [--write-baseline] | --self-test";

fn emit(markdown: &str) {
    println!("{markdown}");
    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(summary)
        {
            let _ = writeln!(f, "{markdown}");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<PathBuf> = None;
    let mut fresh: Option<PathBuf> = None;
    let mut self_test = false;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = it.next().map(PathBuf::from),
            "--fresh" => fresh = it.next().map(PathBuf::from),
            "--self-test" => self_test = true,
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if self_test {
        return match gate::self_test() {
            Ok(()) => {
                println!("RESULT bench-gate self-test: gate fails synthetic regressions");
                ExitCode::SUCCESS
            }
            Err(why) => {
                eprintln!("bench-gate self-test FAILED: {why}");
                ExitCode::FAILURE
            }
        };
    }

    let (Some(baseline), Some(fresh)) = (baseline, fresh) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    if write_baseline {
        return match gate::write_baseline(&fresh, &baseline, &gate::default_specs()) {
            Ok(files) => {
                println!(
                    "RESULT bench-gate --write-baseline: installed {} validated reports into {}",
                    files.len(),
                    baseline.display()
                );
                ExitCode::SUCCESS
            }
            Err(why) => {
                eprintln!("bench-gate --write-baseline refused:\n{why}");
                ExitCode::FAILURE
            }
        };
    }

    let report = gate::run_gate(&baseline, &fresh, &gate::default_specs());
    emit(&report.to_markdown());
    if report.passed() {
        println!("RESULT bench-gate: all gated metrics within tolerance");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench-gate: regression detected (see table above)");
        ExitCode::FAILURE
    }
}
