//! Figure 5 — (left) prefix-cache sharing lets far more beams fit in
//! memory; (right) naive scheduling scatters similar beams, measured as
//! the shared-prefix mass between consecutively scheduled beams.

use ftts_core::{PrefixAwareOrder, TtsServer, WorstCaseOrder};
use ftts_engine::{FifoOrder, ModelPairing, OrderItem, OrderPolicy, RandomOrder};
use ftts_hw::GpuDevice;
use ftts_kv::{KvCache, KvCacheConfig};
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

/// Build a beam-search-shaped frontier: `width` parents, each with
/// `branch` children, on a shared prompt.
fn frontier(kv: &mut KvCache, width: usize, branch: usize) -> Vec<OrderItem> {
    let root = kv.root(128).expect("root");
    kv.pin(root).expect("pin");
    let mut items = Vec::new();
    let mut rank = 0u32;
    let mut parents = Vec::new();
    for _ in 0..width {
        let p = kv.fork(root).expect("fork");
        kv.pin(p).expect("pin");
        kv.extend(p, 200).expect("extend");
        parents.push(p);
    }
    // Interleave children across parents, like score-ranked branching.
    for j in 0..branch {
        for &p in &parents {
            let c = kv.fork(p).expect("fork");
            items.push(OrderItem {
                index: items.len(),
                kv: c,
                parent_kv: Some(p),
                born_rank: rank,
            });
            rank += 1;
            let _ = j;
        }
    }
    items
}

fn main() {
    // Left: beams representable in a fixed KV budget, with and without
    // prefix caching, measured from real engine runs.
    let mut t = Table::new(vec![
        "iteration-avg",
        "physical KV tokens",
        "logical tokens",
        "sharing factor",
    ]);
    for sharing in [true, false] {
        let mut server =
            TtsServer::vllm_baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        server.config_mut().prefix_sharing = sharing;
        let problem = Dataset::Aime2024.problems(1, 9)[0];
        let out = server
            .serve(&problem, 64, SearchKind::BeamSearch)
            .expect("serve");
        // Peak block usage approximates "beams in memory".
        let peak_tokens = out.stats.gen_cache.allocated_blocks * 16;
        let logical = out.stats.decoded_tokens + 128;
        t.row(vec![
            if sharing {
                "w/ prefix-cache".into()
            } else {
                "w/o prefix-cache".into()
            },
            peak_tokens.to_string(),
            logical.to_string(),
            format!("{:.2}", logical as f64 / peak_tokens.max(1) as f64),
        ]);
    }
    t.print("Fig. 5 (left) — memory cost with and without prefix-cache sharing");
    println!("paper: with prefix caching the same memory holds many times more beams");

    // Right: prefix-sharing locality of the scheduled order.
    let mut kv = KvCache::new(KvCacheConfig {
        block_size: 16,
        capacity_bytes: 1 << 30,
        bytes_per_token: 64,
        prefix_sharing: true,
    });
    let items = frontier(&mut kv, 16, 8);
    let mut t = Table::new(vec![
        "policy",
        "adjacent shared-prefix tokens (total)",
        "vs random",
    ]);
    let mut policies: Vec<Box<dyn OrderPolicy>> = vec![
        Box::new(RandomOrder::new(3)),
        Box::new(FifoOrder),
        Box::new(PrefixAwareOrder::new()),
        Box::new(WorstCaseOrder::new()),
    ];
    let mut random_score = 0;
    for policy in policies.iter_mut() {
        let order = policy.order(&items, &kv);
        let score = PrefixAwareOrder::score(&order, &items, &kv);
        if policy.name() == "random" {
            random_score = score.max(1);
        }
        t.row(vec![
            policy.name().to_string(),
            score.to_string(),
            format!("{:.2}x", score as f64 / random_score as f64),
        ]);
    }
    t.print("Fig. 5 (right) — shared-prefix locality by scheduling policy");
    println!("paper: naive scheduling does not group similar beams together;");
    println!("       prefix-aware ordering maximizes adjacent sharing");
}
