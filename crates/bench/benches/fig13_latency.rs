//! Figure 13 — completion latency and its generator/verifier breakdown,
//! baseline vs FastTTS across configurations and datasets.

use ftts_bench::{pairings, problems_for, run_set, server_pair};
use ftts_hw::GpuDevice;
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn main() {
    let mut t = Table::new(vec![
        "config",
        "dataset",
        "n",
        "base lat (s)",
        "base gen/ver",
        "fast lat (s)",
        "fast gen/ver",
        "reduction",
    ]);
    let mut reductions = Vec::new();
    let mut ver_cuts = Vec::new();
    let mut gen_cuts = Vec::new();
    for pairing in pairings() {
        for dataset in [Dataset::Aime2024, Dataset::Amc2023] {
            let (base, fast) = server_pair(GpuDevice::rtx4090(), pairing.clone());
            for n in [8usize, 64, 256] {
                let problems = problems_for(dataset, n, 33);
                let (_, bl, bouts) =
                    run_set(&base, &problems, n, SearchKind::BeamSearch).expect("baseline");
                let (_, fl, fouts) =
                    run_set(&fast, &problems, n, SearchKind::BeamSearch).expect("fasttts");
                let mean =
                    |outs: &[ftts_core::ServeOutcome],
                     f: &dyn Fn(&ftts_metrics::LatencyBreakdown) -> f64| {
                        outs.iter().map(|o| f(o.stats.breakdown())).sum::<f64>() / outs.len() as f64
                    };
                let bgen = mean(&bouts, &|b| b.generator_side());
                let bver = mean(&bouts, &|b| b.verifier);
                let fgen = mean(&fouts, &|b| b.generator_side());
                let fver = mean(&fouts, &|b| b.verifier);
                reductions.push(1.0 - fl / bl);
                if bver > 0.0 {
                    ver_cuts.push(1.0 - fver / bver);
                }
                if bgen > 0.0 {
                    gen_cuts.push(1.0 - fgen / bgen);
                }
                t.row(vec![
                    pairing.label(),
                    dataset.label().to_string(),
                    n.to_string(),
                    format!("{bl:.1}"),
                    format!("{bgen:.0}/{bver:.0}"),
                    format!("{fl:.1}"),
                    format!("{fgen:.0}/{fver:.0}"),
                    format!("{:.0}%", 100.0 * (1.0 - fl / bl)),
                ]);
            }
        }
    }
    t.print("Fig. 13 — completion latency with generator/verifier breakdown");
    let avg = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "average latency reduction: {:.0}%   verifier-latency cut: {:.0}%   generator cut: {:.0}%",
        avg(&reductions),
        avg(&ver_cuts),
        avg(&gen_cuts)
    );
    println!("paper: latency reduced 38%-68%; verifier latency cut 75%-85%; generator 36%-66%");
}
