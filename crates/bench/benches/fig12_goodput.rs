//! Figure 12 — end-to-end precise-goodput improvement of FastTTS over
//! the vLLM baseline: three model configurations × AIME/AMC × beam
//! counts. This is the paper's headline result (average 2.2x).

use ftts_bench::{n_grid, pairings, problems_for, run_set, server_pair, speedup};
use ftts_hw::GpuDevice;
use ftts_metrics::{Summary, Table};
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn main() {
    let mut t = Table::new(vec![
        "config",
        "dataset",
        "n",
        "baseline (tok/s)",
        "FastTTS (tok/s)",
        "speedup",
    ]);
    let mut speedups = Vec::new();
    for pairing in pairings() {
        for dataset in [Dataset::Aime2024, Dataset::Amc2023] {
            let (base, fast) = server_pair(GpuDevice::rtx4090(), pairing.clone());
            for n in n_grid() {
                let problems = problems_for(dataset, n, 12);
                let (bg, _, _) =
                    run_set(&base, &problems, n, SearchKind::BeamSearch).expect("baseline");
                let (fg, _, _) =
                    run_set(&fast, &problems, n, SearchKind::BeamSearch).expect("fasttts");
                speedups.push(fg / bg);
                t.row(vec![
                    pairing.label(),
                    dataset.label().to_string(),
                    n.to_string(),
                    format!("{bg:.2}"),
                    format!("{fg:.2}"),
                    speedup(fg, bg),
                ]);
            }
        }
    }
    t.print("Fig. 12 — FastTTS goodput improvement (beam search)");
    let avg = Summary::geomean(&speedups);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("average (geomean) speedup: {avg:.2}x   range: {min:.2}x-{max:.2}x");
    println!("paper: average 2.2x, range 1.2x-5.4x, growing with n");
}
