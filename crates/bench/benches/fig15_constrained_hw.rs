//! Figure 15 — generality: goodput on more constrained GPUs (RTX 4070 Ti,
//! RTX 3070 Ti with offloading) and on code generation (HumanEval).

use ftts_bench::{problems_for, run_set, speedup};
use ftts_core::{AblationFlags, TtsServer};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn main() {
    let mut t = Table::new(vec![
        "device",
        "dataset",
        "n",
        "baseline (tok/s)",
        "FastTTS (tok/s)",
        "speedup",
    ]);
    let cases = [
        (
            GpuDevice::rtx4070ti(),
            Dataset::Aime2024,
            AblationFlags::fasttts(),
            0.9,
        ),
        // The 3070 Ti cannot hold both models' KV comfortably: FastTTS
        // enables the offloading search space (paper: "Offloading is
        // used on the RTX 3070 Ti").
        (
            GpuDevice::rtx3070ti(),
            Dataset::Aime2024,
            AblationFlags::fasttts_offload(),
            0.93,
        ),
        (
            GpuDevice::rtx4090(),
            Dataset::HumanEval,
            AblationFlags::fasttts(),
            0.9,
        ),
    ];
    for (device, dataset, flags, frac) in cases {
        for n in [8usize, 32, 128] {
            let pairing = ModelPairing::pair_1_5b_1_5b();
            let mut base = TtsServer::vllm_baseline(device.clone(), pairing.clone());
            base.config_mut().memory_fraction = frac;
            let mut fast = TtsServer::with_flags(device.clone(), pairing, flags);
            fast.config_mut().memory_fraction = frac;
            let problems = problems_for(dataset, n, 61);
            let (bg, _, _) =
                run_set(&base, &problems, n, SearchKind::BeamSearch).expect("baseline");
            let (fg, _, _) = run_set(&fast, &problems, n, SearchKind::BeamSearch).expect("fast");
            t.row(vec![
                device.name.clone(),
                dataset.label().to_string(),
                n.to_string(),
                format!("{bg:.1}"),
                format!("{fg:.1}"),
                speedup(fg, bg),
            ]);
        }
    }
    t.print("Fig. 15 — constrained hardware and code generation");
    println!("paper: 1.4x-1.6x on 3070 Ti / 4070 Ti (lower absolute goodput with offloading);");
    println!("       1.3x-1.8x on HumanEval");
}
