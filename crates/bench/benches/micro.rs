//! Criterion micro-benchmarks for the hot runtime components:
//! * the roofline allocation search (the paper claims < 1 ms);
//! * prefix-aware ordering of large frontiers;
//! * KV-cache fork/pin/extend mechanics;
//! * engine decode-segment stepping.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ftts_core::{PrefixAwareOrder, RooflinePlanner};
use ftts_engine::{EngineConfig, MemoryPlanner, ModelPairing, OrderItem, OrderPolicy, PlanContext};
use ftts_hw::{GpuDevice, ModelSpec, Roofline, GB};
use ftts_kv::{KvCache, KvCacheConfig};

fn alloc_search(c: &mut Criterion) {
    let cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_7b());
    let ctx = PlanContext {
        kv_budget_bytes: 8 * GB,
        n_beams: 512,
        avg_ctx: 1024,
        step_tokens: 200,
        ver_seq: 1224,
        tree_tokens: 512 * 320 + 1024,
        ver_caching: true,
    };
    c.bench_function("alloc_search_n512", |b| {
        let mut planner = RooflinePlanner::new();
        b.iter(|| planner.plan(&cfg, &ctx));
    });
}

fn frontier(kv: &mut KvCache, parents: usize, children: usize) -> Vec<OrderItem> {
    let root = kv.root(128).expect("root");
    kv.pin(root).expect("pin");
    let mut items = Vec::new();
    let mut rank = 0;
    for _ in 0..parents {
        let p = kv.fork(root).expect("fork");
        kv.pin(p).expect("pin");
        kv.extend(p, 400).expect("extend");
        for _ in 0..children {
            let leaf = kv.fork(p).expect("fork child");
            items.push(OrderItem {
                index: items.len(),
                kv: leaf,
                parent_kv: Some(p),
                born_rank: rank,
            });
            rank += 1;
        }
    }
    items
}

fn prefix_ordering(c: &mut Criterion) {
    let mut kv = KvCache::new(KvCacheConfig {
        block_size: 16,
        capacity_bytes: 8 * GB,
        bytes_per_token: 64,
        prefix_sharing: true,
    });
    let items = frontier(&mut kv, 128, 4);
    c.bench_function("prefix_aware_order_512", |b| {
        let mut policy = PrefixAwareOrder::new();
        b.iter(|| policy.order(&items, &kv));
    });
}

fn kv_mechanics(c: &mut Criterion) {
    c.bench_function("kv_fork_pin_extend_evict", |b| {
        b.iter_batched(
            || {
                let mut kv = KvCache::new(KvCacheConfig {
                    block_size: 16,
                    capacity_bytes: 1 << 22,
                    bytes_per_token: 64,
                    prefix_sharing: true,
                });
                let root = kv.root(256).expect("root");
                (kv, root)
            },
            |(mut kv, root)| {
                for _ in 0..64 {
                    let leaf = kv.fork(root).expect("fork");
                    if kv.pin(leaf).is_ok() {
                        let _ = kv.extend(leaf, 200);
                        kv.unpin(leaf);
                    }
                }
                kv.gpu_blocks_used()
            },
            BatchSize::SmallInput,
        );
    });
}

fn decode_segments(c: &mut Criterion) {
    let roof = Roofline::new(GpuDevice::rtx4090(), ModelSpec::qwen25_math_1_5b());
    c.bench_function("roofline_decode_step", |b| {
        b.iter(|| roof.decode_step(criterion::black_box(256), criterion::black_box(1024)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = alloc_search, prefix_ordering, kv_mechanics, decode_segments
}
criterion_main!(benches);
