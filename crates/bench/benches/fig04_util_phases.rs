//! Figure 4 — GPU compute utilization over time in the generation and
//! verification phases (the straggler-induced decay motivating
//! Speculative Beam Extension).

use ftts_core::TtsServer;
use ftts_engine::ModelPairing;
use ftts_hw::{GpuDevice, Phase};
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn main() {
    let mut server = TtsServer::vllm_baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    server.config_mut().trace = true;
    let problem = Dataset::Aime2024.problems(1, 5)[0];
    let out = server
        .serve(&problem, 64, SearchKind::BeamSearch)
        .expect("serve");
    let trace = out.stats.trace.expect("trace enabled");

    let gen_mean = 100.0 * trace.mean_util(Some(Phase::Generation));
    let ver_mean = 100.0 * trace.mean_util(Some(Phase::Verification));
    println!("\n== Fig. 4 — GPU compute utilization by phase (vLLM baseline, 1.5B+1.5B, AIME) ==");
    println!("mean generation-phase util:   {gen_mean:.1}%  (irregular, decays as beams finish)");
    println!("mean verification-phase util: {ver_mean:.1}%  (uniform prefill)");

    // Decay within one generation phase: bucket the first phase's
    // samples into deciles of its duration.
    let samples = trace.samples();
    let first_ver = samples
        .iter()
        .position(|s| s.phase == Phase::Verification)
        .unwrap_or(samples.len());
    let gen_span: f64 = samples[..first_ver].iter().map(|s| s.duration).sum();
    let mut t = Table::new(vec!["phase-time decile", "generation util (%)"]);
    let mut acc = 0.0;
    let mut bucket = [0.0f64; 10];
    let mut weight = [0.0f64; 10];
    for s in &samples[..first_ver] {
        let idx = ((acc / gen_span) * 10.0).min(9.0) as usize;
        bucket[idx] += s.util * s.duration;
        weight[idx] += s.duration;
        acc += s.duration;
    }
    for (i, (b, w)) in bucket.iter().zip(&weight).enumerate() {
        let util = if *w > 0.0 { 100.0 * b / w } else { 0.0 };
        t.row(vec![format!("{}0%", i + 1), format!("{util:.1}")]);
    }
    t.print("generation-phase utilization over time (first TTS iteration)");
    println!("paper: utilization peaks at the start of generation, then progressively decays");
    println!("       while verification sustains uniform high utilization");
    assert!(
        ver_mean > gen_mean,
        "verification must out-utilize generation"
    );
}
