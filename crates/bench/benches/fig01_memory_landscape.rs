//! Figure 1 — (a) memory cost across models; (b) latency for edge TTS to
//! reach a strong-accuracy operating point, baseline vs FastTTS, against
//! cloud reference points.

use ftts_bench::server_pair;
use ftts_hw::{GpuDevice, ModelSpec, GIB};
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn main() {
    // (a) Memory landscape. Cloud models are described by their public
    // total/activated parameter counts.
    let mut t = Table::new(vec![
        "model",
        "params",
        "weights (GB)",
        "fits 4090 (24 GB)?",
    ]);
    for spec in [
        ModelSpec::qwen25_math_1_5b(),
        ModelSpec::skywork_prm_1_5b(),
        ModelSpec::qwen25_math_7b(),
        ModelSpec::math_shepherd_7b(),
    ] {
        let gb = spec.weight_bytes() as f64 / GIB as f64;
        t.row(vec![
            spec.name.clone(),
            spec.size_label(),
            format!("{gb:.1}"),
            if gb < 24.0 { "yes".into() } else { "no".into() },
        ]);
    }
    for (name, params_b, bytes_gb) in [
        ("Qwen3-235B (total)", 235.0, 438.0),
        ("DeepSeek-R1 (total)", 671.0, 1276.0),
        ("o1-preview-class (est.)", 300.0, 559.0),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{params_b:.0}B"),
            format!("{bytes_gb:.0}"),
            "no".into(),
        ]);
    }
    t.print("Fig. 1a — memory cost across models");

    // (b) Latency of TTS on the edge, baseline vs FastTTS, sweeping the
    // compute budget n. Cloud first-answer latencies from the paper's
    // sources (Artificial Analysis, Sec. 1).
    let (base, fast) = server_pair(
        GpuDevice::rtx4090(),
        ftts_engine::ModelPairing::pair_1_5b_1_5b(),
    );
    let problems = Dataset::Aime2024.problems(2, 11);
    let mut t = Table::new(vec![
        "n",
        "baseline latency (s)",
        "FastTTS latency (s)",
        "top-1",
    ]);
    for n in [16usize, 64, 256] {
        let mut bl = 0.0;
        let mut fl = 0.0;
        let mut acc = 0;
        for p in &problems {
            let b = base.serve(p, n, SearchKind::BeamSearch).expect("baseline");
            let f = fast.serve(p, n, SearchKind::BeamSearch).expect("fasttts");
            bl += b.latency();
            fl += f.latency();
            acc += usize::from(f.top1_correct());
        }
        let k = problems.len() as f64;
        t.row(vec![
            n.to_string(),
            format!("{:.1}", bl / k),
            format!("{:.1}", fl / k),
            format!("{}/{}", acc, problems.len()),
        ]);
    }
    t.print("Fig. 1b — edge TTS latency, baseline vs FastTTS");
    println!("cloud reference (paper): GPT-o3-pro/GPT-5 first-answer latency ~60-120 s;");
    println!("baseline vLLM TTS needed ~200 s to match cloud accuracy; FastTTS pushes this down.");
}
