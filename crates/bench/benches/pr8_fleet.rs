//! PR-8 benchmark: N-device fleet serving with crash failover, routing
//! policies and hedged stragglers — `BENCH_PR8.json` report.
//!
//! **Fixture: a skewed Zipf trace with one seeded mid-run crash.**
//! Twelve requests Zipf-drawn (skew 1.2) from four distinct AMC-2023
//! problems at a four-second cadence, n = 16 beam search, round-robin
//! SLO deadlines, served by a four-device fleet in which device 1
//! crashes at t = 25 s and stays down for 300 s. Replayed under:
//!
//! * `no_failover` — the naive baseline: the crash stays an on-device
//!   outage (stall + KV loss + replay), the router keeps sending work
//!   into the hole;
//! * `failover_hedge` — crash handled at the routing layer: interrupted
//!   legs migrate to survivors (warm-starting from the host tier when
//!   they had prefilled) and stragglers are hedged on a second replica;
//! * `jsq` vs `prefix_affinity` — crash-free routing comparison on the
//!   same Zipf trace: prefix-affinity follows published prompt prefixes
//!   into the host tier, join-shortest-queue spreads blindly;
//! * `single_device` vs `fleet4` — crash-free capacity scaling on a
//!   deadline-free copy of the trace;
//! * `edge_orin_only` vs `hetero_mixed` — heterogeneous device classes:
//!   four Jetson AGX Orins versus a mixed fleet that swaps two Orins for
//!   A100s, both under join-shortest-queue on the cadenced Zipf trace
//!   (a burst would tie every queue at t = 0 and erase the signal). The
//!   fast replicas drain their queues between arrivals and attract the
//!   tail of the trace, so the mixed fleet's goodput gain is gated.
//!
//! Asserted gates (the PR's acceptance criteria):
//!
//! * failover + hedging beats no-failover on deadline-hit rate **and**
//!   SLO goodput under the identical crash;
//! * prefix-affinity beats join-shortest-queue on warm prefix hits;
//! * the crash-free 4-device fleet delivers ≥ 3x the single device's
//!   stream goodput;
//! * a 1-device fleet reproduces the bare event simulator bit-for-bit
//!   (completion instants and answers) — the PR's equivalence anchor.
//!
//! Run with `cargo bench --bench pr8_fleet` (release profile).

use criterion::{Criterion, SampleStats};
use ftts_core::{
    BatchConfig, EventConfig, EventServerSim, FaultEvent, FaultKind, FaultPlan, FleetConfig,
    FleetRun, FleetSim, HedgeConfig, KvTierConfig, RoutePolicy, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::SloClass;
use ftts_search::SearchKind;
use ftts_workload::{zipf_problems, ArrivalPattern, Dataset, RequestArrival};

const N_BEAMS: usize = 16;
const MAX_BATCH: usize = 4;
const DEVICES: usize = 4;
const REQUESTS: usize = 12;
const SCALE_REQUESTS: usize = 16;
const DISTINCT_PROBLEMS: usize = 4;
const ZIPF_SKEW: f64 = 1.2;
const ARRIVAL_INTERVAL_S: f64 = 4.0;
const TIER_CAPACITY: u64 = 1 << 33;
const CRASH_DEVICE: usize = 1;
const CRASH_AT_S: f64 = 25.0;
const CRASH_DOWN_S: f64 = 300.0;

fn server(seed: u64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = 0.55;
    s
}

fn event_config() -> EventConfig {
    EventConfig::new(
        BatchConfig::continuous(MAX_BATCH).with_tier(KvTierConfig::with_capacity(TIER_CAPACITY)),
        0.25,
    )
}

/// Twelve Zipf draws over four distinct problems with round-robin SLO
/// deadlines — the head problem repeats enough that prefix routing has
/// something to follow, and the deadlines make failover measurable.
fn zipf_slo_arrivals() -> Vec<RequestArrival> {
    let slos = [
        (SloClass::Interactive, 90.0),
        (SloClass::Standard, 120.0),
        (SloClass::Batch, 180.0),
    ];
    zipf_arrivals()
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let (class, slack) = slos[i % slos.len()];
            a.with_slo(class, slack)
        })
        .collect()
}

/// The same trace with no deadlines: the routing fixture.
fn zipf_arrivals() -> Vec<RequestArrival> {
    let ranked = Dataset::Amc2023.problems(DISTINCT_PROBLEMS, 47);
    let drawn = zipf_problems(&ranked, REQUESTS, ZIPF_SKEW, 29);
    ArrivalPattern::Uniform {
        interval: ARRIVAL_INTERVAL_S,
    }
    .schedule(&drawn, 0)
}

/// The capacity-scaling fixture: a deadline-free sixteen-request burst
/// at t = 0 — four full batches of work, so a single device must run
/// four sequential waves while the 4-device fleet runs one.
fn burst_arrivals() -> Vec<RequestArrival> {
    let ranked = Dataset::Amc2023.problems(DISTINCT_PROBLEMS, 47);
    let drawn = zipf_problems(&ranked, SCALE_REQUESTS, ZIPF_SKEW, 29);
    ArrivalPattern::Burst { at: 0.0 }.schedule(&drawn, 0)
}

fn fleet_with(devices: usize, config: FleetConfig) -> FleetSim {
    let servers: Vec<TtsServer> = (0..devices).map(|_| server(17)).collect();
    FleetSim::new(servers, N_BEAMS, SearchKind::BeamSearch, config)
}

/// A fleet over explicit (possibly heterogeneous) device specs.
fn hetero_fleet(specs: Vec<GpuDevice>) -> FleetSim {
    let servers: Vec<TtsServer> = specs
        .into_iter()
        .map(|dev| {
            let mut s = TtsServer::fasttts(dev, ModelPairing::pair_1_5b_1_5b());
            s.config_mut().seed = 17;
            s.config_mut().memory_fraction = 0.55;
            s
        })
        .collect();
    FleetSim::new(
        servers,
        N_BEAMS,
        SearchKind::BeamSearch,
        FleetConfig::new(event_config(), RoutePolicy::Jsq),
    )
}

/// Four embedded-edge Orins — the slow homogeneous baseline.
fn edge_orin_specs() -> Vec<GpuDevice> {
    (0..DEVICES).map(|_| GpuDevice::jetson_orin()).collect()
}

/// The mixed fleet: two Orins swapped for server-class A100s.
fn hetero_mixed_specs() -> Vec<GpuDevice> {
    vec![
        GpuDevice::a100_80g(),
        GpuDevice::jetson_orin(),
        GpuDevice::a100_80g(),
        GpuDevice::jetson_orin(),
    ]
}

fn fleet(devices: usize, route: RoutePolicy, hedge: Option<HedgeConfig>) -> FleetSim {
    let mut config = FleetConfig::new(event_config(), route);
    config.hedge = hedge;
    fleet_with(devices, config)
}

/// One crash on device 1, everything else clean.
fn crashy_plans() -> Vec<FaultPlan> {
    let mut plans = vec![FaultPlan::none(); DEVICES];
    plans[CRASH_DEVICE] = FaultPlan::new(vec![FaultEvent {
        at: CRASH_AT_S,
        kind: FaultKind::DeviceCrash {
            down_for: CRASH_DOWN_S,
        },
    }]);
    plans
}

fn policy_json(label: &str, run: &FleetRun) -> String {
    let s = run.fleet_summary();
    format!(
        r#"    "{label}": {{
      "deadline_hit_rate": {hit:.4},
      "slo_goodput_tok_per_s": {slo_gp:.2},
      "stream_goodput_tok_per_s": {gp:.2},
      "makespan_s": {makespan:.3},
      "migrations": {mig},
      "hedges_launched": {hl},
      "hedges_won": {hw},
      "hedges_wasted": {hx},
      "warm_hits": {warm},
      "crash_downtime_s": {down:.1}
    }}"#,
        hit = s.deadline_hit_rate,
        slo_gp = s.slo_goodput,
        gp = s.stream_goodput,
        makespan = s.makespan,
        mig = run.migrations,
        hl = run.hedges_launched,
        hw = run.hedges_won,
        hx = run.hedges_wasted,
        warm = run.warm_hits(),
        down = run.crash_downtime_secs,
    )
}

fn wall_json(stats: &SampleStats) -> String {
    format!(
        r#"  "failover_wall_clock": {{
    "samples": {n},
    "outliers_rejected": {outliers},
    "mean_s": {mean:.6},
    "min_s": {min:.6},
    "variance_s2": {var:.9},
    "p50_s": {p50:.6},
    "p99_s": {p99:.6}
  }}"#,
        n = stats.n,
        outliers = stats.outliers_rejected,
        mean = stats.mean_seconds,
        min = stats.min_seconds,
        var = stats.variance_seconds2,
        p50 = stats.p50_seconds,
        p99 = stats.p99_seconds,
    )
}

/// The PR's equivalence anchor: a 1-device fleet with the pass-through
/// router reproduces the bare event simulator bit-for-bit.
fn assert_one_device_anchor(arrivals: &[RequestArrival]) {
    let bare = EventServerSim::new(server(17), N_BEAMS, SearchKind::BeamSearch, event_config())
        .run_faulted(arrivals, &FaultPlan::none())
        .expect("bare run");
    let one = fleet(1, RoutePolicy::RoundRobin, None)
        .run(arrivals)
        .expect("1-device fleet");
    assert_eq!(one.served.len(), bare.served.len());
    for (f, b) in one.served.iter().zip(&bare.served) {
        assert_eq!(f.started_at, b.started_at, "anchor: admission instants");
        assert_eq!(f.finished_at, b.finished_at, "anchor: completion instants");
        assert_eq!(f.outcome.answer, b.outcome.answer, "anchor: answers");
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let slo_trace = zipf_slo_arrivals();
    let free_trace = zipf_arrivals();
    let scale_trace = burst_arrivals();
    let plans = crashy_plans();

    let hedge = HedgeConfig {
        delay_factor: 1.5,
        min_samples: 3,
        min_delay_secs: 5.0,
    };
    let no_failover = fleet_with(
        DEVICES,
        FleetConfig::new(event_config(), RoutePolicy::Jsq).without_failover(),
    )
    .run_faulted(&slo_trace, &plans)
    .expect("no-failover run");
    let failover_hedge = fleet(DEVICES, RoutePolicy::Jsq, Some(hedge))
        .run_faulted(&slo_trace, &plans)
        .expect("failover run");
    let jsq = fleet(DEVICES, RoutePolicy::Jsq, None)
        .run(&slo_trace)
        .expect("jsq run");
    let affinity = fleet(DEVICES, RoutePolicy::PrefixAffinity, None)
        .run(&slo_trace)
        .expect("affinity run");
    let single = fleet(1, RoutePolicy::RoundRobin, None)
        .run(&scale_trace)
        .expect("single-device run");
    let fleet4 = fleet(DEVICES, RoutePolicy::Jsq, None)
        .run(&scale_trace)
        .expect("fleet4 run");
    let edge_only = hetero_fleet(edge_orin_specs())
        .run(&free_trace)
        .expect("edge-orin run");
    let hetero = hetero_fleet(hetero_mixed_specs())
        .run(&free_trace)
        .expect("hetero run");

    println!("== pr8: fleet serving under the seeded crash ==");
    println!(
        "{REQUESTS} requests over {DISTINCT_PROBLEMS} AMC problems (zipf skew {ZIPF_SKEW}), \
         n={N_BEAMS} beam search, {DEVICES} devices, device {CRASH_DEVICE} down \
         [{CRASH_AT_S:.0}, {end:.0}] s",
        end = CRASH_AT_S + CRASH_DOWN_S
    );
    for (label, run) in [
        ("no_failover", &no_failover),
        ("failover_hedge", &failover_hedge),
        ("jsq", &jsq),
        ("prefix_affinity", &affinity),
        ("single_device", &single),
        ("fleet4", &fleet4),
        ("edge_orin_only", &edge_only),
        ("hetero_mixed", &hetero),
    ] {
        let s = run.fleet_summary();
        println!(
            "  {label:<16} hit {hit:>5.2} | slo_goodput {sg:>7.1} tok/s | goodput {gp:>7.1} tok/s | makespan {mk:>6.1} s | migrations {m} | hedges {hl}/{hw} | warm {w}",
            hit = s.deadline_hit_rate,
            sg = s.slo_goodput,
            gp = s.stream_goodput,
            mk = s.makespan,
            m = run.migrations,
            hl = run.hedges_launched,
            hw = run.hedges_won,
            w = run.warm_hits(),
        );
    }

    // The fixture must exercise the contested paths.
    assert!(
        failover_hedge.migrations > 0,
        "the crash must interrupt live requests"
    );
    assert!(
        failover_hedge.served.iter().all(|r| !r.shed),
        "failover must complete every request"
    );

    // Gate (a): failover + hedging beats the naive outage on
    // deadline-hit rate AND SLO goodput under the identical crash.
    let (nf, fh) = (no_failover.fleet_summary(), failover_hedge.fleet_summary());
    assert!(
        fh.deadline_hit_rate > nf.deadline_hit_rate,
        "failover must beat no-failover on deadline-hit rate ({:.3} vs {:.3})",
        fh.deadline_hit_rate,
        nf.deadline_hit_rate
    );
    assert!(
        fh.slo_goodput > nf.slo_goodput,
        "failover must beat no-failover on SLO goodput ({:.1} vs {:.1} tok/s)",
        fh.slo_goodput,
        nf.slo_goodput
    );

    // Gate (b): prefix-affinity routing beats join-shortest-queue on
    // warm prefix hits over the same Zipf trace.
    assert!(
        affinity.warm_hits() > jsq.warm_hits(),
        "prefix affinity must out-warm JSQ ({} vs {} hits)",
        affinity.warm_hits(),
        jsq.warm_hits()
    );

    // Gate (c): crash-free capacity scaling.
    let (s1, s4) = (single.fleet_summary(), fleet4.fleet_summary());
    let scaling = s4.stream_goodput / s1.stream_goodput.max(1e-12);
    assert!(
        scaling >= 3.0,
        "4-device crash-free goodput must be >= 3x single device (got {scaling:.2}x)"
    );

    // Gate (d): heterogeneous device classes. Swapping two Orins for
    // A100s must raise goodput — JSQ's queue-depth signal steers work
    // toward the fast replicas; every request still completes on the
    // slow fleet (capacity, not correctness, is what differs).
    let (se, sh) = (edge_only.fleet_summary(), hetero.fleet_summary());
    let hetero_gain = sh.stream_goodput / se.stream_goodput.max(1e-12);
    assert!(
        edge_only.served.iter().all(|r| !r.shed),
        "the all-Orin fleet must still complete every request"
    );
    assert!(
        hetero_gain >= 1.2,
        "the mixed fleet must out-serve all-Orin by >= 1.2x (got {hetero_gain:.2}x)"
    );

    // Answers are placement-invariant: routing moves time, not tokens.
    for (a, b) in jsq.served.iter().zip(&affinity.served) {
        assert_eq!(
            a.outcome.answer, b.outcome.answer,
            "routing-invariant answers"
        );
    }

    // The PR's 1-device bit-equivalence anchor.
    assert_one_device_anchor(&free_trace);

    println!("\n== pr8: scheduler wall-clock (failover + hedge replay) ==");
    let mut criterion = Criterion::default().sample_size(15);
    let wall = criterion.bench_stats("failover_hedge_replay", |b| {
        b.iter(|| {
            fleet(DEVICES, RoutePolicy::Jsq, Some(hedge))
                .run_faulted(&slo_trace, &plans)
                .expect("failover run")
        })
    });

    let hit_gain = fh.deadline_hit_rate / nf.deadline_hit_rate.max(1e-12);
    let slo_gain = fh.slo_goodput / nf.slo_goodput.max(1e-12);
    let warm_gain = affinity.warm_hits() as f64 / (jsq.warm_hits().max(1)) as f64;
    let json = format!(
        "{{\n  \"bench\": \"pr8_fleet\",\n  \"workload\": {{\n    \"requests\": {REQUESTS},\n    \"distinct_problems\": {DISTINCT_PROBLEMS},\n    \"zipf_skew\": {ZIPF_SKEW},\n    \"n_beams\": {N_BEAMS},\n    \"devices\": {DEVICES},\n    \"arrival_interval_s\": {ARRIVAL_INTERVAL_S},\n    \"crash_device\": {CRASH_DEVICE},\n    \"crash_at_s\": {CRASH_AT_S},\n    \"crash_down_s\": {CRASH_DOWN_S},\n    \"search\": \"beam\"\n  }},\n  \"policies\": {{\n{nf_json},\n{fh_json},\n{jsq_json},\n{aff_json},\n{single_json},\n{fleet4_json},\n{edge_json},\n{hetero_json}\n  }},\n  \"failover_deadline_hit_gain\": {hit_gain:.3},\n  \"failover_slo_goodput_gain\": {slo_gain:.3},\n  \"affinity_warm_hit_gain\": {warm_gain:.3},\n  \"fleet4_goodput_scaling_x\": {scaling:.3},\n  \"hetero_vs_edge_goodput_x\": {hetero_gain:.3},\n{wall}\n}}\n",
        nf_json = policy_json("no_failover", &no_failover),
        fh_json = policy_json("failover_hedge", &failover_hedge),
        jsq_json = policy_json("jsq", &jsq),
        aff_json = policy_json("prefix_affinity", &affinity),
        single_json = policy_json("single_device", &single),
        fleet4_json = policy_json("fleet4", &fleet4),
        edge_json = policy_json("edge_orin_only", &edge_only),
        hetero_json = policy_json("hetero_mixed", &hetero),
        wall = wall_json(&wall),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
    std::fs::write(out_path, &json).expect("write BENCH_PR8.json");
    println!("\nwrote {out_path}");
}
