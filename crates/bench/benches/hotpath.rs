//! Hot-path benchmarks for the PR-1 overhaul, with a machine-readable
//! `BENCH_PR1.json` report:
//!
//! 1. **Eviction under pressure** — a large prefix-tree arena cycling
//!    pin/extend/unpin under a tight block budget, timed with the
//!    incremental eviction index vs the seed's full-scan victim
//!    selection (`KvCache::set_scan_eviction`). Both runs execute the
//!    identical operation stream and must produce identical cache stats.
//! 2. **Serve-loop iteration** — end-to-end `TtsServer::serve` wall
//!    time and simulated-tokens-per-wall-second on the zero-clone loop.
//! 3. **Parallel vs sequential sweep** — eight independent request
//!    streams through `ServerSim::run_parallel` against a sequential
//!    replay, with results asserted bit-identical.
//!
//! Run with `cargo bench --bench hotpath` (release profile).

use std::time::Instant;

use ftts_core::{ServerSim, TtsServer};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_kv::{KvCache, KvCacheConfig, NodeId};
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

/// Sequences in the eviction arena (each one root with a forked child).
const ARENA_SEQS: usize = 3000;
/// Pin/extend/unpin rounds over the arena.
const EVICTION_ROUNDS: usize = 3;

fn eviction_arena() -> (KvCache, Vec<NodeId>) {
    // Capacity fits a small fraction of the arena, so most pins evict.
    let mut kv = KvCache::new(KvCacheConfig {
        block_size: 16,
        capacity_bytes: 512 * 16 * 8,
        bytes_per_token: 8,
        prefix_sharing: true,
    });
    let mut leaves = Vec::with_capacity(ARENA_SEQS);
    for i in 0..ARENA_SEQS {
        let root = kv.root(16 + (i as u64 % 5) * 16).expect("root");
        let leaf = kv.fork(root).expect("fork");
        leaves.push(leaf);
    }
    (kv, leaves)
}

/// Drive the identical pressure workload; returns wall seconds.
fn run_eviction_workload(kv: &mut KvCache, leaves: &[NodeId]) -> f64 {
    let start = Instant::now();
    for round in 0..EVICTION_ROUNDS {
        for (i, &leaf) in leaves.iter().enumerate() {
            if kv.pin(leaf).is_ok() {
                // Vary growth so last_used ordering is non-trivial.
                let grow = 16 + ((i + round) as u64 % 3) * 16;
                let _ = kv.extend(leaf, grow);
                kv.unpin(leaf);
            }
        }
    }
    start.elapsed().as_secs_f64()
}

struct EvictionResult {
    indexed_s: f64,
    scan_s: f64,
    evictions: u64,
}

fn bench_eviction() -> EvictionResult {
    // Warm-up pass keeps allocator noise out of the comparison.
    let (mut warm, warm_leaves) = eviction_arena();
    run_eviction_workload(&mut warm, &warm_leaves);

    let (mut indexed, leaves) = eviction_arena();
    let indexed_s = run_eviction_workload(&mut indexed, &leaves);

    let (mut scan, scan_leaves) = eviction_arena();
    scan.set_scan_eviction(true);
    let scan_s = run_eviction_workload(&mut scan, &scan_leaves);

    assert_eq!(
        indexed.stats(),
        scan.stats(),
        "eviction paths must behave identically"
    );
    assert_eq!(indexed.gpu_blocks_used(), scan.gpu_blocks_used());
    EvictionResult {
        indexed_s,
        scan_s,
        evictions: indexed.stats().evicted_blocks,
    }
}

struct ServeResult {
    wall_s: f64,
    sim_tokens: u64,
    iterations: u32,
}

fn bench_serve_loop() -> ServeResult {
    let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let problems = Dataset::Aime2024.problems(4, 17);
    // Warm-up.
    server
        .serve(&problems[0], 32, SearchKind::BeamSearch)
        .expect("serve");
    let start = Instant::now();
    let mut sim_tokens = 0u64;
    let mut iterations = 0u32;
    for p in &problems {
        let out = server.serve(p, 64, SearchKind::BeamSearch).expect("serve");
        sim_tokens += out.stats.decoded_tokens + out.stats.verified_tokens;
        iterations += out.stats.iterations;
    }
    ServeResult {
        wall_s: start.elapsed().as_secs_f64(),
        sim_tokens,
        iterations,
    }
}

struct SweepResult {
    streams: usize,
    sequential_s: f64,
    parallel_s: f64,
    hardware_threads: usize,
}

fn bench_parallel_sweep() -> SweepResult {
    let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let sim = ServerSim::new(server, 16, SearchKind::BeamSearch);
    let streams: Vec<Vec<RequestArrival>> = (0..8)
        .map(|i| {
            ArrivalPattern::Poisson { rate: 0.05 }
                .schedule(&Dataset::Amc2023.problems(2, 40 + i), i)
        })
        .collect();

    // Warm-up one stream.
    sim.run(&streams[0]).expect("warm-up stream");

    let start = Instant::now();
    let sequential: Vec<_> = streams.iter().map(|s| sim.run(s)).collect();
    let sequential_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = sim.run_parallel(&streams);
    let parallel_s = start.elapsed().as_secs_f64();

    for (seq, par) in sequential.iter().zip(&parallel) {
        let (seq, par) = (seq.as_ref().expect("seq"), par.as_ref().expect("par"));
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(par) {
            assert_eq!(
                s.finished_at, p.finished_at,
                "parallel sweep must be bit-identical"
            );
            assert_eq!(s.outcome.answer, p.outcome.answer);
        }
    }
    SweepResult {
        streams: streams.len(),
        sequential_s,
        parallel_s,
        hardware_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

fn main() {
    println!("== hotpath: eviction under pressure ==");
    let ev = bench_eviction();
    let ev_speedup = ev.scan_s / ev.indexed_s.max(1e-12);
    println!(
        "arena {ARENA_SEQS} seqs x {EVICTION_ROUNDS} rounds, {} blocks evicted",
        ev.evictions
    );
    println!("  seed full-scan path : {:>9.2} ms", ev.scan_s * 1e3);
    println!("  incremental index   : {:>9.2} ms", ev.indexed_s * 1e3);
    println!("  speedup             : {ev_speedup:>9.2}x");

    println!("\n== hotpath: serve-loop iteration ==");
    let serve = bench_serve_loop();
    let tok_rate = serve.sim_tokens as f64 / serve.wall_s.max(1e-12);
    println!(
        "4 AIME problems, n=64 beam search: {:.1} ms wall, {} sim tokens, {} iterations",
        serve.wall_s * 1e3,
        serve.sim_tokens,
        serve.iterations
    );
    println!("  simulated tokens per wall-second: {tok_rate:.0}");

    println!("\n== hotpath: parallel vs sequential sweep ==");
    let sweep = bench_parallel_sweep();
    let sweep_speedup = sweep.sequential_s / sweep.parallel_s.max(1e-12);
    println!(
        "{} streams on {} hardware threads",
        sweep.streams, sweep.hardware_threads
    );
    println!(
        "  sequential replay   : {:>9.2} ms",
        sweep.sequential_s * 1e3
    );
    println!("  run_parallel        : {:>9.2} ms", sweep.parallel_s * 1e3);
    println!("  speedup             : {sweep_speedup:>9.2}x (bounded by hardware threads)");

    let json = format!(
        r#"{{
  "bench": "hotpath_pr1",
  "eviction": {{
    "arena_sequences": {ARENA_SEQS},
    "rounds": {EVICTION_ROUNDS},
    "evicted_blocks": {evictions},
    "seed_scan_seconds": {scan_s:.6},
    "indexed_seconds": {indexed_s:.6},
    "speedup_vs_seed": {ev_speedup:.2}
  }},
  "serve_loop": {{
    "problems": 4,
    "n": 64,
    "wall_seconds": {serve_wall:.6},
    "sim_tokens": {sim_tokens},
    "iterations": {iterations},
    "sim_tokens_per_wall_second": {tok_rate:.1}
  }},
  "parallel_sweep": {{
    "streams": {streams},
    "hardware_threads": {threads},
    "sequential_seconds": {seq_s:.6},
    "parallel_seconds": {par_s:.6},
    "speedup": {sweep_speedup:.2},
    "bit_identical_to_sequential": true
  }}
}}
"#,
        evictions = ev.evictions,
        scan_s = ev.scan_s,
        indexed_s = ev.indexed_s,
        serve_wall = serve.wall_s,
        sim_tokens = serve.sim_tokens,
        iterations = serve.iterations,
        streams = sweep.streams,
        threads = sweep.hardware_threads,
        seq_s = sweep.sequential_s,
        par_s = sweep.parallel_s,
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR1.json");
    std::fs::write(out_path, &json).expect("write BENCH_PR1.json");
    println!("\nwrote {out_path}");
}
