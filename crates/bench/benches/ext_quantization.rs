//! Extension study (beyond the paper's figures): the paper notes FastTTS
//! "is orthogonal to quantization and offloading techniques, which can be
//! incorporated for additional efficiency gains" (Sec. 6.4). This bench
//! quantifies that composition: W8/W4 weight-only quantization shrinks
//! the weight sweep and frees VRAM for KV, compounding with the three
//! FastTTS optimizations.

use ftts_bench::speedup;
use ftts_core::TtsServer;
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn pairing_with_bits(bits: u32) -> ModelPairing {
    let mut p = ModelPairing::pair_1_5b_1_5b();
    p.gen_spec = p.gen_spec.as_ref().clone().quantized(bits).into();
    p.ver_spec = p.ver_spec.as_ref().clone().quantized(bits).into();
    p
}

fn main() {
    let problem = Dataset::Aime2024.problems(1, 3)[0];
    let n = 64;
    let mut t = Table::new(vec![
        "weights",
        "baseline (tok/s)",
        "FastTTS (tok/s)",
        "FastTTS vs W16 baseline",
    ]);
    let w16_base = TtsServer::vllm_baseline(GpuDevice::rtx4090(), pairing_with_bits(16))
        .serve(&problem, n, SearchKind::BeamSearch)
        .expect("baseline")
        .goodput();
    for bits in [16u32, 8, 4] {
        let pairing = pairing_with_bits(bits);
        let base = TtsServer::vllm_baseline(GpuDevice::rtx4090(), pairing.clone());
        let fast = TtsServer::fasttts(GpuDevice::rtx4090(), pairing);
        let bg = base
            .serve(&problem, n, SearchKind::BeamSearch)
            .expect("base")
            .goodput();
        let fg = fast
            .serve(&problem, n, SearchKind::BeamSearch)
            .expect("fast")
            .goodput();
        t.row(vec![
            format!("W{bits}"),
            format!("{bg:.1}"),
            format!("{fg:.1}"),
            speedup(fg, w16_base),
        ]);
    }
    t.print("Extension — weight-only quantization composes with FastTTS (1.5B+1.5B, AIME, n=64)");
    println!("quantized weights cut the per-iteration weight sweep and leave more VRAM for KV,");
    println!("multiplying with the FastTTS gains exactly as the paper predicts (Sec. 6.4)");
}
