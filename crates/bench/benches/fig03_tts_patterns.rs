//! Figure 3 — (left) accuracy vs latency across TTS methods on MATH-500;
//! (right) average and maximum thinking-step token counts on AIME.

use ftts_bench::server_pair;
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::Table;
use ftts_model::{GeneratorProfile, SyntheticGenerator};
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn main() {
    // Left: Best-of-N vs Beam Search vs DVTS on MATH-500 (baseline
    // serving system, as in the motivation study).
    let (base, _fast) = server_pair(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_7b());
    let problems = Dataset::Math500.problems(20, 7);
    let mut t = Table::new(vec!["method", "accuracy (%)", "latency (s)"]);
    for kind in [
        SearchKind::BestOfN,
        SearchKind::BeamSearch,
        SearchKind::Dvts,
    ] {
        let mut correct = 0;
        let mut latency = 0.0;
        for p in &problems {
            let o = base.serve(p, 16, kind).expect("serve");
            correct += usize::from(o.top1_correct());
            latency += o.latency();
        }
        t.row(vec![
            kind.label().to_string(),
            format!("{:.1}", 100.0 * correct as f64 / problems.len() as f64),
            format!("{:.1}", latency / problems.len() as f64),
        ]);
    }
    t.print("Fig. 3 (left) — accuracy vs latency across TTS methods, MATH-500");
    println!("paper: BoN 50.0% @ 179.5 s < Beam 54.5% @ 207.0 s < DVTS 56.5% @ 291.5 s");

    // Right: token count per generation step (average and max across
    // 2000 sampled reasoning paths per step index).
    let gen = SyntheticGenerator::new(GeneratorProfile::qwen25_math_1_5b());
    let problems = Dataset::Aime2024.problems(8, 3);
    let mut t = Table::new(vec!["step", "avg tokens", "max tokens", "max/avg"]);
    for step_idx in 1..=10u32 {
        let mut total = 0u64;
        let mut max = 0u64;
        let mut count = 0u64;
        for p in &problems {
            for path in 0..250u64 {
                let mut node = gen.root_latent(p);
                let mut tokens = 0;
                for depth in 0..step_idx {
                    if node.terminal {
                        break;
                    }
                    let plan = gen.plan_step(p, &node, path.wrapping_add(depth as u64 * 31));
                    tokens = plan.n_tokens;
                    node = plan.latent;
                }
                if node.depth == step_idx {
                    total += tokens;
                    max = max.max(tokens);
                    count += 1;
                }
            }
        }
        if count == 0 {
            continue;
        }
        let avg = total as f64 / count as f64;
        t.row(vec![
            step_idx.to_string(),
            format!("{avg:.0}"),
            max.to_string(),
            format!("{:.1}", max as f64 / avg),
        ]);
    }
    t.print("Fig. 3 (right) — tokens per generation step, AIME (Qwen2.5-Math-1.5B)");
    println!("paper: average ~200 tokens/step with outliers up to ~1200 at every step");
}
