//! Figure 10 — Roofline-Guided KV Allocation: optimal prefill/decode
//! batch sizes and the resulting normalized throughput as the available
//! KV memory grows.

use ftts_core::RooflinePlanner;
use ftts_engine::{EngineConfig, MemoryPlanner, ModelPairing, PlanContext};
use ftts_hw::{GpuDevice, GB};
use ftts_metrics::Table;

fn main() {
    let cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let mut planner = RooflinePlanner::new();
    let n = 256usize;
    let mut t = Table::new(vec![
        "KV budget (GB)",
        "B_pre (verifier)",
        "B_dec (generator)",
        "gen share (%)",
        "norm. throughput (%)",
    ]);
    let budgets: Vec<f64> = [0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0].to_vec();
    let mut results = Vec::new();
    for gb in &budgets {
        let budget = (gb * GB as f64) as u64;
        let ctx = PlanContext {
            kv_budget_bytes: budget,
            n_beams: n,
            avg_ctx: 768,
            step_tokens: 200,
            ver_seq: 968,
            tree_tokens: n as u64 * 320 + 768,
            ver_caching: true,
        };
        let plan = planner.plan(&cfg, &ctx);
        let gen_per_seq = cfg.models.gen_spec.kv_bytes(968).max(1);
        let b_dec = ((plan.gen_kv_bytes / gen_per_seq) as usize).clamp(1, n);
        // Proxy throughput: decode tokens/s at the planned batch.
        let roof = ftts_hw::Roofline::new(cfg.device.clone(), cfg.models.gen_spec.clone());
        let thr = roof.decode_throughput(b_dec, 868);
        results.push((gb, plan, b_dec, thr));
    }
    let peak = results.iter().map(|r| r.3).fold(0.0, f64::max).max(1e-9);
    for (gb, plan, b_dec, thr) in results {
        t.row(vec![
            format!("{gb:.2}"),
            plan.ver_batch.to_string(),
            b_dec.to_string(),
            format!("{:.0}", 100.0 * plan.gen_kv_bytes as f64 / (gb * GB as f64)),
            format!("{:.0}", 100.0 * thr / peak),
        ]);
    }
    t.print("Fig. 10 — roofline-guided allocation vs available KV memory (1.5B+1.5B, n=256)");
    println!("paper: both optimal batch sizes and throughput grow with memory; the verifier's");
    println!("       share stays small once its batch saturates, throughput normalized to peak");
}
