//! PR-3 benchmark: cross-request verifier co-batching and
//! demand-proportional elastic KV shares, with a machine-readable
//! `BENCH_PR3.json` report.
//!
//! Two fixtures:
//!
//! 1. **Overload stream** (8 requests, one arrival per second, n = 16
//!    beam search — PR 2's fixture): the PR-2 policy
//!    (`BatchConfig::continuous(4)`, per-request verifier sweeps
//!    serialized on the shared device) against the PR-3 policy
//!    (`BatchConfig::fused(8)`: one fused verifier sweep per round plus
//!    demand-proportional shares). The run asserts the acceptance
//!    criterion — **≥ 1.15x stream goodput over PR 2's
//!    `continuous_batch4`**, identical answers — and, to attribute the
//!    win honestly, reports an equal-share/per-request-sweep
//!    `continuous(8)` control and gates the fusion itself on it: fused
//!    sweeps must collapse kernel launches (≥ 4x fewer sweeps, higher
//!    occupancy) at no goodput tax (≥ 0.98x of the control) — on this
//!    roofline, verifier prefill is compute-bound, so fusion's win is
//!    the launch collapse and the amortized weight sweep, not kernel
//!    seconds. An opt-in First Finish variant is reported alongside.
//! 2. **Asymmetric pressure** (shallow MATH-500 and deep AIME requests
//!    bursting into a tight pool): demand-proportional shares must
//!    reduce preemptions vs the equal split at the same pool size —
//!    deep searches stop starving behind shallow hoarders.
//!
//! The JSON also records verifier-sweep occupancy and per-phase goodput
//! (`ftts_metrics::StreamSummary`) and the wall-clock distribution of
//! the fused scheduler itself through the criterion shim's IQR-filtered
//! statistics.
//!
//! Run with `cargo bench --bench pr3_fused_verify` (release profile).

use criterion::{Criterion, SampleStats};
use ftts_core::{BatchConfig, BatchRun, BatchedServerSim, TtsServer};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

const REQUESTS: usize = 8;
const N_BEAMS: usize = 16;
const ARRIVAL_INTERVAL_S: f64 = 1.0;
const GOODPUT_TARGET: f64 = 1.15;

fn server(seed: u64, memory_fraction: f64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = memory_fraction;
    s
}

fn overload_arrivals() -> Vec<RequestArrival> {
    let problems = Dataset::Amc2023.problems(REQUESTS, 29);
    ArrivalPattern::Uniform {
        interval: ARRIVAL_INTERVAL_S,
    }
    .schedule(&problems, 0)
}

/// Shallow MATH-500 interleaved with deep AIME: the demand asymmetry
/// the elastic shares exploit.
fn mixed_pressure_arrivals() -> Vec<RequestArrival> {
    let shallow = Dataset::Math500.problems(2, 51);
    let deep = Dataset::Aime2024.problems(2, 51);
    let problems = vec![shallow[0], deep[0], shallow[1], deep[1]];
    ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0)
}

fn run_policy(
    config: BatchConfig,
    arrivals: &[RequestArrival],
    n: usize,
    seed: u64,
    memory_fraction: f64,
) -> BatchRun {
    BatchedServerSim::new(
        server(seed, memory_fraction),
        n,
        SearchKind::BeamSearch,
        config,
    )
    .run(arrivals)
    .expect("policy run")
}

fn policy_json(label: &str, run: &BatchRun) -> String {
    let s = run.stream_summary();
    format!(
        r#"    "{label}": {{
      "stream_goodput_tok_per_s": {goodput:.2},
      "makespan_s": {makespan:.3},
      "total_accepted_tokens": {tokens},
      "latency_mean_s": {lat_mean:.3},
      "latency_p95_s": {lat_p95:.3},
      "queue_delay_mean_s": {qd_mean:.3},
      "generator_goodput_tok_per_s": {gen_gp:.2},
      "verifier_goodput_tok_per_s": {ver_gp:.2},
      "verifier_occupancy_seqs_per_sweep": {occ:.3},
      "verifier_sweeps": {sweeps},
      "verifier_busy_s": {busy:.3},
      "preemptions": {preemptions},
      "rounds": {rounds},
      "peak_reserved_bytes": {peak},
      "pool_bytes": {pool}
    }}"#,
        goodput = s.stream_goodput,
        makespan = s.makespan,
        tokens = s.total_accepted_tokens,
        lat_mean = s.latency.mean,
        lat_p95 = s.latency.p95,
        qd_mean = s.queue_delay.mean,
        gen_gp = s.generator_goodput,
        ver_gp = s.verifier_goodput,
        occ = s.verifier_occupancy,
        sweeps = run.ver_sweeps,
        busy = run.ver_busy_secs,
        preemptions = run.preemptions,
        rounds = run.rounds,
        peak = run.peak_reserved_bytes,
        pool = run.pool_bytes,
    )
}

fn wall_json(stats: &SampleStats) -> String {
    format!(
        r#"  "fused8_wall_clock": {{
    "samples": {n},
    "outliers_rejected": {outliers},
    "mean_s": {mean:.6},
    "min_s": {min:.6},
    "variance_s2": {var:.9},
    "p50_s": {p50:.6},
    "p99_s": {p99:.6}
  }}"#,
        n = stats.n,
        outliers = stats.outliers_rejected,
        mean = stats.mean_seconds,
        min = stats.min_seconds,
        var = stats.variance_seconds2,
        p50 = stats.p50_seconds,
        p99 = stats.p99_seconds,
    )
}

fn main() {
    // Fixture 1: the overload stream.
    let arrivals = overload_arrivals();
    let cont4 = run_policy(BatchConfig::continuous(4), &arrivals, N_BEAMS, 17, 0.9);
    let cont8 = run_policy(BatchConfig::continuous(8), &arrivals, N_BEAMS, 17, 0.9);
    let fused8 = run_policy(BatchConfig::fused(8), &arrivals, N_BEAMS, 17, 0.9);
    let first_finish = run_policy(
        BatchConfig::fused(8).with_first_finish(0.62),
        &arrivals,
        N_BEAMS,
        17,
        0.9,
    );

    println!("== pr3: cross-request verifier co-batching under overload ==");
    println!(
        "{REQUESTS} requests, n={N_BEAMS} beam search, one arrival per {ARRIVAL_INTERVAL_S:.1} s"
    );
    for (label, run) in [
        ("continuous-4 (pr2)", &cont4),
        ("continuous-8", &cont8),
        ("fused-8 (pr3)", &fused8),
        ("fused-8 + first-finish", &first_finish),
    ] {
        let s = run.stream_summary();
        println!(
            "  {label:<22} goodput {goodput:>8.1} tok/s | makespan {makespan:>6.1} s | ver sweeps {sweeps:>4} | occupancy {occ:>5.1} seq/sweep",
            goodput = s.stream_goodput,
            makespan = s.makespan,
            sweeps = run.ver_sweeps,
            occ = s.verifier_occupancy,
        );
    }
    let (c4, f8) = (cont4.stream_summary(), fused8.stream_summary());
    let speedup = f8.stream_goodput / c4.stream_goodput.max(1e-12);
    println!("  fused-8 vs continuous-4 goodput: {speedup:.3}x");
    assert!(
        speedup >= GOODPUT_TARGET,
        "acceptance criterion: fused verifier co-batching + elastic shares must deliver \
         >= {GOODPUT_TARGET}x stream goodput over PR 2's continuous_batch4 ({} vs {} tok/s)",
        f8.stream_goodput,
        c4.stream_goodput
    );
    // Gate the fusion itself against the equal-width control, not just
    // the narrower PR-2 policy: the fused sweep must collapse kernel
    // launches without taxing goodput.
    let c8 = cont8.stream_summary();
    assert!(
        f8.stream_goodput >= 0.98 * c8.stream_goodput,
        "fused sweeps must not tax the wider batch ({} vs {} tok/s)",
        f8.stream_goodput,
        c8.stream_goodput
    );
    assert!(
        fused8.ver_sweeps * 4 <= cont8.ver_sweeps,
        "one fused sweep per wave must collapse kernel launches >= 4x ({} vs {})",
        fused8.ver_sweeps,
        cont8.ver_sweeps
    );
    assert!(
        f8.verifier_occupancy > c8.verifier_occupancy,
        "fused sweeps must raise verifier occupancy"
    );
    // Co-batching and elastic shares move clocks, never outcomes.
    for (a, b) in cont4.served.iter().zip(&fused8.served) {
        assert_eq!(
            a.outcome.answer, b.outcome.answer,
            "answers are schedule-invariant"
        );
    }

    // Fixture 2: asymmetric pressure — elastic shares vs the equal split.
    let pressure = mixed_pressure_arrivals();
    let equal = run_policy(BatchConfig::continuous(4), &pressure, 24, 13, 0.295);
    let demand = run_policy(
        BatchConfig {
            demand_shares: true,
            ..BatchConfig::continuous(4)
        },
        &pressure,
        24,
        13,
        0.295,
    );
    println!("\n== pr3: demand-proportional shares under asymmetric pressure ==");
    println!(
        "  equal-share  : {} preemptions, {:.1} tok/s",
        equal.preemptions,
        equal.stream_summary().stream_goodput
    );
    println!(
        "  demand-shares: {} preemptions, {:.1} tok/s",
        demand.preemptions,
        demand.stream_summary().stream_goodput
    );
    assert!(
        equal.preemptions > 0,
        "the pressure fixture must actually preempt under equal shares"
    );
    assert!(
        demand.preemptions < equal.preemptions,
        "demand-proportional shares must reduce preemptions at the same pool size \
         ({} vs {})",
        demand.preemptions,
        equal.preemptions
    );

    // Wall-clock distribution of the fused scheduler itself (IQR-robust).
    println!("\n== pr3: scheduler wall-clock (simulator hot path) ==");
    let mut criterion = Criterion::default().sample_size(15);
    let wall = criterion.bench_stats("fused_batch8_replay", |b| {
        b.iter(|| run_policy(BatchConfig::fused(8), &arrivals, N_BEAMS, 17, 0.9))
    });

    let ff = first_finish.stream_summary();
    let json = format!(
        "{{\n  \"bench\": \"pr3_fused_verify\",\n  \"workload\": {{\n    \"requests\": {REQUESTS},\n    \"n_beams\": {N_BEAMS},\n    \"arrival_interval_s\": {ARRIVAL_INTERVAL_S},\n    \"search\": \"beam\"\n  }},\n  \"policies\": {{\n{cont4_json},\n{cont8_json},\n{fused8_json},\n{ff_json}\n  }},\n  \"fused8_goodput_speedup_vs_continuous4\": {speedup:.3},\n  \"first_finish_makespan_reduction_vs_fused8\": {ff_makespan:.3},\n  \"pressure_fixture\": {{\n    \"equal_share_preemptions\": {eq_pre},\n    \"demand_share_preemptions\": {dm_pre},\n    \"equal_share_goodput\": {eq_gp:.2},\n    \"demand_share_goodput\": {dm_gp:.2}\n  }},\n{wall}\n}}\n",
        cont4_json = policy_json("continuous_batch4", &cont4),
        cont8_json = policy_json("continuous_batch8", &cont8),
        fused8_json = policy_json("fused_batch8", &fused8),
        ff_json = policy_json("fused_batch8_first_finish", &first_finish),
        ff_makespan = f8.makespan / ff.makespan.max(1e-12),
        eq_pre = equal.preemptions,
        dm_pre = demand.preemptions,
        eq_gp = equal.stream_summary().stream_goodput,
        dm_gp = demand.stream_summary().stream_goodput,
        wall = wall_json(&wall),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR3.json");
    std::fs::write(out_path, &json).expect("write BENCH_PR3.json");
    println!("\nwrote {out_path}");
}
