//! Figure 16 — cumulative goodput-gain breakdown of the three
//! optimizations: Dynamic Prefix-Aware Scheduling (P), Asymmetric
//! Multi-Model Memory Allocation (M), Speculative Beam Extension (S).

use ftts_bench::{memory_fraction, pairings, problems_for, run_set, server_with};
use ftts_core::AblationFlags;
use ftts_hw::GpuDevice;
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn main() {
    let mut t = Table::new(vec![
        "config",
        "n",
        "P gain (%)",
        "M+P gain (%)",
        "M+P+S gain (%)",
    ]);
    for pairing in pairings() {
        let frac = memory_fraction(&pairing);
        // P and M only have work to do once the search width strains the
        // KV budget (paper: "gain most significant in memory-constrained
        // scenarios").
        for n in [128usize, 512] {
            let problems = problems_for(Dataset::Aime2024, n, 71);
            let base = server_with(
                GpuDevice::rtx4090(),
                pairing.clone(),
                AblationFlags::baseline(),
                frac,
            );
            let (bg, _, _) =
                run_set(&base, &problems, n, SearchKind::BeamSearch).expect("baseline");
            let mut row = vec![pairing.label(), n.to_string()];
            for (_, flags) in AblationFlags::ladder() {
                let server = server_with(GpuDevice::rtx4090(), pairing.clone(), flags, frac);
                let (g, _, _) =
                    run_set(&server, &problems, n, SearchKind::BeamSearch).expect("ablation");
                row.push(format!("{:+.0}", 100.0 * (g / bg - 1.0)));
            }
            t.row(row);
        }
    }
    t.print("Fig. 16 — cumulative goodput gain breakdown (AIME)");
    println!("paper: P grows with n and memory pressure; M adds a major share at large n;");
    println!("       S consistently provides a significant, often the largest, gain");
}
