//! Figure 11 — Precise goodput of FastTTS vs the vLLM baseline across
//! search-algorithm variants (1.5B+1.5B on AIME).

use ftts_bench::{problems_for, run_set, server_pair, speedup};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn main() {
    let (base, fast) = server_pair(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let mut t = Table::new(vec![
        "algorithm",
        "n",
        "baseline (tok/s)",
        "FastTTS (tok/s)",
        "speedup",
    ]);
    for kind in [
        SearchKind::BeamSearch,
        SearchKind::Dvts,
        SearchKind::DynamicBranching,
        SearchKind::VaryingGranularity,
    ] {
        for n in [8usize, 32, 128] {
            let problems = problems_for(Dataset::Aime2024, n, 21);
            let (bg, _, _) = run_set(&base, &problems, n, kind).expect("baseline");
            let (fg, _, _) = run_set(&fast, &problems, n, kind).expect("fasttts");
            t.row(vec![
                kind.label().to_string(),
                n.to_string(),
                format!("{bg:.1}"),
                format!("{fg:.1}"),
                speedup(fg, bg),
            ]);
        }
    }
    t.print("Fig. 11 — goodput across search variants (1.5B+1.5B, AIME)");
    println!("paper: FastTTS improves goodput 1.2x-3.9x across all four variants");
}
