//! PR-4 benchmark: event-driven (iteration-granularity) scheduling vs
//! lockstep rounds, with a machine-readable `BENCH_PR4.json` report.
//!
//! **Fixture: straggler-heavy overload.** Shallow AMC-2023 requests
//! interleaved with deep AIME-2024 stragglers, one arrival per second,
//! n = 16 beam search — the workload where the lockstep round barrier
//! hurts most: every round waits for the deepest search while shallow
//! requests burn `barrier_idle`. The PR-3 policy (lockstep fused-8) is
//! the baseline; the PR-4 policy (`EventServerSim`, fused-8, finite
//! co-batch window) removes the barrier.
//!
//! Asserted gates (the PR's acceptance criteria):
//!
//! * event-driven stream goodput ≥ [`GOODPUT_TARGET`] × lockstep
//!   fused-8 on this fixture;
//! * event-driven idle *fraction* (idle seconds over total attributed
//!   seconds) strictly below lockstep's, with **zero** barrier idle —
//!   the wait the scheduler exists to drain;
//! * answers are schedule-invariant (the reasoning trees match
//!   request-for-request).
//!
//! A window sweep (0 / 0.1 / 0.5 / ∞ seconds) shows the dial between
//! "never wait" and "wait for everyone"; the infinite point must
//! reproduce the lockstep numbers exactly (the equivalence anchor,
//! asserted here too). Wall-clock of the event scheduler itself is
//! reported through the criterion shim's IQR-filtered statistics.
//!
//! Run with `cargo bench --bench pr4_event_sched` (release profile).

use criterion::{Criterion, SampleStats};
use ftts_core::{BatchConfig, BatchRun, BatchedServerSim, EventConfig, EventServerSim, TtsServer};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

const N_BEAMS: usize = 16;
const ARRIVAL_INTERVAL_S: f64 = 1.0;
const MAX_BATCH: usize = 8;
/// The PR-4 co-batch window, seconds.
const WINDOW_S: f64 = 0.1;
const GOODPUT_TARGET: f64 = 1.3;

fn server(seed: u64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = 0.9;
    s
}

/// Shallow AMC requests interleaved with deep AIME stragglers: the
/// heterogeneity that makes lockstep rounds straggler-bound.
fn straggler_arrivals() -> Vec<RequestArrival> {
    let shallow = Dataset::Amc2023.problems(5, 29);
    let deep = Dataset::Aime2024.problems(3, 43);
    let problems = vec![
        shallow[0], deep[0], shallow[1], shallow[2], deep[1], shallow[3], deep[2], shallow[4],
    ];
    ArrivalPattern::Uniform {
        interval: ARRIVAL_INTERVAL_S,
    }
    .schedule(&problems, 0)
}

fn run_lockstep(arrivals: &[RequestArrival]) -> BatchRun {
    BatchedServerSim::new(
        server(17),
        N_BEAMS,
        SearchKind::BeamSearch,
        BatchConfig::fused(MAX_BATCH),
    )
    .run(arrivals)
    .expect("lockstep run")
}

fn run_event(arrivals: &[RequestArrival], window: f64) -> BatchRun {
    EventServerSim::new(
        server(17),
        N_BEAMS,
        SearchKind::BeamSearch,
        EventConfig::windowed(MAX_BATCH, window),
    )
    .run(arrivals)
    .expect("event run")
}

/// (idle fraction, barrier-idle seconds) over a run's attributed time.
fn idle_profile(run: &BatchRun) -> (f64, f64) {
    let mut idle = 0.0f64;
    let mut barrier = 0.0f64;
    let mut total = 0.0f64;
    for r in &run.served {
        let b = r.outcome.stats.breakdown();
        idle += b.idle;
        barrier += b.barrier_idle;
        total += b.total();
    }
    (idle / total.max(1e-12), barrier)
}

fn policy_json(label: &str, run: &BatchRun) -> String {
    let s = run.stream_summary();
    let (idle_fraction, barrier_idle) = idle_profile(run);
    format!(
        r#"    "{label}": {{
      "stream_goodput_tok_per_s": {goodput:.2},
      "makespan_s": {makespan:.3},
      "total_accepted_tokens": {tokens},
      "latency_mean_s": {lat_mean:.3},
      "latency_p95_s": {lat_p95:.3},
      "queue_delay_mean_s": {qd_mean:.3},
      "idle_fraction": {idle_fraction:.4},
      "barrier_idle_s": {barrier_idle:.3},
      "launches": {rounds},
      "mean_cobatch_width": {width:.2},
      "verifier_sweeps": {sweeps},
      "verifier_occupancy_seqs_per_sweep": {occ:.3},
      "preemptions": {preemptions},
      "peak_reserved_bytes": {peak},
      "pool_bytes": {pool}
    }}"#,
        goodput = s.stream_goodput,
        makespan = s.makespan,
        tokens = s.total_accepted_tokens,
        lat_mean = s.latency.mean,
        lat_p95 = s.latency.p95,
        qd_mean = s.queue_delay.mean,
        rounds = run.rounds,
        width = run.group_iters as f64 / run.rounds.max(1) as f64,
        sweeps = run.ver_sweeps,
        occ = s.verifier_occupancy,
        preemptions = run.preemptions,
        peak = run.peak_reserved_bytes,
        pool = run.pool_bytes,
    )
}

fn wall_json(stats: &SampleStats) -> String {
    format!(
        r#"  "event_wall_clock": {{
    "samples": {n},
    "outliers_rejected": {outliers},
    "mean_s": {mean:.6},
    "min_s": {min:.6},
    "variance_s2": {var:.9},
    "p50_s": {p50:.6},
    "p99_s": {p99:.6}
  }}"#,
        n = stats.n,
        outliers = stats.outliers_rejected,
        mean = stats.mean_seconds,
        min = stats.min_seconds,
        var = stats.variance_seconds2,
        p50 = stats.p50_seconds,
        p99 = stats.p99_seconds,
    )
}

fn main() {
    let arrivals = straggler_arrivals();
    let lockstep = run_lockstep(&arrivals);
    let event = run_event(&arrivals, WINDOW_S);

    println!("== pr4: event-driven scheduling on the straggler-heavy overload ==");
    println!(
        "{} requests (AMC + AIME mix), n={N_BEAMS} beam search, one arrival per {ARRIVAL_INTERVAL_S:.1} s",
        arrivals.len()
    );
    let window_sweep: Vec<(String, BatchRun)> = [0.0, 0.1, 0.5, f64::INFINITY]
        .into_iter()
        .map(|w| (format!("event window {w:>4}s"), run_event(&arrivals, w)))
        .collect();
    let mut rows: Vec<(String, &BatchRun)> =
        vec![("lockstep fused-8 (pr3)".to_string(), &lockstep)];
    rows.extend(window_sweep.iter().map(|(l, r)| (l.clone(), r)));
    for (label, run) in &rows {
        let s = run.stream_summary();
        let (idle_fraction, barrier) = idle_profile(run);
        println!(
            "  {label:<24} goodput {goodput:>8.1} tok/s | makespan {makespan:>6.1} s | idle {idle:>5.1}% (barrier {barrier:>6.1} s) | {launches:>3} launches x {width:>4.1} wide",
            goodput = s.stream_goodput,
            makespan = s.makespan,
            idle = idle_fraction * 100.0,
            launches = run.rounds,
            width = run.group_iters as f64 / run.rounds.max(1) as f64,
        );
    }

    let (ls, es) = (lockstep.stream_summary(), event.stream_summary());
    let speedup = es.stream_goodput / ls.stream_goodput.max(1e-12);
    let (lock_idle, lock_barrier) = idle_profile(&lockstep);
    let (event_idle, event_barrier) = idle_profile(&event);
    println!("  event vs lockstep goodput: {speedup:.3}x");
    assert!(
        speedup >= GOODPUT_TARGET,
        "acceptance criterion: event-driven scheduling must deliver >= {GOODPUT_TARGET}x \
         stream goodput over lockstep fused-8 on the straggler fixture ({} vs {} tok/s)",
        es.stream_goodput,
        ls.stream_goodput
    );
    assert!(
        event_idle < lock_idle,
        "event-driven scheduling must lower the idle fraction ({event_idle:.4} vs {lock_idle:.4})"
    );
    assert!(
        lock_barrier > 0.0,
        "the lockstep baseline must actually wait at barriers on this fixture"
    );
    assert!(
        event_barrier == 0.0,
        "event-driven scheduling must never book barrier idle ({event_barrier} s)"
    );
    // Scheduling moves clocks, never outcomes.
    for (l, e) in lockstep.served.iter().zip(&event.served) {
        assert_eq!(
            l.outcome.answer, e.outcome.answer,
            "answers are schedule-invariant"
        );
        assert_eq!(l.accepted_tokens(), e.accepted_tokens());
    }
    // The infinite-window point of the sweep is the equivalence anchor:
    // it must land exactly on the lockstep numbers.
    let infinite = &window_sweep.last().expect("sweep non-empty").1;
    assert_eq!(
        infinite.stream_summary().stream_goodput,
        ls.stream_goodput,
        "infinite window must reproduce lockstep exactly"
    );
    assert_eq!(infinite.rounds, lockstep.rounds);

    // Wall-clock of the event scheduler itself (IQR-robust).
    println!("\n== pr4: scheduler wall-clock (simulator hot path) ==");
    let mut criterion = Criterion::default().sample_size(15);
    let wall = criterion.bench_stats("event_window_replay", |b| {
        b.iter(|| run_event(&arrivals, WINDOW_S))
    });

    let sweep_json: Vec<String> = [0.0, 0.1, 0.5]
        .iter()
        .zip(&window_sweep)
        .map(|(w, (_, run))| {
            format!(
                r#"    {{ "window_s": {w}, "stream_goodput_tok_per_s": {gp:.2}, "idle_fraction": {idle:.4} }}"#,
                gp = run.stream_summary().stream_goodput,
                idle = idle_profile(run).0,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pr4_event_sched\",\n  \"workload\": {{\n    \"requests\": {requests},\n    \"n_beams\": {N_BEAMS},\n    \"arrival_interval_s\": {ARRIVAL_INTERVAL_S},\n    \"mix\": \"amc2023+aime2024 stragglers\",\n    \"search\": \"beam\"\n  }},\n  \"policies\": {{\n{lockstep_json},\n{event_json}\n  }},\n  \"event_goodput_speedup_vs_lockstep_fused8\": {speedup:.3},\n  \"lockstep_idle_fraction\": {lock_idle:.4},\n  \"event_idle_fraction\": {event_idle:.4},\n  \"lockstep_barrier_idle_s\": {lock_barrier:.3},\n  \"event_barrier_idle_s\": {event_barrier:.3},\n  \"window_sweep\": [\n{sweep}\n  ],\n  \"infinite_window_matches_lockstep\": true,\n{wall}\n}}\n",
        requests = arrivals.len(),
        lockstep_json = policy_json("lockstep_fused8", &lockstep),
        event_json = policy_json("event_fused8_window", &event),
        sweep = sweep_json.join(",\n"),
        wall = wall_json(&wall),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json");
    std::fs::write(out_path, &json).expect("write BENCH_PR4.json");
    println!("\nwrote {out_path}");
}
