//! Figure 6 — normalized throughput versus KV-cache size for the prefill
//! (verifier) and decoding (generator) stages: prefill saturates with
//! well under 1 GB while decoding needs several GB.

use ftts_hw::{GpuDevice, ModelSpec, Roofline, GB};
use ftts_metrics::Table;

fn crossover(roof: &Roofline, seq: u64, decode: bool, target: f64) -> (f64, Vec<(f64, f64)>) {
    // Normalized to the throughput at the largest measured budget (24 GB),
    // matching how the paper's figure normalizes.
    let max_batch = roof.max_decode_batch(24 * GB, seq).max(1);
    let asymptote = if decode {
        roof.decode_throughput(max_batch, seq)
    } else {
        roof.prefill_throughput(max_batch, seq)
    };
    let mut series = Vec::new();
    let mut cross = f64::NAN;
    let mut kv = 16.0 * 1024.0 * 1024.0; // 16 MB
    while kv <= 24.0 * GB as f64 {
        let batch = roof.max_decode_batch(kv as u64, seq).max(1);
        let thr = if decode {
            roof.decode_throughput(batch, seq)
        } else {
            roof.prefill_throughput(batch, seq)
        };
        let norm = thr / asymptote;
        series.push((kv / GB as f64, norm));
        if cross.is_nan() && norm >= target {
            cross = kv / GB as f64;
        }
        kv *= 2.0;
    }
    (cross, series)
}

fn main() {
    let roof = Roofline::new(GpuDevice::rtx4090(), ModelSpec::qwen25_math_1_5b());
    let mut t = Table::new(vec!["stage", "seq len", "KV for 80% of peak (GB)"]);
    let mut rows = Vec::new();
    for (label, seq, decode) in [
        ("prefill", 640u64, false),
        ("prefill", 1152, false),
        ("decode", 512, true),
        ("decode", 1024, true),
    ] {
        let (cross, series) = crossover(&roof, seq, decode, 0.8);
        t.row(vec![
            label.to_string(),
            seq.to_string(),
            format!("{cross:.2}"),
        ]);
        rows.push((label, seq, series));
    }
    t.print(
        "Fig. 6 — KV size needed to reach 80% of peak throughput (Qwen2.5-Math-1.5B, RTX 4090)",
    );
    println!("paper: prefill saturates at 0.39-0.98 GB; decoding needs 3.06-5.18 GB (5-10x more)");

    let mut t = Table::new(vec![
        "KV (GB)",
        "prefill@640",
        "prefill@1152",
        "decode@512",
        "decode@1024",
    ]);
    let len = rows[0].2.len();
    for i in 0..len {
        let kv = rows[0].2[i].0;
        t.row(vec![
            format!("{kv:.2}"),
            format!("{:.2}", rows[0].2[i].1),
            format!("{:.2}", rows[1].2[i].1),
            format!("{:.2}", rows[2].2[i].1),
            format!("{:.2}", rows[3].2[i].1),
        ]);
    }
    t.print("normalized throughput vs KV cache size");
}
