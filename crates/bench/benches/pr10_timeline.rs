//! PR-10 benchmark: the global device timeline with token-granularity
//! decode joins, against iteration-granularity event scheduling —
//! `BENCH_PR10.json` report.
//!
//! **Fixtures.** The goodput fixture is a straggler-heavy overload at
//! window = 0: twelve requests (shallow AMC-2023 mixed with deep
//! AIME-2024 stragglers) arriving every 1.5 s into a fused-6 scheduler,
//! n = 16 beam search. The join-wait fixture is one deep AIME
//! straggler holding the device plus shallow AMC arrivals trickling in
//! every 6 s with free batch seats: iteration-granularity scheduling
//! holds them (and their co-batch) to *launch boundaries*; token joins
//! admit and resync at *chunk boundaries*, so the late arrivals finish
//! sooner. (Under overload the admission wait is slot-bound — a seat
//! frees at launch end in both modes — so the boundary granularity
//! only shows in goodput there.)
//!
//! Every timeline policy here runs with **honest contention pricing**
//! on ([`TimelineConfig::honest`]): overlapping launches retroactively
//! stretch each other on the shared device timeline, so window = 0 no
//! longer gets free overlap. That keeps the comparison fair — the PR's
//! speedup is *scheduling* (joining sooner), not optimistic costing.
//!
//! Asserted gates (the PR's acceptance criteria):
//!
//! * token joins beat iteration-granularity joins at window = 0 on
//!   stream goodput **and** the late arrivals' mean join latency (the
//!   end-to-end latency of requests that join an in-flight decode);
//! * retroactive contention is real: the honest window-0 run books
//!   stretch seconds > 0 and no longer coincides with the
//!   infinite-window (lockstep) run — the overlap-pricing gap is > 0;
//! * the anchored timeline (contention off, joins off) reproduces
//!   `EventServerSim` bit-for-bit on the same fixture — completion
//!   instants, answers, and every breakdown bucket;
//! * answers are schedule-invariant across all policies.
//!
//! Run with `cargo bench --bench pr10_timeline` (release profile).

use criterion::{Criterion, SampleStats};
use ftts_core::{
    BatchRun, EventConfig, EventServerSim, FaultPlan, TimelineConfig, TimelineServerSim, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

const N_BEAMS: usize = 16;
const MAX_BATCH: usize = 6;
const ARRIVAL_INTERVAL_S: f64 = 1.5;
/// Arrival cadence of the sparse join-wait fixture.
const SPARSE_INTERVAL_S: f64 = 6.0;
/// Decode tokens per sequence between token-join chunk boundaries.
const JOIN_QUANTUM: u64 = 2;
/// Gate: token joins must beat iteration joins on goodput by this much.
const JOIN_GOODPUT_TARGET: f64 = 1.01;
/// Gate: and cut the late arrivals' mean join latency by this factor.
const JOIN_WAIT_TARGET: f64 = 1.01;

fn server(seed: u64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = 0.9;
    s
}

/// Shallow AMC requests interleaved with deep AIME stragglers at a
/// 1.5 s cadence — arrivals almost always land mid-launch.
fn straggler_arrivals() -> Vec<RequestArrival> {
    let shallow = Dataset::Amc2023.problems(7, 29);
    let deep = Dataset::Aime2024.problems(5, 43);
    let problems = vec![
        shallow[0], deep[0], shallow[1], shallow[2], deep[1], shallow[3], deep[2], shallow[4],
        deep[3], shallow[5], deep[4], shallow[6],
    ];
    ArrivalPattern::Uniform {
        interval: ARRIVAL_INTERVAL_S,
    }
    .schedule(&problems, 0)
}

/// The join-wait fixture: one deep AIME straggler holds the device
/// from t = 0, then shallow AMC requests trickle in with free batch
/// seats and join its in-flight decode. Iteration-granularity
/// scheduling holds each late arrival (and the co-batch it joins) to
/// *launch boundaries*; token joins admit at the next *chunk boundary*
/// and resync there, so the late arrivals finish sooner. The admission
/// instant itself is booked at arrival in both modes (the boundary
/// wait lands in the idle bucket), so the observable is the late
/// arrivals' completion latency, not `queue_delay`.
fn sparse_arrivals() -> Vec<RequestArrival> {
    let shallow = Dataset::Amc2023.problems(5, 29);
    let deep = Dataset::Aime2024.problems(1, 43);
    let problems = vec![
        deep[0], shallow[0], shallow[1], shallow[2], shallow[3], shallow[4],
    ];
    ArrivalPattern::Uniform {
        interval: SPARSE_INTERVAL_S,
    }
    .schedule(&problems, 0)
}

fn event_config(window: f64) -> EventConfig {
    EventConfig::windowed(MAX_BATCH, window)
}

fn run_event(arrivals: &[RequestArrival], window: f64) -> BatchRun {
    EventServerSim::new(
        server(17),
        N_BEAMS,
        SearchKind::BeamSearch,
        event_config(window),
    )
    .run(arrivals)
    .expect("event run")
}

fn run_timeline(arrivals: &[RequestArrival], config: TimelineConfig) -> BatchRun {
    TimelineServerSim::new(server(17), N_BEAMS, SearchKind::BeamSearch, config)
        .run_faulted(arrivals, &FaultPlan::none())
        .expect("timeline run")
}

/// Mean seconds an arrival waited before entering the decode batch.
fn mean_admission_wait(run: &BatchRun) -> f64 {
    let total: f64 = run
        .served
        .iter()
        .map(ftts_core::ServedRequest::queue_delay)
        .sum();
    total / run.served.len().max(1) as f64
}

/// Mean end-to-end latency of the *late* arrivals (`arrived_at > 0`) —
/// the requests that join an in-flight decode. The launch-boundary
/// wait iteration scheduling imposes on them shows up here.
fn mean_late_latency(run: &BatchRun) -> f64 {
    let late: Vec<f64> = run
        .served
        .iter()
        .filter(|r| r.arrived_at > 0.0)
        .map(ftts_core::ServedRequest::total_latency)
        .collect();
    late.iter().sum::<f64>() / late.len().max(1) as f64
}

/// (contention seconds, join-wait seconds) summed over a run.
fn honesty_profile(run: &BatchRun) -> (f64, f64) {
    run.served.iter().fold((0.0, 0.0), |(c, j), r| {
        let b = r.outcome.stats.breakdown();
        (c + b.contention, j + b.join_wait)
    })
}

fn policy_json(label: &str, run: &BatchRun) -> String {
    let s = run.stream_summary();
    let (contention, join_wait) = honesty_profile(run);
    format!(
        r#"    "{label}": {{
      "stream_goodput_tok_per_s": {goodput:.2},
      "makespan_s": {makespan:.3},
      "total_accepted_tokens": {tokens},
      "latency_mean_s": {lat_mean:.3},
      "latency_p95_s": {lat_p95:.3},
      "mean_admission_wait_s": {wait:.4},
      "late_arrival_latency_mean_s": {late:.3},
      "contention_s": {contention:.3},
      "join_wait_s": {join_wait:.3},
      "launches": {rounds},
      "timeline_segments": {segments},
      "timeline_busy_s": {busy:.3},
      "timeline_stretch_s": {stretch:.3},
      "timeline_utilization": {util:.4},
      "timeline_max_concurrency": {conc}
    }}"#,
        goodput = s.stream_goodput,
        makespan = s.makespan,
        tokens = s.total_accepted_tokens,
        lat_mean = s.latency.mean,
        lat_p95 = s.latency.p95,
        wait = mean_admission_wait(run),
        late = mean_late_latency(run),
        rounds = run.rounds,
        segments = run.timeline.segments,
        busy = run.timeline.busy_secs,
        stretch = run.timeline.stretch_secs,
        util = run.timeline.utilization(),
        conc = run.timeline.max_concurrency,
    )
}

fn wall_json(stats: &SampleStats) -> String {
    format!(
        r#"  "timeline_wall_clock": {{
    "samples": {n},
    "outliers_rejected": {outliers},
    "mean_s": {mean:.6},
    "min_s": {min:.6},
    "variance_s2": {var:.9},
    "p50_s": {p50:.6},
    "p99_s": {p99:.6}
  }}"#,
        n = stats.n,
        outliers = stats.outliers_rejected,
        mean = stats.mean_seconds,
        min = stats.min_seconds,
        var = stats.variance_seconds2,
        p50 = stats.p50_seconds,
        p99 = stats.p99_seconds,
    )
}

/// The anchored timeline must reproduce `EventServerSim` bit-for-bit:
/// instants, answers, tokens and every breakdown bucket.
fn anchor_identical(event: &BatchRun, anchored: &BatchRun) -> bool {
    event.served.len() == anchored.served.len()
        && event.rounds == anchored.rounds
        && event.group_iters == anchored.group_iters
        && event.served.iter().zip(&anchored.served).all(|(e, a)| {
            e.started_at == a.started_at
                && e.finished_at == a.finished_at
                && e.outcome.answer == a.outcome.answer
                && e.accepted_tokens() == a.accepted_tokens()
                && e.outcome.stats.breakdown() == a.outcome.stats.breakdown()
        })
}

#[allow(clippy::too_many_lines)]
fn main() {
    let arrivals = straggler_arrivals();
    let event_w0 = run_event(&arrivals, 0.0);
    let anchored = run_timeline(&arrivals, TimelineConfig::anchored(event_config(0.0)));
    let iter_w0 = run_timeline(&arrivals, TimelineConfig::honest(event_config(0.0)));
    let joins_w0 = run_timeline(
        &arrivals,
        TimelineConfig::honest(event_config(0.0))
            .with_token_joins()
            .with_join_quantum(JOIN_QUANTUM),
    );
    let iter_winf = run_timeline(
        &arrivals,
        TimelineConfig::honest(event_config(f64::INFINITY)),
    );

    println!("== pr10: global device timeline on the straggler overload ==");
    println!(
        "{} requests (AMC + AIME mix), n={N_BEAMS} beam search, one arrival per \
         {ARRIVAL_INTERVAL_S} s, fused-{MAX_BATCH}, join quantum {JOIN_QUANTUM} tokens",
        arrivals.len()
    );
    for (label, run) in [
        ("event w=0 (pr4)", &event_w0),
        ("timeline anchored", &anchored),
        ("timeline iter w=0", &iter_w0),
        ("timeline joins w=0", &joins_w0),
        ("timeline iter w=inf", &iter_winf),
    ] {
        let s = run.stream_summary();
        let (contention, join_wait) = honesty_profile(run);
        println!(
            "  {label:<20} goodput {goodput:>8.1} tok/s | makespan {makespan:>6.1} s | wait {wait:>6.3} s | contention {contention:>7.2} s | join_wait {join_wait:>6.2} s | stretch {stretch:>7.2} s | {launches:>4} launches",
            goodput = s.stream_goodput,
            makespan = s.makespan,
            wait = mean_admission_wait(run),
            stretch = run.timeline.stretch_secs,
            launches = run.rounds,
        );
    }

    // Gate (a): the anchored timeline is bit-identical to the event
    // scheduler — the equivalence anchor that licenses everything else.
    let anchor_ok = anchor_identical(&event_w0, &anchored);
    assert!(
        anchor_ok,
        "anchored timeline must reproduce EventServerSim bit-for-bit"
    );
    assert!(
        anchored.timeline.segments > 0 && anchored.timeline.stretch_secs == 0.0,
        "the anchor records segments but never stretches"
    );

    // Gate (b): token joins beat iteration-granularity joins at w=0 on
    // goodput (overload fixture) AND mean admission wait (sparse
    // fixture, where the wait IS the launch-boundary wait), both under
    // honest pricing.
    let (gi, gj) = (iter_w0.stream_summary(), joins_w0.stream_summary());
    let join_speedup = gj.stream_goodput / gi.stream_goodput.max(1e-12);
    let sparse = sparse_arrivals();
    let sparse_iter = run_timeline(&sparse, TimelineConfig::honest(event_config(0.0)));
    let sparse_joins = run_timeline(
        &sparse,
        TimelineConfig::honest(event_config(0.0))
            .with_token_joins()
            .with_join_quantum(JOIN_QUANTUM),
    );
    let (late_iter, late_joins) = (
        mean_late_latency(&sparse_iter),
        mean_late_latency(&sparse_joins),
    );
    let wait_reduction = late_iter / late_joins.max(1e-12);
    println!(
        "  token joins vs iteration joins: goodput {join_speedup:.3}x (overload), \
         late-arrival latency {late_joins:.3} vs {late_iter:.3} s = {wait_reduction:.3}x cut (sparse)"
    );
    assert!(
        join_speedup >= JOIN_GOODPUT_TARGET,
        "token joins must beat iteration joins on goodput ({:.1} vs {:.1} tok/s, {join_speedup:.3}x < {JOIN_GOODPUT_TARGET}x)",
        gj.stream_goodput,
        gi.stream_goodput
    );
    assert!(
        wait_reduction >= JOIN_WAIT_TARGET,
        "token joins must cut the late arrivals' mean join latency ({late_joins:.3} vs {late_iter:.3} s, {wait_reduction:.3}x < {JOIN_WAIT_TARGET}x)"
    );
    for (i, (a, b)) in sparse_iter
        .served
        .iter()
        .zip(&sparse_joins.served)
        .enumerate()
    {
        assert_eq!(
            a.outcome.answer, b.outcome.answer,
            "sparse request {i}: answers are schedule-invariant"
        );
    }
    let (_, joins_join_wait) = honesty_profile(&joins_w0);
    assert!(
        joins_join_wait > 0.0,
        "token joins must book join_wait seconds (in-flight members waiting at chunk boundaries)"
    );

    // Gate (c): retroactive contention is real — the honest window-0
    // run stretches in-flight segments and no longer coincides with the
    // infinite-window lockstep run.
    assert!(
        iter_w0.timeline.stretch_secs > 0.0,
        "honest w=0 must retroactively stretch overlapped launches"
    );
    let gap_frac = (gi.stream_goodput - iter_winf.stream_summary().stream_goodput).abs()
        / iter_winf.stream_summary().stream_goodput.max(1e-12);
    assert!(
        gap_frac > 0.0,
        "honest pricing must keep w=0 distinct from the infinite window"
    );

    // Answers are schedule-invariant across every policy.
    for other in [&anchored, &iter_w0, &joins_w0, &iter_winf] {
        for (e, o) in event_w0.served.iter().zip(&other.served) {
            assert_eq!(
                e.outcome.answer, o.outcome.answer,
                "answers are schedule-invariant"
            );
        }
    }

    println!("\n== pr10: scheduler wall-clock (token-join replay) ==");
    let mut criterion = Criterion::default().sample_size(15);
    let wall = criterion.bench_stats("timeline_joins_replay", |b| {
        b.iter(|| {
            run_timeline(
                &arrivals,
                TimelineConfig::honest(event_config(0.0))
                    .with_token_joins()
                    .with_join_quantum(JOIN_QUANTUM),
            )
        })
    });

    let json = format!(
        "{{\n  \"bench\": \"pr10_timeline\",\n  \"workload\": {{\n    \"requests\": {requests},\n    \"n_beams\": {N_BEAMS},\n    \"max_batch\": {MAX_BATCH},\n    \"arrival_interval_s\": {ARRIVAL_INTERVAL_S},\n    \"sparse_requests\": {sparse_requests},\n    \"sparse_interval_s\": {SPARSE_INTERVAL_S},\n    \"join_quantum_tokens\": {JOIN_QUANTUM},\n    \"mix\": \"amc2023+aime2024 stragglers\",\n    \"search\": \"beam\"\n  }},\n  \"policies\": {{\n{event_json},\n{anchored_json},\n{iter_json},\n{joins_json},\n{winf_json},\n{sparse_iter_json},\n{sparse_joins_json}\n  }},\n  \"token_join_goodput_speedup_vs_iteration_joins\": {join_speedup:.3},\n  \"join_wait_reduction_x\": {wait_reduction:.3},\n  \"retroactive_stretch_secs\": {stretch:.3},\n  \"w0_vs_winf_goodput_gap_frac\": {gap_frac:.4},\n  \"anchor_bitwise_identical_to_event\": {anchor:.1},\n{wall}\n}}\n",
        requests = arrivals.len(),
        sparse_requests = sparse.len(),
        event_json = policy_json("event_w0", &event_w0),
        anchored_json = policy_json("timeline_anchored", &anchored),
        iter_json = policy_json("timeline_iter_w0", &iter_w0),
        joins_json = policy_json("timeline_joins_w0", &joins_w0),
        winf_json = policy_json("timeline_iter_winf", &iter_winf),
        sparse_iter_json = policy_json("sparse_iter_w0", &sparse_iter),
        sparse_joins_json = policy_json("sparse_joins_w0", &sparse_joins),
        stretch = iter_w0.timeline.stretch_secs,
        anchor = if anchor_ok { 1.0 } else { 0.0 },
        wall = wall_json(&wall),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    std::fs::write(out_path, &json).expect("write BENCH_PR10.json");
    println!("\nwrote {out_path}");
}
