//! PR-2 benchmark: continuous batching across requests, with a
//! machine-readable `BENCH_PR2.json` report.
//!
//! An overload arrival stream (offered load well above single-request
//! capacity) is replayed through three request-level scheduling
//! policies over the same server:
//!
//! 1. **FIFO batch-1** — the paper's interactive baseline
//!    (`BatchConfig::fifo`, bit-identical to `ServerSim`).
//! 2. **Gang batching** — admit up to 4 while idle, then drain.
//! 3. **Continuous batching** — up to 4 requests joined and retired
//!    mid-flight against the shared KV pool.
//!
//! The report records stream goodput (accepted tokens per second of
//! makespan), latency and queue-delay distributions, preemption
//! counts, and — via the extended criterion shim — the wall-clock
//! distribution (mean/min/variance/p50/p99) of the continuous
//! scheduler itself. The run asserts the PR's acceptance criterion:
//! under overload, continuous batching beats FIFO batch-1 on goodput.
//!
//! Run with `cargo bench --bench pr2_batching` (release profile).

use criterion::{Criterion, SampleStats};
use ftts_core::{BatchConfig, BatchRun, BatchedServerSim, TtsServer};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::StreamSummary;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

const REQUESTS: usize = 8;
const N_BEAMS: usize = 16;
const ARRIVAL_INTERVAL_S: f64 = 1.0;

fn server() -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = 17;
    s
}

fn arrivals() -> Vec<RequestArrival> {
    let problems = Dataset::Amc2023.problems(REQUESTS, 29);
    ArrivalPattern::Uniform {
        interval: ARRIVAL_INTERVAL_S,
    }
    .schedule(&problems, 0)
}

fn run_policy(config: BatchConfig, arrivals: &[RequestArrival]) -> BatchRun {
    BatchedServerSim::new(server(), N_BEAMS, SearchKind::BeamSearch, config)
        .run(arrivals)
        .expect("policy run")
}

fn policy_json(label: &str, run: &BatchRun) -> String {
    let s: StreamSummary = run.stream_summary();
    format!(
        r#"    "{label}": {{
      "stream_goodput_tok_per_s": {goodput:.2},
      "makespan_s": {makespan:.3},
      "total_accepted_tokens": {tokens},
      "latency_mean_s": {lat_mean:.3},
      "latency_p50_s": {lat_p50:.3},
      "latency_p95_s": {lat_p95:.3},
      "queue_delay_mean_s": {qd_mean:.3},
      "preemptions": {preemptions},
      "rounds": {rounds},
      "peak_reserved_bytes": {peak},
      "pool_bytes": {pool}
    }}"#,
        goodput = s.stream_goodput,
        makespan = s.makespan,
        tokens = s.total_accepted_tokens,
        lat_mean = s.latency.mean,
        lat_p50 = s.latency.p50,
        lat_p95 = s.latency.p95,
        qd_mean = s.queue_delay.mean,
        preemptions = run.preemptions,
        rounds = run.rounds,
        peak = run.peak_reserved_bytes,
        pool = run.pool_bytes,
    )
}

fn wall_json(stats: &SampleStats) -> String {
    format!(
        r#"  "continuous_wall_clock": {{
    "samples": {n},
    "mean_s": {mean:.6},
    "min_s": {min:.6},
    "variance_s2": {var:.9},
    "p50_s": {p50:.6},
    "p99_s": {p99:.6}
  }}"#,
        n = stats.n,
        mean = stats.mean_seconds,
        min = stats.min_seconds,
        var = stats.variance_seconds2,
        p50 = stats.p50_seconds,
        p99 = stats.p99_seconds,
    )
}

fn main() {
    let arrivals = arrivals();
    let fifo = run_policy(BatchConfig::fifo(), &arrivals);
    let gang = run_policy(BatchConfig::gang(4), &arrivals);
    let cont = run_policy(BatchConfig::continuous(4), &arrivals);

    let (f, g, c) = (
        fifo.stream_summary(),
        gang.stream_summary(),
        cont.stream_summary(),
    );
    println!("== pr2: request-level batching under overload ==");
    println!(
        "{REQUESTS} requests, n={N_BEAMS} beam search, one arrival per {ARRIVAL_INTERVAL_S:.1} s"
    );
    for (label, s) in [
        ("fifo batch-1", &f),
        ("gang batch-4", &g),
        ("continuous-4", &c),
    ] {
        println!(
            "  {label:<14} goodput {goodput:>8.1} tok/s | makespan {makespan:>7.1} s | mean latency {lat:>7.1} s | mean queue {qd:>6.1} s",
            goodput = s.stream_goodput,
            makespan = s.makespan,
            lat = s.latency.mean,
            qd = s.queue_delay.mean,
        );
    }
    let speedup = c.stream_goodput / f.stream_goodput.max(1e-12);
    println!("  continuous vs fifo goodput: {speedup:.2}x");
    assert!(
        c.stream_goodput > f.stream_goodput,
        "acceptance criterion: continuous batching must beat FIFO under overload \
         ({} vs {} tok/s)",
        c.stream_goodput,
        f.stream_goodput
    );

    // Outcome equivalence across policies: scheduling moves clocks only.
    for (a, b) in fifo.served.iter().zip(&cont.served) {
        assert_eq!(
            a.outcome.answer, b.outcome.answer,
            "answers are schedule-invariant"
        );
    }

    // Wall-clock distribution of the continuous scheduler itself, via
    // the extended criterion shim (variance + p50/p99).
    println!("\n== pr2: scheduler wall-clock (simulator hot path) ==");
    let mut criterion = Criterion::default().sample_size(15);
    let wall = criterion.bench_stats("continuous_batch4_replay", |b| {
        b.iter(|| run_policy(BatchConfig::continuous(4), &arrivals))
    });

    let json = format!(
        "{{\n  \"bench\": \"pr2_continuous_batching\",\n  \"workload\": {{\n    \"requests\": {REQUESTS},\n    \"n_beams\": {N_BEAMS},\n    \"arrival_interval_s\": {ARRIVAL_INTERVAL_S},\n    \"search\": \"beam\"\n  }},\n  \"policies\": {{\n{fifo_json},\n{gang_json},\n{cont_json}\n  }},\n  \"continuous_goodput_speedup_vs_fifo\": {speedup:.2},\n{wall}\n}}\n",
        fifo_json = policy_json("fifo_batch1", &fifo),
        gang_json = policy_json("gang_batch4", &gang),
        cont_json = policy_json("continuous_batch4", &cont),
        wall = wall_json(&wall),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR2.json");
    std::fs::write(out_path, &json).expect("write BENCH_PR2.json");
    println!("\nwrote {out_path}");
}
