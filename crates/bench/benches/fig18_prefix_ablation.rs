//! Figure 18 — (left) KV-cache footprint growth by scheduling policy;
//! (right) goodput gains of P and M+P under varying KV-memory budgets.

use ftts_bench::{problems_for, run_set, server_with};
use ftts_core::{AblationFlags, PrefixAwareOrder, WorstCaseOrder};
use ftts_engine::{ModelPairing, OrderItem, OrderPolicy, RandomOrder};
use ftts_hw::{GpuDevice, GIB};
use ftts_kv::{KvCache, KvCacheConfig};
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

/// Replay a final-iteration frontier trace (1.5B+1.5B shape: 128 parents
/// × 4 children on deep shared paths) through a cache, admitting beams in
/// policy order, and record the KV footprint growth.
fn kv_growth(policy: &mut dyn OrderPolicy) -> Vec<(usize, f64)> {
    // Capacity large enough to hold the whole trace: the measurement is
    // footprint *growth* per admitted beam, not eviction behaviour.
    let mut kv = KvCache::new(KvCacheConfig {
        block_size: 16,
        capacity_bytes: 16 * GIB,
        bytes_per_token: ModelPairing::pair_1_5b_1_5b().gen_spec.kv_bytes_per_token(),
        prefix_sharing: true,
    });
    let root = kv.root(140).expect("root");
    kv.pin(root).expect("pin root");
    let mut items = Vec::new();
    let mut parents = Vec::new();
    for _ in 0..128 {
        let p = kv.fork(root).expect("fork");
        kv.pin(p).expect("pin");
        kv.extend(p, 1200).expect("extend");
        parents.push(p);
    }
    let mut rank = 0u32;
    for j in 0..4 {
        for &p in &parents {
            let c = kv.fork(p).expect("fork child");
            items.push(OrderItem {
                index: items.len(),
                kv: c,
                parent_kv: Some(p),
                born_rank: rank,
            });
            rank += 1;
            let _ = j;
        }
    }
    // Unpin the construction pins, then start the admission from a cold
    // GPU cache: the footprint then grows exactly with what each policy
    // order *needs*, which is the quantity Fig. 18 plots.
    for &p in &parents {
        kv.unpin(p);
    }
    kv.unpin(root);
    kv.swap_out_unpinned();
    let order = policy.order(&items, &kv);
    let mut series = Vec::new();
    for (i, &idx) in order.iter().enumerate() {
        let leaf = items[idx].kv;
        if kv.pin(leaf).is_ok() {
            let _ = kv.extend(leaf, 64);
        }
        if (i + 1) % 64 == 0 {
            series.push((i + 1, kv.gpu_bytes_used() as f64 / GIB as f64));
        }
    }
    series
}

fn main() {
    // Left: KV growth by scheduling order.
    let mut t = Table::new(vec![
        "beams admitted",
        "prefix-aware (GB)",
        "random (GB)",
        "worst (GB)",
    ]);
    let aware = kv_growth(&mut PrefixAwareOrder::new());
    let random = kv_growth(&mut RandomOrder::new(5));
    let worst = kv_growth(&mut WorstCaseOrder::new());
    for i in 0..aware.len() {
        t.row(vec![
            aware[i].0.to_string(),
            format!("{:.2}", aware[i].1),
            format!("{:.2}", random[i].1),
            format!("{:.2}", worst[i].1),
        ]);
    }
    t.print("Fig. 18 (left) — KV footprint growth by scheduling order (final-iteration trace)");
    println!("paper: prefix-aware scheduling grows the cache much more slowly, so a fixed");
    println!("       budget fits substantially larger batches");

    // Right: P and M+P gains vs available KV memory. Memory fractions
    // chosen so the post-weights KV budget lands at ~1.5 / 2 / 14 GB.
    let budgets = [(0.32f64, "1.5"), (0.345, "2"), (0.81, "14")];
    let mut t = Table::new(vec!["KV budget (GB)", "P gain (%)", "M+P gain (%)"]);
    for (frac, label) in budgets {
        let pairing = ModelPairing::pair_1_5b_1_5b();
        let n = 128;
        let problems = problems_for(Dataset::Aime2024, n, 91);
        let base = server_with(
            GpuDevice::rtx4090(),
            pairing.clone(),
            AblationFlags::baseline(),
            frac,
        );
        let p_only = server_with(
            GpuDevice::rtx4090(),
            pairing.clone(),
            AblationFlags {
                prefix_aware: true,
                ..AblationFlags::baseline()
            },
            frac,
        );
        let mp = server_with(
            GpuDevice::rtx4090(),
            pairing.clone(),
            AblationFlags {
                prefix_aware: true,
                asym_memory: true,
                ..AblationFlags::baseline()
            },
            frac,
        );
        let (bg, _, _) = run_set(&base, &problems, n, SearchKind::BeamSearch).expect("baseline");
        let (pg, _, _) = run_set(&p_only, &problems, n, SearchKind::BeamSearch).expect("P");
        let (mg, _, _) = run_set(&mp, &problems, n, SearchKind::BeamSearch).expect("M+P");
        t.row(vec![
            label.to_string(),
            format!("{:+.0}", 100.0 * (pg / bg - 1.0)),
            format!("{:+.0}", 100.0 * (mg / bg - 1.0)),
        ]);
    }
    t.print(
        "Fig. 18 (right) — P and M+P goodput gains vs KV-memory budget (1.5B+1.5B, AIME, n=128)",
    );
    println!("paper: +58% (P) and +145% (M+P) at 1.5 GB, shrinking to ~+5% at 14 GB");
}
