//! Figure 14 — algorithm accuracy: (a) Top-1 via majority voting; (b)
//! Pass@N via verifier-score ranking. FastTTS is algorithmically
//! equivalent to the baseline, so accuracies must match.

use ftts_bench::server_pair;
use ftts_hw::GpuDevice;
use ftts_metrics::{pass_at_n, Table};
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn main() {
    // (a) Top-1 accuracy (majority voting), baseline vs FastTTS.
    let mut t = Table::new(vec!["config", "dataset", "baseline top-1", "FastTTS top-1"]);
    let n = 64; // the paper uses n=512; scaled down for bench wall-time
    for pairing in ftts_bench::pairings() {
        for dataset in [Dataset::Aime2024, Dataset::Amc2023] {
            let (base, fast) = server_pair(GpuDevice::rtx4090(), pairing.clone());
            let problems = dataset.problems(12, 44);
            let mut bacc = 0;
            let mut facc = 0;
            for p in &problems {
                let b = base.serve(p, n, SearchKind::BeamSearch).expect("baseline");
                let f = fast.serve(p, n, SearchKind::BeamSearch).expect("fasttts");
                assert_eq!(b.answer, f.answer, "algorithmic equivalence violated");
                bacc += usize::from(b.top1_correct());
                facc += usize::from(f.top1_correct());
            }
            let k = problems.len() as f64;
            t.row(vec![
                pairing.label(),
                dataset.label().to_string(),
                format!("{:.1}%", 100.0 * bacc as f64 / k),
                format!("{:.1}%", 100.0 * facc as f64 / k),
            ]);
        }
    }
    t.print("Fig. 14a — Top-1 accuracy (majority voting), n=64");
    println!("paper (n=512): AIME ~10-25%, AMC ~40-80%; FastTTS matches the baseline");

    // (b) Pass@N: success if any of the top-N verifier-ranked candidates
    // is correct, for growing attempt counts.
    let mut t = Table::new(vec!["dataset", "pass@1", "pass@4", "pass@16", "pass@64"]);
    for dataset in [Dataset::Aime2024, Dataset::Amc2023] {
        let (_, fast) = server_pair(
            GpuDevice::rtx4090(),
            ftts_engine::ModelPairing::pair_1_5b_7b(),
        );
        let problems = dataset.problems(12, 45);
        let mut hits = [0usize; 4];
        for p in &problems {
            let out = fast.serve(p, 64, SearchKind::BeamSearch).expect("serve");
            let candidates = out.stats.candidates();
            for (slot, k) in [1usize, 4, 16, 64].iter().enumerate() {
                hits[slot] += usize::from(pass_at_n(&candidates, *k));
            }
        }
        let k = problems.len() as f64;
        t.row(vec![
            dataset.label().to_string(),
            format!("{:.0}%", 100.0 * hits[0] as f64 / k),
            format!("{:.0}%", 100.0 * hits[1] as f64 / k),
            format!("{:.0}%", 100.0 * hits[2] as f64 / k),
            format!("{:.0}%", 100.0 * hits[3] as f64 / k),
        ]);
    }
    t.print("Fig. 14b — Pass@N accuracy (1.5B+7B)");
    println!("paper: AIME rises ~20%->50%, AMC ~60%->95% as N grows 8->512");
}
