//! PR-9 benchmark: multi-tenant serving with weighted fair share and
//! the `ftts-serve` protocol front door — `BENCH_PR9.json` report.
//!
//! **Fixture: a noisy neighbour against an interactive victim.** The
//! noisy tenant dumps four deep AIME-2024 searches at t = 0 (batch SLO,
//! generous deadlines); the victim tenant trickles five shallow
//! AMC-2023 requests at a three-second cadence, each with a 50-second
//! interactive deadline. One simulated RTX 4090, n = 12 beam search,
//! fused verify, event scheduling. Replayed twice:
//!
//! * `uncapped` — no tenant policy: the burst holds most of the KV pool
//!   and the admission queue, and every victim deadline blows;
//! * `fair_share` — the PR's tenant layer: the noisy tenant is confined
//!   to a quarter of the pool and two requests in flight, with shares
//!   rebalanced by weight at every boundary.
//!
//! A second fixture drives the same scenario through the
//! [`ftts_serve::ServeRuntime`] wire protocol (submit frames, a stats
//! frame) to time the protocol layer itself and pin its per-tenant
//! rollups to the in-simulator truth.
//!
//! Asserted gates (the PR's acceptance criteria):
//!
//! * fair share on → the victim's deadline-hit rate **strictly** beats
//!   the uncapped baseline;
//! * the noisy tenant's peak KV grant stays within its hard cap;
//! * nobody is shed: caps squeeze the noisy tenant, never starve it;
//! * the protocol front door reports the same per-tenant hit rates the
//!   simulator measured.
//!
//! Run with `cargo bench --bench pr9_serve` (release profile).

use criterion::{Criterion, SampleStats};
use ftts_core::{
    BatchConfig, BatchRun, EventConfig, EventServerSim, TenantPolicy, TenantSpec, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::{SloClass, StreamRecord, TenantRollup};
use ftts_search::SearchKind;
use ftts_serve::{Json, ServeConfig, ServeRuntime};
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

const N_BEAMS: usize = 12;
const MAX_BATCH: usize = 4;
const VICTIM_REQUESTS: usize = 5;
const NOISY_REQUESTS: usize = 4;
const VICTIM_INTERVAL_S: f64 = 3.0;
const VICTIM_DEADLINE_S: f64 = 50.0;
const NOISY_DEADLINE_S: f64 = 1200.0;
const NOISY_CAP_DIV: u64 = 4;
const NOISY_MAX_IN_FLIGHT: u32 = 2;
const MEMORY_FRACTION: f64 = 0.45;
const SEED: u64 = 7;

const VICTIM: u32 = 0;
const NOISY: u32 = 1;

/// Per-request generator seeds: each problem is drawn with its own
/// seed (`problems(1, seed)`), exactly how the serve wire protocol
/// materializes a `problem_seed` field — so the front-door fixture can
/// replay the identical problems over JSON frames.
const VICTIM_SEED_BASE: u64 = 100;
const NOISY_SEED_BASE: u64 = 200;

fn server() -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = SEED;
    s.config_mut().memory_fraction = MEMORY_FRACTION;
    s
}

/// The noisy-neighbour trace: a deep burst at t = 0 against a shallow
/// interactive trickle, every request tagged with its tenant and SLO.
fn arrivals() -> Vec<RequestArrival> {
    let victim: Vec<_> = (0..VICTIM_REQUESTS as u64)
        .map(|i| Dataset::Amc2023.problems(1, VICTIM_SEED_BASE + i)[0])
        .collect();
    let noisy: Vec<_> = (0..NOISY_REQUESTS as u64)
        .map(|j| Dataset::Aime2024.problems(1, NOISY_SEED_BASE + j)[0])
        .collect();
    let mut arrivals: Vec<RequestArrival> = ArrivalPattern::Burst { at: 0.0 }
        .schedule(&noisy, 0)
        .into_iter()
        .map(|a| {
            a.with_tenant(NOISY)
                .with_slo(SloClass::Batch, NOISY_DEADLINE_S)
        })
        .collect();
    arrivals.extend(
        ArrivalPattern::Uniform {
            interval: VICTIM_INTERVAL_S,
        }
        .schedule(&victim, 0)
        .iter()
        .cloned()
        .map(|a| {
            a.with_tenant(VICTIM)
                .with_slo(SloClass::Interactive, VICTIM_DEADLINE_S)
        }),
    );
    arrivals.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite arrival times"));
    arrivals
}

fn fair_share_policy(pool: u64) -> TenantPolicy {
    TenantPolicy::new(&[
        TenantSpec {
            id: VICTIM,
            weight: 3,
            kv_cap_bytes: u64::MAX,
            max_in_flight: 0,
        },
        TenantSpec {
            id: NOISY,
            weight: 1,
            kv_cap_bytes: pool / NOISY_CAP_DIV,
            max_in_flight: NOISY_MAX_IN_FLIGHT,
        },
    ])
}

fn run(config: BatchConfig, trace: &[RequestArrival]) -> BatchRun {
    EventServerSim::new(
        server(),
        N_BEAMS,
        SearchKind::BeamSearch,
        EventConfig::new(config, 0.2),
    )
    .run(trace)
    .expect("feasible fixture")
}

/// Per-tenant rollups for a run, through the same
/// [`TenantRollup`] path the serve front door reports over the wire.
fn rollups(run: &BatchRun, trace: &[RequestArrival]) -> Vec<TenantRollup> {
    let tagged: Vec<(u32, StreamRecord)> = run
        .served
        .iter()
        .zip(trace)
        .map(|(r, a)| {
            (
                a.tenant,
                StreamRecord {
                    arrived_at: r.arrived_at,
                    finished_at: r.finished_at,
                    queue_delay: r.queue_delay(),
                    accepted_tokens: r.accepted_tokens(),
                    generator_secs: r.outcome.stats.breakdown().generator_side(),
                    verifier_secs: r.outcome.stats.breakdown().verifier,
                    slo: r.slo,
                    deadline: r.deadline,
                    completed: !r.shed,
                },
            )
        })
        .collect();
    TenantRollup::of(&tagged)
}

fn rollup(rollups: &[TenantRollup], tenant: u32) -> &TenantRollup {
    rollups
        .iter()
        .find(|r| r.tenant == tenant)
        .expect("tenant present in run")
}

fn tenant_peak(run: &BatchRun, tenant: u32) -> u64 {
    run.tenant_peak_bytes
        .iter()
        .find(|&&(id, _)| id == tenant)
        .map_or(0, |&(_, b)| b)
}

fn tenant_json(label: &str, roll: &TenantRollup, kv_peak: u64) -> String {
    let s = &roll.summary;
    format!(
        r#"    "{label}": {{
      "requests": {req},
      "deadline_hit_rate": {hit:.4},
      "mean_latency_s": {mean:.3},
      "p99_latency_s": {p99:.3},
      "stream_goodput_tok_per_s": {gp:.2},
      "accepted_tokens": {tok},
      "kv_peak_bytes": {peak}
    }}"#,
        req = roll.requests,
        hit = s.deadline_hit_rate,
        mean = s.latency.mean,
        p99 = s.latency.p99,
        gp = s.stream_goodput,
        tok = s.total_accepted_tokens,
        peak = kv_peak,
    )
}

fn wall_json(label: &str, stats: &SampleStats) -> String {
    format!(
        r#"  "{label}": {{
    "samples": {n},
    "outliers_rejected": {outliers},
    "mean_s": {mean:.6},
    "min_s": {min:.6},
    "variance_s2": {var:.9},
    "p50_s": {p50:.6},
    "p99_s": {p99:.6}
  }}"#,
        n = stats.n,
        outliers = stats.outliers_rejected,
        mean = stats.mean_seconds,
        min = stats.min_seconds,
        var = stats.variance_seconds2,
        p50 = stats.p50_seconds,
        p99 = stats.p99_seconds,
    )
}

/// The serve front door over the identical scenario: submit frames for
/// every arrival, then one stats frame. Returns the per-tenant
/// deadline-hit rates the protocol reported.
fn front_door_hit_rates(trace: &[RequestArrival]) -> (f64, f64) {
    let config = format!(
        "[server]\nseed = {SEED}\nn_beams = {N_BEAMS}\nmax_batch = {MAX_BATCH}\n\
         window_secs = 0.2\nmemory_fraction = {MEMORY_FRACTION}\nmax_prompt_tokens = 4096\n\n\
         [[tenants]]\nid = {VICTIM}\nweight = 3\nkv_cap_frac = 0.0\nmax_open = 0\n\n\
         [[tenants]]\nid = {NOISY}\nweight = 1\nkv_cap_frac = {frac}\nmax_open = 0\n\
         max_in_flight = {NOISY_MAX_IN_FLIGHT}\n",
        frac = 1.0 / NOISY_CAP_DIV as f64
    );
    let mut runtime = ServeRuntime::new(ServeConfig::parse(&config).expect("bench config"));
    // Within a tenant, the sorted trace preserves schedule order, so a
    // per-tenant counter recovers each arrival's generator seed.
    let mut drawn = [0u64; 2];
    for (i, a) in trace.iter().enumerate() {
        let (dataset, base) = if a.tenant == NOISY {
            ("aime2024", NOISY_SEED_BASE)
        } else {
            ("amc2023", VICTIM_SEED_BASE)
        };
        let seed = base + drawn[a.tenant as usize];
        drawn[a.tenant as usize] += 1;
        let slo = a.slo.name();
        let slack = a.deadline - a.at;
        let frame = format!(
            "{{\"op\":\"submit\",\"id\":\"r{i}\",\"tenant\":{tenant},\"slo\":\"{slo}\",\
             \"dataset\":\"{dataset}\",\"problem_seed\":{seed},\"deadline_secs\":{slack:.1},\
             \"arrive_at\":{at:.3}}}",
            tenant = a.tenant,
            at = a.at,
        );
        assert!(
            runtime.handle_line(&frame).reply.contains("\"ok\":true"),
            "bench submits must admit"
        );
    }
    let stats = runtime.handle_line("{\"op\":\"stats\"}").reply;
    let json = Json::parse(&stats).expect("stats reply parses");
    let tenants = match json.at("tenants") {
        Some(Json::Array(items)) => items.clone(),
        _ => panic!("stats reply carries tenants: {stats}"),
    };
    let hit = |tenant: u32| {
        tenants
            .iter()
            .find(|t| t.number_at("tenant") == Some(f64::from(tenant)))
            .and_then(|t| t.number_at("deadline_hit_rate"))
            .expect("per-tenant hit rate")
    };
    (hit(VICTIM), hit(NOISY))
}

#[allow(clippy::too_many_lines)]
fn main() {
    let trace = arrivals();
    let pool = server().config().kv_budget_bytes();
    let cap = pool / NOISY_CAP_DIV;
    let policy = fair_share_policy(pool);

    let uncapped = run(BatchConfig::fused(MAX_BATCH), &trace);
    let fair = run(BatchConfig::fused(MAX_BATCH).with_tenants(policy), &trace);
    let (u_rolls, f_rolls) = (rollups(&uncapped, &trace), rollups(&fair, &trace));
    let (u_victim, u_noisy) = (rollup(&u_rolls, VICTIM), rollup(&u_rolls, NOISY));
    let (f_victim, f_noisy) = (rollup(&f_rolls, VICTIM), rollup(&f_rolls, NOISY));

    println!("== pr9: noisy neighbour vs weighted fair share ==");
    println!(
        "{NOISY_REQUESTS} deep AIME bursts vs {VICTIM_REQUESTS} interactive AMC requests, \
         n={N_BEAMS} beams, fused({MAX_BATCH}), noisy cap pool/{NOISY_CAP_DIV}, \
         quota {NOISY_MAX_IN_FLIGHT} in flight"
    );
    for (label, victim, noisy, run) in [
        ("uncapped", u_victim, u_noisy, &uncapped),
        ("fair_share", f_victim, f_noisy, &fair),
    ] {
        println!(
            "  {label:<11} victim hit {vh:>4.2} mean {vm:>5.1} s | noisy hit {nh:>4.2} \
             mean {nm:>5.1} s | noisy kv peak {peak:>5.0} MiB",
            vh = victim.summary.deadline_hit_rate,
            vm = victim.summary.latency.mean,
            nh = noisy.summary.deadline_hit_rate,
            nm = noisy.summary.latency.mean,
            peak = tenant_peak(run, NOISY) as f64 / (1024.0 * 1024.0),
        );
    }

    // Gate (a): fair share strictly improves the victim's deadline-hit
    // rate against the identical burst.
    assert!(
        f_victim.summary.deadline_hit_rate > u_victim.summary.deadline_hit_rate,
        "fair share must strictly beat uncapped on victim hit rate ({:.3} vs {:.3})",
        f_victim.summary.deadline_hit_rate,
        u_victim.summary.deadline_hit_rate
    );

    // Gate (b): the hard cap held — the noisy tenant's peak grant never
    // exceeded its share.
    let noisy_peak = tenant_peak(&fair, NOISY);
    assert!(
        noisy_peak <= cap,
        "noisy tenant peak {noisy_peak} must stay within its cap {cap}"
    );
    assert!(noisy_peak > 0, "the noisy tenant did run under the policy");

    // Gate (c): caps squeeze, never starve — everyone completes.
    assert_eq!(fair.served.len(), trace.len());
    assert!(
        fair.served.iter().all(|r| !r.shed),
        "fair share must not shed anyone"
    );

    // Gate (d): the protocol front door reports the same per-tenant hit
    // rates the simulator measured. The door's own backlog quota is left
    // unlimited so every frame admits; the in-sim policy below it
    // (caps, weights, max_in_flight) is identical to `fair_share_policy`.
    let (door_victim_hit, door_noisy_hit) = front_door_hit_rates(&trace);
    assert!(
        (door_victim_hit - f_victim.summary.deadline_hit_rate).abs() < 1e-9,
        "front door victim hit rate {door_victim_hit} must match the simulator {}",
        f_victim.summary.deadline_hit_rate
    );
    assert!(
        (door_noisy_hit - f_noisy.summary.deadline_hit_rate).abs() < 1e-9,
        "front door noisy hit rate {door_noisy_hit} must match the simulator {}",
        f_noisy.summary.deadline_hit_rate
    );

    println!("\n== pr9: wall clock ==");
    let mut criterion = Criterion::default().sample_size(15);
    let sim_wall = criterion.bench_stats("fair_share_replay", |b| {
        b.iter(|| run(BatchConfig::fused(MAX_BATCH).with_tenants(policy), &trace))
    });
    let door_wall = criterion.bench_stats("front_door_replay", |b| {
        b.iter(|| front_door_hit_rates(&trace))
    });

    let hit_gain = f_victim.summary.deadline_hit_rate
        / u_victim
            .summary
            .deadline_hit_rate
            .max(1.0 / trace.len() as f64);
    let cap_utilization = noisy_peak as f64 / cap as f64;
    let json = format!(
        "{{\n  \"bench\": \"pr9_serve\",\n  \"workload\": {{\n    \"victim_requests\": {VICTIM_REQUESTS},\n    \"noisy_requests\": {NOISY_REQUESTS},\n    \"victim_deadline_s\": {VICTIM_DEADLINE_S},\n    \"victim_interval_s\": {VICTIM_INTERVAL_S},\n    \"n_beams\": {N_BEAMS},\n    \"max_batch\": {MAX_BATCH},\n    \"noisy_cap_div\": {NOISY_CAP_DIV},\n    \"noisy_max_in_flight\": {NOISY_MAX_IN_FLIGHT},\n    \"memory_fraction\": {MEMORY_FRACTION},\n    \"search\": \"beam\"\n  }},\n  \"uncapped\": {{\n{uv},\n{un}\n  }},\n  \"fair_share\": {{\n{fv},\n{fn_}\n  }},\n  \"victim_deadline_hit_gain\": {hit_gain:.3},\n  \"noisy_cap_utilization\": {cap_utilization:.4},\n  \"front_door_victim_hit_rate\": {door_victim_hit:.4},\n{sim_wall_json},\n{door_wall_json}\n}}\n",
        uv = tenant_json("victim", u_victim, tenant_peak(&uncapped, VICTIM)),
        un = tenant_json("noisy", u_noisy, tenant_peak(&uncapped, NOISY)),
        fv = tenant_json("victim", f_victim, tenant_peak(&fair, VICTIM)),
        fn_ = tenant_json("noisy", f_noisy, tenant_peak(&fair, NOISY)),
        sim_wall_json = wall_json("fair_share_wall_clock", &sim_wall),
        door_wall_json = wall_json("front_door_wall_clock", &door_wall),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR9.json");
    std::fs::write(out_path, &json).expect("write BENCH_PR9.json");
    println!("\nwrote {out_path}");
}
