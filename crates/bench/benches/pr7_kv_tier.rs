//! PR-7 benchmark: the host-RAM KV tier under Zipf prompt popularity,
//! with a machine-readable `BENCH_PR7.json` report.
//!
//! **Fixture: a Zipf burst, then trailing repeats.** Four distinct
//! AIME problems Zipf-sampled (skew 1.2) into a sixteen-request stream:
//! an eight-request burst at t=0 (n = 24 beam search against 27% device
//! memory — enough oversubscription that equal shares shrink until
//! preemption fires), then eight more draws trickling in as the burst
//! drains. The scheduler preempts to admit, so burst arrivals admit
//! instantly and their completions clump at the drain — the trailing
//! draws are what re-request the popular head *after* its prefix has
//! been published. Replayed under three tier policies:
//!
//! * `no_tier` — the committed legacy behaviour: preemption swaps to an
//!   implicit unbounded host, completed requests' KV vanishes;
//! * `drop_tier` — a starved tier (one 4 KiB block of host RAM):
//!   preempted KV cannot park and is genuinely dropped, published
//!   prefixes never fit — every victim pays recompute on readmission;
//! * `swap_tier` — an ample tier (8 GiB): preempted KV parks and
//!   restores via costed PCIe swaps, completed prompts publish shared
//!   prefixes, and the Zipf head admits warm (prefill replaced by a
//!   swap-in).
//!
//! Asserted gates (the PR's acceptance criteria):
//!
//! * `swap_tier` beats `drop_tier` on stream goodput **and** on
//!   preemption recompute tokens (restore is cheaper than replay);
//! * the Zipf head actually hits the prefix store (`kv_tier_hits > 0`)
//!   and the starved tier actually drops (`kv_tier_dropped_bytes > 0`);
//! * a zero-capacity tier reproduces the tier-free run byte-for-byte
//!   under both schedulers, including a fault-storm replay — the PR's
//!   bit-equivalence anchor;
//! * answers are tier-invariant: placement moves time, never tokens.
//!
//! Run with `cargo bench --bench pr7_kv_tier` (release profile).

use criterion::{Criterion, SampleStats};
use ftts_core::{
    BatchConfig, BatchRun, BatchedServerSim, EventConfig, EventServerSim, FaultPlan, KvTierConfig,
    StormConfig, TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{zipf_problems, ArrivalPattern, Dataset, RequestArrival};

const N_BEAMS: usize = 24;
const MAX_BATCH: usize = 4;
const DISTINCT_PROBLEMS: usize = 4;
const BURST_REQUESTS: usize = 8;
const TRAIL_REQUESTS: usize = 8;
const REQUESTS: usize = BURST_REQUESTS + TRAIL_REQUESTS;
const ZIPF_SKEW: f64 = 1.2;
/// First trailing arrival: past the burst's first completions, so the
/// trail can observe published prefixes.
const TRAIL_START_S: f64 = 700.0;
const TRAIL_INTERVAL_S: f64 = 20.0;
const MEMORY_FRACTION: f64 = 0.27;
const AMPLE_CAPACITY: u64 = 1 << 33;
const STARVED_CAPACITY: u64 = 4096;

fn server(seed: u64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = MEMORY_FRACTION;
    s
}

/// Sixteen requests Zipf-drawn from four distinct AIME problems: an
/// eight-request burst at t=0 (the preemption pressure), then eight
/// trailing draws spaced through the drain (the prefix re-requests).
fn zipf_arrivals() -> Vec<RequestArrival> {
    let ranked = Dataset::Aime2024.problems(DISTINCT_PROBLEMS, 51);
    let drawn = zipf_problems(&ranked, REQUESTS, ZIPF_SKEW, 29);
    let mut arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&drawn[..BURST_REQUESTS], 0);
    let mut trail = ArrivalPattern::Uniform {
        interval: TRAIL_INTERVAL_S,
    }
    .schedule(&drawn[BURST_REQUESTS..], 0);
    for a in &mut trail {
        a.at += TRAIL_START_S;
    }
    arrivals.extend(trail);
    arrivals
}

fn run_tier(arrivals: &[RequestArrival], tier: KvTierConfig) -> BatchRun {
    let cfg = BatchConfig::continuous(MAX_BATCH).with_tier(tier);
    BatchedServerSim::new(server(13), N_BEAMS, SearchKind::BeamSearch, cfg)
        .run(arrivals)
        .expect("tiered run")
}

/// Tokens recomputed after eviction across every request (generator and
/// verifier caches): the replay work the tier exists to avoid.
fn recompute_tokens(run: &BatchRun) -> u64 {
    run.served
        .iter()
        .map(|r| {
            r.outcome.stats.gen_cache.recomputed_tokens
                + r.outcome.stats.ver_cache.recomputed_tokens
        })
        .sum()
}

fn policy_json(label: &str, run: &BatchRun) -> String {
    let s = run.stream_summary();
    format!(
        r#"    "{label}": {{
      "stream_goodput_tok_per_s": {gp:.2},
      "makespan_s": {makespan:.3},
      "latency_mean_s": {lat:.3},
      "preemptions": {preempt},
      "recompute_tokens": {recompute},
      "kv_tier_hits": {hits},
      "kv_tier_demotions": {demotions},
      "kv_tier_parked_bytes": {parked},
      "kv_tier_dropped_bytes": {dropped}
    }}"#,
        gp = s.stream_goodput,
        makespan = s.makespan,
        lat = s.latency.mean,
        preempt = run.preemptions,
        recompute = recompute_tokens(run),
        hits = run.kv_tier_hits,
        demotions = run.kv_tier_demotions,
        parked = run.kv_tier_parked_bytes,
        dropped = run.kv_tier_dropped_bytes,
    )
}

fn wall_json(stats: &SampleStats) -> String {
    format!(
        r#"  "swap_tier_wall_clock": {{
    "samples": {n},
    "outliers_rejected": {outliers},
    "mean_s": {mean:.6},
    "min_s": {min:.6},
    "variance_s2": {var:.9},
    "p50_s": {p50:.6},
    "p99_s": {p99:.6}
  }}"#,
        n = stats.n,
        outliers = stats.outliers_rejected,
        mean = stats.mean_seconds,
        min = stats.min_seconds,
        var = stats.variance_seconds2,
        p50 = stats.p50_seconds,
        p99 = stats.p99_seconds,
    )
}

/// The PR's bit-equivalence anchor: a zero-capacity tier must reproduce
/// the tier-free run byte-for-byte under both schedulers, fault-free
/// and under a storm.
fn assert_capacity_zero_bit_identity(arrivals: &[RequestArrival]) {
    let base = BatchConfig::continuous(MAX_BATCH);
    let zero = base.with_tier(KvTierConfig {
        host_capacity_bytes: 0,
        pin_hot_after: 7,
    });
    let storm = FaultPlan::storm(7, 60.0, &StormConfig::default());
    for plan in [FaultPlan::none(), storm] {
        let plain = BatchedServerSim::new(server(13), N_BEAMS, SearchKind::BeamSearch, base)
            .run_faulted(arrivals, &plan)
            .expect("plain run");
        let gated = BatchedServerSim::new(server(13), N_BEAMS, SearchKind::BeamSearch, zero)
            .run_faulted(arrivals, &plan)
            .expect("gated run");
        let plain_ev = EventServerSim::new(
            server(13),
            N_BEAMS,
            SearchKind::BeamSearch,
            EventConfig::new(base, 0.2),
        )
        .run_faulted(arrivals, &plan)
        .expect("plain event run");
        let gated_ev = EventServerSim::new(
            server(13),
            N_BEAMS,
            SearchKind::BeamSearch,
            EventConfig::new(zero, 0.2),
        )
        .run_faulted(arrivals, &plan)
        .expect("gated event run");
        for (a, b) in [(&plain, &gated), (&plain_ev, &gated_ev)] {
            assert_eq!(a.preemptions, b.preemptions, "capacity-0 preemptions");
            assert_eq!(b.kv_tier_hits, 0, "capacity-0 tier never hits");
            assert_eq!(b.kv_tier_parked_bytes, 0, "capacity-0 tier never parks");
            for (x, y) in a.served.iter().zip(&b.served) {
                assert_eq!(
                    x.finished_at, y.finished_at,
                    "capacity-0 completion instants"
                );
                assert_eq!(
                    x.outcome.stats.completion.breakdown, y.outcome.stats.completion.breakdown,
                    "capacity-0 latency breakdowns"
                );
                assert_eq!(x.outcome.answer, y.outcome.answer, "capacity-0 answers");
            }
        }
    }
}

fn main() {
    let arrivals = zipf_arrivals();
    let no_tier = run_tier(&arrivals, KvTierConfig::default());
    let drop_run = run_tier(&arrivals, KvTierConfig::with_capacity(STARVED_CAPACITY));
    let swap = run_tier(&arrivals, KvTierConfig::with_capacity(AMPLE_CAPACITY));

    println!("== pr7: host-RAM KV tier under the Zipf overload ==");
    println!(
        "{REQUESTS} requests over {DISTINCT_PROBLEMS} AIME problems (zipf skew {ZIPF_SKEW}): \
         {BURST_REQUESTS} burst at t=0 + {TRAIL_REQUESTS} trailing from t={TRAIL_START_S:.0} s, \
         n={N_BEAMS} beam search, {mem:.0}% device memory",
        mem = MEMORY_FRACTION * 100.0
    );
    for (label, run) in [
        ("no_tier", &no_tier),
        ("drop_tier", &drop_run),
        ("swap_tier", &swap),
    ] {
        let s = run.stream_summary();
        println!(
            "  {label:<10} goodput {gp:>7.1} tok/s | makespan {mk:>6.1} s | preemptions {p:>2} | recompute {rc:>8} tok | hits {h} | parked {parked} B | dropped {dropped} B",
            gp = s.stream_goodput,
            mk = s.makespan,
            p = run.preemptions,
            rc = recompute_tokens(run),
            h = run.kv_tier_hits,
            parked = run.kv_tier_parked_bytes,
            dropped = run.kv_tier_dropped_bytes,
        );
    }

    // The fixture must exercise the contested paths.
    assert!(
        drop_run.preemptions > 0,
        "the overload must trigger preemption"
    );
    assert!(
        drop_run.kv_tier_dropped_bytes > 0,
        "the starved tier must actually drop preempted KV"
    );
    assert!(
        swap.kv_tier_hits > 0,
        "the Zipf head must hit the ample tier's prefix store"
    );
    assert_eq!(
        swap.kv_tier_dropped_bytes, 0,
        "the ample tier never drops preempted KV"
    );

    // Acceptance criterion: swap-down-and-restore beats
    // drop-and-recompute on stream goodput AND recompute tokens.
    let (ds, ss) = (drop_run.stream_summary(), swap.stream_summary());
    assert!(
        ss.stream_goodput > ds.stream_goodput,
        "swap tier must beat drop tier on goodput ({:.1} vs {:.1} tok/s)",
        ss.stream_goodput,
        ds.stream_goodput
    );
    let (drop_rc, swap_rc) = (recompute_tokens(&drop_run), recompute_tokens(&swap));
    assert!(
        swap_rc < drop_rc,
        "swap tier must recompute fewer tokens ({swap_rc} vs {drop_rc})"
    );

    // Placement moves time, never tokens: answers are tier-invariant.
    for (a, b) in no_tier.served.iter().zip(&swap.served) {
        assert_eq!(a.outcome.answer, b.outcome.answer, "tier-invariant answers");
    }

    // The PR's bit-equivalence anchor, including a faulted replay.
    assert_capacity_zero_bit_identity(&arrivals);

    println!("\n== pr7: scheduler wall-clock (ample tier, Zipf replay) ==");
    let mut criterion = Criterion::default().sample_size(15);
    let wall = criterion.bench_stats("swap_tier_zipf_replay", |b| {
        b.iter(|| run_tier(&arrivals, KvTierConfig::with_capacity(AMPLE_CAPACITY)))
    });

    let goodput_gain = ss.stream_goodput / ds.stream_goodput.max(1e-12);
    let recompute_ratio = drop_rc as f64 / swap_rc.max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"pr7_kv_tier\",\n  \"workload\": {{\n    \"requests\": {REQUESTS},\n    \"distinct_problems\": {DISTINCT_PROBLEMS},\n    \"zipf_skew\": {ZIPF_SKEW},\n    \"n_beams\": {N_BEAMS},\n    \"burst_requests\": {BURST_REQUESTS},\n    \"trail_start_s\": {TRAIL_START_S},\n    \"trail_interval_s\": {TRAIL_INTERVAL_S},\n    \"memory_fraction\": {MEMORY_FRACTION},\n    \"ample_capacity_bytes\": {AMPLE_CAPACITY},\n    \"starved_capacity_bytes\": {STARVED_CAPACITY},\n    \"search\": \"beam\"\n  }},\n  \"policies\": {{\n{no_tier_json},\n{drop_json},\n{swap_json}\n  }},\n  \"swap_goodput_gain_vs_drop\": {gp_gain:.3},\n  \"drop_to_swap_recompute_ratio\": {rc_ratio:.3},\n  \"swap_tier_prefix_hits\": {hits},\n{wall}\n}}\n",
        no_tier_json = policy_json("no_tier", &no_tier),
        drop_json = policy_json("drop_tier", &drop_run),
        swap_json = policy_json("swap_tier", &swap),
        gp_gain = goodput_gain,
        rc_ratio = recompute_ratio,
        hits = swap.kv_tier_hits,
        wall = wall_json(&wall),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    std::fs::write(out_path, &json).expect("write BENCH_PR7.json");
    println!("\nwrote {out_path}");
}
