//! Figure 17 — in-depth study of Speculative Beam Extension: (left)
//! compute-utilization over one iteration, vLLM vs FastTTS; (right) the
//! effect of the truncation ratio R on goodput.

use ftts_bench::{problems_for, run_set, server_pair, speedup};
use ftts_core::TtsServer;
use ftts_engine::{ModelPairing, SpecConfig};
use ftts_hw::{GpuDevice, Phase};
use ftts_metrics::Table;
use ftts_search::SearchKind;
use ftts_workload::Dataset;

fn gen_util(server: &TtsServer, n: usize) -> f64 {
    let mut server = server.clone();
    server.config_mut().trace = true;
    let problem = Dataset::Aime2024.problems(1, 81)[0];
    let out = server
        .serve(&problem, n, SearchKind::BeamSearch)
        .expect("serve");
    out.stats
        .trace
        .expect("trace")
        .mean_util(Some(Phase::Generation))
        * 100.0
}

fn main() {
    // Left: generation-phase utilization, baseline vs FastTTS.
    let (base, fast) = server_pair(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let mut t = Table::new(vec!["system", "mean generation util (%)"]);
    t.row(vec!["vLLM".into(), format!("{:.1}", gen_util(&base, 64))]);
    t.row(vec![
        "FastTTS".into(),
        format!("{:.1}", gen_util(&fast, 64)),
    ]);
    t.print("Fig. 17 (left) — generation-phase compute utilization (n=64, AIME)");
    println!("paper: baseline utilization decays as beams finish; FastTTS keeps slots full");

    // Right: truncation ratio R.
    let mut t = Table::new(vec![
        "dataset",
        "n",
        "baseline",
        "FastTTS R=0.0",
        "FastTTS R=0.85",
        "best speedup",
    ]);
    for dataset in [Dataset::Aime2024, Dataset::Amc2023] {
        for n in [64usize, 128] {
            let problems = problems_for(dataset, n, 82);
            let (bg, _, _) =
                run_set(&base, &problems, n, SearchKind::BeamSearch).expect("baseline");
            let mut r_results = Vec::new();
            for r in [0.0f64, 0.85] {
                let mut server = fast.clone();
                server.config_mut().spec = SpecConfig {
                    truncation_ratio: r,
                    ..SpecConfig::fasttts_default()
                };
                let (g, _, _) =
                    run_set(&server, &problems, n, SearchKind::BeamSearch).expect("fast");
                r_results.push(g);
            }
            t.row(vec![
                dataset.label().to_string(),
                n.to_string(),
                format!("{bg:.1}"),
                format!("{:.1}", r_results[0]),
                format!("{:.1}", r_results[1]),
                speedup(r_results[1], bg),
            ]);
        }
    }
    t.print("Fig. 17 (right) — impact of the speculative truncation ratio R on goodput");
    println!("paper: R=0.85 (aggressively retaining speculative work) beats R=0.0");
}
