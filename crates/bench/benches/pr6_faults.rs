//! PR-6 benchmark: fault-injected serving under deadlines, with a
//! machine-readable `BENCH_PR6.json` report.
//!
//! **Fixture: seeded fault storm over an SLO-mixed overload.** Nine
//! AMC-2023 requests at a one-second cadence, n = 16 beam search,
//! round-robin SLO classes (Interactive 25 s / Standard 50 s /
//! Batch 90 s deadlines), and a deterministic fault storm — kernel
//! faults, a slowdown window, device KV loss — replayed identically
//! under three policies:
//!
//! * `no_handling` — blind re-execution: every kernel fault re-runs the
//!   whole launch a configured number of times, no backoff, no SLO
//!   enforcement;
//! * `naive_retry` — checkpointed retry with exponential backoff from
//!   the last committed iteration, but still no SLO enforcement;
//! * `degrade` — retry plus the full SLO stack: working-set-aware
//!   admission, EDF ordering, deadline cancellation, and graceful
//!   TTS-budget degradation (beam-width shrink before shedding).
//!
//! Asserted gates (the PR's acceptance criteria):
//!
//! * `degrade` strictly dominates *both* baselines on deadline-hit rate
//!   **and** SLO goodput (accepted tokens of deadline-hitting requests
//!   per second — work delivered late or never does not count);
//! * the storm actually fires identically under every policy (same
//!   kernel-fault count), so the comparison is apples-to-apples;
//! * answers that survive under `naive_retry` match the fault-free
//!   run's answers request-for-request (retries move time, not tokens).
//!
//! Run with `cargo bench --bench pr6_faults` (release profile).

use criterion::{Criterion, SampleStats};
use ftts_core::{
    BatchConfig, BatchRun, BatchedServerSim, FaultPlan, FaultPolicy, RobustConfig, StormConfig,
    TtsServer,
};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_metrics::SloClass;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset, RequestArrival};

const N_BEAMS: usize = 16;
const MAX_BATCH: usize = 4;
const ARRIVAL_INTERVAL_S: f64 = 1.0;
const STORM_SEED: u64 = 101;
const STORM_HORIZON_S: f64 = 60.0;

fn server(seed: u64) -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = seed;
    s.config_mut().memory_fraction = 0.9;
    s
}

/// Nine-request overload with round-robin SLO classes: the mix where
/// deadline-blind fault handling visibly starves interactive traffic.
fn slo_arrivals() -> Vec<RequestArrival> {
    let problems = Dataset::Amc2023.problems(9, 47);
    let slos = [
        (SloClass::Interactive, 25.0),
        (SloClass::Standard, 50.0),
        (SloClass::Batch, 90.0),
    ];
    ArrivalPattern::Uniform {
        interval: ARRIVAL_INTERVAL_S,
    }
    .schedule(&problems, 0)
    .into_iter()
    .enumerate()
    .map(|(i, a)| {
        let (class, slack) = slos[i % slos.len()];
        a.with_slo(class, slack)
    })
    .collect()
}

fn run_policy(arrivals: &[RequestArrival], plan: &FaultPlan, policy: FaultPolicy) -> BatchRun {
    let cfg = BatchConfig::continuous(MAX_BATCH).with_robust(RobustConfig::with_policy(policy));
    BatchedServerSim::new(server(17), N_BEAMS, SearchKind::BeamSearch, cfg)
        .run_faulted(arrivals, plan)
        .expect("faulted run")
}

fn policy_json(label: &str, run: &BatchRun) -> String {
    let s = run.stream_summary();
    let classes: Vec<String> = SloClass::ALL
        .iter()
        .map(|c| {
            let cs = &s.per_class[c.index()];
            format!(
                r#"        "{name}": {{ "requests": {req}, "completed": {done}, "deadline_misses": {miss}, "shed": {shed}, "latency_p50_s": {p50:.3}, "latency_p99_s": {p99:.3} }}"#,
                name = c.name(),
                req = cs.requests,
                done = cs.completed,
                miss = cs.deadline_misses,
                shed = cs.shed,
                p50 = cs.latency_p50,
                p99 = cs.latency_p99,
            )
        })
        .collect();
    format!(
        r#"    "{label}": {{
      "deadline_hit_rate": {hit:.4},
      "slo_goodput_tok_per_s": {slo_gp:.2},
      "stream_goodput_tok_per_s": {gp:.2},
      "makespan_s": {makespan:.3},
      "deadline_misses": {misses},
      "shed": {shed},
      "cancelled": {cancelled},
      "degradations": {degradations},
      "kernel_faults": {kf},
      "fault_retries": {retries},
      "kv_loss_events": {kv},
      "lost_blocks": {lost},
      "per_class": {{
{classes}
      }}
    }}"#,
        hit = s.deadline_hit_rate,
        slo_gp = s.slo_goodput,
        gp = s.stream_goodput,
        makespan = s.makespan,
        misses = s.deadline_misses,
        shed = run.shed,
        cancelled = run.cancelled,
        degradations = run.degradations,
        kf = run.kernel_faults,
        retries = run.fault_retries,
        kv = run.kv_loss_events,
        lost = run.lost_blocks,
        classes = classes.join(",\n"),
    )
}

fn wall_json(stats: &SampleStats) -> String {
    format!(
        r#"  "degrade_wall_clock": {{
    "samples": {n},
    "outliers_rejected": {outliers},
    "mean_s": {mean:.6},
    "min_s": {min:.6},
    "variance_s2": {var:.9},
    "p50_s": {p50:.6},
    "p99_s": {p99:.6}
  }}"#,
        n = stats.n,
        outliers = stats.outliers_rejected,
        mean = stats.mean_seconds,
        min = stats.min_seconds,
        var = stats.variance_seconds2,
        p50 = stats.p50_seconds,
        p99 = stats.p99_seconds,
    )
}

fn main() {
    let arrivals = slo_arrivals();
    let plan = FaultPlan::storm(STORM_SEED, STORM_HORIZON_S, &StormConfig::default());
    let blind = run_policy(&arrivals, &plan, FaultPolicy::NoHandling);
    let retry = run_policy(&arrivals, &plan, FaultPolicy::Retry);
    let degrade = run_policy(&arrivals, &plan, FaultPolicy::Degrade);

    println!("== pr6: fault storm over the SLO-mixed overload ==");
    println!(
        "{} requests (AMC-2023), n={N_BEAMS} beam search, one arrival per {ARRIVAL_INTERVAL_S:.1} s, \
         storm seed {STORM_SEED} over {STORM_HORIZON_S:.0} s",
        arrivals.len()
    );
    for (label, run) in [
        ("no_handling", &blind),
        ("naive_retry", &retry),
        ("degrade", &degrade),
    ] {
        let s = run.stream_summary();
        println!(
            "  {label:<12} hit-rate {hit:>5.1}% | slo-goodput {slo:>7.1} tok/s | goodput {gp:>7.1} tok/s | makespan {mk:>6.1} s | shed {shed} cancelled {cancelled} degradations {deg}",
            hit = s.deadline_hit_rate * 100.0,
            slo = s.slo_goodput,
            gp = s.stream_goodput,
            mk = s.makespan,
            shed = run.shed,
            cancelled = run.cancelled,
            deg = run.degradations,
        );
    }

    // The storm must replay identically under every policy.
    assert!(blind.kernel_faults > 0, "the storm must actually fire");
    assert_eq!(blind.kernel_faults, retry.kernel_faults);
    assert_eq!(retry.kernel_faults, degrade.kernel_faults);
    assert!(degrade.kv_loss_events > 0, "the storm must lose KV");

    // Acceptance criterion: graceful degradation strictly dominates
    // both baselines on deadline-hit rate AND SLO goodput.
    let (bs, rs, ds) = (
        blind.stream_summary(),
        retry.stream_summary(),
        degrade.stream_summary(),
    );
    assert!(
        ds.deadline_hit_rate > bs.deadline_hit_rate && ds.deadline_hit_rate > rs.deadline_hit_rate,
        "degrade must dominate on deadline-hit rate ({:.3} vs blind {:.3} / retry {:.3})",
        ds.deadline_hit_rate,
        bs.deadline_hit_rate,
        rs.deadline_hit_rate
    );
    assert!(
        ds.slo_goodput > bs.slo_goodput && ds.slo_goodput > rs.slo_goodput,
        "degrade must dominate on SLO goodput ({:.1} vs blind {:.1} / retry {:.1})",
        ds.slo_goodput,
        bs.slo_goodput,
        rs.slo_goodput
    );
    // Checkpointed retry must beat blind re-execution on makespan: the
    // same storm, strictly less wasted device time.
    assert!(
        retry.stream_summary().makespan < blind.stream_summary().makespan,
        "backoff retry must finish before blind re-execution"
    );
    // Retries move time, never tokens: the retry run's answers match
    // the fault-free run request-for-request.
    let clean = run_policy(&arrivals, &FaultPlan::none(), FaultPolicy::Retry);
    for (c, f) in clean.served.iter().zip(&retry.served) {
        assert_eq!(
            c.outcome.answer, f.outcome.answer,
            "answers are fault-schedule-invariant under retry"
        );
    }

    println!("\n== pr6: scheduler wall-clock (degrade policy, storm replay) ==");
    let mut criterion = Criterion::default().sample_size(15);
    let wall = criterion.bench_stats("degrade_storm_replay", |b| {
        b.iter(|| run_policy(&arrivals, &plan, FaultPolicy::Degrade))
    });

    let hit_gain_vs_retry = ds.deadline_hit_rate / rs.deadline_hit_rate.max(1e-12);
    let slo_gain_vs_retry = ds.slo_goodput / rs.slo_goodput.max(1e-12);
    let json = format!(
        "{{\n  \"bench\": \"pr6_faults\",\n  \"workload\": {{\n    \"requests\": {requests},\n    \"n_beams\": {N_BEAMS},\n    \"arrival_interval_s\": {ARRIVAL_INTERVAL_S},\n    \"slo_mix\": \"interactive25s/standard50s/batch90s round-robin\",\n    \"storm_seed\": {STORM_SEED},\n    \"storm_horizon_s\": {STORM_HORIZON_S},\n    \"search\": \"beam\"\n  }},\n  \"policies\": {{\n{blind_json},\n{retry_json},\n{degrade_json}\n  }},\n  \"degrade_deadline_hit_rate\": {hit:.4},\n  \"degrade_slo_goodput_tok_per_s\": {slo_gp:.2},\n  \"degrade_hit_rate_gain_vs_naive_retry\": {hit_gain:.3},\n  \"degrade_slo_goodput_gain_vs_naive_retry\": {slo_gain:.3},\n  \"retry_makespan_speedup_vs_no_handling\": {mk_speedup:.3},\n{wall}\n}}\n",
        requests = arrivals.len(),
        blind_json = policy_json("no_handling", &blind),
        retry_json = policy_json("naive_retry", &retry),
        degrade_json = policy_json("degrade", &degrade),
        hit = ds.deadline_hit_rate,
        slo_gp = ds.slo_goodput,
        hit_gain = hit_gain_vs_retry,
        slo_gain = slo_gain_vs_retry,
        mk_speedup = bs.makespan / rs.makespan.max(1e-12),
        wall = wall_json(&wall),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    std::fs::write(out_path, &json).expect("write BENCH_PR6.json");
    println!("\nwrote {out_path}");
}
