//! No-op `Serialize` / `Deserialize` derives for the offline build.
//!
//! Nothing in this workspace serializes at run time, so the derives only
//! need to parse (including `#[serde(...)]` helper attributes) and emit
//! nothing.

use proc_macro::TokenStream;

/// Accepts the input and emits no impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input and emits no impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
