//! Offline shim for `rand_chacha`: a genuine ChaCha8 stream-cipher RNG.
//!
//! The simulation's calibration tests check statistical moments, tails
//! and cross-stream correlations, so this is a real ChaCha core (8
//! double-rounds over the standard 16-word state), not a toy LCG. The
//! word stream is emitted in block order, with a 64-bit block counter —
//! deterministic and platform-independent.

/// Re-export path used by `ftts-model` (`rand_chacha::rand_core::...`).
pub use rand as rand_core;

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, seeded by a 32-byte key.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, 64-bit counter, zero nonce.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_from_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniformity_coarse_check() {
        // Mean of 100k uniform f64 draws must sit near 0.5, and each
        // decile must be populated roughly evenly.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        let mut deciles = [0u32; 10];
        for _ in 0..n {
            let x: f64 = rng.gen();
            sum += x;
            deciles[(x * 10.0) as usize % 10] += 1;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        for (i, d) in deciles.iter().enumerate() {
            let frac = *d as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "decile {i}: {frac}");
        }
    }

    #[test]
    fn blocks_advance_the_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
