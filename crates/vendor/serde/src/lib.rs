//! Offline shim for `serde`: marker traits plus the no-op derives.
//!
//! See `crates/vendor/README.md` for why this exists. The derive macros
//! (from the sibling `serde_derive` shim) parse their input — including
//! `#[serde(...)]` attributes — and emit nothing, so these traits are
//! never actually implemented. Nothing in the workspace requires them as
//! bounds.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
