//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro form
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn prop(x in 0u64..10, v in prop::collection::vec(0usize..4, 1..20)) { ... }
//! }
//! ```
//!
//! with strategies over integer ranges, tuples, `prop_map`,
//! `prop_oneof!`, `Just`, `prop::collection::vec`, `prop::sample::select`
//! and `any::<T>()`. Inputs are drawn from a ChaCha8 stream seeded from
//! the test's module path and name, so failures are reproducible run to
//! run. There is no shrinking: a failing case panics with its inputs via
//! the standard assertion message.

pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Iteration-count configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Seed from a stable name (FNV-1a hash of the test path).
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(ChaCha8Rng::seed_from_u64(hash))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of random values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase for heterogeneous collections (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe strategy wrapper.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one arm.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rand::Rng::gen_below(rng, span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u64, usize, u32, u16, u8);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Strategy for a `Vec` of values with a length drawn from a range.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Draws any `bool`.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Helper modules exposed as `prop::...` (mirrors the real crate's
/// prelude).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};

        /// A `Vec` whose length is drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Uniform choice among the given values.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }

        /// Pick uniformly from `values`.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select needs at least one value");
            Select(values)
        }
    }
}

/// The prelude the workspace's property tests glob-import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Property assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests. See the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(prop_oneof![Just(1u64), 5u64..8], 1..6),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x == 1 || (5..8).contains(&x)));
        }

        #[test]
        fn select_and_any(k in prop::sample::select(vec![2usize, 4, 8]), b in any::<bool>()) {
            prop_assert!(k == 2 || k == 4 || k == 8);
            let _ = b;
        }

        #[test]
        fn map_applies(s in (1u64..5).prop_map(|x| x * 10)) {
            prop_assert!(s % 10 == 0 && (10..50).contains(&s));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::test_runner::TestRng::from_name("demo");
        let mut b = crate::test_runner::TestRng::from_name("demo");
        let s = 0u64..100;
        use crate::strategy::Strategy;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
