//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Benchmarks register with [`Criterion::bench_function`] and drive a
//! [`Bencher`] via `iter` / `iter_batched`. Each benchmark is warmed up,
//! then timed over `sample_size` samples; mean and minimum per-iteration
//! wall-clock are printed in a criterion-like one-line format. The
//! `criterion_group!` / `criterion_main!` macros generate the usual
//! `main`, so `[[bench]]` targets keep `harness = false`.

use std::time::{Duration, Instant};

/// Opaque value barrier (best-effort without inline asm on stable).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup allocations (accepted for API
/// compatibility; the shim times every routine invocation individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Distribution statistics over a benchmark's timed samples
/// (per-iteration seconds).
///
/// Like real criterion, samples outside the Tukey fences
/// `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` (quartiles taken over the raw
/// samples) are rejected as outliers before the statistics are
/// computed, so one GC pause or scheduler hiccup cannot poison the
/// mean/variance. Rejection is skipped for fewer than four samples,
/// where quartiles are meaningless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Samples the statistics were computed over (outliers excluded).
    pub n: usize,
    /// Arithmetic mean.
    pub mean_seconds: f64,
    /// Fastest sample.
    pub min_seconds: f64,
    /// Population variance (seconds²).
    pub variance_seconds2: f64,
    /// Median (nearest-rank).
    pub p50_seconds: f64,
    /// 99th percentile (nearest-rank; the max for small sample counts).
    pub p99_seconds: f64,
    /// Samples rejected by the IQR fences.
    pub outliers_rejected: usize,
}

impl SampleStats {
    /// Compute the statistics of a sample set (all-zero when empty),
    /// rejecting IQR outliers first.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                n: 0,
                mean_seconds: 0.0,
                min_seconds: 0.0,
                variance_seconds2: 0.0,
                p50_seconds: 0.0,
                p99_seconds: 0.0,
                outliers_rejected: 0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let raw_n = sorted.len();
        let raw_rank = |q: f64| sorted[((q * raw_n as f64).ceil() as usize).clamp(1, raw_n) - 1];
        if raw_n >= 4 {
            let (q1, q3) = (raw_rank(0.25), raw_rank(0.75));
            let iqr = q3 - q1;
            let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
            sorted.retain(|&s| s >= lo && s <= hi);
        }
        let n = sorted.len();
        debug_assert!(n > 0, "the median always survives its own fences");
        let outliers_rejected = raw_n - n;
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let variance = sorted.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        let rank = |q: f64| sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        Self {
            n,
            mean_seconds: mean,
            min_seconds: sorted[0],
            variance_seconds2: variance,
            p50_seconds: rank(0.50),
            p99_seconds: rank(0.99),
            outliers_rejected,
        }
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    sample_seconds: Vec<f64>,
    /// Mean seconds per iteration over the measured samples.
    pub mean_seconds: f64,
    /// Fastest observed sample, seconds per iteration.
    pub min_seconds: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            sample_seconds: Vec::with_capacity(samples),
            mean_seconds: 0.0,
            min_seconds: f64::INFINITY,
        }
    }

    fn record(&mut self, total: Duration, iters: u64) {
        let per_iter = total.as_secs_f64() / iters.max(1) as f64;
        self.sample_seconds.push(per_iter);
        self.mean_seconds += per_iter;
        self.min_seconds = self.min_seconds.min(per_iter);
    }

    /// Distribution statistics of the samples measured so far.
    pub fn stats(&self) -> SampleStats {
        SampleStats::from_samples(&self.sample_seconds)
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        // Pick an iteration count that makes one sample take >= ~1 ms.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().as_secs_f64().max(1e-9);
        let iters = ((1e-3 / once).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.record(start.elapsed(), iters);
        }
        self.mean_seconds /= self.samples.max(1) as f64;
    }

    /// Time `routine` on fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed(), 1);
        }
        self.mean_seconds /= self.samples.max(1) as f64;
    }
}

/// Benchmark registry / runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark and print its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.bench_stats(name, f);
        self
    }

    /// Like [`Criterion::bench_function`], but also returns the sample
    /// distribution (variance, p50/p99) for machine-readable reports.
    pub fn bench_stats<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> SampleStats {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let stats = bencher.stats();
        // Every figure on the line comes from the same IQR-filtered
        // sample set — mixing the raw accumulators in would print a
        // hiccup-inflated mean next to a post-rejection σ.
        println!(
            "{name:<40} time: [mean {} | fastest {} | p50 {} | p99 {} | σ {} | {} outliers]",
            format_seconds(stats.mean_seconds),
            format_seconds(stats.min_seconds),
            format_seconds(stats.p50_seconds),
            format_seconds(stats.p99_seconds),
            format_seconds(stats.variance_seconds2.sqrt()),
            stats.outliers_rejected,
        );
        stats
    }
}

/// Human units, criterion-style.
fn format_seconds(s: f64) -> String {
    if !s.is_finite() {
        "n/a".to_string()
    } else if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Group benchmark functions, optionally with a configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 3);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn sample_stats_match_hand_computation() {
        let s = SampleStats::from_samples(&[4.0, 2.0, 6.0, 8.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.outliers_rejected, 0, "a tight sample keeps everything");
        assert_eq!(s.mean_seconds, 5.0);
        assert_eq!(s.min_seconds, 2.0);
        // Population variance of {2,4,6,8} around 5: (9+1+1+9)/4 = 5.
        assert_eq!(s.variance_seconds2, 5.0);
        assert_eq!(s.p50_seconds, 4.0);
        assert_eq!(s.p99_seconds, 8.0, "p99 of a small sample is the max");
        let empty = SampleStats::from_samples(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.variance_seconds2, 0.0);
    }

    #[test]
    fn nearest_rank_pins_degenerate_sample_sizes() {
        // The nearest-rank rule here must agree with
        // `ftts_metrics::Summary` (same `ceil(q·n).clamp(1, n) - 1`
        // index) so bench reports and serving metrics never disagree on
        // what a percentile of a tiny sample means. Pinned on the
        // degenerate sizes where off-by-ones would hide: n = 0 is all
        // zero, n = 1 makes every percentile the sample, n = 2 puts p50
        // on the lower sample (ceil(0.5·2) = 1) and p99 on the upper.
        let none = SampleStats::from_samples(&[]);
        assert_eq!((none.p50_seconds, none.p99_seconds), (0.0, 0.0));
        let one = SampleStats::from_samples(&[7.0]);
        assert_eq!((one.p50_seconds, one.p99_seconds), (7.0, 7.0));
        let two = SampleStats::from_samples(&[9.0, 3.0]);
        assert_eq!(two.p50_seconds, 3.0, "p50 of two samples is the lower");
        assert_eq!(two.p99_seconds, 9.0, "p99 of two samples is the upper");
    }

    #[test]
    fn iqr_fences_reject_outliers() {
        // Ten well-behaved ~1 ms samples plus one 1 s hiccup: the
        // fences drop the hiccup, so mean/variance/p99 describe the
        // steady state instead of the glitch.
        let mut samples = vec![1e-3; 10];
        for (i, s) in samples.iter_mut().enumerate() {
            *s += i as f64 * 1e-6;
        }
        let clean = SampleStats::from_samples(&samples);
        samples.push(1.0);
        let robust = SampleStats::from_samples(&samples);
        assert_eq!(robust.outliers_rejected, 1);
        assert_eq!(robust.n, 10);
        assert!((robust.mean_seconds - clean.mean_seconds).abs() < 1e-9);
        assert!(robust.p99_seconds < 2e-3, "p99 must ignore the hiccup");
        assert!(robust.variance_seconds2 < 1e-9);
        // Low-side outliers are rejected symmetrically.
        samples.pop();
        samples.push(1e-9);
        let low = SampleStats::from_samples(&samples);
        assert_eq!(low.outliers_rejected, 1);
        assert!(low.min_seconds >= 1e-3);
    }

    #[test]
    fn tiny_samples_skip_rejection() {
        // Quartiles over <4 samples are meaningless; everything is kept.
        let s = SampleStats::from_samples(&[1.0, 100.0, 10_000.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.outliers_rejected, 0);
        assert_eq!(s.min_seconds, 1.0);
        assert_eq!(s.p99_seconds, 10_000.0);
    }

    #[test]
    fn p99_separates_from_p50_on_large_samples() {
        let samples: Vec<f64> = (1..=200).map(|x| x as f64).collect();
        let s = SampleStats::from_samples(&samples);
        assert_eq!(s.p50_seconds, 100.0);
        assert_eq!(s.p99_seconds, 198.0);
        assert!(s.variance_seconds2 > 0.0);
    }

    #[test]
    fn bench_stats_returns_the_distribution() {
        let mut c = Criterion::default().sample_size(5);
        let stats = c.bench_stats("stats", |b| b.iter(|| std::hint::black_box(17u64 * 3)));
        assert_eq!(stats.n + stats.outliers_rejected, 5);
        assert!(stats.n >= 1);
        assert!(stats.min_seconds <= stats.p50_seconds);
        assert!(stats.p50_seconds <= stats.p99_seconds);
        assert!(stats.mean_seconds > 0.0);
        assert!(stats.variance_seconds2 >= 0.0);
    }

    #[test]
    fn format_is_humane() {
        assert!(format_seconds(2e-9).ends_with("ns"));
        assert!(format_seconds(2e-6).ends_with("µs"));
        assert!(format_seconds(2e-3).ends_with("ms"));
        assert!(format_seconds(2.0).ends_with('s'));
    }
}
