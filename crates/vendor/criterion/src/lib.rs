//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Benchmarks register with [`Criterion::bench_function`] and drive a
//! [`Bencher`] via `iter` / `iter_batched`. Each benchmark is warmed up,
//! then timed over `sample_size` samples; mean and minimum per-iteration
//! wall-clock are printed in a criterion-like one-line format. The
//! `criterion_group!` / `criterion_main!` macros generate the usual
//! `main`, so `[[bench]]` targets keep `harness = false`.

use std::time::{Duration, Instant};

/// Opaque value barrier (best-effort without inline asm on stable).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup allocations (accepted for API
/// compatibility; the shim times every routine invocation individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration over the measured samples.
    pub mean_seconds: f64,
    /// Fastest observed sample, seconds per iteration.
    pub min_seconds: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            mean_seconds: 0.0,
            min_seconds: f64::INFINITY,
        }
    }

    fn record(&mut self, total: Duration, iters: u64) {
        let per_iter = total.as_secs_f64() / iters.max(1) as f64;
        self.mean_seconds += per_iter;
        self.min_seconds = self.min_seconds.min(per_iter);
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        // Pick an iteration count that makes one sample take >= ~1 ms.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().as_secs_f64().max(1e-9);
        let iters = ((1e-3 / once).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.record(start.elapsed(), iters);
        }
        self.mean_seconds /= self.samples.max(1) as f64;
    }

    /// Time `routine` on fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed(), 1);
        }
        self.mean_seconds /= self.samples.max(1) as f64;
    }
}

/// Benchmark registry / runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark and print its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        println!(
            "{name:<40} time: [mean {} | fastest {}]",
            format_seconds(bencher.mean_seconds),
            format_seconds(bencher.min_seconds)
        );
        self
    }
}

/// Human units, criterion-style.
fn format_seconds(s: f64) -> String {
    if !s.is_finite() {
        "n/a".to_string()
    } else if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Group benchmark functions, optionally with a configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 3);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn format_is_humane() {
        assert!(format_seconds(2e-9).ends_with("ns"));
        assert!(format_seconds(2e-6).ends_with("µs"));
        assert!(format_seconds(2e-3).ends_with("ms"));
        assert!(format_seconds(2.0).ends_with('s'));
    }
}
